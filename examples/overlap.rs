//! Communication/computation overlap on the simulated cluster (Figs. 5-7).
//!
//! Posts a non-blocking 1 MB transfer, computes, waits - and reports how
//! much of the transfer hid behind the computation for PIOMan vs the
//! RDMA-read baselines, on the side of your choice.
//!
//! Run with: `cargo run --release --example overlap [sender|receiver|both]`

use piom_suite::des::SimTime;
use piom_suite::madmpi::overlap::{run_overlap, ComputeSide};
use piom_suite::madmpi::MpiImpl;

fn main() {
    let side = match std::env::args().nth(1).as_deref() {
        Some("sender") => ComputeSide::Sender,
        Some("both") => ComputeSide::Both,
        _ => ComputeSide::Receiver,
    };
    println!("overlap ratio, 1 MB message, compute on {side:?} side");
    println!(
        "{:<14}{:>10}{:>10}{:>10}",
        "compute (µs)", "MVAPICH", "OpenMPI", "PIOMan"
    );
    for us in [100u64, 250, 500, 750, 1000, 1500, 2000] {
        let t = SimTime::from_us(us);
        let row: Vec<f64> = MpiImpl::ALL
            .iter()
            .map(|&i| run_overlap(i, 1 << 20, t, side, 42))
            .collect();
        println!("{:<14}{:>10.2}{:>10.2}{:>10.2}", us, row[0], row[1], row[2]);
    }
    println!("\n(shape to expect: all near 1.0 for sender-side; only PIOMan");
    println!(" climbs to 1.0 for receiver-side - the paper's headline result)");
}
