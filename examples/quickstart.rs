//! Quickstart: delegate work to PIOMan on real threads.
//!
//! A "communication library" (here: a fake one) hands its chores to the
//! task manager: a one-shot request submission, a repetitive polling task,
//! and a batch with NUMA affinity. Progression workers play the role of the
//! thread scheduler's keypoints and run everything in the background.
//!
//! Run with: `cargo run --release --example quickstart`

use piom_suite::cpuset::CpuSet;
use piom_suite::pioman::{Progression, ProgressionConfig, TaskManager, TaskOptions, TaskStatus};
use piom_suite::topology::presets;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn main() {
    // A 16-core, 4-NUMA-node machine (the paper's `kwak`). On a laptop you
    // would use `presets::host()`; virtual cores still work — they are
    // queue lanes, not OS CPUs.
    let topo = Arc::new(presets::kwak());
    println!(
        "machine: {} ({} cores, {} task queues)",
        topo.name(),
        topo.n_cores(),
        topo.n_nodes()
    );

    let mgr = TaskManager::new(topo);
    let prog = Progression::start(mgr.clone(), ProgressionConfig::all_cores(&mgr));

    // 1. A one-shot task restricted to NUMA node #1 (cores 4-7).
    let h = mgr.submit(
        |ctx| {
            println!("one-shot ran on core {}", ctx.core);
            TaskStatus::Done
        },
        CpuSet::range(4..8),
        TaskOptions::oneshot(),
    );
    h.wait().unwrap();

    // 2. A repetitive polling task: "completed once the corresponding
    //    network polling succeeds" (paper §IV-B).
    let polls = Arc::new(AtomicU32::new(0));
    let p = polls.clone();
    let h = mgr.submit(
        move |_| {
            if p.fetch_add(1, Ordering::Relaxed) + 1 == 20 {
                TaskStatus::Done
            } else {
                TaskStatus::Again
            }
        },
        CpuSet::single(2),
        TaskOptions::repeat(),
    );
    h.wait().unwrap();
    println!(
        "polling task completed after {} polls",
        polls.load(Ordering::Relaxed)
    );

    // 3. A burst of tasks across the whole machine.
    let done = Arc::new(AtomicU32::new(0));
    let handles: Vec<_> = (0..64)
        .map(|i| {
            let d = done.clone();
            mgr.submit(
                move |_| {
                    d.fetch_add(1, Ordering::Relaxed);
                    TaskStatus::Done
                },
                CpuSet::single(i % 16),
                TaskOptions::oneshot(),
            )
        })
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    println!("burst: {} tasks completed", done.load(Ordering::Relaxed));

    // Where did everything run?
    let stats = mgr.stats();
    println!("executions per core: {:?}", stats.executed_by_core);
    println!(
        "hooks fired: idle={} timer={} ctx-switch={}",
        stats.hook_idle, stats.hook_timer, stats.hook_context_switch
    );
    drop(prog);
}
