//! Quickstart: delegate work to PIOMan on real threads.
//!
//! A "communication library" (here: a fake one) hands its chores to the
//! task manager: a one-shot request submission, a repetitive polling task,
//! and a batch with NUMA affinity. Progression workers play the role of the
//! thread scheduler's keypoints and run everything in the background.
//!
//! Run with: `cargo run --release --example quickstart`

use piom_suite::cpuset::CpuSet;
use piom_suite::pioman::{Progression, ProgressionConfig, TaskClass, TaskManager, TaskStatus};
use piom_suite::topology::presets;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn main() {
    // A 16-core, 4-NUMA-node machine (the paper's `kwak`). On a laptop you
    // would use `presets::host()`; virtual cores still work — they are
    // queue lanes, not OS CPUs.
    let topo = Arc::new(presets::kwak());
    println!(
        "machine: {} ({} cores, {} task queues)",
        topo.name(),
        topo.n_cores(),
        topo.n_nodes()
    );

    let mgr = TaskManager::new(topo);
    let prog = Progression::start(mgr.clone(), ProgressionConfig::all_cores(&mgr));

    // 1. A one-shot task restricted to NUMA node #1 (cores 4-7).
    let h = mgr
        .task(|ctx| {
            println!("one-shot ran on core {}", ctx.core);
            TaskStatus::Done
        })
        .cpuset(CpuSet::range(4..8))
        .spawn();
    h.wait().unwrap();

    // 2. A repetitive polling task: "completed once the corresponding
    //    network polling succeeds" (paper §IV-B).
    let polls = Arc::new(AtomicU32::new(0));
    let p = polls.clone();
    let h = mgr
        .task(move |_| {
            if p.fetch_add(1, Ordering::Relaxed) + 1 == 20 {
                TaskStatus::Done
            } else {
                TaskStatus::Again
            }
        })
        .cpuset(CpuSet::single(2))
        .repeat()
        .spawn();
    h.wait().unwrap();
    println!(
        "polling task completed after {} polls",
        polls.load(Ordering::Relaxed)
    );

    // 3. A burst of tasks across the whole machine.
    let done = Arc::new(AtomicU32::new(0));
    let handles: Vec<_> = (0..64)
        .map(|i| {
            let d = done.clone();
            mgr.task(move |_| {
                d.fetch_add(1, Ordering::Relaxed);
                TaskStatus::Done
            })
            .cpuset(CpuSet::single(i % 16))
            .spawn()
        })
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    println!("burst: {} tasks completed", done.load(Ordering::Relaxed));

    // 4. QoS tiers + dependencies: a bulk transfer tagged with an EDF
    //    deadline tick, an urgent completion signal that runs only after
    //    it, and a background sweep that yields to both.
    let transfer = mgr
        .task(|ctx| {
            println!("bulk transfer ran on core {}", ctx.core);
            TaskStatus::Done
        })
        .cpuset(CpuSet::range(0..4))
        .class(TaskClass::Bulk)
        .deadline(42)
        .spawn();
    let signal = mgr
        .task(|ctx| {
            println!("urgent completion signal ran on core {}", ctx.core);
            TaskStatus::Done
        })
        .cpuset(CpuSet::range(0..4))
        .class(TaskClass::Urgent)
        .after(&transfer)
        .spawn();
    let sweep = mgr
        .task(|_| TaskStatus::Done)
        .class(TaskClass::Background)
        .spawn();
    for h in [transfer, signal, sweep] {
        h.wait().unwrap();
    }
    let qos = mgr.stats();
    println!(
        "executions by class (urgent/interactive/bulk/background): {:?}",
        qos.executed_by_class
    );
    println!(
        "waitlist releases by class: {:?}",
        qos.waitlist_released_by_class
    );

    // Where did everything run?
    let stats = mgr.stats();
    println!("executions per core: {:?}", stats.executed_by_core);
    println!(
        "hooks fired: idle={} timer={} ctx-switch={}",
        stats.hook_idle, stats.hook_timer, stats.hook_context_switch
    );
    drop(prog);
}
