//! OSU-style multithreaded latency on the simulated cluster (Fig. 4).
//!
//! One sender pingpongs 4-byte messages against N receiver threads.
//! Baseline MPI receivers spin-poll and fight for CPU and the completion
//! queue; PIOMan receivers block on a condition while idle cores poll.
//!
//! Run with: `cargo run --release --example multithread_latency`

use piom_suite::madmpi::{mtlat, MpiImpl};

fn main() {
    println!(
        "{:<10}{:>16}{:>16}",
        "threads", "MVAPICH-like µs", "PIOMan µs"
    );
    for threads in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let mv = mtlat::run_mtlat(MpiImpl::MvapichLike, threads, 60, 7);
        let pm = mtlat::run_mtlat(MpiImpl::MadMpi, threads, 60, 7);
        println!(
            "{:<10}{:>16.2}{:>16.2}",
            threads, mv.mean_latency_us, pm.mean_latency_us
        );
    }
}
