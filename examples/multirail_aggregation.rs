//! Cross-flow aggregation and multirail distribution (Fig. 1).
//!
//! Two demonstrations of the optimization layer on a 2-rail network:
//!
//! 1. **Aggregation** — four application flows send small messages to the
//!    same destination. With the optimizer on, pending messages are packed
//!    into few NIC packets and spread across rails; off, every message
//!    pays the NIC occupancy alone.
//! 2. **Striping** — one large rendezvous payload scheduled by
//!    `newmad::rails`: the engine water-fills chunks over both rails, and
//!    the printed crossover size says where that starts to pay.
//!
//! Run with: `cargo run --release --example multirail_aggregation`

use piom_suite::des::{Sim, SimTime};
use piom_suite::net::{NetParams, Network};
use piom_suite::newmad::{rails, CommEngine, EngineConfig};

fn main() {
    for (label, aggregation) in [
        ("direct (no optimizer)", false),
        ("collect + aggregate", true),
    ] {
        let net = Network::new(2, 2, NetParams::infiniband());
        let cfg = EngineConfig {
            aggregation,
            ..EngineConfig::newmadeleine()
        };
        let tx = CommEngine::new(0, net.clone(), cfg.clone());
        let rx = CommEngine::new(1, net.clone(), cfg);
        let mut sim = Sim::new();

        let mut recvs = Vec::new();
        for m in 0..64u64 {
            for flow in 0..4u64 {
                let tag = flow << 32 | m;
                recvs.push(rx.irecv(&mut sim, 0, tag));
                let tx2 = tx.clone();
                sim.schedule_abs(SimTime::from_ns(m * 50), move |sim| {
                    tx2.isend(sim, 1, tag, 1024);
                });
            }
        }
        // Keypoint-like polling cadence on both nodes.
        for k in 0..10_000u64 {
            let (tx2, rx2) = (tx.clone(), rx.clone());
            sim.schedule_abs(SimTime::from_ns(k * 200), move |sim| {
                tx2.poll(sim);
                rx2.poll(sim);
            });
        }
        sim.run();

        let done = recvs
            .iter()
            .map(|r| r.completed_at().unwrap())
            .max()
            .unwrap();
        let packets = net.nic(0, 0).tx_count() + net.nic(0, 1).tx_count();
        println!(
            "{label:<24} wire packets: {packets:>4}   all delivered at: {done}   \
             (rail0 {} / rail1 {})",
            net.nic(0, 0).tx_count(),
            net.nic(0, 1).tx_count(),
        );
    }

    // Part 2: the striping scheduler on one large rendezvous transfer.
    let params = NetParams::infiniband();
    println!(
        "\neager/stripe crossover on this fabric (2 rails): {} B",
        rails::stripe_crossover(&params, 2)
    );
    const SIZE: usize = 1 << 20;
    for (label, multirail) in [("single rail", false), ("striped over 2 rails", true)] {
        let net = Network::new(2, 2, params.clone());
        let cfg = EngineConfig {
            multirail_data: multirail,
            ..EngineConfig::newmadeleine()
        };
        let plan = rails::stripe_plan(&net, SimTime::ZERO, 0, SIZE, &cfg);
        let tx = CommEngine::new(0, net.clone(), cfg.clone());
        let rx = CommEngine::new(1, net.clone(), cfg);
        let mut sim = Sim::new();
        let r = rx.irecv(&mut sim, 0, 0);
        tx.isend(&mut sim, 1, 0, SIZE);
        for k in 0..20_000u64 {
            let (tx2, rx2) = (tx.clone(), rx.clone());
            sim.schedule_abs(SimTime::from_ns(k * 200), move |sim| {
                tx2.poll(sim);
                rx2.poll(sim);
            });
        }
        sim.run();
        println!(
            "{label:<24} 1 MiB rendezvous done at: {}   plan: {} chunks   \
             (rail0 {} / rail1 {})",
            r.completed_at().unwrap(),
            plan.len(),
            net.nic(0, 0).tx_count(),
            net.nic(0, 1).tx_count(),
        );
    }
}
