//! Renders the paper's machine topologies and the queue hierarchy mapped
//! onto them (Figs. 2-3), plus this host's detected shape.
//!
//! Run with: `cargo run --example topology_tour`

use piom_suite::cpuset::CpuSet;
use piom_suite::topology::{presets, Topology};

fn tour(t: &Topology) {
    println!("{}", t.render_ascii());
    // Show the submit-time level resolution on a few cpusets.
    for set in [
        CpuSet::single(0),
        CpuSet::first_n(2.min(t.n_cores())),
        t.all_cores(),
    ] {
        if let Some(node) = t.smallest_covering(&set) {
            println!(
                "  cpuset {{{set}}} -> {} (queue of {} #{})",
                t.node(node).level.queue_name(),
                t.node(node).level,
                t.node(node).ordinal
            );
        }
    }
    println!();
}

fn main() {
    tour(&presets::borderline());
    tour(&presets::kwak());
    tour(&presets::host());
}
