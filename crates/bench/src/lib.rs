//! Benchmark-only crate: see `benches/`.
//!
//! * `benches/scheduler.rs` — real-thread microbenchmarks of the core
//!   library: submit/schedule round-trips per queue level, spinlock vs
//!   lock-free ablation, Algorithm 2's unlocked-empty fast path, cpuset and
//!   topology query costs, batched dequeue (`schedule_batch`), steal-vs-spin
//!   under skewed load, contended global-vs-per-core queues from real
//!   threads, and a NewMadeleine pingpong progressed by the engine.
//! * `benches/tables.rs` — end-to-end regeneration cost of the simulated
//!   Table I/II microbenchmarks (how fast the DES reproduces the paper).
//!
//! `cargo bench` prints mean ns/iter (vendored criterion shim);
//! `piom-harness bench --json` records the same hot paths into
//! `BENCH_pioman.json` for the cross-PR perf trajectory — methodology in
//! `EXPERIMENTS.md`. Both instruments drive the *same* workloads: the
//! [`scenarios`] module is the single definition of the skewed-load,
//! steal/spin, and contended shapes, so the criterion numbers and the
//! recorded trajectory cannot silently diverge.

pub mod scenarios;
