//! Benchmark-only crate: see `benches/`.
//!
//! * `benches/scheduler.rs` — real-thread microbenchmarks of the core
//!   library (submit/schedule round-trips per queue level, spinlock vs
//!   lock-free ablation, Algorithm 2's unlocked-empty fast path, cpuset and
//!   topology query costs).
//! * `benches/tables.rs` — end-to-end regeneration cost of the simulated
//!   Table I/II microbenchmarks (how fast the DES reproduces the paper).
