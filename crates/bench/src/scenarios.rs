//! Shared scheduler workload shapes, used by both `benches/scheduler.rs`
//! (criterion, exploratory) and `piom-harness bench` (the recorded
//! `BENCH_pioman.json` trajectory). One definition per scenario: changing
//! a load size or drain bound here changes both instruments together.
//!
//! The [`HIGH_VARIANCE`] / [`TAIL_GATED`] tag lists below cover only the
//! *bench* rows. The simulated workload matrix (`piom-harness scenarios`,
//! `SCENARIOS_pioman.json`) carries its gate class on each
//! `piom_scenarios::Scenario` instead; the compare gate unions both
//! sources (`piom_harness::compare::{is_high_variance, is_tail_gated}`),
//! so a workload scenario never needs an entry here.

use piom_cpuset::CpuSet;
use pioman::{TaskClass, TaskHandle, TaskManager, TaskStatus, CLASS_COUNT};
use std::time::{Duration, Instant};

/// Scenarios whose quick-mode numbers swing with host load (±40% observed
/// on shared runners for `newmad_pingpong` and the contended pairs, and
/// 0.4–1.8 µs run-to-run for the single-round-trip rows — EXPERIMENTS.md,
/// "noise caveat"). This tag drives two things: `piom-harness bench`
/// records the **median of three** measurement passes for these (instead
/// of one), and the now-required regression gate applies the wide
/// per-scenario threshold (`compare::WIDE_THRESHOLD_PCT`) to them so CI
/// verdicts track real regressions instead of runner weather.
pub const HIGH_VARIANCE: &[&str] = &[
    "submit_schedule_percore",
    "submit_schedule_global",
    "contended_global_queue",
    "contended_percore_queues",
    "newmad_pingpong",
    // The whole newmad_* family routes here: each row hosts a *simulated*
    // engine run (deterministic latencies, asserted inside the routine)
    // and measures the host-side cost of driving it, which inherits the
    // shared-runner noise of every other host-timed row.
    "newmad_bandwidth_ladder",
    "newmad_multirail_crossover",
    "lockfree_vs_mutex",
    "lockfree_vs_mutex_baseline",
    "relaxed_vs_seqcst_contended",
    "relaxed_vs_seqcst_contended_baseline",
    "stats_sharding_contended",
    "stats_sharding_contended_baseline",
    // The manycore re-records of the two PR-5 ablations: same algorithms,
    // 16 threads oversubscribed on the shared runner — scheduling jitter
    // *is* the workload, so their quick-mode numbers swing hardest of all.
    "relaxed_vs_seqcst_manycore",
    "relaxed_vs_seqcst_manycore_baseline",
    "stats_sharding_manycore",
    "stats_sharding_manycore_baseline",
    "newmad_rail_ladder",
];

/// `true` if `name` is tagged [`HIGH_VARIANCE`].
pub fn is_high_variance(name: &str) -> bool {
    HIGH_VARIANCE.contains(&name)
}

/// Scenarios whose **p99** the regression gate holds alongside the mean
/// (schema v2): the tight scheduler microbenches, where a fattened tail
/// is exactly the failure steal-aware parking and adaptive batching
/// exist to prevent and run-to-run noise is small enough for a p99
/// verdict to mean something. The [`HIGH_VARIANCE`] rows stay mean-gated
/// only — their quick-mode tails are runner weather, and gating weather
/// would teach everyone to ignore the gate. Tagged rows also get an
/// iteration floor (`harness` `TAIL_MIN_ITERS`) so the p99 rests on a
/// real sample count even under `--quick`.
pub const TAIL_GATED: &[&str] = &[
    "schedule_batch_drain_64",
    "steal_starved_core",
    "spin_home_drains_alone",
    "steal_half_backlog",
    "adaptive_batch_ramp",
    "park_wake_latency",
    "phase_shift_ramp",
    "phase_shift_ramp_cumulative",
    "qos_class_mix",
    "qos_class_mix_spinlock",
    "qos_waitlist_chain",
    // The socket-tier scaling ladder: single-threaded deterministic
    // drains whose tail is exactly the spill/claim/steal path the
    // overflow tier exists to keep flat as the core count grows.
    "steal_scaling_256",
    "steal_scaling_512",
    "steal_scaling_1024",
    "phase_shift_ramp_auto",
];

/// `true` if `name` is tagged [`TAIL_GATED`].
pub fn is_tail_gated(name: &str) -> bool {
    TAIL_GATED.contains(&name)
}

/// Backlog size of the skewed-load (steal-vs-spin) scenarios.
pub const SKEWED_LOAD: usize = 64;

/// Tasks per thread in one contended round.
pub const CONTENDED_OPS: usize = 16;

/// Threads in one contended round.
pub const CONTENDED_THREADS: usize = 4;

/// Submits [`SKEWED_LOAD`] one-shot tasks all homed on core 0's Per-Core
/// Queue, runnable by cores 0–3 — the skewed load behind the steal-vs-spin
/// comparison.
pub fn submit_skewed(mgr: &TaskManager) -> Vec<TaskHandle> {
    (0..SKEWED_LOAD)
        .map(|_| {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::range(0..4))
                .on_core(0)
                .spawn()
        })
        .collect()
}

/// Drives keypoints on `cores` round-robin until every handle completes.
///
/// # Panics
///
/// Panics if the backlog fails to drain within `10 * handles.len()`
/// rounds — in the starved-home arm (`cores = 1..4`) that means work
/// stealing failed.
pub fn drain_until_complete(
    mgr: &TaskManager,
    cores: core::ops::Range<usize>,
    handles: &[TaskHandle],
) {
    let mut rounds = 0;
    while handles.iter().any(|h| !h.is_complete()) {
        for core in cores.clone() {
            mgr.schedule(core);
        }
        rounds += 1;
        assert!(
            rounds <= 10 * handles.len(),
            "scheduler failed to drain the backlog via cores {cores:?}"
        );
    }
}

/// Backlog size of the `steal_scaling_*` ladder: deep enough that core
/// 0's dispatch spills well past [`SCALING_SPILL_THRESHOLD`] into its
/// socket's overflow tier on every rung.
pub const SCALING_LOAD: usize = 256;

/// Per-core depth the `steal_scaling_*` rungs configure as
/// [`pioman::ManagerConfig::spill_threshold`]: low, so the
/// [`SCALING_LOAD`] backlog crosses into the socket tier instead of
/// sitting in one deep per-core queue.
pub const SCALING_SPILL_THRESHOLD: usize = 16;

/// Submits [`SCALING_LOAD`] machine-wide one-shot tasks all homed on core
/// 0 — the skewed manycore load behind the `steal_scaling_*` ladder.
/// Machine-wide cpusets make every core an eligible claimer/thief, so the
/// drain exercises same-socket overflow claims *and* cross-socket steals.
pub fn submit_manycore_backlog(mgr: &TaskManager) -> Vec<TaskHandle> {
    let n = mgr.topology().n_cores();
    (0..SCALING_LOAD)
        .map(|_| {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::first_n(n))
                .on_core(0)
                .spawn()
        })
        .collect()
}

/// [`drain_until_complete`] over an explicit core list instead of a
/// contiguous range — the `steal_scaling_*` drain cast (one home-socket
/// sibling plus the first core of each remote socket) is not contiguous
/// on any of the manycore presets.
///
/// # Panics
///
/// Panics if the backlog fails to drain within `10 * handles.len()`
/// rounds.
pub fn drain_cores_until_complete(mgr: &TaskManager, cores: &[usize], handles: &[TaskHandle]) {
    let mut rounds = 0;
    while handles.iter().any(|h| !h.is_complete()) {
        for &core in cores {
            mgr.schedule(core);
        }
        rounds += 1;
        assert!(
            rounds <= 10 * handles.len(),
            "scheduler failed to drain the backlog via cores {cores:?}"
        );
    }
}

/// Backlog size of the adaptive-batch ramp scenario: large enough that a
/// fixed [`pioman::DEFAULT_BATCH`] budget needs many passes, while the
/// adaptive budget sizes itself to the observed depth.
pub const ADAPTIVE_RAMP_LOAD: usize = 256;

/// Submits [`ADAPTIVE_RAMP_LOAD`] one-shot tasks on `core`'s Per-Core
/// Queue — the deep-backlog half of the adaptive-batch scenario.
pub fn submit_ramp(mgr: &TaskManager, core: usize) -> Vec<TaskHandle> {
    (0..ADAPTIVE_RAMP_LOAD)
        .map(|_| {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::single(core))
                .spawn()
        })
        .collect()
}

/// Drains `core`'s hierarchy the way an adaptive progression worker does:
/// each keypoint asks [`TaskManager::adaptive_budget`] for its budget and
/// drains at most that much, until a keypoint runs nothing. Returns the
/// total number of tasks executed.
pub fn adaptive_drain(mgr: &TaskManager, core: usize) -> usize {
    let mut ran = 0;
    loop {
        let budget = mgr.adaptive_budget(core);
        let n = mgr.schedule_batch(core, budget);
        if n == 0 {
            return ran;
        }
        ran += n;
    }
}

/// One contended round: [`CONTENDED_THREADS`] real threads each
/// submit+drain [`CONTENDED_OPS`] one-shot tasks. With `per_core`, thread
/// *i* stays on core *i*'s own queue; otherwise every operation goes
/// through the Global Queue's lock (the contention the hierarchy removes).
///
/// Returns the total number of operations, for per-op normalization.
pub fn contended_round(mgr: &TaskManager, per_core: bool) -> usize {
    std::thread::scope(|s| {
        for core in 0..CONTENDED_THREADS {
            s.spawn(move || {
                for _ in 0..CONTENDED_OPS {
                    let set = if per_core {
                        CpuSet::single(core)
                    } else {
                        CpuSet::first_n(16)
                    };
                    let h = mgr.task(|_| TaskStatus::Done).cpuset(set).spawn();
                    while !h.is_complete() {
                        mgr.schedule(core);
                    }
                }
            });
        }
    });
    CONTENDED_THREADS * CONTENDED_OPS
}

/// Tasks in one QoS class-mix backlog, spread evenly over the four
/// classes so every lane set is exercised.
pub const QOS_MIX_LOAD: usize = 64;

/// Submits [`QOS_MIX_LOAD`] one-shot tasks homed on core 0, classes
/// assigned round-robin over [`TaskClass::ALL`] and an EDF deadline tick
/// on every other task (descending, so the deadline lanes genuinely
/// reorder instead of degenerating to FIFO).
pub fn submit_qos_mix(mgr: &TaskManager) -> Vec<TaskHandle> {
    (0..QOS_MIX_LOAD)
        .map(|i| {
            let mut spec = mgr
                .task(|_| TaskStatus::Done)
                .cpuset(CpuSet::single(0))
                .class(TaskClass::ALL[i % CLASS_COUNT]);
            if i % 2 == 0 {
                spec = spec.deadline((QOS_MIX_LOAD - i) as u64);
            }
            spec.spawn()
        })
        .collect()
}

/// Depth of the dependency chain in the waitlist-release scenario.
pub const QOS_CHAIN_LEN: usize = 32;

/// Submits a [`QOS_CHAIN_LEN`]-deep dependency chain on core 0: every
/// task after the first parks on the waitlist until its predecessor's
/// completion path releases it, so a drain pays one release per link.
pub fn submit_qos_chain(mgr: &TaskManager) -> Vec<TaskHandle> {
    let mut handles: Vec<TaskHandle> = Vec::with_capacity(QOS_CHAIN_LEN);
    for _ in 0..QOS_CHAIN_LEN {
        let mut spec = mgr.task(|_| TaskStatus::Done).cpuset(CpuSet::single(0));
        if let Some(prev) = handles.last() {
            spec = spec.after(prev);
        }
        handles.push(spec.spawn());
    }
    handles
}

/// Park timeout used by the `park_wake_latency` scenario: it stands in for
/// the timer-keypoint period of last resort, so the measured wake latency
/// being far below it is the scenario's correctness claim — a parked core
/// reacts to a submission through the wake path, not by timing out.
pub const PARK_WAKE_TIMEOUT: Duration = Duration::from_millis(200);

/// Blocks until `core`'s progression worker announces it is parked.
///
/// # Panics
///
/// Panics after 10 s — a worker that never parks means the park path is
/// broken, which the benchmark must report rather than hang on.
pub fn wait_until_parked(mgr: &TaskManager, core: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !mgr.is_parked(core) {
        assert!(
            Instant::now() < deadline,
            "worker {core} never parked: park path broken"
        );
        std::thread::yield_now();
    }
}

/// Quiet-history rounds of the phase-shift scenario: each submits and
/// adaptively drains a full ramp on the target core, accumulating
/// *uncontended* lock acquisitions. Sized so the history dominates the
/// later burst by well over the window's decay constant, which is what
/// makes the cumulative ratio ossify (see `EXPERIMENTS.md`).
pub const PHASE_QUIET_ROUNDS: usize = 24;

/// Contended rounds forming the burst phase of the phase-shift scenario.
pub const PHASE_BURST_ROUNDS: usize = 4;

/// Half-life (in samples) the phase-shift scenario configures, small
/// enough that re-adaptation completes within one measured drain.
pub const PHASE_HALF_LIFE: u32 = 8;

/// Phase 1 of the phase-shift scenario: a long uncontended history of
/// ramp drains on `core`.
pub fn phase_quiet_history(mgr: &TaskManager, core: usize) {
    for _ in 0..PHASE_QUIET_ROUNDS {
        let handles = submit_ramp(mgr, core);
        assert_eq!(adaptive_drain(mgr, core), ADAPTIVE_RAMP_LOAD);
        debug_assert!(handles.iter().all(|h| h.is_complete()));
    }
}

/// Phase 2 of the phase-shift scenario: a burst of real-thread contention
/// on the Global Queue (which sits on every core's hierarchy path).
pub fn phase_burst(mgr: &TaskManager) {
    for _ in 0..PHASE_BURST_ROUNDS {
        contended_round(mgr, false);
    }
}

/// Sums `(lock_acquisitions, lock_contended)` over the queues on `core`'s
/// hierarchy path — the same counters `adaptive_budget` reads.
pub fn path_lock_stats(mgr: &TaskManager, core: usize) -> (u64, u64) {
    let stats = mgr.stats();
    mgr.topology()
        .path_to_root(core)
        .map(|node| {
            let q = &stats.queues[node.index()];
            (q.lock_acquisitions, q.lock_contended)
        })
        .fold((0, 0), |(a, c), (qa, qc)| (a + qa, c + qc))
}
