//! Wall-clock cost of regenerating the paper's simulated experiments —
//! one Criterion benchmark per table, exercising the full DES stack.

use criterion::{criterion_group, criterion_main, Criterion};
use piom_machine::simsched::microbench;
use piom_machine::CostModel;
use piom_topology::presets;
use std::hint::black_box;

fn bench_table_rows(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated_tables");
    g.sample_size(20);
    let borderline = presets::borderline();
    let kwak = presets::kwak();
    g.bench_function("table1_global_row", |b| {
        b.iter(|| {
            black_box(microbench(
                &borderline,
                &CostModel::borderline(),
                borderline.root(),
                100,
                7,
            ))
        })
    });
    g.bench_function("table2_global_row", |b| {
        b.iter(|| black_box(microbench(&kwak, &CostModel::kwak(), kwak.root(), 100, 7)))
    });
    g.bench_function("table2_percore_row", |b| {
        b.iter(|| {
            black_box(microbench(
                &kwak,
                &CostModel::kwak(),
                kwak.core_node(12),
                100,
                7,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table_rows);
criterion_main!(benches);
