//! Real-thread microbenchmarks of the PIOMan core library.
//!
//! These measure the actual Rust implementation on the host (they are not
//! the paper's Tables — those need 8/16-core NUMA machines and are
//! regenerated in simulation by `piom-harness table1 table2`). What they
//! pin down instead:
//!
//! * the submit→schedule→complete round-trip per queue level (the real
//!   analogue of one Table I row, single-threaded on the host);
//! * the spinlock vs lock-free queue ablation (paper §VI future work);
//! * Algorithm 2's unlocked-empty fast path vs a forced lock acquisition;
//! * the cpuset/topology operations on the submit hot path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pioman::{ManagerConfig, QueueBackend, TaskManager, TaskOptions, TaskStatus};
use piom_cpuset::CpuSet;
use piom_topology::presets;
use std::hint::black_box;
use std::sync::Arc;

fn bench_submit_schedule_levels(c: &mut Criterion) {
    let mut g = c.benchmark_group("submit_schedule_roundtrip");
    let topo = Arc::new(presets::kwak());
    for (label, cpuset, core) in [
        ("per_core_local", CpuSet::single(0), 0usize),
        ("per_core_remote", CpuSet::single(12), 12),
        ("per_numa", CpuSet::range(4..8), 5),
        ("global", CpuSet::first_n(16), 9),
    ] {
        let mgr = TaskManager::new(topo.clone());
        g.bench_function(label, |b| {
            b.iter(|| {
                let h = mgr.submit(
                    |_| TaskStatus::Done,
                    black_box(cpuset),
                    TaskOptions::oneshot(),
                );
                mgr.schedule(core);
                assert!(h.is_complete());
            })
        });
    }
    g.finish();
}

fn bench_backend_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_backend");
    let topo = Arc::new(presets::kwak());
    for (label, backend) in [
        ("spinlock", QueueBackend::Spinlock),
        ("lockfree", QueueBackend::LockFree),
    ] {
        let mgr = TaskManager::with_config(topo.clone(), ManagerConfig { backend });
        g.bench_function(label, |b| {
            b.iter(|| {
                let h = mgr.submit(
                    |_| TaskStatus::Done,
                    CpuSet::single(0),
                    TaskOptions::oneshot(),
                );
                mgr.schedule(0);
                assert!(h.is_complete());
            })
        });
    }
    g.finish();
}

fn bench_empty_scan(c: &mut Criterion) {
    // Algorithm 2's point: scanning a hierarchy of empty queues costs no
    // lock acquisitions at all. This is the keypoint-hook fast path.
    let mut g = c.benchmark_group("empty_scan");
    let topo = Arc::new(presets::kwak());
    let mgr = TaskManager::new(topo.clone());
    g.bench_function("schedule_all_empty", |b| {
        b.iter(|| black_box(mgr.schedule(black_box(7))))
    });
    let stats = mgr.stats();
    assert_eq!(
        stats.queues.iter().map(|q| q.lock_acquisitions).sum::<u64>(),
        0,
        "empty scan must not lock (Algorithm 2)"
    );
    g.finish();
}

fn bench_repeat_polling_task(c: &mut Criterion) {
    let mut g = c.benchmark_group("repeat_task");
    let topo = Arc::new(presets::kwak());
    let mgr = TaskManager::new(topo.clone());
    g.bench_function("poll_until_done_10", |b| {
        b.iter_batched(
            || {
                let mut left = 10u32;
                mgr.submit(
                    move |_| {
                        left -= 1;
                        if left == 0 {
                            TaskStatus::Done
                        } else {
                            TaskStatus::Again
                        }
                    },
                    CpuSet::single(0),
                    TaskOptions::repeat(),
                )
            },
            |h| {
                while !h.is_complete() {
                    mgr.schedule(0);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cpuset_topology_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("submit_path_queries");
    let topo = presets::kwak();
    let set = CpuSet::range(4..8);
    g.bench_function("smallest_covering", |b| {
        b.iter(|| black_box(topo.smallest_covering(black_box(&set))))
    });
    g.bench_function("cpuset_union_count", |b| {
        let a = CpuSet::range(0..8);
        let z = CpuSet::range(4..12);
        b.iter(|| black_box((black_box(a) | black_box(z)).count()))
    });
    g.bench_function("cores_by_distance", |b| {
        b.iter(|| black_box(topo.cores_by_distance(black_box(5), &topo.all_cores())))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_submit_schedule_levels,
    bench_backend_ablation,
    bench_empty_scan,
    bench_repeat_polling_task,
    bench_cpuset_topology_ops
);
criterion_main!(benches);
