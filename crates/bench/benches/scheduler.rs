//! Real-thread microbenchmarks of the PIOMan core library.
//!
//! These measure the actual Rust implementation on the host (they are not
//! the paper's Tables — those need 8/16-core NUMA machines and are
//! regenerated in simulation by `piom-harness table1 table2`). What they
//! pin down instead:
//!
//! * the submit→schedule→complete round-trip per queue level (the real
//!   analogue of one Table I row, single-threaded on the host);
//! * the spinlock vs lock-free queue ablation (paper §VI future work);
//! * Algorithm 2's unlocked-empty fast path vs a forced lock acquisition;
//! * the cpuset/topology operations on the submit hot path;
//! * batched dequeue: draining a backlog per-task vs per-pass
//!   (`TaskManager::schedule_batch`);
//! * steal-vs-spin under skewed load: tasks homed on one core, siblings
//!   either steal the backlog or only the home core drains it;
//! * contended submit/schedule from real threads, global queue vs
//!   per-core queues;
//! * a NewMadeleine pingpong progressed by the engine (simulated cluster,
//!   same path `piom-harness bench` records in `BENCH_pioman.json`).

use bench::scenarios;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use madmpi::{mtlat, MpiImpl};
use piom_cpuset::CpuSet;
use piom_topology::presets;
use pioman::{ManagerConfig, QueueBackend, TaskManager, TaskStatus};
use std::hint::black_box;
use std::sync::Arc;

fn bench_submit_schedule_levels(c: &mut Criterion) {
    let mut g = c.benchmark_group("submit_schedule_roundtrip");
    let topo = Arc::new(presets::kwak());
    for (label, cpuset, core) in [
        ("per_core_local", CpuSet::single(0), 0usize),
        ("per_core_remote", CpuSet::single(12), 12),
        ("per_numa", CpuSet::range(4..8), 5),
        ("global", CpuSet::first_n(16), 9),
    ] {
        let mgr = TaskManager::new(topo.clone());
        g.bench_function(label, |b| {
            b.iter(|| {
                let h = mgr
                    .task(|_| TaskStatus::Done)
                    .cpuset(black_box(cpuset))
                    .spawn();
                mgr.schedule(core);
                assert!(h.is_complete());
            })
        });
    }
    g.finish();
}

fn bench_backend_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_backend");
    let topo = Arc::new(presets::kwak());
    for (label, backend) in [
        ("spinlock", QueueBackend::Spinlock),
        ("lockfree", QueueBackend::LockFree),
        ("mutex", QueueBackend::Mutex),
    ] {
        let mgr = TaskManager::with_config(
            topo.clone(),
            ManagerConfig {
                queue_backend: backend,
                ..ManagerConfig::default()
            },
        );
        g.bench_function(label, |b| {
            b.iter(|| {
                let h = mgr
                    .task(|_| TaskStatus::Done)
                    .cpuset(CpuSet::single(0))
                    .spawn();
                mgr.schedule(0);
                assert!(h.is_complete());
            })
        });
    }
    g.finish();
}

fn bench_empty_scan(c: &mut Criterion) {
    // Algorithm 2's point: scanning a hierarchy of empty queues costs no
    // lock acquisitions at all. This is the keypoint-hook fast path.
    let mut g = c.benchmark_group("empty_scan");
    let topo = Arc::new(presets::kwak());
    let mgr = TaskManager::new(topo.clone());
    g.bench_function("schedule_all_empty", |b| {
        b.iter(|| black_box(mgr.schedule(black_box(7))))
    });
    let stats = mgr.stats();
    assert_eq!(
        stats
            .queues
            .iter()
            .map(|q| q.lock_acquisitions)
            .sum::<u64>(),
        0,
        "empty scan must not lock (Algorithm 2)"
    );
    g.finish();
}

fn bench_repeat_polling_task(c: &mut Criterion) {
    let mut g = c.benchmark_group("repeat_task");
    let topo = Arc::new(presets::kwak());
    let mgr = TaskManager::new(topo.clone());
    g.bench_function("poll_until_done_10", |b| {
        b.iter_batched(
            || {
                let mut left = 10u32;
                mgr.task(move |_| {
                    left -= 1;
                    if left == 0 {
                        TaskStatus::Done
                    } else {
                        TaskStatus::Again
                    }
                })
                .cpuset(CpuSet::single(0))
                .repeat()
                .spawn()
            },
            |h| {
                while !h.is_complete() {
                    mgr.schedule(0);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cpuset_topology_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("submit_path_queries");
    let topo = presets::kwak();
    let set = CpuSet::range(4..8);
    g.bench_function("smallest_covering", |b| {
        b.iter(|| black_box(topo.smallest_covering(black_box(&set))))
    });
    g.bench_function("cpuset_union_count", |b| {
        let a = CpuSet::range(0..8);
        let z = CpuSet::range(4..12);
        b.iter(|| black_box((black_box(a) | black_box(z)).count()))
    });
    g.bench_function("cores_by_distance", |b| {
        b.iter(|| black_box(topo.cores_by_distance(black_box(5), &topo.all_cores())))
    });
    g.finish();
}

fn bench_batched_dequeue(c: &mut Criterion) {
    // The tentpole win: a backlog of n tasks costs one lock acquisition to
    // drain instead of n. `drain_1` is the degenerate case (equal to the
    // per-task path); the gap to `drain_64` is the batching payoff.
    let mut g = c.benchmark_group("batched_dequeue");
    let topo = Arc::new(presets::kwak());
    for n in [1usize, 8, 64] {
        let mgr = TaskManager::new(topo.clone());
        g.bench_function(&format!("drain_{n}"), |b| {
            b.iter_batched(
                || {
                    for _ in 0..n {
                        mgr.task(|_| TaskStatus::Done)
                            .cpuset(CpuSet::single(0))
                            .spawn();
                    }
                },
                |()| {
                    assert_eq!(mgr.schedule_batch(0, n), n);
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_steal_vs_spin(c: &mut Criterion) {
    // Skewed load (scenarios::submit_skewed): 64 tasks homed on core 0's
    // queue, cpuset {0..4}. With stealing, cores 1-3 drain the backlog even
    // though core 0 never schedules (the starved-core scenario). Without
    // stealing, only core 0 can make progress and the sibling keypoints are
    // wasted spins.
    let mut g = c.benchmark_group("steal_vs_spin");
    let topo = Arc::new(presets::kwak());
    let steal_on = TaskManager::new(topo.clone());
    g.bench_function("steal_on_starved_home", |b| {
        b.iter_batched(
            || scenarios::submit_skewed(&steal_on),
            |handles| {
                // Core 0 is "busy computing": only its siblings schedule.
                scenarios::drain_until_complete(&steal_on, 1..4, &handles);
            },
            BatchSize::SmallInput,
        )
    });
    let steal_off = TaskManager::with_config(
        topo.clone(),
        ManagerConfig {
            steal: false,
            ..ManagerConfig::default()
        },
    );
    g.bench_function("spin_home_drains_alone", |b| {
        b.iter_batched(
            || scenarios::submit_skewed(&steal_off),
            |handles| {
                // Siblings spin uselessly; the home core does all the work.
                scenarios::drain_until_complete(&steal_off, 0..4, &handles);
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_contended_queues(c: &mut Criterion) {
    // Real-thread contention (scenarios::contended_round): 4 threads each
    // submit+drain a burst. With a shared all-cores cpuset every operation
    // hits the Global Queue's lock; with per-core cpusets each thread stays
    // on its own queue (the paper's whole argument for the hierarchy,
    // measured on the host).
    let mut g = c.benchmark_group("contended");
    g.sample_size(20);
    let topo = Arc::new(presets::kwak());
    for (label, per_core) in [("global_queue", false), ("per_core_queues", true)] {
        let mgr = TaskManager::new(topo.clone());
        g.bench_function(label, |b| {
            b.iter(|| black_box(scenarios::contended_round(&mgr, per_core)))
        });
    }
    g.finish();
}

fn bench_park_wake(c: &mut Criterion) {
    // Steal-aware parking (PR 4): the wake latency of a parked worker and
    // the cost of the pre-park steal probe itself. `park_wake_latency`
    // times submit→complete against a worker parked with a long timeout
    // (only the wake path can finish early); the probe benches show the
    // O(victims)-loads decision is cheap enough to run on every park.
    let mut g = c.benchmark_group("park_wake");
    g.sample_size(50);
    let topo = Arc::new(presets::kwak());
    let mgr = TaskManager::new(topo.clone());
    let _prog = pioman::Progression::start(
        mgr.clone(),
        pioman::ProgressionConfig {
            park_timeout: scenarios::PARK_WAKE_TIMEOUT,
            timer_period: None,
            ..pioman::ProgressionConfig::for_cores(vec![1])
        },
    );
    g.bench_function("park_wake_latency", |b| {
        b.iter_batched(
            || scenarios::wait_until_parked(&mgr, 1),
            |()| {
                let h = mgr
                    .task(|_| TaskStatus::Done)
                    .cpuset(CpuSet::single(1))
                    .spawn();
                assert_eq!(h.wait(), Ok(()));
            },
            BatchSize::SmallInput,
        )
    });
    drop(_prog);

    let idle = TaskManager::new(topo.clone());
    g.bench_function("park_probe_all_empty", |b| {
        b.iter(|| black_box(idle.park_probe(0)))
    });
    let loaded = TaskManager::new(topo.clone());
    for _ in 0..scenarios::SKEWED_LOAD {
        loaded
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::from_iter([0, 12]))
            .on_core(12)
            .spawn();
    }
    g.bench_function("park_probe_distant_backlog", |b| {
        b.iter(|| assert!(black_box(loaded.park_probe(0))))
    });
    g.finish();
}

fn bench_phase_shift(c: &mut Criterion) {
    // The windowed-vs-cumulative contention signal ablation: a quiet
    // history, a contended burst, then post-shift adaptive ramp drains.
    // `piom-harness bench` records the same shapes (and asserts the
    // re-adaptation claims) into BENCH_pioman.json.
    let mut g = c.benchmark_group("phase_shift");
    g.sample_size(20);
    let topo = Arc::new(presets::kwak());
    for (label, signal) in [
        ("windowed", pioman::SignalPolicy::Windowed),
        ("cumulative", pioman::SignalPolicy::Cumulative),
    ] {
        let mgr = TaskManager::with_config(
            topo.clone(),
            ManagerConfig {
                signal,
                contention_half_life: scenarios::PHASE_HALF_LIFE,
                ..ManagerConfig::default()
            },
        );
        scenarios::phase_quiet_history(&mgr, 0);
        g.bench_function(label, |b| {
            // The burst runs in per-iteration setup (the vendored shim
            // calls setup before every routine), so each measured drain
            // genuinely follows a fresh contention phase change instead
            // of the first iteration decaying the window for the rest.
            b.iter_batched(
                || {
                    scenarios::phase_burst(&mgr);
                    scenarios::submit_ramp(&mgr, 0);
                },
                |_| {
                    assert_eq!(
                        scenarios::adaptive_drain(&mgr, 0),
                        scenarios::ADAPTIVE_RAMP_LOAD
                    )
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_newmad_pingpong(c: &mut Criterion) {
    // The simulated 4-byte pingpong progressed by PIOMan keypoints (one
    // Fig. 4 point). Measures regeneration cost on the host; the simulated
    // latency itself is deterministic.
    let mut g = c.benchmark_group("newmad_pingpong");
    g.sample_size(20);
    g.bench_function("mtlat_1_thread", |b| {
        b.iter(|| black_box(mtlat::run_mtlat(MpiImpl::MadMpi, 1, 20, 42)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_submit_schedule_levels,
    bench_backend_ablation,
    bench_empty_scan,
    bench_repeat_polling_task,
    bench_cpuset_topology_ops,
    bench_batched_dequeue,
    bench_steal_vs_spin,
    bench_contended_queues,
    bench_park_wake,
    bench_phase_shift,
    bench_newmad_pingpong
);
criterion_main!(benches);
