//! Link/NIC parameter sets for the fabrics the paper used.

use piom_des::SimTime;

/// Timing parameters of one network class.
#[derive(Debug, Clone)]
pub struct NetParams {
    /// One-way wire+switch latency per packet, ns.
    pub latency_ns: u64,
    /// Per-byte streaming cost, picoseconds (1 GB/s = 1000 ps/B).
    pub per_byte_ps: u64,
    /// NIC send-engine occupancy per packet (descriptor processing,
    /// doorbell, DMA setup), ns. This is the term that message aggregation
    /// amortizes (paper Fig. 1 / §II-A).
    pub occupancy_ns: u64,
    /// Extra setup for posting an RDMA operation, ns.
    pub rdma_setup_ns: u64,
}

impl NetParams {
    /// ConnectX-era InfiniBand DDR: ~4 µs end-to-end small-message latency
    /// once both hosts' overheads are counted, ~1.2 GB/s streaming.
    pub fn infiniband() -> Self {
        NetParams {
            latency_ns: 1_700,
            per_byte_ps: 830, // ~1.2 GB/s
            occupancy_ns: 350,
            rdma_setup_ns: 600,
        }
    }

    /// Myri-10G with MX: similar latency class, ~1.0 GB/s effective.
    pub fn myri10g() -> Self {
        NetParams {
            latency_ns: 2_100,
            per_byte_ps: 1_000,
            occupancy_ns: 400,
            rdma_setup_ns: 800,
        }
    }

    /// Gigabit-Ethernet/TCP class: tens of µs latency, ~110 MB/s.
    pub fn tcp_ethernet() -> Self {
        NetParams {
            latency_ns: 45_000,
            per_byte_ps: 9_000,
            occupancy_ns: 4_000,
            rdma_setup_ns: 0, // no RDMA; protocols must not use it
        }
    }

    /// One-way latency.
    pub fn latency(&self) -> SimTime {
        SimTime::from_ns(self.latency_ns)
    }

    /// Streaming time for `size` bytes.
    pub fn byte_time(&self, size: usize) -> SimTime {
        SimTime::from_ns((size as u64 * self.per_byte_ps) / 1_000)
    }

    /// Send-engine occupancy per packet.
    pub fn occupancy(&self) -> SimTime {
        SimTime::from_ns(self.occupancy_ns)
    }

    /// RDMA posting cost.
    pub fn rdma_setup(&self) -> SimTime {
        SimTime::from_ns(self.rdma_setup_ns)
    }

    /// Effective bandwidth in GB/s (diagnostic).
    pub fn bandwidth_gbs(&self) -> f64 {
        1000.0 / self.per_byte_ps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_time_scales_linearly() {
        let p = NetParams::infiniband();
        assert_eq!(p.byte_time(0), SimTime::ZERO);
        assert_eq!(p.byte_time(2000).as_ns(), 2 * p.byte_time(1000).as_ns());
    }

    #[test]
    fn preset_sanity() {
        let ib = NetParams::infiniband();
        let eth = NetParams::tcp_ethernet();
        assert!(ib.latency() < eth.latency());
        assert!(ib.bandwidth_gbs() > eth.bandwidth_gbs());
        // 1 MB on IB takes ~0.87 ms.
        let t = ib.byte_time(1 << 20);
        assert!(t > SimTime::from_us(700) && t < SimTime::from_ms(1));
    }
}
