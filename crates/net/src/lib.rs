//! Simulated high-performance cluster network.
//!
//! The paper's experiments ran on InfiniBand ConnectX and Myri-10G NICs.
//! This crate substitutes a discrete-event model of that class of fabric:
//!
//! * [`NetParams`] — per-message latency, per-byte bandwidth, NIC occupancy
//!   (the per-packet engine busy time that message aggregation amortizes),
//!   and RDMA costs; presets for IB/Myri-10G/TCP-class links;
//! * [`Network`] — `n` nodes × `r` rails; each (node, rail) pair owns a
//!   [`Nic`] with a serializing send engine and an rx-handler callback;
//! * packet delivery into the receiving node's engine after
//!   `occupancy + size·per_byte + latency`;
//! * [`Network::rdma_read`] — one-sided transfer that completes without any
//!   remote CPU involvement, the mechanism MVAPICH/OpenMPI-class rendezvous
//!   uses to overlap on the sender side (paper §II-B, \[10\]).
//!
//! Payload bytes are optional ([`Message::data`]): protocol experiments care
//! about sizes and timing; correctness tests and the zero-copy message path
//! attach a real [`Rope`] (a chain of shared `Bytes` segments) and check
//! end-to-end integrity without the model ever flattening it.
//!
//! # Quick start
//!
//! ```
//! use piom_des::Sim;
//! use piom_net::{Message, NetParams, Network};
//! use std::cell::Cell;
//! use std::rc::Rc;
//!
//! let net = Network::new(2, 1, NetParams::infiniband());
//! let delivered = Rc::new(Cell::new(0u32));
//! let d = delivered.clone();
//! net.nic(1, 0).set_rx_handler(Rc::new(move |_sim, msg: Message| {
//!     assert_eq!(msg.size, 1024);
//!     d.set(d.get() + 1);
//! }));
//!
//! let mut sim = Sim::new();
//! net.send(
//!     &mut sim,
//!     Message { src: 0, dst: 1, rail: 0, tag: 7, size: 1024, data: None },
//! );
//! sim.run();
//! assert_eq!(delivered.get(), 1);
//! assert_eq!(net.nic(0, 0).tx_count(), 1);
//! ```

#![warn(missing_docs)]

use bytes::Rope;
use piom_des::{Sim, SimTime};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

mod params;
pub use params::NetParams;

/// A message (or protocol control packet) in flight.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Rail the message was sent on.
    pub rail: usize,
    /// Protocol tag (opaque to the network).
    pub tag: u64,
    /// Payload size in bytes (drives the bandwidth term).
    pub size: usize,
    /// Optional real frame bytes (header + payload segments). The network
    /// never reads or flattens this; timing is driven by `size` alone.
    pub data: Option<Rope>,
}

/// Handler invoked on the receiving side when a message arrives.
pub type RxHandler = Rc<dyn Fn(&mut Sim, Message)>;

struct NicState {
    /// Send engine busy until this time.
    busy_until: SimTime,
    /// Packets queued behind the engine.
    backlog: VecDeque<Message>,
    /// Sum of `size` over the backlog (occupancy accounting for striping).
    backlog_bytes: usize,
    /// Messages fully transmitted.
    tx_count: u64,
    /// Bytes fully transmitted.
    tx_bytes: u64,
    rx_handler: Option<RxHandler>,
    rx_count: u64,
}

/// One simulated network interface (a (node, rail) endpoint).
#[derive(Clone)]
pub struct Nic {
    st: Rc<RefCell<NicState>>,
}

impl Nic {
    fn new() -> Self {
        Nic {
            st: Rc::new(RefCell::new(NicState {
                busy_until: SimTime::ZERO,
                backlog: VecDeque::new(),
                backlog_bytes: 0,
                tx_count: 0,
                tx_bytes: 0,
                rx_handler: None,
                rx_count: 0,
            })),
        }
    }

    /// Installs the receive handler (the communication engine's entry).
    pub fn set_rx_handler(&self, h: RxHandler) {
        self.st.borrow_mut().rx_handler = Some(h);
    }

    /// Messages transmitted so far.
    pub fn tx_count(&self) -> u64 {
        self.st.borrow().tx_count
    }

    /// Bytes transmitted so far.
    pub fn tx_bytes(&self) -> u64 {
        self.st.borrow().tx_bytes
    }

    /// Messages received so far.
    pub fn rx_count(&self) -> u64 {
        self.st.borrow().rx_count
    }

    /// Send-engine backlog length (racy diagnostic).
    pub fn backlog_len(&self) -> usize {
        self.st.borrow().backlog.len()
    }

    /// Bytes queued behind the engine (sum of backlog `size`s).
    pub fn queued_bytes(&self) -> usize {
        self.st.borrow().backlog_bytes
    }

    /// Simulated time at which the send engine frees up.
    pub fn busy_until(&self) -> SimTime {
        self.st.borrow().busy_until
    }
}

/// A cluster: `n_nodes` nodes, each with `n_rails` NICs, full crossbar.
pub struct Network {
    params: NetParams,
    /// `nics[node][rail]`.
    nics: Vec<Vec<Nic>>,
}

impl Network {
    /// Builds the fabric.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes == 0` or `n_rails == 0`.
    pub fn new(n_nodes: usize, n_rails: usize, params: NetParams) -> Rc<Self> {
        assert!(n_nodes > 0 && n_rails > 0, "empty network");
        Rc::new(Network {
            params,
            nics: (0..n_nodes)
                .map(|_| (0..n_rails).map(|_| Nic::new()).collect())
                .collect(),
        })
    }

    /// Link/NIC parameters.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nics.len()
    }

    /// Number of rails.
    pub fn n_rails(&self) -> usize {
        self.nics[0].len()
    }

    /// The NIC of `(node, rail)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn nic(&self, node: usize, rail: usize) -> &Nic {
        &self.nics[node][rail]
    }

    /// Submits `msg` to the source NIC's send engine. The engine transmits
    /// packets in FIFO order, each occupying it for
    /// `occupancy + size * per_byte`; the packet then arrives at the
    /// destination after the wire latency and is handed to the rx handler.
    ///
    /// # Panics
    ///
    /// Panics if src/dst/rail are out of range or `src == dst`.
    pub fn send(self: &Rc<Self>, sim: &mut Sim, msg: Message) {
        assert!(msg.src != msg.dst, "loopback not modelled");
        assert!(msg.src < self.n_nodes() && msg.dst < self.n_nodes());
        assert!(msg.rail < self.n_rails());
        let nic = self.nics[msg.src][msg.rail].clone();
        let start_engine = {
            let mut st = nic.st.borrow_mut();
            st.backlog_bytes += msg.size;
            st.backlog.push_back(msg);
            // Engine idle => kick it; otherwise the running chain drains it.
            st.backlog.len() == 1 && st.busy_until <= sim.now()
        };
        if start_engine {
            self.engine_step(sim, nic);
        }
    }

    /// Transmits the next backlog entry of `nic`, then re-arms.
    fn engine_step(self: &Rc<Self>, sim: &mut Sim, nic: Nic) {
        let (msg, tx_time) = {
            let mut st = nic.st.borrow_mut();
            let Some(msg) = st.backlog.pop_front() else {
                return;
            };
            st.backlog_bytes -= msg.size;
            let tx = self.params.occupancy() + self.params.byte_time(msg.size);
            st.busy_until = sim.now() + tx;
            (msg, tx)
        };
        let this = self.clone();
        let latency = self.params.latency();
        sim.schedule(tx_time, move |sim| {
            {
                let mut st = nic.st.borrow_mut();
                st.tx_count += 1;
                st.tx_bytes += msg.size as u64;
            }
            // Wire flight, then delivery on the destination NIC.
            let rx_nic = this.nics[msg.dst][msg.rail].clone();
            sim.schedule(latency, move |sim| {
                let handler = {
                    let mut st = rx_nic.st.borrow_mut();
                    st.rx_count += 1;
                    st.rx_handler.clone()
                };
                match handler {
                    Some(h) => h(sim, msg),
                    None => panic!(
                        "message delivered to node {} rail {} with no rx handler",
                        msg.dst, msg.rail
                    ),
                }
            });
            // Keep draining the backlog.
            this.engine_step(sim, nic);
        });
    }

    /// Exact drain time of `(node, rail)`'s send engine: the instant at
    /// which every packet currently submitted (streaming + backlog) has
    /// left the NIC. Because the engine is strictly FIFO, this is
    /// `max(busy_until, now) + Σ (occupancy + size·per_byte)` over the
    /// backlog — the quantity a striping scheduler balances across rails,
    /// and the time at which a packet submitted *now* would start
    /// streaming.
    ///
    /// # Panics
    ///
    /// Panics if `node`/`rail` are out of range.
    pub fn rail_eta(&self, now: SimTime, node: usize, rail: usize) -> SimTime {
        let st = self.nics[node][rail].st.borrow();
        // Per-packet sum (not byte_time(backlog_bytes)): byte_time rounds
        // per packet, and callers schedule *exact* drain callbacks on this.
        st.backlog.iter().fold(st.busy_until.max(now), |eta, m| {
            eta + self.params.occupancy() + self.params.byte_time(m.size)
        })
    }

    /// One-sided RDMA read: `reader` pulls `size` bytes from `target`
    /// without involving the target's CPU. `on_complete` runs on the reader
    /// side when the data has landed.
    ///
    /// Cost: request descriptor flight (`latency + rdma_setup`) + data
    /// streamed back (`size * per_byte + latency`).
    pub fn rdma_read<F: FnOnce(&mut Sim) + 'static>(
        self: &Rc<Self>,
        sim: &mut Sim,
        reader: usize,
        target: usize,
        rail: usize,
        size: usize,
        on_complete: F,
    ) {
        assert!(reader != target, "rdma loopback not modelled");
        assert!(reader < self.n_nodes() && target < self.n_nodes());
        assert!(rail < self.n_rails());
        let total = self.params.rdma_setup()
            + self.params.latency() // read request reaches the target NIC
            + self.params.byte_time(size) // data streams back
            + self.params.latency(); // last byte's wire flight
        sim.schedule(total, on_complete);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn net() -> (Rc<Network>, Sim) {
        (Network::new(2, 2, NetParams::infiniband()), Sim::new())
    }

    fn collect_arrivals(
        net: &Rc<Network>,
        node: usize,
        rail: usize,
    ) -> Rc<RefCell<Vec<(SimTime, Message)>>> {
        let log: Rc<RefCell<Vec<(SimTime, Message)>>> = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        net.nic(node, rail).set_rx_handler(Rc::new(move |sim, msg| {
            l.borrow_mut().push((sim.now(), msg));
        }));
        log
    }

    #[test]
    fn small_message_arrives_after_latency_plus_occupancy() {
        let (net, mut sim) = net();
        let log = collect_arrivals(&net, 1, 0);
        net.send(
            &mut sim,
            Message {
                src: 0,
                dst: 1,
                rail: 0,
                tag: 7,
                size: 4,
                data: None,
            },
        );
        sim.run();
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        let p = &net.params();
        let expected = p.occupancy() + p.byte_time(4) + p.latency();
        assert_eq!(log[0].0, expected);
        assert_eq!(log[0].1.tag, 7);
    }

    #[test]
    fn large_message_time_is_bandwidth_dominated() {
        let (net, mut sim) = net();
        let log = collect_arrivals(&net, 1, 0);
        let size = 1 << 20; // 1 MB
        net.send(
            &mut sim,
            Message {
                src: 0,
                dst: 1,
                rail: 0,
                tag: 0,
                size,
                data: None,
            },
        );
        sim.run();
        let arrival = log.borrow()[0].0;
        let bw_term = net.params().byte_time(size);
        assert!(
            arrival.as_ns() > bw_term.as_ns(),
            "arrival precedes bandwidth term"
        );
        assert!(
            (arrival - net.params().latency() - net.params().occupancy()) == bw_term,
            "decomposition broken"
        );
        // 1 MB at ~1.2 GB/s is on the order of a millisecond.
        assert!(arrival > SimTime::from_us(500) && arrival < SimTime::from_ms(2));
    }

    #[test]
    fn nic_engine_serializes_sends_fifo() {
        let (net, mut sim) = net();
        let log = collect_arrivals(&net, 1, 0);
        for tag in 0..5 {
            net.send(
                &mut sim,
                Message {
                    src: 0,
                    dst: 1,
                    rail: 0,
                    tag,
                    size: 1024,
                    data: None,
                },
            );
        }
        sim.run();
        let log = log.borrow();
        assert_eq!(log.len(), 5);
        let tags: Vec<u64> = log.iter().map(|(_, m)| m.tag).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4], "FIFO violated");
        // Arrivals spaced by at least the per-packet engine time.
        let step = net.params().occupancy() + net.params().byte_time(1024);
        for w in log.windows(2) {
            assert_eq!(w[1].0 - w[0].0, step);
        }
        assert_eq!(net.nic(0, 0).tx_count(), 5);
        assert_eq!(net.nic(1, 0).rx_count(), 5);
    }

    #[test]
    fn rails_transmit_in_parallel() {
        let (net, mut sim) = net();
        let log0 = collect_arrivals(&net, 1, 0);
        let log1 = collect_arrivals(&net, 1, 1);
        let size = 1 << 20;
        for rail in 0..2 {
            net.send(
                &mut sim,
                Message {
                    src: 0,
                    dst: 1,
                    rail,
                    tag: rail as u64,
                    size,
                    data: None,
                },
            );
        }
        sim.run();
        let a0 = log0.borrow()[0].0;
        let a1 = log1.borrow()[0].0;
        assert_eq!(a0, a1, "two rails should stream simultaneously");
    }

    #[test]
    fn payload_bytes_survive_transit() {
        let (net, mut sim) = net();
        let log = collect_arrivals(&net, 1, 0);
        let mut payload = Rope::from(bytes::Bytes::from(vec![0xAB; 200]));
        payload.push(bytes::Bytes::from(vec![0xCD; 56]));
        net.send(
            &mut sim,
            Message {
                src: 0,
                dst: 1,
                rail: 0,
                tag: 1,
                size: 256,
                data: Some(payload.clone()),
            },
        );
        sim.run();
        let arrived = log.borrow()[0].1.data.clone().unwrap();
        assert_eq!(arrived, payload);
        assert_eq!(arrived.n_segments(), 2, "transit must not flatten the rope");
    }

    #[test]
    fn rail_eta_tracks_backlog_and_drains_exactly() {
        let (net, mut sim) = net();
        net.nic(1, 0).set_rx_handler(Rc::new(|_, _| {}));
        let p = net.params().clone();
        assert_eq!(net.rail_eta(sim.now(), 0, 0), SimTime::ZERO, "idle rail");

        for _ in 0..3 {
            net.send(
                &mut sim,
                Message {
                    src: 0,
                    dst: 1,
                    rail: 0,
                    tag: 0,
                    size: 1024,
                    data: None,
                },
            );
        }
        // One packet is streaming (covered by busy_until), two are queued.
        let expected = (p.occupancy() + p.byte_time(1024)) * 3;
        let eta = net.rail_eta(sim.now(), 0, 0);
        assert_eq!(eta, expected);
        assert_eq!(net.nic(0, 0).backlog_len(), 2);
        assert_eq!(net.nic(0, 0).queued_bytes(), 2048);

        // At the predicted eta, the engine is exactly free again.
        let seen = Rc::new(Cell::new(SimTime::ZERO));
        let s = seen.clone();
        let n2 = net.clone();
        sim.schedule_abs(eta, move |sim| {
            s.set(n2.rail_eta(sim.now(), 0, 0));
        });
        sim.run();
        assert_eq!(seen.get(), eta, "engine idle again at its own eta");
        assert_eq!(net.nic(0, 0).queued_bytes(), 0);
    }

    #[test]
    fn rdma_read_cost_model() {
        let (net, mut sim) = net();
        let done_at = Rc::new(Cell::new(SimTime::ZERO));
        let d = done_at.clone();
        let size = 32 * 1024;
        net.rdma_read(&mut sim, 1, 0, 0, size, move |sim| d.set(sim.now()));
        sim.run();
        let p = NetParams::infiniband();
        let expected = p.rdma_setup() + p.latency() * 2 + p.byte_time(size);
        assert_eq!(done_at.get(), expected);
    }

    #[test]
    fn bidirectional_traffic_no_interference() {
        let (net, mut sim) = net();
        let log_at_1 = collect_arrivals(&net, 1, 0);
        let log_at_0 = collect_arrivals(&net, 0, 0);
        net.send(
            &mut sim,
            Message {
                src: 0,
                dst: 1,
                rail: 0,
                tag: 1,
                size: 4,
                data: None,
            },
        );
        net.send(
            &mut sim,
            Message {
                src: 1,
                dst: 0,
                rail: 0,
                tag: 2,
                size: 4,
                data: None,
            },
        );
        sim.run();
        assert_eq!(log_at_1.borrow().len(), 1);
        assert_eq!(log_at_0.borrow().len(), 1);
        // Full duplex: both arrive at the same instant.
        assert_eq!(log_at_1.borrow()[0].0, log_at_0.borrow()[0].0);
    }

    #[test]
    #[should_panic(expected = "no rx handler")]
    fn delivery_without_handler_panics() {
        let (net, mut sim) = net();
        net.send(
            &mut sim,
            Message {
                src: 0,
                dst: 1,
                rail: 0,
                tag: 0,
                size: 4,
                data: None,
            },
        );
        sim.run();
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_send_panics() {
        let (net, mut sim) = net();
        net.send(
            &mut sim,
            Message {
                src: 0,
                dst: 0,
                rail: 0,
                tag: 0,
                size: 4,
                data: None,
            },
        );
    }
}
