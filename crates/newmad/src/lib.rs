//! NewMadeleine-style communication engine on the simulated network.
//!
//! NEWMADELEINE "aims at applying dynamic scheduling optimizations on
//! multiple communication flows such as reordering, aggregation, multirail
//! distribution" (paper §IV-B). This crate reproduces that engine on top of
//! [`piom_net`]:
//!
//! * **eager protocol** for small messages, with an optional *optimization
//!   layer* that packs several pending messages to the same destination
//!   into one NIC packet and spreads packets across rails (Fig. 1);
//! * **rendezvous protocol** for large messages, in two flavours:
//!   two-sided RTS/CTS/DATA (what NewMadeleine's progression engine
//!   drives in the background) and RDMA-read RTS/FIN (the
//!   MVAPICH/OpenMPI-class protocol of \[10\], where the receiver pulls the
//!   data and the sender only learns of completion from the FIN);
//! * **poll-driven progress**: incoming packets sit in the NIC receive
//!   queue until someone calls [`CommEngine::poll`]. *Who* polls and *when*
//!   is the whole subject of the paper — PIOMan polls from scheduler
//!   keypoints (idle cores), MPICH-class libraries poll only inside MPI
//!   calls. The engine takes no position; the `madmpi` crate wires both.
//!
//! Requests are [`ReqHandle`]s: completion is observable by flag or by
//! registered callback (used to notify simulated condition variables).

#![warn(missing_docs)]

use piom_des::{Sim, SimTime};
use piom_net::{Message, Network};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

pub mod filters;
pub mod wire;
use wire::{EagerPart, Wire};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Messages up to this size go eager; larger ones use rendezvous.
    pub eager_threshold: usize,
    /// Use the RDMA-read rendezvous (baseline MPI style) instead of the
    /// two-sided RTS/CTS/DATA rendezvous.
    pub rdma_rendezvous: bool,
    /// Enable the optimization layer: pack pending eager messages for the
    /// same destination into aggregate packets (Fig. 1).
    pub aggregation: bool,
    /// Maximum aggregate packet payload.
    pub max_packet: usize,
    /// Split rendezvous DATA across all rails (multirail distribution).
    pub multirail_data: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            eager_threshold: 16 * 1024,
            rdma_rendezvous: false,
            aggregation: true,
            max_packet: 64 * 1024,
            multirail_data: true,
        }
    }
}

impl EngineConfig {
    /// NewMadeleine-style configuration (two-sided rendezvous, aggregation,
    /// multirail).
    pub fn newmadeleine() -> Self {
        Self::default()
    }

    /// Baseline MPI-class configuration: RDMA-read rendezvous, no
    /// aggregation, single-rail data.
    pub fn baseline_mpi() -> Self {
        EngineConfig {
            eager_threshold: 16 * 1024,
            rdma_rendezvous: true,
            aggregation: false,
            max_packet: 64 * 1024,
            multirail_data: false,
        }
    }
}

/// Completion callback attached to a request.
type ReqCallback = Box<dyn FnOnce(&mut Sim)>;

/// Observable state of a send/recv request.
#[derive(Default)]
struct ReqState {
    complete: bool,
    completed_at: Option<SimTime>,
    callbacks: Vec<ReqCallback>,
}

/// Handle to an asynchronous operation (the `MPI_Request` analogue).
#[derive(Clone)]
pub struct ReqHandle {
    st: Rc<RefCell<ReqState>>,
}

impl ReqHandle {
    fn new() -> Self {
        ReqHandle {
            st: Rc::new(RefCell::new(ReqState::default())),
        }
    }

    /// Creates a detached handle completed by [`complete_public`]
    /// (building block for composite operations like filtered sends).
    ///
    /// [`complete_public`]: ReqHandle::complete_public
    pub fn new_public() -> Self {
        Self::new()
    }

    /// Completes a handle created with [`ReqHandle::new_public`].
    pub fn complete_public(&self, sim: &mut Sim) {
        self.complete(sim);
    }

    /// `true` once the operation finished.
    pub fn is_complete(&self) -> bool {
        self.st.borrow().complete
    }

    /// Simulated completion instant, if complete.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.st.borrow().completed_at
    }

    /// Registers a callback run at completion (immediately if already done).
    pub fn on_complete<F: FnOnce(&mut Sim) + 'static>(&self, sim: &mut Sim, f: F) {
        let already = self.st.borrow().complete;
        if already {
            f(sim);
        } else {
            self.st.borrow_mut().callbacks.push(Box::new(f));
        }
    }

    fn complete(&self, sim: &mut Sim) {
        let cbs = {
            let mut st = self.st.borrow_mut();
            if st.complete {
                return;
            }
            st.complete = true;
            st.completed_at = Some(sim.now());
            std::mem::take(&mut st.callbacks)
        };
        for cb in cbs {
            cb(sim);
        }
    }
}

struct PostedRecv {
    src: usize,
    app_tag: u64,
    req: ReqHandle,
}

struct PendingEager {
    dst: usize,
    app_tag: u64,
    size: usize,
}

enum SendRndv {
    /// Two-sided: waiting for the CTS.
    AwaitCts { dst: usize, size: usize },
    /// RDMA-read: waiting for the FIN.
    AwaitFin,
}

struct RecvRndv {
    req: ReqHandle,
    chunks_left: u32,
}

/// Unexpected-message record (arrived before a matching recv was posted).
enum Unexpected {
    Eager {
        src: usize,
        app_tag: u64,
    },
    Rts {
        src: usize,
        app_tag: u64,
        sender_req: u32,
        size: u64,
        rdma: bool,
    },
}

/// Aggregate engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Wire packets submitted to NICs.
    pub packets_sent: u64,
    /// Eager messages carried inside aggregates.
    pub aggregated_messages: u64,
    /// Aggregate packets among `packets_sent`.
    pub aggregate_packets: u64,
    /// Rendezvous transfers started as sender.
    pub rendezvous_started: u64,
    /// Packets processed by [`CommEngine::poll`].
    pub packets_processed: u64,
    /// Poll invocations that found nothing to do.
    pub empty_polls: u64,
}

struct Eng {
    node: usize,
    net: Rc<Network>,
    cfg: EngineConfig,
    /// Arrived, waiting for a poll to be processed (the NIC rx queue).
    rx_pending: VecDeque<Message>,
    posted: Vec<PostedRecv>,
    unexpected: Vec<Unexpected>,
    /// Eager messages waiting in the optimization layer's per-dst pools.
    send_pool: Vec<PendingEager>,
    next_req: u32,
    send_rndv: HashMap<u32, (ReqHandle, SendRndv)>,
    recv_rndv: HashMap<(usize, u32), RecvRndv>,
    next_rail: usize,
    stats: EngineStats,
}

/// One node's communication engine.
#[derive(Clone)]
pub struct CommEngine {
    eng: Rc<RefCell<Eng>>,
}

impl CommEngine {
    /// Creates the engine for `node` and installs its NIC receive handlers
    /// (arrivals are buffered until [`poll`](Self::poll)).
    pub fn new(node: usize, net: Rc<Network>, cfg: EngineConfig) -> Self {
        let engine = CommEngine {
            eng: Rc::new(RefCell::new(Eng {
                node,
                net: net.clone(),
                cfg,
                rx_pending: VecDeque::new(),
                posted: Vec::new(),
                unexpected: Vec::new(),
                send_pool: Vec::new(),
                next_req: 1,
                send_rndv: HashMap::new(),
                recv_rndv: HashMap::new(),
                next_rail: 0,
                stats: EngineStats::default(),
            })),
        };
        for rail in 0..net.n_rails() {
            let eng = engine.eng.clone();
            net.nic(node, rail)
                .set_rx_handler(Rc::new(move |_sim, msg| {
                    eng.borrow_mut().rx_pending.push_back(msg);
                }));
        }
        engine
    }

    /// This engine's node id.
    pub fn node(&self) -> usize {
        self.eng.borrow().node
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        self.eng.borrow().stats
    }

    /// Arrived-but-unprocessed packet count (what polling would find).
    pub fn rx_backlog(&self) -> usize {
        self.eng.borrow().rx_pending.len()
    }

    /// Non-blocking send of `size` bytes tagged `app_tag` to `dst`.
    ///
    /// Small messages go through the eager path (and the aggregation pool
    /// when enabled); large ones start a rendezvous. The returned handle
    /// completes when the payload has left this node (eager / two-sided) or
    /// when the receiver's FIN is processed (RDMA-read rendezvous).
    pub fn isend(&self, sim: &mut Sim, dst: usize, app_tag: u64, size: usize) -> ReqHandle {
        let eager = size <= self.eng.borrow().cfg.eager_threshold;
        if eager {
            let req = ReqHandle::new();
            {
                let mut e = self.eng.borrow_mut();
                e.send_pool.push(PendingEager { dst, app_tag, size });
            }
            // Submission flushes immediately; poll() also flushes, which is
            // what batches flows when the NIC is saturated.
            self.flush_sends(sim);
            // Eager sends complete at submission (buffered semantics).
            req.complete(sim);
            req
        } else {
            let req = ReqHandle::new();
            let (rts, rail) = {
                let mut e = self.eng.borrow_mut();
                let id = e.next_req;
                e.next_req += 1;
                e.stats.rendezvous_started += 1;
                let rdma = e.cfg.rdma_rendezvous;
                let state = if rdma {
                    SendRndv::AwaitFin
                } else {
                    SendRndv::AwaitCts { dst, size }
                };
                e.send_rndv.insert(id, (req.clone(), state));
                let rail = e.pick_rail();
                (
                    Wire::Rts {
                        req: id,
                        app_tag,
                        size: size as u64,
                        rdma,
                    },
                    rail,
                )
            };
            self.send_wire(sim, dst, rail, rts, 0);
            req
        }
    }

    /// Non-blocking receive matching `(src, app_tag)`.
    pub fn irecv(&self, sim: &mut Sim, src: usize, app_tag: u64) -> ReqHandle {
        let req = ReqHandle::new();
        // Check the unexpected queue first.
        let hit = {
            let mut e = self.eng.borrow_mut();
            let pos = e.unexpected.iter().position(|u| match u {
                Unexpected::Eager { src: s, app_tag: t } => *s == src && *t == app_tag,
                Unexpected::Rts {
                    src: s, app_tag: t, ..
                } => *s == src && *t == app_tag,
            });
            pos.map(|i| e.unexpected.remove(i))
        };
        match hit {
            Some(Unexpected::Eager { .. }) => req.complete(sim),
            Some(Unexpected::Rts {
                src,
                sender_req,
                size,
                rdma,
                ..
            }) => self.accept_rts(sim, src, sender_req, size, rdma, req.clone()),
            None => self.eng.borrow_mut().posted.push(PostedRecv {
                src,
                app_tag,
                req: req.clone(),
            }),
        }
        req
    }

    /// Makes progress: processes every packet in the NIC receive queues and
    /// flushes the send pools. Returns `true` if any packet was processed.
    ///
    /// This is the entry point a PIOMan polling task (or an MPI wait loop)
    /// calls repeatedly.
    pub fn poll(&self, sim: &mut Sim) -> bool {
        let mut did = false;
        loop {
            let msg = self.eng.borrow_mut().rx_pending.pop_front();
            let Some(msg) = msg else { break };
            did = true;
            self.eng.borrow_mut().stats.packets_processed += 1;
            self.process(sim, msg);
        }
        self.flush_sends(sim);
        if !did {
            self.eng.borrow_mut().stats.empty_polls += 1;
        }
        did
    }

    fn process(&self, sim: &mut Sim, msg: Message) {
        let Some(wire) = msg.data.clone().and_then(Wire::decode) else {
            panic!("undecodable packet from node {}", msg.src);
        };
        match wire {
            Wire::Eager { app_tag, .. } => {
                self.deliver_eager(sim, msg.src, app_tag);
            }
            Wire::EagerAggregate { parts } => {
                for p in parts {
                    self.deliver_eager(sim, msg.src, p.app_tag);
                }
            }
            Wire::Rts {
                req,
                app_tag,
                size,
                rdma,
            } => {
                let posted = {
                    let mut e = self.eng.borrow_mut();
                    let pos = e
                        .posted
                        .iter()
                        .position(|r| r.src == msg.src && r.app_tag == app_tag);
                    pos.map(|i| e.posted.remove(i))
                };
                match posted {
                    Some(r) => self.accept_rts(sim, msg.src, req, size, rdma, r.req),
                    None => self.eng.borrow_mut().unexpected.push(Unexpected::Rts {
                        src: msg.src,
                        app_tag,
                        sender_req: req,
                        size,
                        rdma,
                    }),
                }
            }
            Wire::Cts { req } => {
                let entry = self.eng.borrow_mut().send_rndv.remove(&req);
                let Some((handle, SendRndv::AwaitCts { dst, size })) = entry else {
                    panic!("CTS for unknown/incompatible request {req}");
                };
                self.send_rndv_data(sim, dst, req, size, handle);
            }
            Wire::Data { req, chunk: _, of } => {
                let done = {
                    let mut e = self.eng.borrow_mut();
                    let key = (msg.src, req);
                    let st = e
                        .recv_rndv
                        .get_mut(&key)
                        .unwrap_or_else(|| panic!("DATA for unknown rendezvous {key:?}"));
                    debug_assert!(st.chunks_left <= of);
                    st.chunks_left -= 1;
                    if st.chunks_left == 0 {
                        Some(e.recv_rndv.remove(&key).expect("present").req)
                    } else {
                        None
                    }
                };
                if let Some(req) = done {
                    req.complete(sim);
                }
            }
            Wire::Fin { req } => {
                let entry = self.eng.borrow_mut().send_rndv.remove(&req);
                let Some((handle, SendRndv::AwaitFin)) = entry else {
                    panic!("FIN for unknown/incompatible request {req}");
                };
                handle.complete(sim);
            }
        }
    }

    fn deliver_eager(&self, sim: &mut Sim, src: usize, app_tag: u64) {
        let posted = {
            let mut e = self.eng.borrow_mut();
            let pos = e
                .posted
                .iter()
                .position(|r| r.src == src && r.app_tag == app_tag);
            pos.map(|i| e.posted.remove(i))
        };
        match posted {
            Some(r) => r.req.complete(sim),
            None => self
                .eng
                .borrow_mut()
                .unexpected
                .push(Unexpected::Eager { src, app_tag }),
        }
    }

    /// Receiver side of an RTS: reply CTS (two-sided) or pull via RDMA.
    fn accept_rts(
        &self,
        sim: &mut Sim,
        src: usize,
        sender_req: u32,
        size: u64,
        rdma: bool,
        recv_req: ReqHandle,
    ) {
        if rdma {
            // RDMA-read rendezvous: the receiver pulls the payload; no
            // sender CPU involved. FIN tells the sender it may reuse the
            // buffer.
            let (net, node, rail) = {
                let mut e = self.eng.borrow_mut();
                let rail = e.pick_rail();
                (e.net.clone(), e.node, rail)
            };
            let this = self.clone();
            net.rdma_read(sim, node, src, rail, size as usize, move |sim| {
                recv_req.complete(sim);
                this.send_wire(sim, src, rail, Wire::Fin { req: sender_req }, 0);
            });
        } else {
            let rail = {
                let mut e = self.eng.borrow_mut();
                let chunks = if e.cfg.multirail_data {
                    e.net.n_rails() as u32
                } else {
                    1
                };
                e.recv_rndv.insert(
                    (src, sender_req),
                    RecvRndv {
                        req: recv_req,
                        chunks_left: chunks,
                    },
                );
                e.pick_rail()
            };
            self.send_wire(sim, src, rail, Wire::Cts { req: sender_req }, 0);
        }
    }

    /// Sender side after CTS: stream the payload, multirail if configured.
    fn send_rndv_data(&self, sim: &mut Sim, dst: usize, req: u32, size: usize, handle: ReqHandle) {
        let (n_rails, multirail, net) = {
            let e = self.eng.borrow();
            (e.net.n_rails(), e.cfg.multirail_data, e.net.clone())
        };
        let chunks = if multirail { n_rails } else { 1 };
        let chunk_size = size.div_ceil(chunks);
        for c in 0..chunks {
            let this_size = chunk_size.min(size - c * chunk_size);
            self.send_wire_sized(
                sim,
                dst,
                c % n_rails,
                Wire::Data {
                    req,
                    chunk: c as u32,
                    of: chunks as u32,
                },
                this_size,
            );
        }
        // The sender's buffer is free once the NIC engines have streamed
        // everything out; completion when the last rail's engine drains.
        let done_at = (0..chunks)
            .map(|c| net.nic(self.node(), c % n_rails).busy_until())
            .max()
            .expect("at least one chunk");
        let delay = done_at.saturating_sub(sim.now());
        sim.schedule(delay, move |sim| handle.complete(sim));
    }

    /// `true` if some rail's send engine is idle right now.
    fn any_rail_idle(&self, sim: &Sim) -> bool {
        let e = self.eng.borrow();
        (0..e.net.n_rails()).any(|r| e.net.nic(e.node, r).busy_until() <= sim.now())
    }

    /// Flushes the aggregation pools: per destination, pack everything
    /// pending into as few packets as possible (or send singletons when
    /// aggregation is off), spreading packets across rails.
    ///
    /// Packing happens "when a NIC becomes idle" (paper §IV-B): while every
    /// rail is busy, submissions accumulate in the pool — that queueing is
    /// precisely the aggregation opportunity of Fig. 1. The pool drains at
    /// the next poll once an engine frees up.
    fn flush_sends(&self, sim: &mut Sim) {
        loop {
            if !self.any_rail_idle(sim) {
                break; // collect layer keeps pooling until a NIC frees up
            }
            // Take one destination's pool per iteration.
            let batch: Vec<PendingEager> = {
                let mut e = self.eng.borrow_mut();
                let Some(first_dst) = e.send_pool.first().map(|p| p.dst) else {
                    break;
                };
                let mut batch = Vec::new();
                let mut i = 0;
                while i < e.send_pool.len() {
                    if e.send_pool[i].dst == first_dst {
                        batch.push(e.send_pool.remove(i));
                    } else {
                        i += 1;
                    }
                }
                batch
            };
            let dst = batch[0].dst;
            let aggregate = self.eng.borrow().cfg.aggregation;
            if !aggregate || batch.len() == 1 {
                for p in batch {
                    let rail = self.eng.borrow_mut().pick_rail();
                    self.send_wire_sized(
                        sim,
                        dst,
                        rail,
                        Wire::Eager {
                            app_tag: p.app_tag,
                            size: p.size as u32,
                        },
                        p.size,
                    );
                }
            } else {
                // Pack greedily up to max_packet per wire packet.
                let max = self.eng.borrow().cfg.max_packet;
                let mut parts: Vec<EagerPart> = Vec::new();
                let mut bytes = 0usize;
                let emit = |parts: &mut Vec<EagerPart>, bytes: &mut usize, sim: &mut Sim| {
                    if parts.is_empty() {
                        return;
                    }
                    let (rail, n) = {
                        let mut e = self.eng.borrow_mut();
                        e.stats.aggregate_packets += 1;
                        e.stats.aggregated_messages += parts.len() as u64;
                        (e.pick_rail(), parts.len())
                    };
                    let _ = n;
                    self.send_wire_sized(
                        sim,
                        dst,
                        rail,
                        Wire::EagerAggregate {
                            parts: std::mem::take(parts),
                        },
                        *bytes,
                    );
                    *bytes = 0;
                };
                for p in batch {
                    if bytes + p.size > max && !parts.is_empty() {
                        emit(&mut parts, &mut bytes, sim);
                    }
                    parts.push(EagerPart {
                        app_tag: p.app_tag,
                        size: p.size as u32,
                    });
                    bytes += p.size;
                }
                emit(&mut parts, &mut bytes, sim);
            }
        }
    }

    /// Sends a pure control packet (payload folded into the header size).
    fn send_wire(&self, sim: &mut Sim, dst: usize, rail: usize, wire: Wire, extra: usize) {
        self.send_wire_sized(sim, dst, rail, wire, extra);
    }

    fn send_wire_sized(&self, sim: &mut Sim, dst: usize, rail: usize, wire: Wire, payload: usize) {
        let (net, node) = {
            let mut e = self.eng.borrow_mut();
            e.stats.packets_sent += 1;
            (e.net.clone(), e.node)
        };
        let data = wire.encode();
        let size = payload + data.len();
        net.send(
            sim,
            Message {
                src: node,
                dst,
                rail,
                tag: 0,
                size,
                data: Some(data),
            },
        );
    }
}

impl Eng {
    fn pick_rail(&mut self) -> usize {
        let r = self.next_rail;
        self.next_rail = (self.next_rail + 1) % self.net.n_rails();
        r
    }
}

#[cfg(test)]
mod tests;

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use piom_net::NetParams;

    pub(crate) fn pair_with_params(
        cfg: EngineConfig,
        params: NetParams,
    ) -> (Rc<Network>, CommEngine, CommEngine, Sim) {
        let net = Network::new(2, 2, params);
        let a = CommEngine::new(0, net.clone(), cfg.clone());
        let b = CommEngine::new(1, net.clone(), cfg);
        (net, a, b, Sim::new())
    }
}
