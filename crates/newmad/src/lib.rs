//! NewMadeleine-style communication engine on the simulated network.
//!
//! NEWMADELEINE "aims at applying dynamic scheduling optimizations on
//! multiple communication flows such as reordering, aggregation, multirail
//! distribution" (paper §IV-B). This crate reproduces that engine on top of
//! [`piom_net`]:
//!
//! * **eager protocol** for small messages, with an optional *optimization
//!   layer* that packs several pending messages to the same destination
//!   into one NIC packet and spreads packets across rails (Fig. 1);
//! * **rendezvous protocol** for large messages, in two flavours:
//!   two-sided RTS/CTS/DATA (what NewMadeleine's progression engine
//!   drives in the background) and RDMA-read RTS/FIN (the
//!   MVAPICH/OpenMPI-class protocol of \[10\], where the receiver pulls the
//!   data and the sender only learns of completion from the FIN);
//! * **poll-driven progress**: incoming packets sit in the NIC receive
//!   queue until someone calls [`CommEngine::poll`]. *Who* polls and *when*
//!   is the whole subject of the paper — PIOMan polls from scheduler
//!   keypoints (idle cores), MPICH-class libraries poll only inside MPI
//!   calls. The engine takes no position; the `madmpi` crate wires both.
//!
//! Requests are [`ReqHandle`]s: completion is observable by flag or by
//! registered callback (used to notify simulated condition variables).
//!
//! # Zero-copy data path
//!
//! Payloads attached via [`CommEngine::isend_bytes`] travel as shared
//! [`Bytes`] segments chained into a [`Rope`] — never memcpy'd by the
//! engine:
//!
//! * eager frames chain `header + payload` segments;
//! * aggregates chain one segment per packed message (no flattening);
//! * rendezvous chunks are [`Bytes::slice`] windows over the source
//!   buffer; the receiver reassembles them by chaining the arrived chunk
//!   ropes back together in offset order.
//!
//! [`EngineStats::payload_bytes_copied`] counts every payload byte the
//! engine copies; the default configuration keeps it at **zero** (the
//! regression tests in `tests/zero_copy.rs` pin this), and the
//! [`EngineConfig::copy_on_pack`] ablation switch re-enables the old
//! flatten-on-pack behaviour so the counter is demonstrably live.
//!
//! # Pipelined progression
//!
//! The optimization layer no longer stops-and-waits on "some rail idle":
//! each destination has a bounded in-flight window
//! ([`EngineConfig::pipeline_window`]) of eager packets submitted to the
//! NICs; while the window is full, submissions pool (that queueing *is*
//! the aggregation opportunity of Fig. 1), and a drain callback scheduled
//! at the NIC's exact [`piom_net::Network::rail_eta`] re-flushes the pool
//! the moment a slot frees — pack(n+1) overlaps send(n) without waiting
//! for the next poll. Large rendezvous payloads stream as
//! [`EngineConfig::rndv_chunk`]-sized DATA chunks planned by
//! [`rails::stripe_plan`], so CTS→data streaming overlaps packing and
//! spreads across rails.
//!
//! [`Bytes`]: bytes::Bytes
//! [`Rope`]: bytes::Rope
//! [`Bytes::slice`]: bytes::Bytes::slice

#![warn(missing_docs)]

use bytes::{Buf, Bytes, BytesMut, Rope};
use piom_des::{Sim, SimTime};
use piom_net::{Message, Network};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

pub mod filters;
pub mod rails;
pub mod wire;
use wire::{EagerPart, Wire};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Messages up to this size go eager; larger ones use rendezvous.
    pub eager_threshold: usize,
    /// Use the RDMA-read rendezvous (baseline MPI style) instead of the
    /// two-sided RTS/CTS/DATA rendezvous.
    pub rdma_rendezvous: bool,
    /// Enable the optimization layer: pack pending eager messages for the
    /// same destination into aggregate packets (Fig. 1).
    pub aggregation: bool,
    /// Maximum aggregate packet payload.
    pub max_packet: usize,
    /// Split rendezvous DATA across all rails (multirail distribution).
    pub multirail_data: bool,
    /// Eager packets allowed in flight per destination before the
    /// optimization layer holds further packing. `1` is stop-and-wait
    /// (the MPICH-class baseline); larger windows let pack(n+1) overlap
    /// send(n) and keep several rails streaming.
    pub pipeline_window: usize,
    /// Rendezvous payloads stream as DATA chunks of at most this size, so
    /// the first chunk hits the wire while later ones are still being
    /// sliced and a striped transfer interleaves across rails.
    pub rndv_chunk: usize,
    /// Rendezvous payloads at or above this size are striped across rails
    /// by [`rails::stripe_plan`]; smaller ones stay on one (least-loaded)
    /// rail. See [`rails::stripe_crossover`] for the math behind the
    /// default.
    pub stripe_threshold: usize,
    /// Ablation: flatten aggregate payloads with memcpy (the pre-zero-copy
    /// behaviour) instead of chaining shared segments. Every copied byte
    /// lands in [`EngineStats::payload_bytes_copied`], which is how the
    /// zero-copy regression tests prove the counter is live.
    pub copy_on_pack: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            eager_threshold: 16 * 1024,
            rdma_rendezvous: false,
            aggregation: true,
            max_packet: 64 * 1024,
            multirail_data: true,
            pipeline_window: 2,
            rndv_chunk: 256 * 1024,
            stripe_threshold: 32 * 1024,
            copy_on_pack: false,
        }
    }
}

impl EngineConfig {
    /// NewMadeleine-style configuration (two-sided rendezvous, aggregation,
    /// multirail, pipelined window).
    pub fn newmadeleine() -> Self {
        Self::default()
    }

    /// Baseline MPI-class configuration: RDMA-read rendezvous, no
    /// aggregation, single-rail data, stop-and-wait submission.
    pub fn baseline_mpi() -> Self {
        EngineConfig {
            eager_threshold: 16 * 1024,
            rdma_rendezvous: true,
            aggregation: false,
            max_packet: 64 * 1024,
            multirail_data: false,
            pipeline_window: 1,
            rndv_chunk: usize::MAX,
            stripe_threshold: 32 * 1024,
            copy_on_pack: false,
        }
    }
}

/// Completion callback attached to a request.
type ReqCallback = Box<dyn FnOnce(&mut Sim)>;

/// Observable state of a send/recv request.
#[derive(Default)]
struct ReqState {
    complete: bool,
    completed_at: Option<SimTime>,
    callbacks: Vec<ReqCallback>,
    payload: Option<Rope>,
}

/// Handle to an asynchronous operation (the `MPI_Request` analogue).
#[derive(Clone)]
pub struct ReqHandle {
    st: Rc<RefCell<ReqState>>,
}

impl ReqHandle {
    fn new() -> Self {
        ReqHandle {
            st: Rc::new(RefCell::new(ReqState::default())),
        }
    }

    /// Creates a detached handle completed by [`complete_public`]
    /// (building block for composite operations like filtered sends).
    ///
    /// [`complete_public`]: ReqHandle::complete_public
    pub fn new_public() -> Self {
        Self::new()
    }

    /// Completes a handle created with [`ReqHandle::new_public`].
    pub fn complete_public(&self, sim: &mut Sim) {
        self.complete(sim);
    }

    /// `true` once the operation finished.
    pub fn is_complete(&self) -> bool {
        self.st.borrow().complete
    }

    /// Simulated completion instant, if complete.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.st.borrow().completed_at
    }

    /// Received payload bytes, if the peer attached any (set on receive
    /// requests at completion; shares the sender's buffers — zero-copy).
    pub fn payload(&self) -> Option<Rope> {
        self.st.borrow().payload.clone()
    }

    fn set_payload(&self, payload: Rope) {
        self.st.borrow_mut().payload = Some(payload);
    }

    /// Registers a callback run at completion (immediately if already done).
    pub fn on_complete<F: FnOnce(&mut Sim) + 'static>(&self, sim: &mut Sim, f: F) {
        let already = self.st.borrow().complete;
        if already {
            f(sim);
        } else {
            self.st.borrow_mut().callbacks.push(Box::new(f));
        }
    }

    fn complete(&self, sim: &mut Sim) {
        let cbs = {
            let mut st = self.st.borrow_mut();
            if st.complete {
                return;
            }
            st.complete = true;
            st.completed_at = Some(sim.now());
            std::mem::take(&mut st.callbacks)
        };
        for cb in cbs {
            cb(sim);
        }
    }
}

struct PostedRecv {
    src: usize,
    app_tag: u64,
    req: ReqHandle,
}

struct PendingEager {
    dst: usize,
    app_tag: u64,
    size: usize,
    /// Real payload (zero-copy reference), when the caller attached one.
    data: Option<Bytes>,
}

enum SendRndv {
    /// Two-sided: waiting for the CTS.
    AwaitCts {
        dst: usize,
        size: usize,
        data: Option<Bytes>,
    },
    /// RDMA-read: waiting for the FIN.
    AwaitFin,
}

/// The fields of a decoded RTS that drive the receiver's accept path.
struct RtsFrame {
    sender_req: u32,
    size: u64,
    rdma: bool,
}

struct RecvRndv {
    req: ReqHandle,
    /// Full payload size announced by the RTS.
    expected: u64,
    /// Chunk count, learned from the first DATA header (`of`); the sender
    /// decides the chunking, so the receiver must not guess it.
    total: Option<u32>,
    /// Arrived chunks, any order: `(index, payload)`.
    chunks: Vec<(u32, Rope)>,
}

/// Unexpected-message record (arrived before a matching recv was posted).
enum Unexpected {
    Eager {
        src: usize,
        app_tag: u64,
        payload: Rope,
    },
    Rts {
        src: usize,
        app_tag: u64,
        sender_req: u32,
        size: u64,
        rdma: bool,
        /// RDMA flavour: the exposed source buffer the receiver will pull.
        payload: Rope,
    },
}

/// Aggregate engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Wire packets submitted to NICs.
    pub packets_sent: u64,
    /// Eager messages carried inside aggregates.
    pub aggregated_messages: u64,
    /// Aggregate packets among `packets_sent`.
    pub aggregate_packets: u64,
    /// Rendezvous transfers started as sender.
    pub rendezvous_started: u64,
    /// Packets processed by [`CommEngine::poll`].
    pub packets_processed: u64,
    /// Poll invocations that found nothing to do.
    pub empty_polls: u64,
    /// Payload bytes the engine copied (0 on the zero-copy paths; only
    /// the [`EngineConfig::copy_on_pack`] ablation raises it).
    pub payload_bytes_copied: u64,
    /// Packets dropped because the wire header did not parse. A corrupt
    /// packet degrades the link, it must not kill the process.
    pub undecodable_packets: u64,
    /// Well-formed control packets dropped as stale: CTS/FIN for unknown
    /// or already-resolved requests, DATA for unknown transfers,
    /// duplicate or out-of-range DATA chunks.
    pub stale_control_packets: u64,
    /// Times the flush loop held packing because every pooled
    /// destination's in-flight window was full (the pooling that creates
    /// aggregation opportunities).
    pub pipeline_stalls: u64,
    /// Rendezvous DATA chunks streamed as sender.
    pub data_chunks_sent: u64,
}

struct Eng {
    node: usize,
    net: Rc<Network>,
    cfg: EngineConfig,
    /// Arrived, waiting for a poll to be processed (the NIC rx queue).
    rx_pending: VecDeque<Message>,
    posted: Vec<PostedRecv>,
    unexpected: Vec<Unexpected>,
    /// Eager messages waiting in the optimization layer's per-dst pools.
    send_pool: Vec<PendingEager>,
    /// Eager/aggregate packets currently in flight per destination
    /// (bounded by `cfg.pipeline_window`).
    inflight: HashMap<usize, usize>,
    next_req: u32,
    send_rndv: HashMap<u32, (ReqHandle, SendRndv)>,
    recv_rndv: HashMap<(usize, u32), RecvRndv>,
    stats: EngineStats,
}

/// One node's communication engine.
#[derive(Clone)]
pub struct CommEngine {
    eng: Rc<RefCell<Eng>>,
}

impl CommEngine {
    /// Creates the engine for `node` and installs its NIC receive handlers
    /// (arrivals are buffered until [`poll`](Self::poll)).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.pipeline_window == 0` (nothing could ever transmit).
    pub fn new(node: usize, net: Rc<Network>, cfg: EngineConfig) -> Self {
        assert!(cfg.pipeline_window > 0, "pipeline_window must be >= 1");
        let engine = CommEngine {
            eng: Rc::new(RefCell::new(Eng {
                node,
                net: net.clone(),
                cfg,
                rx_pending: VecDeque::new(),
                posted: Vec::new(),
                unexpected: Vec::new(),
                send_pool: Vec::new(),
                inflight: HashMap::new(),
                next_req: 1,
                send_rndv: HashMap::new(),
                recv_rndv: HashMap::new(),
                stats: EngineStats::default(),
            })),
        };
        for rail in 0..net.n_rails() {
            let eng = engine.eng.clone();
            net.nic(node, rail)
                .set_rx_handler(Rc::new(move |_sim, msg| {
                    eng.borrow_mut().rx_pending.push_back(msg);
                }));
        }
        engine
    }

    /// This engine's node id.
    pub fn node(&self) -> usize {
        self.eng.borrow().node
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        self.eng.borrow().stats
    }

    /// Arrived-but-unprocessed packet count (what polling would find).
    pub fn rx_backlog(&self) -> usize {
        self.eng.borrow().rx_pending.len()
    }

    /// Non-blocking send of `size` bytes tagged `app_tag` to `dst`.
    ///
    /// Small messages go through the eager path (and the aggregation pool
    /// when enabled); large ones start a rendezvous. The returned handle
    /// completes when the payload has left this node (eager / two-sided) or
    /// when the receiver's FIN is processed (RDMA-read rendezvous).
    pub fn isend(&self, sim: &mut Sim, dst: usize, app_tag: u64, size: usize) -> ReqHandle {
        self.isend_inner(sim, dst, app_tag, size, None)
    }

    /// Like [`isend`](Self::isend), but carries real payload bytes
    /// end-to-end: the receiver's handle exposes them via
    /// [`ReqHandle::payload`]. The engine only ever slices and chains the
    /// buffer — zero-copy on every path (eager, aggregated, rendezvous,
    /// striped).
    pub fn isend_bytes(&self, sim: &mut Sim, dst: usize, app_tag: u64, data: Bytes) -> ReqHandle {
        let size = data.len();
        self.isend_inner(sim, dst, app_tag, size, Some(data))
    }

    fn isend_inner(
        &self,
        sim: &mut Sim,
        dst: usize,
        app_tag: u64,
        size: usize,
        data: Option<Bytes>,
    ) -> ReqHandle {
        let eager = size <= self.eng.borrow().cfg.eager_threshold;
        if eager {
            let req = ReqHandle::new();
            {
                let mut e = self.eng.borrow_mut();
                e.send_pool.push(PendingEager {
                    dst,
                    app_tag,
                    size,
                    data,
                });
            }
            // Submission flushes immediately; poll() and window-drain
            // callbacks also flush, which is what batches flows when the
            // NICs are saturated.
            self.flush_sends(sim);
            // Eager sends complete at submission (buffered semantics).
            req.complete(sim);
            req
        } else {
            let req = ReqHandle::new();
            let (rts, rail, rts_payload) = {
                let mut e = self.eng.borrow_mut();
                let id = e.next_req;
                e.next_req += 1;
                e.stats.rendezvous_started += 1;
                let rdma = e.cfg.rdma_rendezvous;
                // RDMA flavour: the RTS carries a reference to the exposed
                // source buffer (modelling memory registration — the
                // descriptor rides the control packet, the bytes move in
                // the simulated rdma_read); two-sided keeps the buffer
                // until CTS and streams it as DATA chunks.
                let (state, rts_payload) = if rdma {
                    (
                        SendRndv::AwaitFin,
                        data.clone().map(Rope::from).unwrap_or_default(),
                    )
                } else {
                    (SendRndv::AwaitCts { dst, size, data }, Rope::new())
                };
                e.send_rndv.insert(id, (req.clone(), state));
                let rail = rails::pick_rail(&e.net, sim.now(), e.node);
                (
                    Wire::Rts {
                        req: id,
                        app_tag,
                        size: size as u64,
                        rdma,
                    },
                    rail,
                    rts_payload,
                )
            };
            self.send_frame(sim, dst, rail, rts, 0, rts_payload);
            req
        }
    }

    /// Non-blocking receive matching `(src, app_tag)`.
    pub fn irecv(&self, sim: &mut Sim, src: usize, app_tag: u64) -> ReqHandle {
        let req = ReqHandle::new();
        // Check the unexpected queue first.
        let hit = {
            let mut e = self.eng.borrow_mut();
            let pos = e.unexpected.iter().position(|u| match u {
                Unexpected::Eager {
                    src: s, app_tag: t, ..
                } => *s == src && *t == app_tag,
                Unexpected::Rts {
                    src: s, app_tag: t, ..
                } => *s == src && *t == app_tag,
            });
            pos.map(|i| e.unexpected.remove(i))
        };
        match hit {
            Some(Unexpected::Eager { payload, .. }) => {
                if !payload.is_empty() {
                    req.set_payload(payload);
                }
                req.complete(sim);
            }
            Some(Unexpected::Rts {
                src,
                sender_req,
                size,
                rdma,
                payload,
                ..
            }) => self.accept_rts(
                sim,
                src,
                RtsFrame {
                    sender_req,
                    size,
                    rdma,
                },
                req.clone(),
                payload,
            ),
            None => self.eng.borrow_mut().posted.push(PostedRecv {
                src,
                app_tag,
                req: req.clone(),
            }),
        }
        req
    }

    /// Makes progress: processes every packet in the NIC receive queues and
    /// flushes the send pools. Returns `true` if any packet was processed.
    ///
    /// This is the entry point a PIOMan polling task (or an MPI wait loop)
    /// calls repeatedly.
    pub fn poll(&self, sim: &mut Sim) -> bool {
        let mut did = false;
        loop {
            let msg = self.eng.borrow_mut().rx_pending.pop_front();
            let Some(msg) = msg else { break };
            did = true;
            self.eng.borrow_mut().stats.packets_processed += 1;
            self.process(sim, msg);
        }
        self.flush_sends(sim);
        if !did {
            self.eng.borrow_mut().stats.empty_polls += 1;
        }
        did
    }

    fn process(&self, sim: &mut Sim, msg: Message) {
        // The frame is a rope: header segment(s) up front, payload behind.
        // Decoding consumes exactly the header and leaves the payload in
        // place — no flattening, no copy.
        let mut frame = msg.data.unwrap_or_default();
        let Some(wire) = Wire::decode(&mut frame) else {
            // Satellite fix: a corrupt packet is a counted drop, not a
            // process abort.
            self.eng.borrow_mut().stats.undecodable_packets += 1;
            return;
        };
        match wire {
            Wire::Eager { app_tag, size } => {
                let payload = if frame.remaining() == size as usize {
                    frame
                } else {
                    Rope::new() // size-only simulation frame
                };
                self.deliver_eager(sim, msg.src, app_tag, payload);
            }
            Wire::EagerAggregate { parts } => {
                let total: usize = parts.iter().map(|p| p.size as usize).sum();
                let with_data = total > 0 && frame.remaining() == total;
                for p in parts {
                    let payload = if with_data {
                        frame.split_to(p.size as usize)
                    } else {
                        Rope::new()
                    };
                    self.deliver_eager(sim, msg.src, p.app_tag, payload);
                }
            }
            Wire::Rts {
                req,
                app_tag,
                size,
                rdma,
            } => {
                let posted = {
                    let mut e = self.eng.borrow_mut();
                    let pos = e
                        .posted
                        .iter()
                        .position(|r| r.src == msg.src && r.app_tag == app_tag);
                    pos.map(|i| e.posted.remove(i))
                };
                match posted {
                    Some(r) => self.accept_rts(
                        sim,
                        msg.src,
                        RtsFrame {
                            sender_req: req,
                            size,
                            rdma,
                        },
                        r.req,
                        frame,
                    ),
                    None => self.eng.borrow_mut().unexpected.push(Unexpected::Rts {
                        src: msg.src,
                        app_tag,
                        sender_req: req,
                        size,
                        rdma,
                        payload: frame,
                    }),
                }
            }
            Wire::Cts { req } => {
                // Check-then-remove: a stale or duplicate CTS must not
                // destroy live rendezvous state.
                let entry = {
                    let mut e = self.eng.borrow_mut();
                    match e.send_rndv.get(&req) {
                        Some((_, SendRndv::AwaitCts { .. })) => e.send_rndv.remove(&req),
                        _ => {
                            e.stats.stale_control_packets += 1;
                            None
                        }
                    }
                };
                if let Some((handle, SendRndv::AwaitCts { dst, size, data })) = entry {
                    self.send_rndv_data(sim, dst, req, size, data, handle);
                }
            }
            Wire::Data { req, chunk, of } => {
                let done = {
                    let mut e = self.eng.borrow_mut();
                    let key = (msg.src, req);
                    let stale = match e.recv_rndv.get(&key) {
                        None => true,
                        Some(st) => {
                            of == 0
                                || chunk >= of
                                || st.total.is_some_and(|t| t != of)
                                || st.chunks.iter().any(|(c, _)| *c == chunk)
                        }
                    };
                    if stale {
                        e.stats.stale_control_packets += 1;
                        None
                    } else {
                        let st = e.recv_rndv.get_mut(&key).expect("checked above");
                        st.total = Some(of);
                        st.chunks.push((chunk, frame));
                        if st.chunks.len() as u32 == of {
                            Some(e.recv_rndv.remove(&key).expect("present"))
                        } else {
                            None
                        }
                    }
                };
                if let Some(mut st) = done {
                    // Reassemble in offset order by chaining the chunk
                    // ropes — shared segments, no copy.
                    st.chunks.sort_by_key(|(c, _)| *c);
                    let mut payload = Rope::new();
                    for (_, part) in st.chunks {
                        payload.append(part);
                    }
                    if payload.len() as u64 == st.expected {
                        st.req.set_payload(payload);
                    }
                    st.req.complete(sim);
                }
            }
            Wire::Fin { req } => {
                let entry = {
                    let mut e = self.eng.borrow_mut();
                    match e.send_rndv.get(&req) {
                        Some((_, SendRndv::AwaitFin)) => e.send_rndv.remove(&req),
                        _ => {
                            e.stats.stale_control_packets += 1;
                            None
                        }
                    }
                };
                if let Some((handle, _)) = entry {
                    handle.complete(sim);
                }
            }
        }
    }

    fn deliver_eager(&self, sim: &mut Sim, src: usize, app_tag: u64, payload: Rope) {
        let posted = {
            let mut e = self.eng.borrow_mut();
            let pos = e
                .posted
                .iter()
                .position(|r| r.src == src && r.app_tag == app_tag);
            pos.map(|i| e.posted.remove(i))
        };
        match posted {
            Some(r) => {
                if !payload.is_empty() {
                    r.req.set_payload(payload);
                }
                r.req.complete(sim);
            }
            None => self.eng.borrow_mut().unexpected.push(Unexpected::Eager {
                src,
                app_tag,
                payload,
            }),
        }
    }

    /// Receiver side of an RTS: reply CTS (two-sided) or pull via RDMA.
    fn accept_rts(
        &self,
        sim: &mut Sim,
        src: usize,
        rts: RtsFrame,
        recv_req: ReqHandle,
        rts_payload: Rope,
    ) {
        let RtsFrame {
            sender_req,
            size,
            rdma,
        } = rts;
        if rdma {
            // RDMA-read rendezvous: the receiver pulls the payload; no
            // sender CPU involved. FIN tells the sender it may reuse the
            // buffer. The RTS carried a reference to the exposed buffer;
            // it becomes the received payload when the read lands.
            let (net, node, rail) = {
                let e = self.eng.borrow();
                let rail = rails::pick_rail(&e.net, sim.now(), e.node);
                (e.net.clone(), e.node, rail)
            };
            let this = self.clone();
            net.rdma_read(sim, node, src, rail, size as usize, move |sim| {
                if rts_payload.len() as u64 == size {
                    recv_req.set_payload(rts_payload);
                }
                recv_req.complete(sim);
                this.send_wire(sim, src, rail, Wire::Fin { req: sender_req });
            });
        } else {
            let rail = {
                let mut e = self.eng.borrow_mut();
                // The *sender* decides the chunking (stripe plan against
                // its local rail load); the receiver just counts chunks
                // against the `of` field of the DATA headers.
                e.recv_rndv.insert(
                    (src, sender_req),
                    RecvRndv {
                        req: recv_req,
                        expected: size,
                        total: None,
                        chunks: Vec::new(),
                    },
                );
                rails::pick_rail(&e.net, sim.now(), e.node)
            };
            self.send_wire(sim, src, rail, Wire::Cts { req: sender_req });
        }
    }

    /// Sender side after CTS: stream the payload as chunked DATA packets
    /// along the stripe plan (multirail + chunk pipelining).
    fn send_rndv_data(
        &self,
        sim: &mut Sim,
        dst: usize,
        req: u32,
        size: usize,
        data: Option<Bytes>,
        handle: ReqHandle,
    ) {
        let (plan, net, node) = {
            let e = self.eng.borrow();
            (
                rails::stripe_plan(&e.net, sim.now(), e.node, size, &e.cfg),
                e.net.clone(),
                e.node,
            )
        };
        let of = plan.len() as u32;
        for (i, c) in plan.iter().enumerate() {
            // Zero-copy: each chunk is a shared window over the source.
            let payload = match &data {
                Some(b) => Rope::from(b.slice(c.offset..c.offset + c.len)),
                None => Rope::new(),
            };
            self.eng.borrow_mut().stats.data_chunks_sent += 1;
            self.send_frame(
                sim,
                dst,
                c.rail,
                Wire::Data {
                    req,
                    chunk: i as u32,
                    of,
                },
                c.len,
                payload,
            );
        }
        // The sender's buffer is free once the NIC engines have streamed
        // everything out; rail_eta right after submission is the exact
        // drain instant of the last chunk on each used rail.
        let done_at = plan
            .iter()
            .map(|c| net.rail_eta(sim.now(), node, c.rail))
            .max()
            .expect("at least one chunk");
        sim.schedule_abs(done_at, move |sim| handle.complete(sim));
    }

    /// Flushes the aggregation pools under the per-destination pipeline
    /// window: each iteration emits one wire packet (singleton or greedy
    /// aggregate up to `max_packet`) for the first pooled destination with
    /// a free window slot. While every pooled destination's window is
    /// full, submissions keep pooling — that queueing is precisely the
    /// aggregation opportunity of Fig. 1 — and the drain callback armed at
    /// each packet's exact NIC drain time re-flushes the pool without
    /// waiting for the next poll (pack(n+1) overlaps send(n)).
    fn flush_sends(&self, sim: &mut Sim) {
        loop {
            let pick = {
                let e = self.eng.borrow();
                let w = e.cfg.pipeline_window;
                e.send_pool
                    .iter()
                    .map(|p| p.dst)
                    .find(|d| e.inflight.get(d).copied().unwrap_or(0) < w)
            };
            let Some(dst) = pick else {
                let mut e = self.eng.borrow_mut();
                if !e.send_pool.is_empty() {
                    e.stats.pipeline_stalls += 1;
                }
                break;
            };
            // Pop one packet's worth of messages for `dst`, in submission
            // order: a singleton when aggregation is off, else everything
            // that fits under max_packet. Data-carrying and size-only
            // messages never mix in one aggregate (the payload rope is
            // the concatenation of the parts, so part sizes must account
            // for every byte).
            let batch: Vec<PendingEager> = {
                let mut e = self.eng.borrow_mut();
                let aggregate = e.cfg.aggregation;
                let max = e.cfg.max_packet;
                let mut batch: Vec<PendingEager> = Vec::new();
                let mut bytes = 0usize;
                let mut i = 0;
                while i < e.send_pool.len() {
                    if e.send_pool[i].dst != dst {
                        i += 1;
                        continue;
                    }
                    if batch.is_empty() {
                        bytes = e.send_pool[i].size;
                        batch.push(e.send_pool.remove(i));
                        if !aggregate {
                            break;
                        }
                        continue;
                    }
                    let cand = &e.send_pool[i];
                    if cand.data.is_some() != batch[0].data.is_some() || bytes + cand.size > max {
                        break;
                    }
                    bytes += cand.size;
                    batch.push(e.send_pool.remove(i));
                }
                batch
            };
            debug_assert!(!batch.is_empty());
            self.emit_eager_packet(sim, dst, batch);
        }
    }

    /// Emits one eager wire packet for `batch` (singleton or aggregate),
    /// charges the destination's in-flight window, and arms the drain
    /// callback at the packet's exact NIC drain time.
    fn emit_eager_packet(&self, sim: &mut Sim, dst: usize, batch: Vec<PendingEager>) {
        let payload_len: usize = batch.iter().map(|p| p.size).sum();
        let (wire, payload) = {
            let mut e = self.eng.borrow_mut();
            let mut payload = Rope::new();
            if e.cfg.copy_on_pack {
                // Ablation: flatten into one fresh buffer (the old
                // behaviour). Counted, so tests can prove the zero-copy
                // counter is live.
                let mut flat = BytesMut::with_capacity(payload_len);
                for p in &batch {
                    if let Some(d) = &p.data {
                        flat.extend_from_slice(d);
                        e.stats.payload_bytes_copied += d.len() as u64;
                    }
                }
                if !flat.is_empty() {
                    payload.push(flat.freeze());
                }
            } else {
                // Zero-copy: chain the callers' buffers.
                for p in &batch {
                    if let Some(d) = &p.data {
                        payload.push(d.clone());
                    }
                }
            }
            let wire = if batch.len() == 1 {
                Wire::Eager {
                    app_tag: batch[0].app_tag,
                    size: batch[0].size as u32,
                }
            } else {
                e.stats.aggregate_packets += 1;
                e.stats.aggregated_messages += batch.len() as u64;
                Wire::EagerAggregate {
                    parts: batch
                        .iter()
                        .map(|p| EagerPart {
                            app_tag: p.app_tag,
                            size: p.size as u32,
                        })
                        .collect(),
                }
            };
            (wire, payload)
        };
        let rail = {
            let e = self.eng.borrow();
            rails::pick_rail(&e.net, sim.now(), e.node)
        };
        self.send_frame(sim, dst, rail, wire, payload_len, payload);
        let eta = {
            let mut e = self.eng.borrow_mut();
            *e.inflight.entry(dst).or_insert(0) += 1;
            e.net.rail_eta(sim.now(), e.node, rail)
        };
        let this = self.clone();
        sim.schedule_abs(eta, move |sim| {
            {
                let mut e = this.eng.borrow_mut();
                let slot = e.inflight.get_mut(&dst).expect("window tracked");
                *slot -= 1;
                if *slot == 0 {
                    e.inflight.remove(&dst);
                }
            }
            this.flush_sends(sim);
        });
    }

    /// Sends a pure control packet (header only, no payload bytes).
    fn send_wire(&self, sim: &mut Sim, dst: usize, rail: usize, wire: Wire) {
        self.send_frame(sim, dst, rail, wire, 0, Rope::new());
    }

    /// Submits one wire frame: header segment + payload rope, chained
    /// without copying. `payload_len` drives the simulated byte time (the
    /// rope may be empty in size-only experiments, or — for RDMA RTS —
    /// carry a buffer reference that does not ride the wire).
    fn send_frame(
        &self,
        sim: &mut Sim,
        dst: usize,
        rail: usize,
        wire: Wire,
        payload_len: usize,
        payload: Rope,
    ) {
        let (net, node) = {
            let mut e = self.eng.borrow_mut();
            e.stats.packets_sent += 1;
            (e.net.clone(), e.node)
        };
        let header = wire.encode();
        let size = payload_len + header.len();
        let mut frame = Rope::from(header);
        frame.append(payload);
        net.send(
            sim,
            Message {
                src: node,
                dst,
                rail,
                tag: 0,
                size,
                data: Some(frame),
            },
        );
    }
}

#[cfg(test)]
mod tests;

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use piom_net::NetParams;

    pub(crate) fn pair_with_params(
        cfg: EngineConfig,
        params: NetParams,
    ) -> (Rc<Network>, CommEngine, CommEngine, Sim) {
        let net = Network::new(2, 2, params);
        let a = CommEngine::new(0, net.clone(), cfg.clone());
        let b = CommEngine::new(1, net.clone(), cfg);
        (net, a, b, Sim::new())
    }
}
