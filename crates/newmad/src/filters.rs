//! Data-filter tasks (paper §IV-B, extension).
//!
//! "Idle cores could also be used to exploit efficiently slow networks or
//! grid configurations: tasks could be created to apply data filters such
//! as data compression, encryption or encoding/decoding."
//!
//! This module models exactly that trade: a [`Filter`] consumes CPU time
//! (on an idle core, via a PIOMan-style task) to change the payload size;
//! [`filtered_send_time`] predicts whether filtering pays off on a given
//! link, and [`send_filtered`] runs it in the simulation. The interesting
//! behaviour is the crossover: compression wins on a TCP-class link and
//! loses on InfiniBand, where the wire is faster than the compressor.

use crate::{CommEngine, ReqHandle};
use piom_des::{Sim, SimTime};
use piom_net::NetParams;

/// A streaming data transformation applied before transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Filter {
    /// Output size as a fraction of input size (0.4 = compresses to 40%).
    pub size_ratio: f64,
    /// CPU cost per input byte, picoseconds.
    pub cpu_per_byte_ps: u64,
    /// Fixed setup cost per message, ns.
    pub setup_ns: u64,
}

impl Filter {
    /// An LZ-class compressor: decent ratio, cheap.
    pub fn fast_compression() -> Self {
        Filter {
            size_ratio: 0.45,
            cpu_per_byte_ps: 550,
            setup_ns: 800,
        }
    }

    /// A stream cipher: size-preserving, moderate cost.
    pub fn encryption() -> Self {
        Filter {
            size_ratio: 1.0,
            cpu_per_byte_ps: 400,
            setup_ns: 500,
        }
    }

    /// A no-op filter (identity), useful as a baseline.
    pub fn identity() -> Self {
        Filter {
            size_ratio: 1.0,
            cpu_per_byte_ps: 0,
            setup_ns: 0,
        }
    }

    /// CPU time to filter `size` input bytes.
    pub fn cpu_time(&self, size: usize) -> SimTime {
        SimTime::from_ns(self.setup_ns + (size as u64 * self.cpu_per_byte_ps) / 1_000)
    }

    /// Output size for `size` input bytes (at least 1 byte for nonempty
    /// input — headers never vanish).
    pub fn output_size(&self, size: usize) -> usize {
        if size == 0 {
            return 0;
        }
        ((size as f64 * self.size_ratio).round() as usize).max(1)
    }
}

/// Predicted wire-plus-filter time for sending `size` bytes through
/// `filter` over a link with `params`, assuming the filter runs on an
/// otherwise idle core (so it serializes before the send, but steals no
/// application CPU).
pub fn filtered_send_time(filter: &Filter, size: usize, params: &NetParams) -> SimTime {
    filter.cpu_time(size)
        + params.occupancy()
        + params.byte_time(filter.output_size(size))
        + params.latency()
}

/// Unfiltered send time for comparison.
pub fn raw_send_time(size: usize, params: &NetParams) -> SimTime {
    params.occupancy() + params.byte_time(size) + params.latency()
}

/// `true` if applying `filter` is predicted to beat the raw send.
pub fn filter_pays_off(filter: &Filter, size: usize, params: &NetParams) -> bool {
    filtered_send_time(filter, size, params) < raw_send_time(size, params)
}

/// Runs a filtered send in the simulation: the filter occupies an idle core
/// for its CPU time, then the (smaller) payload is submitted to the engine.
/// Returns the send's request handle via the completion of the returned
/// handle (the handle completes when the filtered payload has been
/// submitted and the engine reports the send complete).
pub fn send_filtered(
    engine: &CommEngine,
    sim: &mut Sim,
    filter: Filter,
    dst: usize,
    app_tag: u64,
    size: usize,
) -> ReqHandle {
    let out_size = filter.output_size(size);
    let handle = ReqHandle::new_public();
    let engine = engine.clone();
    let h2 = handle.clone();
    sim.schedule(filter.cpu_time(size), move |sim| {
        let inner = engine.isend(sim, dst, app_tag, out_size);
        let h3 = h2.clone();
        inner.on_complete(sim, move |sim| h3.complete_public(sim));
    });
    handle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::pair_with_params;
    use crate::EngineConfig;

    #[test]
    fn output_sizes_and_costs() {
        let f = Filter::fast_compression();
        assert_eq!(f.output_size(0), 0);
        assert_eq!(f.output_size(1000), 450);
        assert!(f.output_size(1) >= 1);
        assert!(f.cpu_time(1 << 20) > SimTime::from_us(500));
        assert_eq!(Filter::identity().cpu_time(1 << 20), SimTime::ZERO);
        assert_eq!(Filter::encryption().output_size(512), 512);
    }

    #[test]
    fn compression_pays_on_slow_links_not_on_fast() {
        let f = Filter::fast_compression();
        let size = 1 << 20;
        assert!(
            filter_pays_off(&f, size, &NetParams::tcp_ethernet()),
            "compression must win on a 110 MB/s link"
        );
        assert!(
            !filter_pays_off(&f, size, &NetParams::infiniband()),
            "compression must lose on a 1.2 GB/s link"
        );
    }

    #[test]
    fn identity_filter_never_pays_off_strictly() {
        let f = Filter::identity();
        for p in [NetParams::infiniband(), NetParams::tcp_ethernet()] {
            assert!(!filter_pays_off(&f, 4096, &p));
            assert_eq!(filtered_send_time(&f, 4096, &p), raw_send_time(4096, &p));
        }
    }

    #[test]
    fn simulated_filtered_send_beats_raw_on_tcp() {
        // End-to-end in the DES: compressed 256 KB eager-threshold-bumped
        // transfer over TCP-class fabric arrives earlier than raw.
        let run = |filter: Filter| {
            let cfg = EngineConfig {
                eager_threshold: 1 << 20, // keep it eager for a clean compare
                aggregation: false,
                ..EngineConfig::newmadeleine()
            };
            let (_net, a, b, mut sim) = pair_with_params(cfg, NetParams::tcp_ethernet());
            let size = 256 * 1024;
            let r = b.irecv(&mut sim, 0, 9);
            send_filtered(&a, &mut sim, filter, 1, 9, size);
            // Poll both engines periodically until delivery.
            for k in 0..200_000u64 {
                let (a2, b2) = (a.clone(), b.clone());
                sim.schedule_abs(SimTime::from_ns(k * 1_000), move |sim| {
                    a2.poll(sim);
                    b2.poll(sim);
                });
            }
            sim.run();
            r.completed_at().expect("delivered")
        };
        let raw = run(Filter::identity());
        let compressed = run(Filter::fast_compression());
        assert!(
            compressed < raw,
            "compression should win on TCP: raw {raw}, compressed {compressed}"
        );
    }
}
