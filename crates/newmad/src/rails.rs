//! Multirail striping scheduler (paper §IV-B, "multirail distribution").
//!
//! NewMadeleine's optimization layer does not just *use* several rails; it
//! schedules over them. This module is that scheduler, promoted from the
//! old `multirail_aggregation` example into engine code:
//!
//! * [`pick_rail`] — least-loaded rail selection for eager/control
//!   packets, driven by the exact per-rail drain time
//!   [`piom_net::Network::rail_eta`] (occupancy tracking, not round-robin:
//!   a rail still streaming a rendezvous chunk is charged for it);
//! * [`stripe_plan`] — splits a rendezvous payload into chunks of at most
//!   `rndv_chunk` bytes and water-fills them across rails, so a transfer
//!   finishes when the *least* loaded set of engines drains rather than
//!   the round-robin worst case;
//! * [`stripe_crossover`] — the documented eager/stripe crossover size
//!   (see below).
//!
//! # Crossover math
//!
//! Streaming `s` bytes on one rail costs `s·per_byte`; striped over `r`
//! rails the bandwidth term drops to `≈ s·per_byte/r`. But striping rides
//! the rendezvous path, which prefixes a handshake of one RTS and one CTS
//! flight before payload bytes move: `≈ 2·(latency + occupancy)`. The
//! striped rendezvous therefore beats a single eager packet once
//!
//! ```text
//! s · per_byte · (1 − 1/r)  >  2 · (latency + occupancy)
//! s*  =  2 · (latency + occupancy) / per_byte  ·  r / (r − 1)
//! ```
//!
//! For the InfiniBand preset and 2 rails, `s* ≈ 9.9 KiB` — below the
//! 16 KiB eager threshold, so the default
//! [`EngineConfig::stripe_threshold`] of 32 KiB is conservative: every
//! striped transfer is comfortably past the crossover, and sizes between
//! the eager threshold and the stripe threshold still use a single rail
//! (chunk pipelining, no stripe) to keep occupancy cost minimal.

use crate::EngineConfig;
use piom_des::SimTime;
use piom_net::{NetParams, Network};

/// One scheduled slice of a striped transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeChunk {
    /// Rail the chunk streams on.
    pub rail: usize,
    /// Byte offset into the payload.
    pub offset: usize,
    /// Chunk length in bytes.
    pub len: usize,
}

/// Least-loaded rail for a packet submitted at `now` from `node`: the rail
/// whose send engine drains earliest (ties go to the lowest index, keeping
/// the choice deterministic).
pub fn pick_rail(net: &Network, now: SimTime, node: usize) -> usize {
    (0..net.n_rails())
        .min_by_key(|&r| (net.rail_eta(now, node, r), r))
        .expect("network has at least one rail")
}

/// Plans a rendezvous transfer of `size` bytes from `node` at `now`.
///
/// Small (`size < cfg.stripe_threshold`) or single-rail transfers yield
/// one chunk on the least-loaded rail. Large ones are cut into
/// `max(⌈size / rndv_chunk⌉, n_rails)` contiguous chunks (so every rail
/// gets work even when one `rndv_chunk` would cover the payload) and
/// water-filled: each chunk goes to the rail with the smallest projected
/// drain time, which both balances an idle fabric and *skews away from*
/// rails still busy with earlier traffic.
///
/// The returned chunks are contiguous, cover `[0, size)` exactly, and are
/// indexed in offset order — chunk `i`'s wire header is `Data { chunk: i,
/// of: plan.len() }`.
pub fn stripe_plan(
    net: &Network,
    now: SimTime,
    node: usize,
    size: usize,
    cfg: &EngineConfig,
) -> Vec<StripeChunk> {
    let rails = net.n_rails();
    if !cfg.multirail_data || rails < 2 || size < cfg.stripe_threshold {
        return vec![StripeChunk {
            rail: pick_rail(net, now, node),
            offset: 0,
            len: size,
        }];
    }
    let n = size
        .div_ceil(cfg.rndv_chunk.max(1))
        .max(rails)
        .min(size.max(1)); // never plan zero-length chunks
    let base = size / n;
    let rem = size % n;
    let p = net.params();
    let mut eta: Vec<u64> = (0..rails)
        .map(|r| net.rail_eta(now, node, r).as_ns())
        .collect();
    let mut plan = Vec::with_capacity(n);
    let mut offset = 0;
    for i in 0..n {
        let len = base + usize::from(i < rem);
        let rail = (0..rails)
            .min_by_key(|&r| (eta[r], r))
            .expect("rails >= 2 here");
        eta[rail] += p.occupancy().as_ns() + p.byte_time(len).as_ns();
        plan.push(StripeChunk { rail, offset, len });
        offset += len;
    }
    plan
}

/// The eager/stripe crossover size `s*` for `rails` rails on `params`
/// (see the module docs for the derivation). Below `s*` a single eager
/// packet is faster; above it the striped rendezvous wins. Returns
/// `usize::MAX` when `rails < 2` or the link has no bandwidth term
/// (striping can then never pay for its handshake).
pub fn stripe_crossover(params: &NetParams, rails: usize) -> usize {
    if rails < 2 || params.per_byte_ps == 0 {
        return usize::MAX;
    }
    let handshake_ps = 2 * (params.latency_ns + params.occupancy_ns) as u128 * 1000;
    let denom = params.per_byte_ps as u128 * (rails as u128 - 1);
    (handshake_ps * rails as u128 / denom) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use piom_des::Sim;
    use piom_net::Message;
    use std::rc::Rc;

    fn quiet_net(rails: usize) -> Rc<Network> {
        Network::new(2, rails, NetParams::infiniband())
    }

    #[test]
    fn plan_covers_the_payload_exactly_and_in_order() {
        let net = quiet_net(4);
        let cfg = EngineConfig::newmadeleine();
        let size = 100_001; // deliberately not a multiple of anything
        let plan = stripe_plan(&net, SimTime::ZERO, 0, size, &cfg);
        assert!(plan.len() >= 4, "at least one chunk per rail");
        let mut offset = 0;
        for c in &plan {
            assert_eq!(c.offset, offset, "chunks must be contiguous");
            assert!(c.len > 0);
            offset += c.len;
        }
        assert_eq!(offset, size, "plan must cover the payload");
        // Chunk sizes differ by at most one byte (even cut).
        let min = plan.iter().map(|c| c.len).min().unwrap();
        let max = plan.iter().map(|c| c.len).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn idle_fabric_spreads_chunks_across_all_rails() {
        let net = quiet_net(4);
        let cfg = EngineConfig::newmadeleine();
        let plan = stripe_plan(&net, SimTime::ZERO, 0, 256 * 1024, &cfg);
        for r in 0..4 {
            let bytes: usize = plan.iter().filter(|c| c.rail == r).map(|c| c.len).sum();
            assert!(bytes > 0, "rail {r} got no work on an idle fabric");
        }
    }

    #[test]
    fn busy_rail_receives_less_work() {
        let net = quiet_net(2);
        let mut sim = Sim::new();
        net.nic(1, 0).set_rx_handler(Rc::new(|_, _| {}));
        // Load rail 0 with a large foreign transfer.
        net.send(
            &mut sim,
            Message {
                src: 0,
                dst: 1,
                rail: 0,
                tag: 0,
                size: 512 * 1024,
                data: None,
            },
        );
        let cfg = EngineConfig::newmadeleine();
        let plan = stripe_plan(&net, sim.now(), 0, 256 * 1024, &cfg);
        let on0: usize = plan.iter().filter(|c| c.rail == 0).map(|c| c.len).sum();
        let on1: usize = plan.iter().filter(|c| c.rail == 1).map(|c| c.len).sum();
        assert!(
            on1 > on0,
            "water-filling must skew away from the busy rail ({on0} vs {on1})"
        );
        // And eager packets avoid the busy rail outright.
        assert_eq!(pick_rail(&net, sim.now(), 0), 1);
    }

    #[test]
    fn small_or_single_rail_transfers_do_not_stripe() {
        let net = quiet_net(4);
        let cfg = EngineConfig::newmadeleine();
        let plan = stripe_plan(&net, SimTime::ZERO, 0, 1024, &cfg);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].len, 1024);

        let single = quiet_net(1);
        let plan = stripe_plan(&single, SimTime::ZERO, 0, 1 << 20, &cfg);
        assert_eq!(plan.len(), 1, "one rail: nothing to stripe over");

        let mut no_multi = EngineConfig::newmadeleine();
        no_multi.multirail_data = false;
        let plan = stripe_plan(&net, SimTime::ZERO, 0, 1 << 20, &no_multi);
        assert_eq!(plan.len(), 1, "multirail disabled: single chunk");
    }

    #[test]
    fn crossover_matches_the_documented_formula() {
        let p = NetParams::infiniband();
        // 2·(1700+350) ns ⇒ 4100 ns handshake; 830 ps/B; r/(r−1) = 2.
        let s = stripe_crossover(&p, 2);
        assert_eq!(s, 2 * 4_100_000 / 830);
        assert!(
            (9_000..11_000).contains(&s),
            "IB 2-rail crossover ≈ 9.9 KiB"
        );
        // More rails amortize better: crossover shrinks toward 1×.
        assert!(stripe_crossover(&p, 4) < s);
        assert_eq!(stripe_crossover(&p, 1), usize::MAX);
    }
}
