//! Engine unit tests: protocol correctness under explicit polling.

use super::*;
use piom_net::NetParams;

fn pair(cfg: EngineConfig) -> (Rc<Network>, CommEngine, CommEngine, Sim) {
    let net = Network::new(2, 2, NetParams::infiniband());
    let a = CommEngine::new(0, net.clone(), cfg.clone());
    let b = CommEngine::new(1, net.clone(), cfg);
    (net, a, b, Sim::new())
}

/// Drives both engines' polls frequently until quiescence (test harness —
/// this stands in for PIOMan's keypoint-driven polling).
fn drive(sim: &mut Sim, engines: &[&CommEngine], until: SimTime) {
    let mut t = SimTime::ZERO;
    let step = SimTime::from_ns(500);
    while t < until {
        for e in engines {
            let e = (*e).clone();
            sim.schedule_abs(t.max(sim.now()), move |sim| {
                e.poll(sim);
            });
        }
        t += step;
    }
    sim.run();
}

#[test]
fn eager_send_recv_completes() {
    let (_net, a, b, mut sim) = pair(EngineConfig::newmadeleine());
    let r = b.irecv(&mut sim, 0, 77);
    let s = a.isend(&mut sim, 1, 77, 1024);
    assert!(s.is_complete(), "eager send completes at submission");
    assert!(!r.is_complete());
    drive(&mut sim, &[&a, &b], SimTime::from_us(50));
    assert!(r.is_complete());
}

#[test]
fn eager_unexpected_then_recv() {
    let (_net, a, b, mut sim) = pair(EngineConfig::newmadeleine());
    a.isend(&mut sim, 1, 5, 64);
    drive(&mut sim, &[&a, &b], SimTime::from_us(50));
    // Message already arrived and was stashed as unexpected.
    let r = b.irecv(&mut sim, 0, 5);
    assert!(r.is_complete(), "unexpected queue must satisfy the recv");
}

#[test]
fn recv_does_not_match_wrong_tag_or_src() {
    let (_net, a, b, mut sim) = pair(EngineConfig::newmadeleine());
    let wrong_tag = b.irecv(&mut sim, 0, 99);
    a.isend(&mut sim, 1, 5, 64);
    drive(&mut sim, &[&a, &b], SimTime::from_us(50));
    assert!(!wrong_tag.is_complete());
    let right = b.irecv(&mut sim, 0, 5);
    assert!(right.is_complete());
}

#[test]
fn two_sided_rendezvous_completes_both_sides() {
    let (_net, a, b, mut sim) = pair(EngineConfig::newmadeleine());
    let r = b.irecv(&mut sim, 0, 1);
    let s = a.isend(&mut sim, 1, 1, 1 << 20);
    assert!(!s.is_complete(), "rendezvous send is not immediate");
    drive(&mut sim, &[&a, &b], SimTime::from_ms(5));
    assert!(s.is_complete(), "sender completes after CTS+DATA");
    assert!(r.is_complete(), "receiver completes after all chunks");
    // 1 MB at ~1.2 GB/s: the receive cannot beat the bandwidth bound.
    assert!(r.completed_at().unwrap() > SimTime::from_us(400));
}

#[test]
fn rdma_rendezvous_fin_completes_sender() {
    let (_net, a, b, mut sim) = pair(EngineConfig::baseline_mpi());
    let r = b.irecv(&mut sim, 0, 1);
    let s = a.isend(&mut sim, 1, 1, 1 << 20);
    drive(&mut sim, &[&a, &b], SimTime::from_ms(5));
    assert!(r.is_complete());
    assert!(s.is_complete());
    // Receiver completes when its RDMA read lands; sender only later, once
    // the FIN has crossed back and been polled.
    assert!(r.completed_at().unwrap() < s.completed_at().unwrap());
}

#[test]
fn rts_before_recv_is_held_unexpected() {
    let (_net, a, b, mut sim) = pair(EngineConfig::newmadeleine());
    let s = a.isend(&mut sim, 1, 3, 1 << 17);
    drive(&mut sim, &[&a, &b], SimTime::from_us(100));
    assert!(!s.is_complete(), "no CTS until the recv is posted");
    let r = b.irecv(&mut sim, 0, 3);
    drive(&mut sim, &[&a, &b], SimTime::from_ms(2));
    assert!(s.is_complete());
    assert!(r.is_complete());
}

#[test]
fn aggregation_packs_messages() {
    let (net, a, b, mut sim) = pair(EngineConfig {
        aggregation: true,
        ..EngineConfig::newmadeleine()
    });
    let mut recvs = Vec::new();
    for tag in 0..8 {
        recvs.push(b.irecv(&mut sim, 0, tag));
    }
    // Submit 8 sends at the same instant: one flush packs them.
    let submit = {
        let a = a.clone();
        move |sim: &mut Sim| {
            for tag in 0..8u64 {
                a.isend(sim, 1, tag, 512);
            }
        }
    };
    sim.schedule(SimTime::ZERO, submit);
    drive(&mut sim, &[&a, &b], SimTime::from_us(100));
    for r in &recvs {
        assert!(r.is_complete());
    }
    let st = a.stats();
    assert!(st.aggregate_packets >= 1, "no aggregation happened");
    // The first submissions grab the idle rails as singletons; everything
    // arriving while the engines are busy rides aggregates.
    assert!(
        st.aggregated_messages >= 6,
        "most messages should ride aggregates: {st:?}"
    );
    assert!(
        net.nic(0, 0).tx_count() + net.nic(0, 1).tx_count() < 8,
        "aggregation must reduce wire packets"
    );
}

#[test]
fn no_aggregation_sends_singletons() {
    let (net, a, b, mut sim) = pair(EngineConfig {
        aggregation: false,
        ..EngineConfig::newmadeleine()
    });
    for tag in 0..4 {
        b.irecv(&mut sim, 0, tag);
    }
    let a2 = a.clone();
    sim.schedule(SimTime::ZERO, move |sim| {
        for tag in 0..4u64 {
            a2.isend(sim, 1, tag, 512);
        }
    });
    drive(&mut sim, &[&a, &b], SimTime::from_us(100));
    assert_eq!(a.stats().aggregate_packets, 0);
    assert_eq!(net.nic(0, 0).tx_count() + net.nic(0, 1).tx_count(), 4);
}

#[test]
fn max_packet_splits_aggregates() {
    let (_net, a, b, mut sim) = pair(EngineConfig {
        aggregation: true,
        max_packet: 1500,
        ..EngineConfig::newmadeleine()
    });
    for tag in 0..6 {
        b.irecv(&mut sim, 0, tag);
    }
    let a2 = a.clone();
    sim.schedule(SimTime::ZERO, move |sim| {
        for tag in 0..6u64 {
            a2.isend(sim, 1, tag, 1000); // 1000 B each, cap 1500 => singles... pairs exceed
        }
    });
    drive(&mut sim, &[&a, &b], SimTime::from_us(100));
    let st = a.stats();
    // Each aggregate holds exactly one message (2 x 1000 > 1500): the cap
    // must prevent oversized packets, not break delivery.
    assert!(st.packets_sent >= 6);
}

#[test]
fn multirail_speeds_up_large_transfers() {
    let run = |multirail: bool| {
        let (_net, a, b, mut sim) = pair(EngineConfig {
            multirail_data: multirail,
            ..EngineConfig::newmadeleine()
        });
        let r = b.irecv(&mut sim, 0, 1);
        a.isend(&mut sim, 1, 1, 4 << 20);
        drive(&mut sim, &[&a, &b], SimTime::from_ms(20));
        assert!(r.is_complete());
        r.completed_at().unwrap()
    };
    let single = run(false);
    let multi = run(true);
    assert!(
        multi.as_ns() * 3 < single.as_ns() * 2,
        "2 rails should cut the 4 MB transfer well below single-rail: single {single}, multi {multi}"
    );
}

#[test]
fn pipeline_window_overlaps_packing_and_sending() {
    // 8 eager messages submitted in one burst, aggregation off so the
    // window is the only lever: stop-and-wait (window 1) streams them one
    // at a time on one rail; a window of 4 keeps both rails busy, so
    // pack(n+1) overlaps send(n) and the burst finishes far sooner.
    let run = |window: usize| {
        let (net, a, b, mut sim) = pair(EngineConfig {
            aggregation: false,
            pipeline_window: window,
            ..EngineConfig::newmadeleine()
        });
        let recvs: Vec<_> = (0..8).map(|t| b.irecv(&mut sim, 0, t)).collect();
        let a2 = a.clone();
        sim.schedule(SimTime::ZERO, move |sim| {
            for tag in 0..8u64 {
                a2.isend(sim, 1, tag, 8 * 1024);
            }
        });
        drive(&mut sim, &[&a, &b], SimTime::from_us(200));
        let done = recvs
            .iter()
            .map(|r| r.completed_at().expect("delivered"))
            .max()
            .unwrap();
        (done, a.stats(), net.nic(0, 1).tx_count())
    };
    let (stop_and_wait, st1, _) = run(1);
    let (pipelined, st4, rail1_tx) = run(4);
    assert!(
        pipelined.as_ns() * 3 < stop_and_wait.as_ns() * 2,
        "windowed flush should overlap rails: window=1 {stop_and_wait}, window=4 {pipelined}"
    );
    assert!(rail1_tx > 0, "the window must spill onto the second rail");
    assert!(
        st1.pipeline_stalls > st4.pipeline_stalls,
        "stop-and-wait must stall more: {st1:?} vs {st4:?}"
    );
}

#[test]
fn undecodable_packet_is_a_counted_drop() {
    let (net, a, b, mut sim) = pair(EngineConfig::newmadeleine());
    let r = b.irecv(&mut sim, 0, 7);
    // Garbage frame and a frame with no bytes at all, injected raw.
    net.send(
        &mut sim,
        Message {
            src: 0,
            dst: 1,
            rail: 0,
            tag: 0,
            size: 8,
            data: Some(Rope::from(Bytes::from(vec![0xFF; 8]))),
        },
    );
    net.send(
        &mut sim,
        Message {
            src: 0,
            dst: 1,
            rail: 1,
            tag: 0,
            size: 4,
            data: None,
        },
    );
    // A real message on the same link still gets through.
    a.isend(&mut sim, 1, 7, 64);
    drive(&mut sim, &[&a, &b], SimTime::from_us(50));
    assert_eq!(
        b.stats().undecodable_packets,
        2,
        "corrupt packets must be counted drops, not aborts"
    );
    assert!(r.is_complete(), "the engine must survive the garbage");
}

#[test]
fn stale_control_packets_are_counted_drops() {
    let (net, a, _b, mut sim) = pair(EngineConfig::newmadeleine());
    // CTS, DATA, FIN all referencing protocol state node 0 never created.
    for wire in [
        Wire::Cts { req: 999 },
        Wire::Data {
            req: 999,
            chunk: 0,
            of: 1,
        },
        Wire::Fin { req: 999 },
    ] {
        let header = wire.encode();
        net.send(
            &mut sim,
            Message {
                src: 1,
                dst: 0,
                rail: 0,
                tag: 0,
                size: header.len(),
                data: Some(Rope::from(header)),
            },
        );
    }
    drive(&mut sim, &[&a], SimTime::from_us(50));
    assert_eq!(a.stats().stale_control_packets, 3);
    assert_eq!(a.stats().undecodable_packets, 0);
}

#[test]
fn nothing_progresses_without_polling() {
    let (_net, a, b, mut sim) = pair(EngineConfig::newmadeleine());
    let r = b.irecv(&mut sim, 0, 9);
    a.isend(&mut sim, 1, 9, 256);
    // Run the network only: the packet arrives into the rx queue, but no
    // poll ever processes it.
    sim.run();
    assert!(!r.is_complete(), "completion without a poll");
    assert_eq!(b.rx_backlog(), 1);
    // One poll finishes the job.
    b.poll(&mut sim);
    assert!(r.is_complete());
}

#[test]
fn stats_track_polls() {
    let (_net, a, _b, mut sim) = pair(EngineConfig::newmadeleine());
    assert!(!a.poll(&mut sim));
    assert_eq!(a.stats().empty_polls, 1);
}
