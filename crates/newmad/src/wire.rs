//! Wire encoding of the engine's control headers.
//!
//! The network layer carries opaque `(tag, size, Rope)` frames; this
//! module gives them protocol meaning. The codec is a tiny hand-rolled
//! fixed-layout format (no serde on the wire — the real NewMadeleine packs
//! headers into packet wrappers by hand too, §IV-B).
//!
//! The codec is *streaming* and *canonical*:
//!
//! * [`Wire::decode`] reads the header off the front of any [`Buf`]
//!   (typically the frame [`bytes::Rope`]) and leaves the payload bytes
//!   in place — parsing never copies or flattens the payload;
//! * exactly one byte sequence encodes each value (e.g. the RTS `rdma`
//!   flag must be `0` or `1`), so `decode(b) == Some(w)` implies
//!   `encode(w)` reproduces the consumed prefix byte-for-byte — the
//!   property the codec proptests pin.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Protocol-level identity of a wire packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Wire {
    /// Small message sent inline: application tag + payload size.
    Eager {
        /// Application tag.
        app_tag: u64,
        /// Payload bytes.
        size: u32,
    },
    /// Several eager messages packed into one NIC packet (Fig. 1).
    EagerAggregate {
        /// The packed messages, in submission order.
        parts: Vec<EagerPart>,
    },
    /// Rendezvous request-to-send: announces a large message.
    Rts {
        /// Sender-side request id.
        req: u32,
        /// Application tag.
        app_tag: u64,
        /// Full payload size.
        size: u64,
        /// `true` if the sender exposes the buffer for RDMA read
        /// (the MVAPICH/OpenMPI-class protocol of \[10\]).
        rdma: bool,
    },
    /// Clear-to-send: the receiver matched the RTS and is ready.
    Cts {
        /// The sender-side request id being acknowledged.
        req: u32,
    },
    /// A chunk of rendezvous payload.
    Data {
        /// Sender-side request id.
        req: u32,
        /// Chunk index.
        chunk: u32,
        /// Total chunks.
        of: u32,
    },
    /// Transfer-finished notification (ends an RDMA-read rendezvous).
    Fin {
        /// The sender-side request id that completed.
        req: u32,
    },
}

/// One message inside an [`Wire::EagerAggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EagerPart {
    /// Application tag.
    pub app_tag: u64,
    /// Payload size.
    pub size: u32,
}

const K_EAGER: u8 = 1;
const K_AGG: u8 = 2;
const K_RTS: u8 = 3;
const K_CTS: u8 = 4;
const K_DATA: u8 = 5;
const K_FIN: u8 = 6;

impl Wire {
    /// Exact encoded header length in bytes.
    pub fn header_len(&self) -> usize {
        match self {
            Wire::Eager { .. } => 1 + 12,
            Wire::EagerAggregate { parts } => 1 + 4 + parts.len() * 12,
            Wire::Rts { .. } => 1 + 21,
            Wire::Cts { .. } => 1 + 4,
            Wire::Data { .. } => 1 + 12,
            Wire::Fin { .. } => 1 + 4,
        }
    }

    /// Serializes the header.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.header_len());
        match self {
            Wire::Eager { app_tag, size } => {
                b.put_u8(K_EAGER);
                b.put_u64(*app_tag);
                b.put_u32(*size);
            }
            Wire::EagerAggregate { parts } => {
                b.put_u8(K_AGG);
                b.put_u32(parts.len() as u32);
                for p in parts {
                    b.put_u64(p.app_tag);
                    b.put_u32(p.size);
                }
            }
            Wire::Rts {
                req,
                app_tag,
                size,
                rdma,
            } => {
                b.put_u8(K_RTS);
                b.put_u32(*req);
                b.put_u64(*app_tag);
                b.put_u64(*size);
                b.put_u8(u8::from(*rdma));
            }
            Wire::Cts { req } => {
                b.put_u8(K_CTS);
                b.put_u32(*req);
            }
            Wire::Data { req, chunk, of } => {
                b.put_u8(K_DATA);
                b.put_u32(*req);
                b.put_u32(*chunk);
                b.put_u32(*of);
            }
            Wire::Fin { req } => {
                b.put_u8(K_FIN);
                b.put_u32(*req);
            }
        }
        b.freeze()
    }

    /// Parses a header off the front of `raw`, consuming exactly the
    /// header bytes and leaving any payload in place. Returns `None` on
    /// malformed input (short header, unknown kind, non-canonical flag
    /// byte); `raw` may then be partially consumed — callers drop the
    /// whole frame.
    pub fn decode<B: Buf + ?Sized>(raw: &mut B) -> Option<Wire> {
        if raw.remaining() < 1 {
            return None;
        }
        let kind = raw.get_u8();
        match kind {
            K_EAGER => {
                if raw.remaining() < 12 {
                    return None;
                }
                Some(Wire::Eager {
                    app_tag: raw.get_u64(),
                    size: raw.get_u32(),
                })
            }
            K_AGG => {
                if raw.remaining() < 4 {
                    return None;
                }
                let n = raw.get_u32() as usize;
                if n.checked_mul(12).is_none_or(|need| raw.remaining() < need) {
                    return None;
                }
                let parts = (0..n)
                    .map(|_| EagerPart {
                        app_tag: raw.get_u64(),
                        size: raw.get_u32(),
                    })
                    .collect();
                Some(Wire::EagerAggregate { parts })
            }
            K_RTS => {
                if raw.remaining() < 21 {
                    return None;
                }
                let req = raw.get_u32();
                let app_tag = raw.get_u64();
                let size = raw.get_u64();
                // Canonical flag: any value other than 0/1 is malformed,
                // so decode∘encode is the identity on the consumed prefix.
                let rdma = match raw.get_u8() {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                Some(Wire::Rts {
                    req,
                    app_tag,
                    size,
                    rdma,
                })
            }
            K_CTS => {
                if raw.remaining() < 4 {
                    return None;
                }
                Some(Wire::Cts { req: raw.get_u32() })
            }
            K_DATA => {
                if raw.remaining() < 12 {
                    return None;
                }
                Some(Wire::Data {
                    req: raw.get_u32(),
                    chunk: raw.get_u32(),
                    of: raw.get_u32(),
                })
            }
            K_FIN => {
                if raw.remaining() < 4 {
                    return None;
                }
                Some(Wire::Fin { req: raw.get_u32() })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(w: Wire) {
        let mut enc = w.encode();
        assert_eq!(enc.len(), w.header_len());
        assert_eq!(Wire::decode(&mut enc).as_ref(), Some(&w));
        assert_eq!(enc.remaining(), 0, "decode must consume the header");
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Wire::Eager {
            app_tag: 0xDEAD_BEEF,
            size: 4096,
        });
        roundtrip(Wire::EagerAggregate {
            parts: vec![
                EagerPart {
                    app_tag: 1,
                    size: 100,
                },
                EagerPart {
                    app_tag: 2,
                    size: 200,
                },
            ],
        });
        roundtrip(Wire::Rts {
            req: 42,
            app_tag: 7,
            size: 1 << 20,
            rdma: true,
        });
        roundtrip(Wire::Cts { req: 42 });
        roundtrip(Wire::Data {
            req: 42,
            chunk: 3,
            of: 8,
        });
        roundtrip(Wire::Fin { req: 42 });
    }

    #[test]
    fn empty_aggregate_roundtrips() {
        roundtrip(Wire::EagerAggregate { parts: vec![] });
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert_eq!(Wire::decode(&mut Bytes::new()), None);
        assert_eq!(Wire::decode(&mut Bytes::from_static(&[99])), None);
        assert_eq!(Wire::decode(&mut Bytes::from_static(&[K_RTS, 1, 2])), None);
        // Aggregate claiming more parts than present.
        let mut b = BytesMut::new();
        b.put_u8(K_AGG);
        b.put_u32(5);
        assert_eq!(Wire::decode(&mut b.freeze()), None);
    }

    #[test]
    fn decode_leaves_the_payload_in_place() {
        let w = Wire::Eager {
            app_tag: 9,
            size: 3,
        };
        let mut frame = bytes::Rope::from(w.encode());
        frame.push(Bytes::from(vec![0xA, 0xB, 0xC]));
        assert_eq!(Wire::decode(&mut frame), Some(w));
        assert_eq!(frame, vec![0xA, 0xB, 0xC], "payload untouched");
    }

    #[test]
    fn non_canonical_rts_flag_is_rejected() {
        let mut ok = Wire::Rts {
            req: 1,
            app_tag: 2,
            size: 3,
            rdma: true,
        }
        .encode()
        .to_vec();
        *ok.last_mut().unwrap() = 2; // any value outside {0,1}
        assert_eq!(Wire::decode(&mut Bytes::from(ok)), None);
    }
}
