//! Adversarial wire-codec property tests.
//!
//! The codec's contract (wire.rs module docs): streaming decode consumes
//! exactly the header and leaves payload bytes in place, and the encoding
//! is *canonical* — `decode(b) == Some(w)` implies `encode(w)` equals the
//! consumed prefix byte-for-byte. Together these rule out the dangerous
//! failure mode: a truncated or bit-flipped frame silently mis-decoding
//! into a *different* valid frame (which would corrupt protocol state on
//! a live engine instead of being dropped and counted).
//!
//! These tests also run under Miri in CI (the decode path is the part of
//! the engine that touches attacker-controlled bytes).

use bytes::{Buf, Bytes, Rope};
use newmadeleine::wire::{EagerPart, Wire};
use proptest::prelude::*;

fn arb_wire() -> impl Strategy<Value = Wire> {
    (
        0usize..6,
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
        proptest::collection::vec((any::<u64>(), any::<u32>()), 0..6),
    )
        .prop_map(|(kind, req, app_tag, size, rdma, raw_parts)| match kind {
            0 => Wire::Eager {
                app_tag,
                size: size as u32,
            },
            1 => Wire::EagerAggregate {
                parts: raw_parts
                    .into_iter()
                    .map(|(app_tag, size)| EagerPart { app_tag, size })
                    .collect(),
            },
            2 => Wire::Rts {
                req,
                app_tag,
                size,
                rdma,
            },
            3 => Wire::Cts { req },
            4 => Wire::Data {
                req,
                chunk: size as u32,
                of: (size >> 32) as u32,
            },
            _ => Wire::Fin { req },
        })
}

proptest! {
    // Fewer cases under Miri (interpreted execution); the full count runs
    // in the native test job.
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 24 } else { 96 }))]

    /// Round-trip for every variant, with the payload (arbitrary trailing
    /// bytes) left exactly in place behind the consumed header.
    #[test]
    fn roundtrip_leaves_payload_intact(
        w in arb_wire(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let header = w.encode();
        prop_assert_eq!(header.len(), w.header_len());
        let mut frame = Rope::from(header);
        frame.push(Bytes::from(payload.clone()));
        let before = frame.remaining();
        let decoded = Wire::decode(&mut frame);
        prop_assert_eq!(decoded, Some(w.clone()));
        prop_assert_eq!(before - frame.remaining(), w.header_len());
        prop_assert_eq!(frame.to_vec(), payload);
    }

    /// Any strict prefix of a valid header must be rejected — truncation
    /// can never produce a (different) valid frame, and never panics.
    #[test]
    fn truncation_is_always_rejected(w in arb_wire(), cut in 0usize..64) {
        let full = w.encode().to_vec();
        let cut = cut % full.len(); // strict prefix
        let mut short = Bytes::from(full[..cut].to_vec());
        prop_assert_eq!(Wire::decode(&mut short), None);
    }

    /// Single-byte mutation: decode never panics, and whatever it returns
    /// obeys the canonical-prefix identity — a successful decode of the
    /// mutated bytes re-encodes to exactly the bytes it consumed, so a
    /// flip can never smuggle in a frame the codec would not itself emit.
    #[test]
    fn mutation_never_mis_decodes(
        w in arb_wire(),
        pos in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let mut raw = w.encode().to_vec();
        let pos = pos % raw.len();
        raw[pos] ^= xor;
        let mut buf = Bytes::from(raw.clone());
        if let Some(w2) = Wire::decode(&mut buf) {
            let consumed = raw.len() - buf.remaining();
            prop_assert_eq!(consumed, w2.header_len());
            prop_assert_eq!(w2.encode().to_vec(), raw[..consumed].to_vec());
        }
    }

    /// Arbitrary byte soup: never panics; successful decodes still obey
    /// the canonical-prefix identity.
    #[test]
    fn random_bytes_never_panic(raw in proptest::collection::vec(any::<u8>(), 0..96)) {
        let mut buf = Bytes::from(raw.clone());
        if let Some(w) = Wire::decode(&mut buf) {
            let consumed = raw.len() - buf.remaining();
            prop_assert_eq!(consumed, w.header_len());
            prop_assert_eq!(w.encode().to_vec(), raw[..consumed].to_vec());
        }
    }
}
