//! Deterministic rendezvous state-machine tests.
//!
//! The DES makes the whole handshake replayable: every test below asserts
//! against an explicit event timeline (who completed, when, in what order)
//! and against the stale-drop counters, so protocol-state bugs show up as
//! ordering or counting failures rather than flaky hangs. Adversarial
//! cases inject raw wire frames (duplicate CTS/DATA/FIN, out-of-range
//! chunks) straight into the NIC rx path, bypassing the sender engine.
//!
//! These tests also run under Miri in CI: the reassembly path juggles
//! shared `Rope` segments and must stay free of aliasing surprises.

use bytes::{Bytes, Rope};
use newmadeleine::wire::Wire;
use newmadeleine::{CommEngine, EngineConfig, EngineStats};
use piom_des::{Sim, SimTime};
use piom_net::{Message, NetParams, Network};
use std::cell::RefCell;
use std::rc::Rc;

type Timeline = Rc<RefCell<Vec<(u64, &'static str)>>>;

/// Bulk-transfer size: shrunk 8× under Miri (the interpreter is orders of
/// magnitude slower; every protocol path stays exercised — all assertions
/// here are ordering/counting, never absolute simulated times).
const BULK: usize = if cfg!(miri) { 1 << 17 } else { 1 << 20 };
/// Poll horizon for a bulk rendezvous to fully drain.
const BULK_SPAN: SimTime = if cfg!(miri) {
    SimTime::from_ms(1)
} else {
    SimTime::from_ms(5)
};

fn pair(cfg: EngineConfig) -> (Rc<Network>, CommEngine, CommEngine, Sim) {
    let net = Network::new(2, 2, NetParams::infiniband());
    let a = CommEngine::new(0, net.clone(), cfg.clone());
    let b = CommEngine::new(1, net.clone(), cfg);
    (net, a, b, Sim::new())
}

/// Polls both engines every 500 ns over `span`, starting from `sim.now()`.
fn drive(sim: &mut Sim, engines: &[&CommEngine], span: SimTime) {
    let start = sim.now();
    let mut t = SimTime::ZERO;
    while t < span {
        for e in engines {
            let e = (*e).clone();
            sim.schedule_abs(start + t, move |sim| {
                e.poll(sim);
            });
        }
        t += SimTime::from_ns(500);
    }
    sim.run();
}

fn mark(tl: &Timeline, label: &'static str) -> impl FnOnce(&mut Sim) + 'static {
    let tl = tl.clone();
    move |sim: &mut Sim| tl.borrow_mut().push((sim.now().as_ns(), label))
}

/// Injects a raw wire frame into the fabric, bypassing any engine.
fn inject(net: &Rc<Network>, sim: &mut Sim, src: usize, dst: usize, wire: Wire, payload: &[u8]) {
    let mut frame = Rope::from(wire.encode());
    if !payload.is_empty() {
        frame.push(Bytes::copy_from_slice(payload));
    }
    net.send(
        sim,
        Message {
            src,
            dst,
            rail: 0,
            tag: 0,
            size: frame.len(),
            data: Some(frame),
        },
    );
}

fn occurrences(tl: &Timeline, label: &str) -> Vec<u64> {
    tl.borrow()
        .iter()
        .filter(|(_, l)| *l == label)
        .map(|(t, _)| *t)
        .collect()
}

#[test]
fn two_sided_recv_first_timeline() {
    let (_net, a, b, mut sim) = pair(EngineConfig::newmadeleine());
    let tl: Timeline = Rc::default();

    let r = b.irecv(&mut sim, 0, 1);
    r.on_complete(&mut sim, mark(&tl, "recv_done"));
    let s = a.isend(&mut sim, 1, 1, BULK);
    s.on_complete(&mut sim, mark(&tl, "send_done"));
    tl.borrow_mut().push((sim.now().as_ns(), "submitted"));

    drive(&mut sim, &[&a, &b], BULK_SPAN);

    // Exactly-once completion, in protocol order: the sender's buffer is
    // free at NIC drain, strictly before the last chunk lands remotely.
    let (sub, send_done, recv_done) = (
        occurrences(&tl, "submitted"),
        occurrences(&tl, "send_done"),
        occurrences(&tl, "recv_done"),
    );
    assert_eq!(send_done.len(), 1, "send callback must fire exactly once");
    assert_eq!(recv_done.len(), 1, "recv callback must fire exactly once");
    assert!(sub[0] < send_done[0]);
    assert!(
        send_done[0] < recv_done[0],
        "sender drains before the receiver's last chunk lands: {tl:?}"
    );
    // The timeline is the ground truth for the handles too.
    assert_eq!(s.completed_at().unwrap().as_ns(), send_done[0]);
    assert_eq!(r.completed_at().unwrap().as_ns(), recv_done[0]);
    let st = a.stats();
    assert_eq!(st.rendezvous_started, 1);
    assert!(st.data_chunks_sent >= 1);
    assert_eq!(st.stale_control_packets, 0);
    assert_eq!(b.stats().stale_control_packets, 0);
}

#[test]
fn recv_posted_after_rts_restarts_the_handshake() {
    let (_net, a, b, mut sim) = pair(EngineConfig::newmadeleine());
    let tl: Timeline = Rc::default();

    let s = a.isend(&mut sim, 1, 3, BULK / 4);
    s.on_complete(&mut sim, mark(&tl, "send_done"));
    drive(&mut sim, &[&a, &b], SimTime::from_us(100));
    assert!(
        !s.is_complete(),
        "no CTS may be produced before the recv exists"
    );
    assert_eq!(b.rx_backlog(), 0, "the RTS was polled and held unexpected");

    let posted_at = sim.now();
    let r = b.irecv(&mut sim, 0, 3);
    r.on_complete(&mut sim, mark(&tl, "recv_done"));
    drive(&mut sim, &[&a, &b], BULK_SPAN);

    assert_eq!(occurrences(&tl, "send_done").len(), 1);
    assert_eq!(occurrences(&tl, "recv_done").len(), 1);
    assert!(
        r.completed_at().unwrap() > posted_at,
        "completion cannot predate the matching recv"
    );
    assert_eq!(a.stats().stale_control_packets, 0);
}

#[test]
fn duplicate_cts_does_not_restream_data() {
    let (net, a, b, mut sim) = pair(EngineConfig::newmadeleine());
    let r = b.irecv(&mut sim, 0, 1);
    let s = a.isend(&mut sim, 1, 1, BULK); // first rendezvous => req 1
    drive(&mut sim, &[&a, &b], BULK_SPAN);
    assert!(s.is_complete() && r.is_complete());

    let before: EngineStats = a.stats();
    let done_count = Rc::new(RefCell::new(0u32));
    let dc = done_count.clone();
    s.on_complete(&mut sim, move |_| *dc.borrow_mut() += 1);
    assert_eq!(
        *done_count.borrow(),
        1,
        "already complete fires immediately"
    );

    // A duplicate CTS for the resolved request must be a counted drop:
    // no second data stream, no state change, no double completion.
    inject(&net, &mut sim, 1, 0, Wire::Cts { req: 1 }, &[]);
    drive(&mut sim, &[&a, &b], SimTime::from_us(50));

    let after = a.stats();
    assert_eq!(
        after.stale_control_packets,
        before.stale_control_packets + 1
    );
    assert_eq!(after.data_chunks_sent, before.data_chunks_sent);
    assert_eq!(after.packets_sent, before.packets_sent);
    assert_eq!(*done_count.borrow(), 1);
}

#[test]
fn out_of_order_duplicate_and_malformed_data_chunks() {
    let (net, _a, b, mut sim) = pair(EngineConfig::newmadeleine());
    // Craft the receiver side by hand: post the recv, then speak the
    // sender's half of the protocol as raw frames from node 0.
    let r = b.irecv(&mut sim, 0, 9);
    let done_count = Rc::new(RefCell::new(0u32));
    let dc = done_count.clone();
    r.on_complete(&mut sim, move |_| *dc.borrow_mut() += 1);

    inject(
        &net,
        &mut sim,
        0,
        1,
        Wire::Rts {
            req: 77,
            app_tag: 9,
            size: 4096,
            rdma: false,
        },
        &[],
    );
    drive(&mut sim, &[&b], SimTime::from_us(50));
    assert!(!r.is_complete(), "no data yet");

    let chunk0 = vec![0xAA; 2048];
    let chunk1 = vec![0xBB; 2048];
    let data = |chunk, of| Wire::Data { req: 77, chunk, of };

    // Chunk 1 arrives first (out of order), then a burst of garbage that
    // must all drop as stale: a duplicate of chunk 1, an out-of-range
    // index, a mismatched total, and a zero-total header.
    inject(&net, &mut sim, 0, 1, data(1, 2), &chunk1);
    inject(&net, &mut sim, 0, 1, data(1, 2), &chunk1);
    inject(&net, &mut sim, 0, 1, data(5, 2), &chunk0);
    inject(&net, &mut sim, 0, 1, data(0, 3), &chunk0);
    inject(&net, &mut sim, 0, 1, data(0, 0), &chunk0);
    drive(&mut sim, &[&b], SimTime::from_us(50));
    assert!(!r.is_complete(), "half the payload is still missing");
    assert_eq!(b.stats().stale_control_packets, 4);

    // The genuine chunk 0 completes the transfer; reassembly must be in
    // index order, not arrival order.
    inject(&net, &mut sim, 0, 1, data(0, 2), &chunk0);
    drive(&mut sim, &[&b], SimTime::from_us(50));
    assert!(r.is_complete());
    assert_eq!(*done_count.borrow(), 1, "exactly one completion");
    let payload = r.payload().expect("payload attached").to_vec();
    let expected: Vec<u8> = chunk0.iter().chain(chunk1.iter()).copied().collect();
    assert_eq!(payload, expected, "chunks must reassemble by index");

    // Late duplicate after completion: state is gone, counted drop.
    inject(&net, &mut sim, 0, 1, data(0, 2), &chunk0);
    drive(&mut sim, &[&b], SimTime::from_us(50));
    assert_eq!(b.stats().stale_control_packets, 5);
    assert_eq!(*done_count.borrow(), 1);
}

#[test]
fn duplicate_fin_after_rdma_completion_is_stale() {
    let (net, a, b, mut sim) = pair(EngineConfig::baseline_mpi());
    let r = b.irecv(&mut sim, 0, 1);
    let s = a.isend(&mut sim, 1, 1, BULK); // rdma rendezvous => req 1
    drive(&mut sim, &[&a, &b], BULK_SPAN);
    assert!(s.is_complete() && r.is_complete());

    let before = a.stats().stale_control_packets;
    inject(&net, &mut sim, 1, 0, Wire::Fin { req: 1 }, &[]);
    drive(&mut sim, &[&a, &b], SimTime::from_us(50));
    assert_eq!(a.stats().stale_control_packets, before + 1);
}

#[test]
fn skewed_polling_cadences_are_deterministic() {
    // Sender and receiver poll on co-prime cadences, so control packets
    // routinely wait in rx queues across several peer polls. The protocol
    // must neither hang nor depend on the interleaving: two identical
    // runs produce byte-identical timelines and stats.
    let run = || {
        let (_net, a, b, mut sim) = pair(EngineConfig::newmadeleine());
        let r = b.irecv(&mut sim, 0, 1);
        let s = a.isend(&mut sim, 1, 1, 3 * BULK);
        let polls: u64 = if cfg!(miri) { 2_500 } else { 20_000 };
        for k in 0..polls {
            let a2 = a.clone();
            sim.schedule_abs(SimTime::from_ns(k * 300), move |sim| {
                a2.poll(sim);
            });
        }
        let recv_polls: u64 = if cfg!(miri) { 500 } else { 4_000 };
        for k in 0..recv_polls {
            let b2 = b.clone();
            sim.schedule_abs(SimTime::from_ns(k * 1700), move |sim| {
                b2.poll(sim);
            });
        }
        sim.run();
        assert!(s.is_complete() && r.is_complete());
        (
            s.completed_at().unwrap(),
            r.completed_at().unwrap(),
            a.stats(),
            b.stats(),
        )
    };
    let first = run();
    assert_eq!(first, run(), "replay must be byte-identical");
    assert_eq!(first.2.stale_control_packets, 0);
    assert_eq!(first.3.stale_control_packets, 0);
}
