//! Property tests: protocol-level delivery invariants hold for any message
//! mix, polling cadence, and configuration.

use newmadeleine::{CommEngine, EngineConfig};
use piom_des::{Sim, SimTime};
use piom_net::{NetParams, Network};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Msg {
    size: usize,
    delay_ns: u64,
}

fn arb_msgs() -> impl Strategy<Value = Vec<Msg>> {
    proptest::collection::vec(
        (1usize..200_000, 0u64..5_000).prop_map(|(size, delay_ns)| Msg { size, delay_ns }),
        1..12,
    )
}

fn arb_config() -> impl Strategy<Value = EngineConfig> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        1usize..64,
        1usize..5,
        (4usize..256, 16usize..128),
    )
        .prop_map(
            |(rdma, agg, multirail, thresh_kb, window, (chunk_kb, stripe_kb))| EngineConfig {
                eager_threshold: thresh_kb * 1024,
                rdma_rendezvous: rdma,
                aggregation: agg,
                max_packet: 64 * 1024,
                multirail_data: multirail,
                pipeline_window: window,
                rndv_chunk: chunk_kb * 1024,
                stripe_threshold: stripe_kb * 1024,
                copy_on_pack: false,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every message is delivered exactly once, whatever the protocol mix
    /// (eager vs rendezvous, RDMA vs two-sided, aggregation on/off), and
    /// no receive completes before the bandwidth bound allows.
    #[test]
    fn every_message_delivered_exactly_once(
        msgs in arb_msgs(),
        cfg in arb_config(),
        poll_step_ns in 100u64..3_000,
    ) {
        let net = Network::new(2, 2, NetParams::infiniband());
        let a = CommEngine::new(0, net.clone(), cfg.clone());
        let b = CommEngine::new(1, net.clone(), cfg);
        let mut sim = Sim::new();

        let mut recvs = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            recvs.push((b.irecv(&mut sim, 0, i as u64), m.size));
            let a2 = a.clone();
            let (tag, size, delay) = (i as u64, m.size, m.delay_ns);
            sim.schedule_abs(SimTime::from_ns(delay), move |sim| {
                a2.isend(sim, 1, tag, size);
            });
        }
        // Poll both sides on a random cadence, long enough for the worst
        // case (sum of sizes at ~1.2 GB/s plus handshakes).
        let horizon_ns: u64 = 1_000_000
            + msgs.iter().map(|m| m.size as u64).sum::<u64>() * 4;
        let mut t = 0;
        while t < horizon_ns {
            let (a2, b2) = (a.clone(), b.clone());
            sim.schedule_abs(SimTime::from_ns(t), move |sim| {
                a2.poll(sim);
                b2.poll(sim);
            });
            t += poll_step_ns;
        }
        sim.run();

        let params = NetParams::infiniband();
        for (i, (r, size)) in recvs.iter().enumerate() {
            prop_assert!(r.is_complete(), "message {i} (size {size}) lost");
            // Causality: cannot complete faster than its own bytes stream.
            let floor = params.byte_time(*size / 2); // multirail may halve
            prop_assert!(
                r.completed_at().unwrap() >= floor,
                "message {i} beat the bandwidth bound"
            );
        }
        // No dangling protocol state: all queues drained.
        prop_assert_eq!(a.rx_backlog(), 0);
        prop_assert_eq!(b.rx_backlog(), 0);
    }

    /// Determinism: identical inputs produce identical completion times.
    #[test]
    fn simulation_is_deterministic(
        msgs in arb_msgs(),
        cfg in arb_config(),
    ) {
        let run = || {
            let net = Network::new(2, 2, NetParams::infiniband());
            let a = CommEngine::new(0, net.clone(), cfg.clone());
            let b = CommEngine::new(1, net, cfg.clone());
            let mut sim = Sim::new();
            let recvs: Vec<_> = msgs
                .iter()
                .enumerate()
                .map(|(i, _)| b.irecv(&mut sim, 0, i as u64))
                .collect();
            for (i, m) in msgs.iter().enumerate() {
                let a2 = a.clone();
                let (tag, size) = (i as u64, m.size);
                sim.schedule_abs(SimTime::from_ns(m.delay_ns), move |sim| {
                    a2.isend(sim, 1, tag, size);
                });
            }
            for k in 0..50_000u64 {
                let (a2, b2) = (a.clone(), b.clone());
                sim.schedule_abs(SimTime::from_ns(k * 500), move |sim| {
                    a2.poll(sim);
                    b2.poll(sim);
                });
            }
            sim.run();
            recvs.iter().map(|r| r.completed_at()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
