//! Zero-copy regression tests: the engine's data path moves payloads by
//! reference-counted slicing, never by copying.
//!
//! `EngineStats::payload_bytes_copied` counts every payload byte the
//! engine memcpys. These tests pin it to **zero** on all four paths —
//! eager, aggregated eager, striped two-sided rendezvous, and RDMA
//! rendezvous — while also checking the received bytes are intact (a
//! trivially wrong zero-copy implementation would pass a counter check by
//! losing the data). The `copy_on_pack` ablation proves the counter
//! actually counts: flattening 4 × 512 B into packed frames must report
//! exactly 2048 copied bytes.

use bytes::Bytes;
use newmadeleine::{CommEngine, EngineConfig};
use piom_des::{Sim, SimTime};
use piom_net::{NetParams, Network};

fn pair(cfg: EngineConfig) -> (CommEngine, CommEngine, Sim) {
    let net = Network::new(2, 2, NetParams::infiniband());
    let a = CommEngine::new(0, net.clone(), cfg.clone());
    let b = CommEngine::new(1, net, cfg);
    (a, b, Sim::new())
}

fn drive(sim: &mut Sim, engines: &[&CommEngine], span: SimTime) {
    let start = sim.now();
    let mut t = SimTime::ZERO;
    while t < span {
        for e in engines {
            let e = (*e).clone();
            sim.schedule_abs(start + t, move |sim| {
                e.poll(sim);
            });
        }
        t += SimTime::from_ns(500);
    }
    sim.run();
}

/// Deterministic pseudo-random payload: position-dependent, so chunk
/// reordering or mis-slicing shows up as a content mismatch.
fn pattern(len: usize, seed: u8) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect::<Vec<u8>>(),
    )
}

fn assert_no_copies(tag: &str, engines: &[&CommEngine]) {
    for e in engines {
        assert_eq!(
            e.stats().payload_bytes_copied,
            0,
            "{tag}: node {} copied payload bytes",
            e.node()
        );
    }
}

#[test]
fn eager_path_is_zero_copy() {
    let (a, b, mut sim) = pair(EngineConfig::newmadeleine());
    let data = pattern(1024, 7);
    let r = b.irecv(&mut sim, 0, 1);
    a.isend_bytes(&mut sim, 1, 1, data.clone());
    drive(&mut sim, &[&a, &b], SimTime::from_us(50));
    assert!(r.is_complete());
    assert_eq!(
        r.payload().expect("payload delivered").to_vec().as_slice(),
        data.as_ref()
    );
    assert_no_copies("eager", &[&a, &b]);
}

#[test]
fn aggregated_path_is_zero_copy() {
    let (a, b, mut sim) = pair(EngineConfig::newmadeleine());
    let payloads: Vec<Bytes> = (0..8).map(|i| pattern(512, i)).collect();
    let recvs: Vec<_> = (0..8).map(|t| b.irecv(&mut sim, 0, t)).collect();
    let (a2, ps) = (a.clone(), payloads.clone());
    sim.schedule(SimTime::ZERO, move |sim| {
        for (tag, p) in ps.into_iter().enumerate() {
            a2.isend_bytes(sim, 1, tag as u64, p);
        }
    });
    drive(&mut sim, &[&a, &b], SimTime::from_us(100));
    assert!(a.stats().aggregate_packets >= 1, "burst must aggregate");
    for (r, p) in recvs.iter().zip(&payloads) {
        assert!(r.is_complete());
        assert_eq!(
            r.payload().expect("payload delivered").to_vec().as_slice(),
            p.as_ref()
        );
    }
    assert_no_copies("aggregate", &[&a, &b]);
}

#[test]
fn striped_rendezvous_is_zero_copy() {
    let (a, b, mut sim) = pair(EngineConfig::newmadeleine());
    let data = pattern(1 << 20, 3);
    let r = b.irecv(&mut sim, 0, 1);
    let s = a.isend_bytes(&mut sim, 1, 1, data.clone());
    drive(&mut sim, &[&a, &b], SimTime::from_ms(5));
    assert!(s.is_complete() && r.is_complete());
    assert!(
        a.stats().data_chunks_sent > 1,
        "1 MiB must be striped into several chunks"
    );
    // Reassembled from shared chunk windows — byte-identical to the source.
    assert_eq!(
        r.payload().expect("payload delivered").to_vec().as_slice(),
        data.as_ref()
    );
    assert_no_copies("striped rendezvous", &[&a, &b]);
}

#[test]
fn rdma_rendezvous_is_zero_copy() {
    let (a, b, mut sim) = pair(EngineConfig::baseline_mpi());
    let data = pattern(1 << 20, 5);
    let r = b.irecv(&mut sim, 0, 1);
    let s = a.isend_bytes(&mut sim, 1, 1, data.clone());
    drive(&mut sim, &[&a, &b], SimTime::from_ms(5));
    assert!(s.is_complete() && r.is_complete());
    assert_eq!(
        r.payload().expect("payload delivered").to_vec().as_slice(),
        data.as_ref()
    );
    assert_no_copies("rdma rendezvous", &[&a, &b]);
}

#[test]
fn copy_on_pack_ablation_counts_every_byte() {
    let cfg = EngineConfig {
        copy_on_pack: true,
        ..EngineConfig::newmadeleine()
    };
    let (a, b, mut sim) = pair(cfg);
    let payloads: Vec<Bytes> = (0..4).map(|i| pattern(512, i)).collect();
    let recvs: Vec<_> = (0..4).map(|t| b.irecv(&mut sim, 0, t)).collect();
    let (a2, ps) = (a.clone(), payloads.clone());
    sim.schedule(SimTime::ZERO, move |sim| {
        for (tag, p) in ps.into_iter().enumerate() {
            a2.isend_bytes(sim, 1, tag as u64, p);
        }
    });
    drive(&mut sim, &[&a, &b], SimTime::from_us(100));
    for (r, p) in recvs.iter().zip(&payloads) {
        assert!(r.is_complete());
        assert_eq!(
            r.payload().expect("payload delivered").to_vec().as_slice(),
            p.as_ref(),
            "the ablation may copy, it may not corrupt"
        );
    }
    // Every payload byte flattened exactly once on the sender; the
    // receiver still decodes in place.
    assert_eq!(a.stats().payload_bytes_copied, 4 * 512);
    assert_eq!(b.stats().payload_bytes_copied, 0);
}
