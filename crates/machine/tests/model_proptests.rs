//! Property tests on the simulated-machine models.

use piom_machine::simsched::microbench;
use piom_machine::CostModel;
use piom_topology::presets;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The microbenchmark conserves tasks: every round is executed exactly
    /// once by exactly one allowed core, for any seed and queue.
    #[test]
    fn microbench_conserves_tasks(seed in any::<u64>(), node_pick in 0usize..21) {
        let topo = presets::kwak();
        let cost = CostModel::kwak();
        let node = topo.node_ids().nth(node_pick).unwrap();
        let iters = 100;
        let r = microbench(&topo, &cost, node, iters, seed);
        prop_assert_eq!(r.executed_by_core.iter().sum::<u64>(), iters);
        let allowed = topo.node(node).cpuset;
        for (core, &n) in r.executed_by_core.iter().enumerate() {
            if n > 0 {
                prop_assert!(allowed.contains(core), "core {core} outside queue span");
            }
        }
        prop_assert_eq!(r.stats.count(), iters);
    }

    /// Hierarchy ordering is seed-independent: per-core <= per-NUMA <= global.
    #[test]
    fn level_ordering_holds_for_any_seed(seed in any::<u64>()) {
        let topo = presets::kwak();
        let cost = CostModel::kwak();
        let core0 = microbench(&topo, &cost, topo.core_node(0), 120, seed).mean_ns();
        let numa = microbench(
            &topo,
            &cost,
            topo.nodes_at_level(piom_topology::Level::NumaNode)[0],
            120,
            seed,
        )
        .mean_ns();
        let global = microbench(&topo, &cost, topo.root(), 120, seed).mean_ns();
        prop_assert!(core0 < numa, "{core0} !< {numa}");
        prop_assert!(numa < global, "{numa} !< {global}");
    }

    /// Determinism: equal seeds give bit-equal means.
    #[test]
    fn microbench_deterministic(seed in any::<u64>()) {
        let topo = presets::borderline();
        let cost = CostModel::borderline();
        let a = microbench(&topo, &cost, topo.root(), 60, seed).mean_ns();
        let b = microbench(&topo, &cost, topo.root(), 60, seed).mean_ns();
        prop_assert_eq!(a, b);
    }
}
