//! Discrete-event model of a spinlock on a NUMA machine.
//!
//! The paper attributes its Table I–II contention numbers to two spinlock
//! behaviours on NUMA hardware (§V-A):
//!
//! 1. **Handoff cost grows with distance**: passing the lock's cache line to
//!    the next owner costs an inter-core / inter-NUMA transfer.
//! 2. **NUMA-unfair arbitration**: "when the spinlock is released, the cores
//!    located on the same NUMA node notice it quickly while other cores have
//!    to wait the notification to their NUMA node" — so nearby waiters win,
//!    task execution skews toward one node, and each extra spinner's cache
//!    traffic ("interference") stretches every handoff.
//!
//! [`SimSpinLock`] reproduces both: the winner of a release is the waiter
//! with the smallest jittered transfer distance from the releasing core, and
//! each remaining active spinner adds `spin_interference_ns` to the handoff.

use crate::cost::CostModel;
use piom_des::rng::SplitMix64;
use piom_des::{Sim, SimTime};
use piom_topology::Topology;
use std::cell::RefCell;
use std::rc::Rc;

/// Shared simulation context: one machine's topology, costs and RNG.
pub struct MachineCtx {
    /// The machine's topology.
    pub topo: Topology,
    /// The machine's latency parameters.
    pub cost: CostModel,
    /// Deterministic RNG for jitter.
    pub rng: RefCell<SplitMix64>,
}

impl MachineCtx {
    /// Creates a context with a deterministic seed.
    pub fn new(topo: Topology, cost: CostModel, seed: u64) -> Rc<Self> {
        Rc::new(MachineCtx {
            topo,
            cost,
            rng: RefCell::new(SplitMix64::new(seed)),
        })
    }

    /// Jittered cache-line transfer latency between two cores.
    pub fn transfer(&self, from: usize, to: usize) -> SimTime {
        let base = self.cost.transfer(&self.topo, from, to);
        let j = self.rng.borrow_mut().jitter(self.cost.jitter);
        base.scale(j)
    }

    /// Uniform delay in `[0, poll_interval)`: where in its poll loop a core
    /// happens to be when an event becomes visible.
    pub fn poll_phase(&self) -> SimTime {
        let p = self.cost.poll_interval_ns;
        SimTime::from_ns(self.rng.borrow_mut().next_below(p.max(1)))
    }
}

struct Waiter {
    core: usize,
    arrived: SimTime,
    cont: Box<dyn FnOnce(&mut Sim)>,
}

struct LockState {
    held: bool,
    /// Core that last owned the lock (the cache line's current home).
    last_owner: usize,
    waiters: Vec<Waiter>,
    acquisitions: u64,
    contended: u64,
    /// Handoffs tallied by the locality class between consecutive owners.
    handoffs_by_locality: [u64; 5],
}

/// A spinlock in simulated time. Clone-able handle (shared state).
///
/// The API is continuation-passing: `acquire` runs the supplied closure at
/// the simulated instant the lock is granted; the closure (or a follow-up
/// event) must call `release`.
#[derive(Clone)]
pub struct SimSpinLock {
    ctx: Rc<MachineCtx>,
    st: Rc<RefCell<LockState>>,
}

impl SimSpinLock {
    /// A fresh, unlocked lock whose cache line starts on `home_core`.
    pub fn new(ctx: Rc<MachineCtx>, home_core: usize) -> Self {
        SimSpinLock {
            ctx,
            st: Rc::new(RefCell::new(LockState {
                held: false,
                last_owner: home_core,
                waiters: Vec::new(),
                acquisitions: 0,
                contended: 0,
                handoffs_by_locality: [0; 5],
            })),
        }
    }

    /// Requests the lock for `core`; `cont` runs when it is granted.
    ///
    /// An immediate grant still pays `lock_base` plus the transfer of the
    /// lock's cache line from its previous owner.
    pub fn acquire<F: FnOnce(&mut Sim) + 'static>(&self, sim: &mut Sim, core: usize, cont: F) {
        let mut st = self.st.borrow_mut();
        if !st.held {
            st.held = true;
            st.acquisitions += 1;
            let loc = self.ctx.topo.locality(st.last_owner, core);
            st.handoffs_by_locality[loc.distance()] += 1;
            // Uncontended grant: the CAS overlaps with the line movement of
            // the check that led here; pay only a configured fraction.
            let delay = self.ctx.cost.lock_base()
                + self
                    .ctx
                    .transfer(st.last_owner, core)
                    .scale(self.ctx.cost.uncontended_transfer_fraction);
            st.last_owner = core;
            drop(st);
            sim.schedule(delay, cont);
        } else {
            st.contended += 1;
            st.waiters.push(Waiter {
                core,
                arrived: sim.now(),
                cont: Box::new(cont),
            });
        }
    }

    /// Releases the lock held by `core`.
    ///
    /// If spinners are waiting, the next owner is chosen by smallest
    /// jittered transfer distance from `core` (NUMA-unfair handoff), and the
    /// grant is delayed by the transfer plus `spin_interference_ns` per
    /// remaining spinner (their cache traffic steals line ownership).
    pub fn release(&self, sim: &mut Sim, core: usize) {
        let mut st = self.st.borrow_mut();
        debug_assert!(st.held, "release of an unheld SimSpinLock");
        debug_assert_eq!(st.last_owner, core, "release by non-owner");
        if st.waiters.is_empty() {
            st.held = false;
            return;
        }
        // NUMA-biased winner: nearest waiter (jittered), FIFO on ties.
        let winner_idx = (0..st.waiters.len())
            .min_by_key(|&i| {
                let w = &st.waiters[i];
                (self.ctx.transfer(core, w.core).as_ns(), w.arrived)
            })
            .expect("nonempty");
        let winner = st.waiters.swap_remove(winner_idx);
        let spinners = st.waiters.len() as u64;
        st.acquisitions += 1;
        let loc = self.ctx.topo.locality(core, winner.core);
        st.handoffs_by_locality[loc.distance()] += 1;
        st.last_owner = winner.core;
        let delay = self.ctx.cost.lock_base()
            + self.ctx.transfer(core, winner.core)
            + SimTime::from_ns(self.ctx.cost.spin_interference_ns * spinners);
        drop(st);
        sim.schedule(delay, winner.cont);
    }

    /// Total grants so far.
    pub fn acquisitions(&self) -> u64 {
        self.st.borrow().acquisitions
    }

    /// Requests that found the lock held.
    pub fn contended(&self) -> u64 {
        self.st.borrow().contended
    }

    /// Handoff counts by locality class between consecutive owners
    /// (index = `Locality::distance()`).
    pub fn handoffs_by_locality(&self) -> [u64; 5] {
        self.st.borrow().handoffs_by_locality
    }

    /// Waiters currently spinning (racy diagnostic).
    pub fn spinner_count(&self) -> usize {
        self.st.borrow().waiters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piom_topology::presets;
    use std::cell::Cell;

    fn ctx() -> Rc<MachineCtx> {
        MachineCtx::new(presets::kwak(), CostModel::kwak(), 1)
    }

    #[test]
    fn uncontended_acquire_release() {
        let ctx = ctx();
        let lock = SimSpinLock::new(ctx, 0);
        let mut sim = Sim::new();
        let granted = Rc::new(Cell::new(false));
        let g = granted.clone();
        let l2 = lock.clone();
        lock.acquire(&mut sim, 0, move |sim| {
            g.set(true);
            l2.release(sim, 0);
        });
        sim.run();
        assert!(granted.get());
        assert_eq!(lock.acquisitions(), 1);
        assert_eq!(lock.contended(), 0);
        assert_eq!(lock.spinner_count(), 0);
    }

    #[test]
    fn contended_remote_handoff_costs_a_transfer() {
        // Uncontended grants pay ~lock_base regardless of distance (the CAS
        // overlaps the line movement of the preceding check); a *handoff*
        // to a cross-NUMA waiter pays the full transfer.
        let ctx = ctx();
        let lock = SimSpinLock::new(ctx.clone(), 0);
        let mut sim = Sim::new();
        let uncontended_at = Rc::new(Cell::new(SimTime::ZERO));
        let handoff_span = Rc::new(Cell::new(SimTime::ZERO));
        let u = uncontended_at.clone();
        let h = handoff_span.clone();
        let l = lock.clone();
        lock.acquire(&mut sim, 12, move |sim| {
            u.set(sim.now()); // uncontended remote grant
            let release_at = sim.now() + SimTime::from_ns(20);
            let lw = l.clone();
            // Core 0 waits; handoff 12 -> 0 is cross-NUMA.
            l.acquire(sim, 0, move |sim| {
                h.set(sim.now() - release_at);
                lw.release(sim, 0);
            });
            let lr = l.clone();
            sim.schedule(SimTime::from_ns(20), move |sim| lr.release(sim, 12));
        });
        sim.run();
        assert!(
            uncontended_at.get().as_ns() < 100,
            "uncontended remote grant should be cheap: {}",
            uncontended_at.get()
        );
        assert!(
            handoff_span.get().as_ns() > 900,
            "contended cross-NUMA handoff should pay a transfer: {}",
            handoff_span.get()
        );
    }

    #[test]
    fn nearby_waiter_wins_handoff() {
        let ctx = ctx();
        let lock = SimSpinLock::new(ctx, 0);
        let mut sim = Sim::new();
        let order: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        // Core 0 takes the lock, then cores 12 (far) and 1 (near) wait.
        let l = lock.clone();
        let o = order.clone();
        lock.acquire(&mut sim, 0, move |sim| {
            let lw = l.clone();
            let ow = o.clone();
            // Waiters arrive while held; far one arrives first.
            l.acquire(sim, 12, {
                let lw = lw.clone();
                let ow = ow.clone();
                move |sim| {
                    ow.borrow_mut().push(12);
                    lw.release(sim, 12);
                }
            });
            l.acquire(sim, 1, {
                let lw = lw.clone();
                let ow = ow.clone();
                move |sim| {
                    ow.borrow_mut().push(1);
                    lw.release(sim, 1);
                }
            });
            let lr = l.clone();
            sim.schedule(SimTime::from_ns(50), move |sim| lr.release(sim, 0));
        });
        sim.run();
        assert_eq!(
            *order.borrow(),
            vec![1, 12],
            "NUMA-near waiter preempts FIFO"
        );
        assert_eq!(lock.contended(), 2);
        assert_eq!(lock.acquisitions(), 3);
    }

    #[test]
    fn interference_stretches_handoffs() {
        // Grant time to the winner grows with the number of other spinners.
        let durations: Vec<u64> = [0usize, 6]
            .iter()
            .map(|&extra_spinners| {
                let ctx = MachineCtx::new(presets::kwak(), CostModel::kwak(), 7);
                let lock = SimSpinLock::new(ctx, 0);
                let mut sim = Sim::new();
                let winner_at = Rc::new(Cell::new(SimTime::ZERO));
                let l = lock.clone();
                let w = winner_at.clone();
                lock.acquire(&mut sim, 0, move |sim| {
                    // One measured waiter (core 1) + extra spinners.
                    let lw = l.clone();
                    let ww = w.clone();
                    l.acquire(sim, 1, move |sim| {
                        ww.set(sim.now());
                        lw.release(sim, 1);
                    });
                    for s in 0..extra_spinners {
                        let core = 4 + s; // other NUMA node
                        let lw = l.clone();
                        l.acquire(sim, core, move |sim| lw.release(sim, core));
                    }
                    let lr = l.clone();
                    sim.schedule(SimTime::from_ns(10), move |sim| lr.release(sim, 0));
                });
                sim.run();
                winner_at.get().as_ns()
            })
            .collect();
        assert!(
            durations[1] > durations[0] + 5 * CostModel::kwak().spin_interference_ns,
            "6 spinners should add >=6x interference: {durations:?}"
        );
    }

    #[test]
    fn handoff_locality_tally() {
        let ctx = ctx();
        let lock = SimSpinLock::new(ctx, 0);
        let mut sim = Sim::new();
        let l = lock.clone();
        lock.acquire(&mut sim, 0, move |sim| l.release(sim, 0));
        let l = lock.clone();
        sim.schedule(SimTime::from_us(1), move |sim| {
            let lr = l.clone();
            l.acquire(sim, 13, move |sim| lr.release(sim, 13));
        });
        sim.run();
        let tally = lock.handoffs_by_locality();
        assert_eq!(tally.iter().sum::<u64>(), 2);
        assert_eq!(tally[0], 1, "self-grant on core 0");
        assert_eq!(tally[4], 1, "cross-NUMA grant to core 13");
    }
}
