//! Cost model: how long memory-system operations take on a simulated machine.
//!
//! All costs are in nanoseconds of simulated time. The presets are
//! calibrated so the §V-A microbenchmark lands in the ranges the paper
//! reports (see `EXPERIMENTS.md` for paper-vs-measured); the *structure* —
//! which operations pay which distance — is what carries the result, not
//! the constants.

use piom_des::SimTime;
use piom_topology::{Locality, Topology};

/// Latency parameters of a simulated machine's memory system.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Cache-line transfer latency indexed by [`Locality`] discriminant
    /// (self, shared cache, same chip, same NUMA node, cross NUMA).
    pub transfer_ns: [u64; 5],
    /// Fixed cost of creating + locally scheduling + completing an empty
    /// task (the paper's ~700 ns reference, §V-A).
    pub base_local_ns: u64,
    /// Extra cost when the submitting core also executes the task (the
    /// paper measured ~25 ns on core #0, §V-A).
    pub self_execution_overhead_ns: u64,
    /// Uncontended lock acquire/release round.
    pub lock_base_ns: u64,
    /// Fraction of the cache-line transfer latency paid by an *uncontended*
    /// acquire. An uncontended CAS mostly overlaps with the line movement of
    /// the emptiness check that preceded it, so this is near zero; contended
    /// handoffs always pay the full transfer.
    pub uncontended_transfer_fraction: f64,
    /// Time a spinning waiter "steals" from the handoff (cache-line
    /// interference per additional active spinner).
    pub spin_interference_ns: u64,
    /// Cost added to an enqueue for each *other* core continuously polling
    /// the same queue: their shared copies of the queue's cache lines must
    /// be invalidated and re-fetched on every write (steady-state MESI
    /// traffic on a shared queue).
    pub poll_pressure_ns: u64,
    /// Granularity at which an idle core re-polls its queues.
    pub poll_interval_ns: u64,
    /// Cost of a context switch (used by the thread-scheduler model).
    pub context_switch_ns: u64,
    /// Timer interrupt period (thread-scheduler model).
    pub timer_slice_ns: u64,
    /// Multiplicative jitter spread applied to transfers (0 = none).
    pub jitter: f64,
}

impl CostModel {
    /// Model for `borderline`: 4-socket dual-core, no L3, single memory
    /// domain per socket. Inter-chip traffic is cheap HyperTransport
    /// (~100 ns observed overhead in Table I).
    pub fn borderline() -> Self {
        CostModel {
            //            self, cache, chip, numa, xnuma
            transfer_ns: [0, 40, 55, 95, 950],
            base_local_ns: 640,
            self_execution_overhead_ns: 25,
            lock_base_ns: 15,
            uncontended_transfer_fraction: 0.0,
            spin_interference_ns: 110,
            poll_pressure_ns: 250,
            poll_interval_ns: 40,
            context_switch_ns: 1_500,
            timer_slice_ns: 10_000_000, // 10 ms Linux-ish tick
            jitter: 0.04,
        }
    }

    /// Model for `kwak`: 4 NUMA nodes, shared L3 per socket. Cross-NUMA
    /// transfers cost ~1 µs (Table II's remote per-core overhead).
    pub fn kwak() -> Self {
        CostModel {
            transfer_ns: [0, 45, 60, 80, 1_030],
            base_local_ns: 590,
            self_execution_overhead_ns: 25,
            lock_base_ns: 15,
            uncontended_transfer_fraction: 0.0,
            spin_interference_ns: 130,
            poll_pressure_ns: 230,
            poll_interval_ns: 40,
            context_switch_ns: 1_500,
            timer_slice_ns: 10_000_000,
            jitter: 0.04,
        }
    }

    /// A neutral model for generic scaling studies.
    pub fn generic() -> Self {
        CostModel {
            transfer_ns: [0, 40, 80, 120, 800],
            base_local_ns: 700,
            self_execution_overhead_ns: 25,
            lock_base_ns: 15,
            uncontended_transfer_fraction: 0.0,
            spin_interference_ns: 100,
            poll_pressure_ns: 220,
            poll_interval_ns: 40,
            context_switch_ns: 1_500,
            timer_slice_ns: 10_000_000,
            jitter: 0.04,
        }
    }

    /// Cache-line transfer latency between two cores of `topo`.
    pub fn transfer(&self, topo: &Topology, from: usize, to: usize) -> SimTime {
        SimTime::from_ns(self.transfer_ns[topo.locality(from, to).distance()])
    }

    /// Transfer latency for a pre-computed locality class.
    pub fn transfer_for(&self, locality: Locality) -> SimTime {
        SimTime::from_ns(self.transfer_ns[locality.distance()])
    }

    /// Uncontended lock round-trip.
    pub fn lock_base(&self) -> SimTime {
        SimTime::from_ns(self.lock_base_ns)
    }

    /// Idle-core poll period.
    pub fn poll_interval(&self) -> SimTime {
        SimTime::from_ns(self.poll_interval_ns)
    }

    /// Context-switch cost.
    pub fn context_switch(&self) -> SimTime {
        SimTime::from_ns(self.context_switch_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piom_topology::presets;

    #[test]
    fn transfer_monotone_in_distance() {
        for model in [
            CostModel::borderline(),
            CostModel::kwak(),
            CostModel::generic(),
        ] {
            for w in model.transfer_ns.windows(2) {
                assert!(w[0] <= w[1], "transfer cost must grow with distance");
            }
        }
    }

    #[test]
    fn kwak_cross_numa_is_expensive() {
        let m = CostModel::kwak();
        let t = presets::kwak();
        let local = m.transfer(&t, 0, 1);
        let remote = m.transfer(&t, 0, 12);
        assert!(remote.as_ns() > 10 * local.as_ns());
        assert_eq!(m.transfer(&t, 3, 3), SimTime::ZERO);
    }

    #[test]
    fn borderline_interchip_is_cheap() {
        let m = CostModel::borderline();
        let t = presets::borderline();
        // Inter-chip on borderline stays within one memory domain: ~100 ns.
        let cross = m.transfer(&t, 0, 5);
        assert!(cross.as_ns() < 200, "got {cross}");
    }

    #[test]
    fn locality_indexing_matches_enum() {
        let m = CostModel::generic();
        assert_eq!(m.transfer_for(Locality::SelfCore), SimTime::ZERO);
        assert_eq!(
            m.transfer_for(Locality::CrossNuma).as_ns(),
            m.transfer_ns[4]
        );
    }
}
