//! Simulated multicore NUMA machine.
//!
//! The paper evaluates PIOMan on two real machines — `borderline` (4-socket
//! dual-core Opteron) and `kwak` (4-socket quad-core Opteron, 4 NUMA nodes)
//! — that this environment does not have. Per the substitution policy in
//! `DESIGN.md`, this crate models the *mechanisms the paper attributes its
//! numbers to*, on top of the [`piom_des`] kernel:
//!
//! * [`CostModel`] — cache-line transfer latencies by topological distance,
//!   lock handoff costs, poll granularity; presets calibrated per machine;
//! * [`SimSpinLock`] — a discrete-event spinlock whose arbitration exhibits
//!   the two phenomena driving Tables I–II: handoff cost scales with the
//!   topological distance between consecutive owners, and waiters close to
//!   the releasing core win the next acquisition (the NUMA-unfair handoff
//!   the paper uses to explain the skewed task distribution, §V-A);
//! * [`simsched`] — the paper's hierarchical task scheduler (Algorithms 1–2)
//!   instantiated on the simulated machine, including the §V-A microbenchmark
//!   that regenerates Tables I and II;
//! * [`threads`] — a simulated thread scheduler (run queues, context
//!   switches, timer ticks, idle detection) with PIOMan keypoint hooks: the
//!   MARCEL substitute used by the latency/overlap experiments.
//!
//! # Quick start
//!
//! Regenerate one Table I cell: the mean cost of submitting from core 0
//! and executing through a given queue, on the simulated `borderline`
//! machine (costs grow with the queue's topological span):
//!
//! ```
//! use piom_machine::{simsched, CostModel};
//! use piom_topology::presets;
//!
//! let topo = presets::borderline();
//! let cost = CostModel::borderline();
//! let per_core = simsched::microbench(&topo, &cost, topo.core_node(0), 50, 42);
//! let global = simsched::microbench(&topo, &cost, topo.root(), 50, 42);
//! assert!(per_core.mean_ns() < global.mean_ns());
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod simsched;
pub mod spinlock_model;
pub mod threads;

pub use cost::CostModel;
pub use spinlock_model::SimSpinLock;
