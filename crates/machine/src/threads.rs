//! A simulated thread scheduler with PIOMan keypoint hooks.
//!
//! The real PIOMan rides on MARCEL, a user-level thread scheduler that
//! "schedules PIOMan on some triggers (CPU idleness, context switches, timer
//! interrupts) so as to ensure a fast detection of communication events"
//! (§IV-A). This module is the simulated-machine equivalent: a preemptive
//! round-robin scheduler over the machine's cores, firing a caller-supplied
//! hook at exactly those three keypoint kinds.
//!
//! Threads are continuation-style state machines: whenever the scheduler is
//! ready to run a thread, it asks the thread's *logic* for the next
//! [`Step`] — compute for a while, block on a [`CondId`], yield, or exit.
//! This is how the latency and overlap experiments (Figs. 4–7) model their
//! application threads: computing occupies the core (no progress happens
//! unless a hook fires or another core is idle), blocking frees the core
//! (the scheduler goes idle and the idle hook — i.e. PIOMan — runs).

use crate::spinlock_model::MachineCtx;
use piom_des::{Sim, SimTime};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// What a thread does next.
pub enum Step {
    /// Occupy the core for this long (preempted at timer-slice boundaries).
    Compute(SimTime),
    /// Sleep until [`ThreadSched::notify`] is called on this condition.
    Block(CondId),
    /// Go to the back of the run queue.
    Yield,
    /// Terminate the thread.
    Exit,
}

/// Identifier of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId(pub usize);

/// Identifier of a simulated condition variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CondId(pub usize);

/// The scheduler keypoints at which the hook fires (paper §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keypoint {
    /// A core has no ready thread.
    Idle,
    /// The core switched from one thread to another.
    ContextSwitch,
    /// A compute quantum expired (timer interrupt).
    Timer,
}

/// The hook invoked at keypoints: `(sim, core, keypoint)`. This is where a
/// communication engine plugs its task scheduling in. Returns `true` if it
/// performed work (diagnostic only).
pub type Hook = Rc<dyn Fn(&mut Sim, usize, Keypoint) -> bool>;

/// Thread logic: called each time the scheduler needs the thread's next
/// step. Arguments: `(sim, own thread id)`.
pub type Logic = Box<dyn FnMut(&mut Sim, ThreadId) -> Step>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Ready,
    Running,
    Blocked,
    Done,
}

struct ThreadSt {
    state: ThreadState,
    logic: Option<Logic>,
    /// Remainder of a preempted compute step.
    remaining: Option<SimTime>,
    core: usize,
}

struct CoreSt {
    run_queue: VecDeque<ThreadId>,
    current: Option<ThreadId>,
    /// Set while a dispatch/idle-loop event chain is pending.
    dispatch_pending: bool,
    context_switches: u64,
}

struct SchedState {
    ctx: Rc<MachineCtx>,
    threads: Vec<ThreadSt>,
    conds: Vec<Vec<ThreadId>>,
    cores: Vec<CoreSt>,
    hook: Option<Hook>,
    /// Idle re-poll period (how often an idle core fires the idle hook).
    idle_repoll: SimTime,
    live_threads: usize,
    /// When true, idle cores stop re-polling once no thread is live
    /// (lets the embedding `Sim::run` terminate).
    park_when_done: bool,
}

/// A simulated preemptive thread scheduler for one machine.
///
/// Cloneable handle (shared state). Typical use: create, [`set_hook`],
/// spawn threads, then drive the embedding [`Sim`] to completion.
///
/// [`set_hook`]: ThreadSched::set_hook
#[derive(Clone)]
pub struct ThreadSched {
    st: Rc<RefCell<SchedState>>,
}

impl ThreadSched {
    /// Creates a scheduler for the machine described by `ctx`.
    pub fn new(ctx: Rc<MachineCtx>) -> Self {
        let n = ctx.topo.n_cores();
        ThreadSched {
            st: Rc::new(RefCell::new(SchedState {
                ctx,
                threads: Vec::new(),
                conds: Vec::new(),
                cores: (0..n)
                    .map(|_| CoreSt {
                        run_queue: VecDeque::new(),
                        current: None,
                        dispatch_pending: false,
                        context_switches: 0,
                    })
                    .collect(),
                hook: None,
                idle_repoll: SimTime::from_ns(200),
                live_threads: 0,
                park_when_done: true,
            })),
        }
    }

    /// Installs the keypoint hook (PIOMan's entry point).
    pub fn set_hook(&self, hook: Hook) {
        self.st.borrow_mut().hook = Some(hook);
    }

    /// Sets the idle re-poll period (default 200 ns).
    pub fn set_idle_repoll(&self, t: SimTime) {
        self.st.borrow_mut().idle_repoll = t;
    }

    /// Creates a condition variable.
    pub fn new_cond(&self) -> CondId {
        let mut st = self.st.borrow_mut();
        st.conds.push(Vec::new());
        CondId(st.conds.len() - 1)
    }

    /// Spawns a thread pinned to `core`; it becomes runnable immediately.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn spawn(&self, sim: &mut Sim, core: usize, logic: Logic) -> ThreadId {
        let tid = {
            let mut st = self.st.borrow_mut();
            assert!(core < st.cores.len(), "core out of range");
            st.threads.push(ThreadSt {
                state: ThreadState::Ready,
                logic: Some(logic),
                remaining: None,
                core,
            });
            st.live_threads += 1;
            let tid = ThreadId(st.threads.len() - 1);
            st.cores[core].run_queue.push_back(tid);
            tid
        };
        // Kick every core, not just the target: once the machine has any
        // live thread, all cores run their idle loops (and hence fire the
        // idle keypoint, where PIOMan progresses communication).
        let n = self.st.borrow().cores.len();
        for c in 0..n {
            self.kick(sim, c);
        }
        tid
    }

    /// Wakes every thread blocked on `cond`.
    pub fn notify(&self, sim: &mut Sim, cond: CondId) {
        let cores: Vec<usize> = {
            let mut st = self.st.borrow_mut();
            let waiters = std::mem::take(&mut st.conds[cond.0]);
            let mut cores = Vec::with_capacity(waiters.len());
            for tid in waiters {
                st.threads[tid.0].state = ThreadState::Ready;
                let core = st.threads[tid.0].core;
                st.cores[core].run_queue.push_back(tid);
                cores.push(core);
            }
            cores
        };
        for core in cores {
            self.kick(sim, core);
        }
    }

    /// Number of threads not yet exited.
    pub fn live_threads(&self) -> usize {
        self.st.borrow().live_threads
    }

    /// Context switches performed on `core`.
    pub fn context_switches(&self, core: usize) -> u64 {
        self.st.borrow().cores[core].context_switches
    }

    /// Keeps idle cores re-polling even when no thread is live (needed when
    /// work arrives from outside the thread system; off by default so
    /// simulations terminate).
    pub fn set_idle_forever(&self, on: bool) {
        self.st.borrow_mut().park_when_done = !on;
    }

    /// Ensures `core` has a dispatch event pending if it is sitting idle.
    fn kick(&self, sim: &mut Sim, core: usize) {
        let should_dispatch = {
            let mut st = self.st.borrow_mut();
            let c = &mut st.cores[core];
            if c.current.is_none() && !c.dispatch_pending {
                c.dispatch_pending = true;
                true
            } else {
                false
            }
        };
        if should_dispatch {
            let this = self.clone();
            sim.schedule(SimTime::ZERO, move |sim| this.dispatch(sim, core));
        }
    }

    /// Picks and runs the next thread on `core`, or enters the idle loop.
    fn dispatch(&self, sim: &mut Sim, core: usize) {
        let (next, hook, switch_cost) = {
            let mut st = self.st.borrow_mut();
            st.cores[core].dispatch_pending = false;
            let next = st.cores[core].run_queue.pop_front();
            let cost = st.ctx.cost.context_switch();
            (next, st.hook.clone(), cost)
        };
        match next {
            Some(tid) => {
                {
                    let mut st = self.st.borrow_mut();
                    st.cores[core].current = Some(tid);
                    st.cores[core].context_switches += 1;
                    st.threads[tid.0].state = ThreadState::Running;
                }
                // Keypoint: context switch. PIOMan gets a shot before the
                // thread starts its quantum.
                if let Some(h) = &hook {
                    h(sim, core, Keypoint::ContextSwitch);
                }
                let this = self.clone();
                sim.schedule(switch_cost, move |sim| this.run_step(sim, core, tid));
            }
            None => {
                // Keypoint: idle. Fire the hook, then re-poll.
                if let Some(h) = &hook {
                    h(sim, core, Keypoint::Idle);
                }
                let repoll = {
                    let mut st = self.st.borrow_mut();
                    if st.park_when_done && st.live_threads == 0 {
                        return; // machine quiesces; let the sim drain
                    }
                    st.cores[core].dispatch_pending = true;
                    st.idle_repoll
                };
                let this = self.clone();
                sim.schedule(repoll, move |sim| this.dispatch(sim, core));
            }
        }
    }

    /// Runs one step (or preempted remainder) of `tid` on `core`.
    fn run_step(&self, sim: &mut Sim, core: usize, tid: ThreadId) {
        // Resume a preempted compute, or ask the thread logic for its next
        // step (logic is temporarily moved out so it can borrow the world).
        let pending = self.st.borrow_mut().threads[tid.0].remaining.take();
        let step = match pending {
            Some(rem) => Step::Compute(rem),
            None => {
                let mut logic = {
                    let mut st = self.st.borrow_mut();
                    st.threads[tid.0]
                        .logic
                        .take()
                        .expect("running thread has logic")
                };
                let s = logic(sim, tid);
                self.st.borrow_mut().threads[tid.0].logic = Some(logic);
                s
            }
        };
        match step {
            Step::Compute(d) => {
                let slice = {
                    let st = self.st.borrow();
                    SimTime::from_ns(st.ctx.cost.timer_slice_ns)
                };
                if d > slice {
                    // Quantum expires mid-compute: timer keypoint, requeue.
                    {
                        let mut st = self.st.borrow_mut();
                        st.threads[tid.0].remaining = Some(d - slice);
                    }
                    let this = self.clone();
                    sim.schedule(slice, move |sim| {
                        let hook = this.st.borrow().hook.clone();
                        if let Some(h) = &hook {
                            h(sim, core, Keypoint::Timer);
                        }
                        this.preempt(sim, core, tid);
                    });
                } else {
                    let this = self.clone();
                    sim.schedule(d, move |sim| this.run_step(sim, core, tid));
                }
            }
            Step::Block(cond) => {
                {
                    let mut st = self.st.borrow_mut();
                    st.threads[tid.0].state = ThreadState::Blocked;
                    st.conds[cond.0].push(tid);
                    st.cores[core].current = None;
                }
                self.dispatch(sim, core);
            }
            Step::Yield => {
                {
                    let mut st = self.st.borrow_mut();
                    st.threads[tid.0].state = ThreadState::Ready;
                    st.cores[core].run_queue.push_back(tid);
                    st.cores[core].current = None;
                }
                self.dispatch(sim, core);
            }
            Step::Exit => {
                {
                    let mut st = self.st.borrow_mut();
                    st.threads[tid.0].state = ThreadState::Done;
                    st.threads[tid.0].logic = None;
                    st.cores[core].current = None;
                    st.live_threads -= 1;
                }
                self.dispatch(sim, core);
            }
        }
    }

    /// Timer preemption: requeue `tid` and dispatch the next thread.
    fn preempt(&self, sim: &mut Sim, core: usize, tid: ThreadId) {
        {
            let mut st = self.st.borrow_mut();
            st.threads[tid.0].state = ThreadState::Ready;
            st.cores[core].run_queue.push_back(tid);
            st.cores[core].current = None;
        }
        self.dispatch(sim, core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use piom_topology::presets;
    use std::cell::Cell;

    fn sched() -> (ThreadSched, Sim) {
        let ctx = MachineCtx::new(presets::borderline(), CostModel::borderline(), 3);
        (ThreadSched::new(ctx), Sim::new())
    }

    #[test]
    fn single_thread_computes_then_exits() {
        let (sched, mut sim) = sched();
        let done_at = Rc::new(Cell::new(SimTime::ZERO));
        let d = done_at.clone();
        let mut phase = 0;
        sched.spawn(
            &mut sim,
            0,
            Box::new(move |sim, _| {
                phase += 1;
                match phase {
                    1 => Step::Compute(SimTime::from_us(5)),
                    _ => {
                        d.set(sim.now());
                        Step::Exit
                    }
                }
            }),
        );
        sim.run();
        assert!(done_at.get() >= SimTime::from_us(5));
        assert_eq!(sched.live_threads(), 0);
    }

    #[test]
    fn round_robin_interleaves_threads() {
        let (sched, mut sim) = sched();
        // Two CPU-bound threads on one core, each computing 3 long slices.
        let log: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for who in 0..2usize {
            let log = log.clone();
            let mut steps = 0;
            sched.spawn(
                &mut sim,
                0,
                Box::new(move |_, _| {
                    steps += 1;
                    if steps <= 3 {
                        log.borrow_mut().push(who);
                        // Longer than the 10 ms timer slice => preemption.
                        Step::Compute(SimTime::from_ms(25))
                    } else {
                        Step::Exit
                    }
                }),
            );
        }
        sim.run();
        let log = log.borrow();
        let first_of_1 = log.iter().position(|&w| w == 1).unwrap();
        let last_of_0 = log.iter().rposition(|&w| w == 0).unwrap();
        assert!(first_of_1 < last_of_0, "no interleaving observed: {log:?}");
    }

    #[test]
    fn block_and_notify() {
        let (sched, mut sim) = sched();
        let cond = sched.new_cond();
        let woke_at = Rc::new(Cell::new(SimTime::ZERO));
        let w = woke_at.clone();
        let mut phase = 0;
        sched.spawn(
            &mut sim,
            0,
            Box::new(move |sim, _| {
                phase += 1;
                match phase {
                    1 => Step::Block(cond),
                    _ => {
                        w.set(sim.now());
                        Step::Exit
                    }
                }
            }),
        );
        let s2 = sched.clone();
        sim.schedule(SimTime::from_us(50), move |sim| s2.notify(sim, cond));
        sim.run();
        assert!(woke_at.get() >= SimTime::from_us(50), "woke early");
        assert_eq!(sched.live_threads(), 0);
    }

    #[test]
    fn idle_hook_fires_when_core_empty() {
        let (sched, mut sim) = sched();
        let idle_hits = Rc::new(Cell::new(0u64));
        let h = idle_hits.clone();
        sched.set_hook(Rc::new(move |_, _, k| {
            if k == Keypoint::Idle {
                h.set(h.get() + 1);
            }
            false
        }));
        // A thread that blocks forever: its core then idles.
        let cond = sched.new_cond();
        sched.spawn(&mut sim, 0, Box::new(move |_, _| Step::Block(cond)));
        sim.run_until(SimTime::from_us(10));
        assert!(
            idle_hits.get() > 10,
            "idle hook barely fired: {}",
            idle_hits.get()
        );
    }

    #[test]
    fn timer_hook_fires_during_long_compute() {
        let (sched, mut sim) = sched();
        let timer_hits = Rc::new(Cell::new(0u64));
        let h = timer_hits.clone();
        sched.set_hook(Rc::new(move |_, _, k| {
            if k == Keypoint::Timer {
                h.set(h.get() + 1);
            }
            false
        }));
        let mut phase = 0;
        sched.spawn(
            &mut sim,
            1,
            Box::new(move |_, _| {
                phase += 1;
                if phase == 1 {
                    Step::Compute(SimTime::from_ms(45)) // 4 slices of 10 ms
                } else {
                    Step::Exit
                }
            }),
        );
        sim.run();
        assert_eq!(timer_hits.get(), 4);
    }

    #[test]
    fn context_switch_hook_and_counters() {
        let (sched, mut sim) = sched();
        let cs_hits = Rc::new(Cell::new(0u64));
        let h = cs_hits.clone();
        sched.set_hook(Rc::new(move |_, _, k| {
            if k == Keypoint::ContextSwitch {
                h.set(h.get() + 1);
            }
            false
        }));
        for _ in 0..3 {
            let mut phase = 0;
            sched.spawn(
                &mut sim,
                2,
                Box::new(move |_, _| {
                    phase += 1;
                    if phase <= 2 {
                        Step::Yield
                    } else {
                        Step::Exit
                    }
                }),
            );
        }
        sim.run();
        assert_eq!(sched.context_switches(2), cs_hits.get());
        assert!(cs_hits.get() >= 9, "3 threads x 3 dispatches");
    }

    #[test]
    fn threads_on_different_cores_run_in_parallel() {
        let (sched, mut sim) = sched();
        let finish: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
        for core in [0usize, 3] {
            let f = finish.clone();
            let mut phase = 0;
            sched.spawn(
                &mut sim,
                core,
                Box::new(move |sim, _| {
                    phase += 1;
                    if phase == 1 {
                        Step::Compute(SimTime::from_ms(5))
                    } else {
                        f.borrow_mut().push(sim.now());
                        Step::Exit
                    }
                }),
            );
        }
        sim.run();
        let f = finish.borrow();
        assert_eq!(f.len(), 2);
        // True parallelism: both finish ~5 ms, not 10 ms serialized.
        for t in f.iter() {
            assert!(*t < SimTime::from_ms(6), "serialized execution: {t}");
        }
    }

    #[test]
    fn oversubscription_slows_completion() {
        // 8 CPU-bound threads on 1 core take ~8x longer than 1 thread.
        let durations: Vec<u64> = [1usize, 8]
            .iter()
            .map(|&n| {
                let (sched, mut sim) = sched();
                for _ in 0..n {
                    let mut phase = 0;
                    sched.spawn(
                        &mut sim,
                        0,
                        Box::new(move |_, _| {
                            phase += 1;
                            if phase == 1 {
                                Step::Compute(SimTime::from_ms(30))
                            } else {
                                Step::Exit
                            }
                        }),
                    );
                }
                sim.run().as_ns()
            })
            .collect();
        assert!(
            durations[1] > 7 * durations[0],
            "oversubscription not serialized: {durations:?}"
        );
    }

    #[test]
    #[should_panic(expected = "core out of range")]
    fn spawn_on_bad_core_panics() {
        let (sched, mut sim) = sched();
        sched.spawn(&mut sim, 99, Box::new(|_, _| Step::Exit));
    }
}
