//! The paper's §V-A microbenchmark on the simulated machine.
//!
//! "We measure the time spent to create an empty task (with no
//! computation), to schedule it, and to notice its completion. [...] In all
//! cases, the task is submitted by core #0."
//!
//! One round of the benchmark, in simulated time:
//!
//! 1. core #0 acquires the target queue's spinlock, enqueues the task and
//!    releases (paying lock + transfer costs through [`SimSpinLock`]);
//! 2. every core allowed to serve that queue notices the non-empty state
//!    after the cache line reaches it (`transfer`) plus where it happens to
//!    be in its poll loop (`poll_phase`) — polling is event-driven here:
//!    instead of simulating every idle poll tick, the model computes when a
//!    poll would first observe the write;
//! 3. the herd races for the lock (Algorithm 2 made them check emptiness
//!    first, so only cores that saw "non-empty" join); the winner dequeues,
//!    re-checks under the lock, executes, and completes the round; losers
//!    acquire in turn, find the queue empty, and release — their drain is
//!    what delays the *next* round's submission, which is exactly how the
//!    contention overhead of the paper's per-chip and global rows arises;
//! 4. core #0 notices completion; the round time is recorded as
//!    `base_local_ns` (the fixed local machinery) plus everything the DES
//!    accumulated on top.
//!
//! [`microbench`] runs one queue; [`bench_table`] sweeps every row of
//! Table I / Table II for a machine.

use crate::cost::CostModel;
use crate::spinlock_model::{MachineCtx, SimSpinLock};
use piom_des::stats::OnlineStats;
use piom_des::{Sim, SimTime};
use piom_topology::{Level, NodeId, Topology};
use std::cell::RefCell;
use std::rc::Rc;

/// Cost of a queue push/pop while holding the lock (list manipulation).
const QUEUE_OP_NS: u64 = 30;
/// Cost of the under-lock emptiness re-check when a loser finds nothing.
const RECHECK_NS: u64 = 10;
/// Idle gap between rounds (the benchmark loop's own bookkeeping).
const ROUND_GAP_NS: u64 = 150;

/// Outcome of one microbenchmark run.
#[derive(Debug, Clone)]
pub struct MicrobenchResult {
    /// Level of the queue that was exercised.
    pub level: Level,
    /// Round-trip statistics (create → schedule → completion noticed), ns.
    pub stats: OnlineStats,
    /// Tasks executed per core — the distribution the paper reports for
    /// shared queues.
    pub executed_by_core: Vec<u64>,
    /// Lock grants during the run.
    pub lock_acquisitions: u64,
    /// Lock requests that found it held.
    pub lock_contended: u64,
}

impl MicrobenchResult {
    /// Mean round-trip in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        self.stats.mean()
    }
}

struct Bench {
    ctx: Rc<MachineCtx>,
    lock: SimSpinLock,
    /// Tasks in the queue (0 or 1 in this benchmark).
    queue_len: usize,
    /// When and by whom the queue was last emptied (stale-view window).
    last_clear: (SimTime, usize),
    round_start: SimTime,
    rounds_done: u64,
    iters: u64,
    done: bool,
    pollers: Vec<usize>,
    /// Cores with an acquire in flight: a spinning core is one spinner, no
    /// matter how many times its poll loop has seen the non-empty state.
    attempting: Vec<bool>,
    stats: OnlineStats,
    executed_by_core: Vec<u64>,
}

type Shared = Rc<RefCell<Bench>>;

fn start_round(sim: &mut Sim, b: &Shared) {
    let create = {
        let mut bench = b.borrow_mut();
        if bench.rounds_done >= bench.iters {
            bench.done = true;
            return;
        }
        bench.round_start = sim.now();
        // Task creation + local bookkeeping happens on core #0 *in
        // simulated time*, so a previous round's herd drain overlaps it —
        // exactly why per-chip queues stay cheap while the global queue's
        // long drain still delays the next submission.
        SimTime::from_ns(bench.ctx.cost.base_local_ns)
    };
    let b1 = b.clone();
    sim.schedule(create, move |sim| submit_task(sim, &b1));
}

fn submit_task(sim: &mut Sim, b: &Shared) {
    let (lock, ctx) = {
        let bench = b.borrow();
        (bench.lock.clone(), bench.ctx.clone())
    };
    // Submission: core #0 takes the queue lock and enqueues. Writing into a
    // *shared* queue polled by S other cores pays steady-state invalidation
    // traffic; a dedicated per-core queue has a single consumer and none.
    let pressure = {
        let bench = b.borrow();
        let shared = bench.pollers.len() > 1;
        let others = if shared {
            bench.pollers.iter().filter(|&&p| p != 0).count() as u64
        } else {
            0
        };
        SimTime::from_ns(bench.ctx.cost.poll_pressure_ns * others)
    };
    let b2 = b.clone();
    lock.acquire(sim, 0, move |sim| {
        let b3 = b2.clone();
        sim.schedule(SimTime::from_ns(QUEUE_OP_NS) + pressure, move |sim| {
            let (lock, pollers) = {
                let mut bench = b3.borrow_mut();
                bench.queue_len = 1;
                (bench.lock.clone(), bench.pollers.clone())
            };
            lock.release(sim, 0);
            // Event-driven polling: each allowed core first observes the
            // write once the line reaches it, somewhere in its poll loop.
            for p in pollers {
                let delay = ctx.transfer(0, p) + ctx.poll_phase();
                let b4 = b3.clone();
                sim.schedule(delay, move |sim| poller_notice(sim, &b4, p));
            }
        });
    });
}

fn poller_notice(sim: &mut Sim, b: &Shared, core: usize) {
    let (visible, lock) = {
        let mut bench = b.borrow_mut();
        if bench.done || bench.attempting[core] {
            // A core spins in place: a second sighting of "non-empty" does
            // not create a second competing acquire.
            return;
        }
        bench.attempting[core] = true;
        // The core saw "non-empty" unless the clearing write has already
        // propagated to it (stale-view window keeps the herd honest).
        let visible = bench.queue_len > 0 || {
            let (t_clear, clearer) = bench.last_clear;
            sim.now() < t_clear + bench.ctx.transfer(clearer, core)
        };
        let visible2 = visible;
        if !visible2 {
            bench.attempting[core] = false;
        }
        (visible2, bench.lock.clone())
    };
    if !visible {
        return; // Algorithm 2: empty queues are never locked.
    }
    let b2 = b.clone();
    lock.acquire(sim, core, move |sim| lock_granted(sim, &b2, core));
}

fn lock_granted(sim: &mut Sim, b: &Shared, core: usize) {
    let (has_task, _lock) = {
        let bench = b.borrow();
        (bench.queue_len > 0, bench.lock.clone())
    };
    if has_task {
        // Dequeue under the lock, then execute and complete the round.
        let b2 = b.clone();
        sim.schedule(SimTime::from_ns(QUEUE_OP_NS), move |sim| {
            let (lock, exec_cost) = {
                let mut bench = b2.borrow_mut();
                bench.queue_len = 0;
                bench.last_clear = (sim.now(), core);
                bench.attempting[core] = false;
                bench.executed_by_core[core] += 1;
                let exec = if core == 0 {
                    bench.ctx.cost.self_execution_overhead_ns
                } else {
                    0
                };
                (bench.lock.clone(), SimTime::from_ns(exec))
            };
            lock.release(sim, core);
            let b3 = b2.clone();
            sim.schedule(exec_cost, move |sim| complete_round(sim, &b3, core));
        });
    } else {
        // Loser of the herd: re-check found nothing; release and go back
        // to (event-driven) polling.
        let b2 = b.clone();
        sim.schedule(SimTime::from_ns(RECHECK_NS), move |sim| {
            let lock = {
                let mut bench = b2.borrow_mut();
                bench.attempting[core] = false;
                bench.lock.clone()
            };
            lock.release(sim, core);
        });
    }
}

fn complete_round(sim: &mut Sim, b: &Shared, _executor: usize) {
    {
        let mut bench = b.borrow_mut();
        // base_local already elapsed at the start of the round.
        let elapsed = sim.now() - bench.round_start;
        bench.stats.push_time(elapsed);
        bench.rounds_done += 1;
    }
    let b2 = b.clone();
    sim.schedule(SimTime::from_ns(ROUND_GAP_NS), move |sim| {
        start_round(sim, &b2)
    });
}

/// Runs the §V-A microbenchmark against the queue of topology node
/// `target`: `iters` rounds of submit-by-core-0 / execute-by-herd.
///
/// # Panics
///
/// Panics if `target` is out of range for `topo`.
pub fn microbench(
    topo: &Topology,
    cost: &CostModel,
    target: NodeId,
    iters: u64,
    seed: u64,
) -> MicrobenchResult {
    let level = topo.node(target).level;
    let pollers: Vec<usize> = topo.node(target).cpuset.iter().collect();
    let n_cores = topo.n_cores();
    let ctx = MachineCtx::new(topo.clone(), cost.clone(), seed);
    let lock = SimSpinLock::new(ctx.clone(), 0);
    let bench: Shared = Rc::new(RefCell::new(Bench {
        ctx,
        lock: lock.clone(),
        queue_len: 0,
        last_clear: (SimTime::ZERO, 0),
        round_start: SimTime::ZERO,
        rounds_done: 0,
        iters,
        done: false,
        pollers,
        attempting: vec![false; n_cores],
        stats: OnlineStats::new(),
        executed_by_core: vec![0; n_cores],
    }));
    let mut sim = Sim::new();
    let b = bench.clone();
    sim.schedule(SimTime::ZERO, move |sim| start_round(sim, &b));
    sim.run();
    let bench = Rc::try_unwrap(bench)
        .ok()
        .expect("all events drained")
        .into_inner();
    MicrobenchResult {
        level,
        stats: bench.stats,
        executed_by_core: bench.executed_by_core,
        lock_acquisitions: lock.acquisitions(),
        lock_contended: lock.contended(),
    }
}

/// One row group of Table I / Table II: results for every queue of a level.
#[derive(Debug, Clone)]
pub struct LevelRow {
    /// The level being measured.
    pub level: Level,
    /// `(node, result)` for each queue at that level, in ordinal order.
    pub entries: Vec<(NodeId, MicrobenchResult)>,
}

/// Runs the microbenchmark for every queue at every level of the machine —
/// everything needed to print Table I or Table II.
pub fn bench_table(topo: &Topology, cost: &CostModel, iters: u64, seed: u64) -> Vec<LevelRow> {
    let mut rows = Vec::new();
    // Innermost (per-core) first, then intermediate levels, then global, to
    // match the tables' layout.
    let mut levels: Vec<Level> = Level::ALL
        .iter()
        .copied()
        .filter(|l| !topo.nodes_at_level(*l).is_empty())
        .collect();
    levels.reverse(); // Core first, Machine last
    for level in levels {
        let entries = topo
            .nodes_at_level(level)
            .into_iter()
            .enumerate()
            .map(|(i, node)| {
                let r = microbench(topo, cost, node, iters, seed ^ (i as u64) << 8);
                (node, r)
            })
            .collect();
        rows.push(LevelRow { level, entries });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use piom_topology::presets;

    const ITERS: u64 = 300;

    fn run(topo: &Topology, cost: &CostModel, node: NodeId) -> MicrobenchResult {
        microbench(topo, cost, node, ITERS, 42)
    }

    #[test]
    fn local_per_core_is_near_base() {
        let topo = presets::kwak();
        let cost = CostModel::kwak();
        let r = run(&topo, &cost, topo.core_node(0));
        let mean = r.mean_ns();
        assert!(
            (cost.base_local_ns as f64..cost.base_local_ns as f64 + 200.0).contains(&mean),
            "local mean {mean} not near base"
        );
        assert_eq!(r.executed_by_core[0], ITERS);
    }

    #[test]
    fn remote_per_core_pays_one_cross_numa_transfer() {
        let topo = presets::kwak();
        let cost = CostModel::kwak();
        let local = run(&topo, &cost, topo.core_node(1)).mean_ns();
        let remote = run(&topo, &cost, topo.core_node(12)).mean_ns();
        let overhead = remote - local;
        assert!(
            (700.0..1600.0).contains(&overhead),
            "cross-NUMA per-core overhead {overhead} out of range"
        );
    }

    #[test]
    fn hierarchy_ordering_holds() {
        // The paper's central scalability claim: per-core < per-chip < global.
        let topo = presets::kwak();
        let cost = CostModel::kwak();
        let per_core = run(&topo, &cost, topo.core_node(0)).mean_ns();
        let numa0 = topo.nodes_at_level(Level::NumaNode)[0];
        let per_chip = run(&topo, &cost, numa0).mean_ns();
        let global = run(&topo, &cost, topo.root()).mean_ns();
        assert!(per_core < per_chip, "{per_core} !< {per_chip}");
        assert!(per_chip < global, "{per_chip} !< {global}");
        assert!(
            global > 4.0 * per_chip,
            "global queue should be far worse: chip {per_chip}, global {global}"
        );
    }

    #[test]
    fn global_grows_with_core_count() {
        // 16-core kwak's global queue is much worse than 8-core borderline's.
        let kwak = presets::kwak();
        let borderline = presets::borderline();
        let g16 = run(&kwak, &CostModel::kwak(), kwak.root()).mean_ns();
        let g8 = run(&borderline, &CostModel::borderline(), borderline.root()).mean_ns();
        assert!(
            g16 > 1.8 * g8,
            "global overhead must grow with cores: 8-core {g8}, 16-core {g16}"
        );
    }

    #[test]
    fn shared_queue_distributes_work_within_level() {
        let topo = presets::kwak();
        let cost = CostModel::kwak();
        let numa1 = topo.nodes_at_level(Level::NumaNode)[1];
        let r = run(&topo, &cost, numa1);
        let total: u64 = r.executed_by_core.iter().sum();
        assert_eq!(total, ITERS);
        // All executions on cores 4..8, each taking a nontrivial share
        // ("each of them executes roughly 25% of the submitted tasks").
        for core in 4..8 {
            let share = r.executed_by_core[core] as f64 / total as f64;
            assert!(share > 0.05, "core {core} starved: {share}");
        }
        for core in (0..4).chain(8..16) {
            assert_eq!(r.executed_by_core[core], 0, "foreign core executed");
        }
    }

    #[test]
    fn global_queue_is_numa_skewed() {
        // The unfair handoff concentrates work in few NUMA nodes (§V-A:
        // "most of the tasks are executed by cores located on NUMA node 2").
        let topo = presets::kwak();
        let r = run(&topo, &CostModel::kwak(), topo.root());
        let per_node: Vec<u64> = (0..4)
            .map(|n| r.executed_by_core[n * 4..(n + 1) * 4].iter().sum())
            .collect();
        let max = *per_node.iter().max().unwrap() as f64;
        let total: u64 = per_node.iter().sum();
        assert_eq!(total, ITERS);
        assert!(
            max / total as f64 > 0.5,
            "expected a dominant NUMA node, got {per_node:?}"
        );
    }

    #[test]
    fn contention_counters_reflect_the_herd() {
        let topo = presets::kwak();
        let cost = CostModel::kwak();
        let lone = run(&topo, &cost, topo.core_node(3));
        let global = run(&topo, &cost, topo.root());
        assert_eq!(lone.lock_contended, 0, "single poller never contends");
        assert!(
            global.lock_contended > ITERS,
            "global herd contends every round"
        );
    }

    #[test]
    fn bench_table_covers_all_levels() {
        let topo = presets::borderline();
        let rows = bench_table(&topo, &CostModel::borderline(), 50, 1);
        let levels: Vec<Level> = rows.iter().map(|r| r.level).collect();
        assert_eq!(levels, vec![Level::Core, Level::Chip, Level::Machine]);
        assert_eq!(rows[0].entries.len(), 8);
        assert_eq!(rows[1].entries.len(), 4);
        assert_eq!(rows[2].entries.len(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = presets::kwak();
        let cost = CostModel::kwak();
        let a = microbench(&topo, &cost, topo.root(), 100, 9).mean_ns();
        let b = microbench(&topo, &cost, topo.root(), 100, 9).mean_ns();
        assert_eq!(a, b);
    }
}
