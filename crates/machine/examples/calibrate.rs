//! Quick calibration probe: print simulated Table I / II values.
use piom_machine::simsched::bench_table;
use piom_machine::CostModel;
use piom_topology::presets;

fn main() {
    for (topo, cost) in [
        (presets::borderline(), CostModel::borderline()),
        (presets::kwak(), CostModel::kwak()),
    ] {
        println!("== {} ==", topo.name());
        for row in bench_table(&topo, &cost, 400, 42) {
            let vals: Vec<String> = row
                .entries
                .iter()
                .map(|(_, r)| format!("{:.0}", r.mean_ns()))
                .collect();
            println!("{:?}: {}", row.level, vals.join(" "));
        }
    }
}
