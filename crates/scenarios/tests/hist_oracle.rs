//! The DES→histogram hand-off against the exact reservoir oracle
//! (`piom_des::stats::Percentiles`, re-exported through `pioman::hist`).
//!
//! PR 6 proved the histogram's error bound on uniform streams; the
//! follow-up it left open was adversarial, *scenario-shaped* inputs —
//! bursty clumps and geometric heavy tails, the distributions the
//! workload matrix actually records, where log-bucket quantization error
//! concentrates at the worst places (a whole burst inside one bucket, a
//! tail sample alone in a wide one). The property is unchanged: every
//! quantile within the documented half-bucket relative bound, and
//! count/mean/max exact.

use piom_scenarios::{registry, ScenarioParams};
use pioman::hist::{Histogram, Percentiles, SUB_BITS};
use proptest::prelude::*;

/// Feeds `samples` through both the histogram (the matrix's path) and
/// the exact reservoir, then asserts the documented accuracy contract.
fn assert_hist_matches_oracle(samples: &[u64]) {
    let h = Histogram::new(1);
    let mut oracle = Percentiles::new();
    for &v in samples {
        h.record_at(0, v);
        oracle.push(v as f64);
    }
    let snap = h.snapshot();
    for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
        let exact = oracle.quantile(q).expect("nonempty");
        let approx = snap.quantile(q).expect("nonempty") as f64;
        let bound = exact / (1u64 << (SUB_BITS + 1)) as f64 + 1.0;
        assert!(
            (approx - exact).abs() <= bound,
            "q={q} exact={exact} approx={approx} bound={bound}"
        );
    }
    let exact = oracle.summary();
    assert_eq!(snap.count(), exact.count);
    assert!((snap.mean() - exact.mean).abs() <= 1e-6 * (1.0 + exact.mean));
    assert_eq!(snap.summary().max, exact.max, "max is tracked exactly");
}

/// Every registered scenario's *actual* sample stream holds the bound,
/// and the summary the scenario reports is exactly the histogram fold of
/// that stream — the hand-off seam has no third copy of the math.
#[test]
fn scenario_sample_streams_match_the_oracle_end_to_end() {
    let params = ScenarioParams::quick(42);
    for s in registry() {
        let mut samples = Vec::new();
        s.run_with_recorder(&params, &mut |v| samples.push(v));
        assert!(!samples.is_empty(), "{} recorded nothing", s.name);
        assert_hist_matches_oracle(&samples);

        let h = Histogram::new(1);
        for &v in &samples {
            h.record_at(0, v);
        }
        assert_eq!(
            s.run(&params).summary,
            h.snapshot().summary(),
            "{}'s report must be the histogram fold of its recorder stream",
            s.name
        );
    }
}

const CASES: u32 = if cfg!(miri) { 2 } else { 48 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Geometric heavy tails: mantissa × 2^shift draws spanning ~15
    /// decades, the mice-and-elephants mix. Log-bucket error is relative,
    /// so the bound must hold at every magnitude at once.
    #[test]
    fn heavy_tailed_streams_stay_within_the_hist_bound(
        draws in proptest::collection::vec((1u64..1024, 0u32..40), 1..256),
    ) {
        let samples: Vec<u64> = draws.iter().map(|&(m, s)| m << s).collect();
        assert_hist_matches_oracle(&samples);
    }

    /// Bursty clumps: runs of near-identical latencies (a burst draining
    /// through one server lands many samples in one bucket, the worst
    /// case for nearest-rank interpolation), separated by scale jumps.
    #[test]
    fn bursty_streams_stay_within_the_hist_bound(
        bursts in proptest::collection::vec(
            (1u64..1_000_000, 1usize..32, 0u64..500), 1..24,
        ),
    ) {
        let mut samples = Vec::new();
        for &(base, count, step) in &bursts {
            for i in 0..count {
                // A drain ramp: latency creeps up within the burst.
                samples.push(base + i as u64 * step);
            }
        }
        assert_hist_matches_oracle(&samples);
    }
}
