//! The determinism contract that makes the matrix gateable: a scenario
//! run is a pure function of `(code, params, seed)`. Same seed twice ⇒
//! identical reports *and* identical raw sample streams; a different
//! seed must actually change the measured distribution (a scenario that
//! ignores its seed would pin the gate to one lucky trajectory).

use piom_scenarios::{registry, ScenarioParams};

#[test]
fn same_seed_same_params_reproduces_bit_identically() {
    let params = ScenarioParams::quick(42);
    for s in registry() {
        let a = s.run(&params);
        let b = s.run(&params);
        assert_eq!(a, b, "{} is not a pure function of (params, seed)", s.name);

        // Stronger than the summary: the raw sample stream — order
        // included — must replay exactly (the summary could mask a pair
        // of compensating differences).
        let mut first = Vec::new();
        s.run_with_recorder(&params, &mut |v| first.push(v));
        let mut second = Vec::new();
        s.run_with_recorder(&params, &mut |v| second.push(v));
        assert_eq!(first, second, "{} sample stream diverged", s.name);
    }
}

#[test]
fn a_different_seed_changes_the_distribution() {
    for s in registry() {
        let a = s.run(&ScenarioParams::quick(42));
        let b = s.run(&ScenarioParams::quick(1042));
        assert_eq!(a.seed, 42);
        assert_eq!(b.seed, 1042);
        assert_ne!(
            a.summary.mean, b.summary.mean,
            "{} does not consume its seed: jitter must reach the latencies",
            s.name
        );
    }
}

#[test]
fn multirail_stripe_replays_bit_identically_across_seeds() {
    // This scenario now runs the full newmadeleine engine (rendezvous
    // handshakes, pipeline windows, rail striping) rather than raw sends,
    // so it is the canary for nondeterminism anywhere in that stack:
    // every seed's sample stream — order included — must replay exactly.
    let s = piom_scenarios::find("multirail_stripe").expect("registered");
    for seed in [42, 1042, 7, 0xDEAD_BEEF] {
        let params = ScenarioParams::quick(seed);
        let mut first = Vec::new();
        s.run_with_recorder(&params, &mut |v| first.push(v));
        let mut second = Vec::new();
        s.run_with_recorder(&params, &mut |v| second.push(v));
        assert_eq!(first, second, "seed {seed} diverged through the engine");
        assert_eq!(first.len(), params.samples as usize);
    }
}

#[test]
fn quick_and_full_presets_share_a_seed_but_not_a_distribution() {
    // The CI smoke (quick) and the committed baseline (full) are both
    // deterministic, but not comparable to each other: volume is part of
    // the simulated distribution. Pin that they differ so nobody wires a
    // quick run against the full baseline and trusts the diff.
    let s = piom_scenarios::find("incast_fanin").expect("registered");
    let quick = s.run(&ScenarioParams::quick(42));
    let full = s.run(&ScenarioParams::full(42));
    assert_ne!(quick.summary.count, full.summary.count);
    assert_ne!(quick.summary.mean, full.summary.mean);
}
