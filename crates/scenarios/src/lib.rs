//! The scenario registry: named, parameterized, seedable DES workloads.
//!
//! The microbench trajectory (`BENCH_pioman.json`) watches the *scheduler
//! hot paths*; nothing so far watched *workload behaviour* — an incast
//! collapse, a retry storm amplifying itself, a straggler fattening every
//! gather — regressions that leave ns/op untouched. This crate is that
//! missing surface: a registry of production-shaped traffic patterns, each
//! a deterministic discrete-event simulation (`piom_des::Sim` +
//! `piom_net::Network`, server CPU costs from `piom_machine::CostModel`)
//! that records one latency sample per request into a
//! [`pioman::hist::Histogram`] and reports the shared
//! [`PercentileSummary`] vocabulary.
//!
//! Determinism is the contract that makes the matrix gateable: a scenario
//! run is a pure function of `(code, params, seed)` — integer simulated
//! time, [`piom_des::rng::SplitMix64`] jitter, no ambient entropy, no
//! wall clock — so two runs with the same seed produce *byte-identical*
//! JSON rows (pinned by `tests/determinism.rs`), and the
//! `SCENARIOS_pioman.json` baseline gates CI exactly, through the same
//! `piom-harness` schema-v2 + compare machinery as the benches.
//!
//! # Quick start
//!
//! ```
//! use piom_scenarios::{registry, ScenarioParams};
//!
//! let params = ScenarioParams::quick(42);
//! let scenario = piom_scenarios::find("incast_fanin").expect("registered");
//! let report = scenario.run(&params);
//! assert_eq!(report.name, "incast_fanin");
//! assert!(report.summary.count > 0 && report.summary.p99 >= report.summary.p50);
//! assert!(report.throughput.iter().any(|t| t.completed > 0));
//! assert!(registry().len() >= 8);
//! ```

#![warn(missing_docs)]

use pioman::hist::{Histogram, PercentileSummary};
use pioman::{TaskClass, CLASS_COUNT};

mod cluster;
mod workloads;

pub use cluster::{Cluster, Server, ServerCosts};

/// How the compare gate should hold a scenario's row
/// (`piom-harness compare` maps these onto the same per-scenario
/// thresholds the bench gate uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Tight unimodal distribution: gate the mean at the tight default
    /// *and* the p99 at `P99_THRESHOLD_FACTOR`× (the `TAIL_GATED`
    /// treatment) — a fattened tail here is a real model regression.
    Tail,
    /// Intrinsically bursty / heavy-tailed / bimodal distribution: gate
    /// the mean at the wide threshold only (the `HIGH_VARIANCE`
    /// treatment) — the tail *is* the workload, and a small model change
    /// legitimately swings it.
    Wide,
}

/// Shared knobs of every scenario run. Each scenario derives its own
/// internal sizes from these two scale parameters plus the seed, so
/// `quick` and `full` exercise the same shapes at different volumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioParams {
    /// Seed of the per-scenario `SplitMix64` (each scenario reseeds with
    /// its own name hash mixed in, so scenarios draw independent streams).
    pub seed: u64,
    /// Client/server endpoint count in the fan-in/fan-out scenarios.
    pub endpoints: usize,
    /// Approximate recorded samples per scenario (the percentile budget:
    /// `full` keeps p999 resting on ≥4 real samples).
    pub samples: u64,
}

impl ScenarioParams {
    /// The full preset recorded into the committed `SCENARIOS_pioman.json`
    /// trajectory and gated in CI.
    pub fn full(seed: u64) -> Self {
        ScenarioParams {
            seed,
            endpoints: 64,
            samples: 4096,
        }
    }

    /// A small preset for smoke runs and tests: same shapes, ~16× fewer
    /// events. Not comparable against a `full` baseline — the simulated
    /// distribution depends (deterministically) on the volume.
    pub fn quick(seed: u64) -> Self {
        ScenarioParams {
            seed,
            endpoints: 16,
            samples: 256,
        }
    }
}

/// The sink a workload reports into: latency samples flow to the
/// caller's histogram (or raw capture), while per-class completion
/// counts and the simulated horizon accumulate here for the
/// throughput-per-class rows of [`ScenarioReport`].
///
/// Classes reuse the scheduler's [`TaskClass`] vocabulary: request/
/// response traffic records as `Interactive`, bulk data movement as
/// `Bulk`, and the QoS mesh rows attribute every completion to its
/// actual lane class — so the throughput rows decompose a workload the
/// same way the class lanes do.
pub struct Recorder<'a> {
    sink: &'a mut dyn FnMut(u64),
    completed: [u64; CLASS_COUNT],
    elapsed_ns: u64,
}

impl<'a> Recorder<'a> {
    fn new(sink: &'a mut dyn FnMut(u64)) -> Self {
        Recorder {
            sink,
            completed: [0; CLASS_COUNT],
            elapsed_ns: 0,
        }
    }

    /// Records one latency sample attributed to `class` (one completed
    /// request of that class).
    pub fn record_class(&mut self, class: TaskClass, ns: u64) {
        self.completed[class.index()] += 1;
        (self.sink)(ns);
    }

    /// Counts `n` completions of `class` *without* latency samples — the
    /// QoS mesh rows use this for the slices whose latency belongs to a
    /// sibling row, so every row still reports the full per-class
    /// throughput of the shared workload.
    pub fn note_completions(&mut self, class: TaskClass, n: u64) {
        self.completed[class.index()] += n;
    }

    /// Advances the simulated horizon the throughput rates divide by
    /// (monotone max — scenarios report their DES end time).
    pub fn note_elapsed(&mut self, ns: u64) {
        self.elapsed_ns = self.elapsed_ns.max(ns);
    }

    fn throughput(&self) -> [ClassThroughput; CLASS_COUNT] {
        let mut rows = [ClassThroughput {
            completed: 0,
            per_ms: 0.0,
        }; CLASS_COUNT];
        for (row, &done) in rows.iter_mut().zip(&self.completed) {
            row.completed = done;
            if self.elapsed_ns > 0 {
                // IEEE basic ops only: bit-reproducible across hosts.
                row.per_ms = done as f64 * 1_000_000.0 / self.elapsed_ns as f64;
            }
        }
        rows
    }
}

/// One registered workload: a name, a gate class, and a run function that
/// builds its simulation and records one latency sample (nanoseconds of
/// *simulated* time) per request into the recorder.
pub struct Scenario {
    /// Stable identifier — the JSON key of its trajectory row.
    pub name: &'static str,
    /// One-line description shown by `piom-harness scenarios`.
    pub about: &'static str,
    /// Which gate treatment the compare machinery applies.
    pub gate: Gate,
    run: fn(&ScenarioParams, &mut Recorder),
}

impl Scenario {
    /// Runs the scenario, folding every recorded latency through a
    /// [`Histogram`] (one shard — the DES is single-threaded) into the
    /// shared percentile vocabulary, with the per-class completion rates
    /// alongside.
    pub fn run(&self, params: &ScenarioParams) -> ScenarioReport {
        let hist = Histogram::new(1);
        let mut sink = |ns| hist.record_at(0, ns);
        let mut rec = Recorder::new(&mut sink);
        (self.run)(params, &mut rec);
        let throughput = rec.throughput();
        ScenarioReport {
            name: self.name,
            gate: self.gate,
            seed: params.seed,
            summary: hist.snapshot().summary(),
            throughput,
        }
    }

    /// Runs the scenario feeding raw latency samples to `rec` *instead
    /// of* a histogram — the hand-off seam the oracle tests use to
    /// capture the exact sample stream alongside the bucketed summary.
    /// Class attribution and the horizon are folded away.
    pub fn run_with_recorder(&self, params: &ScenarioParams, rec: &mut dyn FnMut(u64)) {
        let mut wrapped = Recorder::new(rec);
        (self.run)(params, &mut wrapped);
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("gate", &self.gate)
            .finish()
    }
}

/// One [`TaskClass`]'s completion throughput in a scenario run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassThroughput {
    /// Requests of this class fully completed over the run.
    pub completed: u64,
    /// Completions per *simulated* millisecond (0 when the scenario
    /// reported no horizon or completed nothing in this class).
    pub per_ms: f64,
}

/// One scenario's result row: the schema-v2 fields
/// (`mean/p50/p99/p999/iters/seed`) in the shared vocabulary, ready for
/// `piom-harness` to render and gate with no new formats, plus the
/// throughput-per-class rows (text table only — the JSON trajectory
/// stays pure schema-v2, whose compare semantics are ns/op percentiles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (the JSON key).
    pub name: &'static str,
    /// Gate treatment of this row.
    pub gate: Gate,
    /// Seed the run was configured with.
    pub seed: u64,
    /// The latency distribution (count doubles as the row's `iters`).
    pub summary: PercentileSummary,
    /// Per-class completion rates, indexed by [`TaskClass::index`].
    pub throughput: [ClassThroughput; CLASS_COUNT],
}

/// Every registered scenario, in fixed (trajectory) order.
pub fn registry() -> &'static [Scenario] {
    workloads::REGISTRY
}

/// The scenario named exactly `name`, if registered.
pub fn find(name: &str) -> Option<&'static Scenario> {
    registry().iter().find(|s| s.name == name)
}

/// Scenarios whose name contains `filter` (substring match, the
/// `--filter` semantics). Empty means the caller asked for something that
/// does not exist — the CLI treats that as an error, not an empty pass.
pub fn matching(filter: &str) -> Vec<&'static Scenario> {
    registry()
        .iter()
        .filter(|s| s.name.contains(filter))
        .collect()
}

/// `true` if `name` is a registered scenario with [`Gate::Wide`] — the
/// compare machinery unions this with `bench::scenarios::HIGH_VARIANCE`.
pub fn is_high_variance(name: &str) -> bool {
    find(name).is_some_and(|s| s.gate == Gate::Wide)
}

/// `true` if `name` is a registered scenario with [`Gate::Tail`] — the
/// compare machinery unions this with `bench::scenarios::TAIL_GATED`.
pub fn is_tail_gated(name: &str) -> bool {
    find(name).is_some_and(|s| s.gate == Gate::Tail)
}

/// Mixes the scenario name into the run seed so every scenario draws an
/// independent deterministic stream (two scenarios sharing a seed must
/// not share jitter, or shape changes in one would alias into another).
pub(crate) fn scenario_seed(name: &str, seed: u64) -> u64 {
    // FNV-1a over the name, folded into the user seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ seed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_at_least_eight_unique_names() {
        let names: Vec<_> = registry().iter().map(|s| s.name).collect();
        assert!(names.len() >= 8, "matrix too small: {names:?}");
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
        // Names are plain identifiers: the schema renderer does not escape.
        for n in &names {
            assert!(
                n.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'),
                "{n:?} is not a plain identifier"
            );
        }
    }

    #[test]
    fn find_and_matching_agree_with_registry() {
        assert!(find("incast_fanin").is_some());
        assert!(find("no_such_scenario").is_none());
        assert!(matching("").len() == registry().len(), "empty matches all");
        assert!(matching("zzz_nothing").is_empty());
        let fanin = matching("fanin");
        assert!(fanin.iter().any(|s| s.name == "incast_fanin"));
    }

    #[test]
    fn gate_tags_partition_the_registry() {
        for s in registry() {
            assert!(
                is_high_variance(s.name) ^ is_tail_gated(s.name),
                "{} must be exactly one of wide/tail",
                s.name
            );
        }
        assert!(!is_high_variance("not_registered"));
        assert!(!is_tail_gated("not_registered"));
    }

    #[test]
    fn scenario_seeds_differ_by_name_and_seed() {
        let a = scenario_seed("incast_fanin", 42);
        let b = scenario_seed("retry_storm", 42);
        let c = scenario_seed("incast_fanin", 43);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn throughput_rows_account_for_every_sample() {
        let params = ScenarioParams::quick(42);
        for s in registry() {
            let r = s.run(&params);
            let total: u64 = r.throughput.iter().map(|t| t.completed).sum();
            assert!(
                total >= r.summary.count,
                "{}: fewer class completions ({total}) than latency samples ({})",
                s.name,
                r.summary.count
            );
            for (t, class) in r.throughput.iter().zip(TaskClass::ALL) {
                assert_eq!(
                    t.completed > 0,
                    t.per_ms > 0.0,
                    "{}: {class:?} count/rate disagree ({t:?})",
                    s.name
                );
            }
        }
    }

    #[test]
    fn every_scenario_produces_a_populated_summary() {
        let params = ScenarioParams::quick(42);
        for s in registry() {
            let r = s.run(&params);
            assert!(r.summary.count > 0, "{} recorded nothing", s.name);
            assert!(
                r.summary.mean > 0.0 && r.summary.p50 > 0.0,
                "{} has zero latencies",
                s.name
            );
            assert!(
                r.summary.p50 <= r.summary.p99
                    && r.summary.p99 <= r.summary.p999
                    && r.summary.p999 <= r.summary.max,
                "{} quantiles out of order: {:?}",
                s.name,
                r.summary
            );
        }
    }
}
