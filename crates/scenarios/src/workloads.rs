//! The registered workloads: production-shaped traffic on the simulated
//! cluster.
//!
//! Every scenario follows one discipline, because the matrix's value is
//! its determinism:
//!
//! * all randomness comes from [`SplitMix64`] streams seeded from
//!   `(scenario name, run seed)` — no ambient entropy;
//! * all arithmetic is integer nanoseconds or IEEE basic-op `f64`
//!   (add/sub/mul/div) — **no transcendentals** (`ln`, `powf`, `sin`),
//!   whose libm implementations differ across hosts and would break the
//!   byte-identical contract the gate rests on. Heavy tails come from
//!   geometric bit draws, the day curve from an integer multiplier table;
//! * one latency sample (nanoseconds of *simulated* time) per request
//!   goes to the recorder; the fold into `pioman::hist` happens in
//!   `Scenario::run`.
//!
//! Latencies are collected into an `Rc<RefCell<Vec<u64>>>` during the
//! simulation (events cannot borrow the caller's recorder) and drained
//! afterwards.

use crate::cluster::{stamped_latency, Cluster, Server, ServerCosts};
use crate::{Gate, Recorder, Scenario, ScenarioParams};
use newmadeleine::{CommEngine, EngineConfig};
use piom_des::rng::SplitMix64;
use piom_des::{Sim, SimTime};
use piom_net::{Message, Network, RxHandler};
use pioman::lockfree::BACKGROUND_BYPASS_LIMIT;
use pioman::{TaskClass, CLASS_COUNT};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// The registry, in trajectory order.
pub(crate) static REGISTRY: &[Scenario] = &[
    Scenario {
        name: "incast_fanin",
        about: "synchronized many-endpoint fan-in rounds queueing on one server",
        gate: Gate::Wide,
        run: incast_fanin,
    },
    Scenario {
        name: "bursty_onoff",
        about: "on/off burst clients against one server (burst drains are the tail)",
        gate: Gate::Wide,
        run: bursty_onoff,
    },
    Scenario {
        name: "diurnal_wave",
        about: "a day-curve arrival trace: near-critical peak hours, idle troughs",
        gate: Gate::Wide,
        run: diurnal_wave,
    },
    Scenario {
        name: "heavy_tail_mix",
        about: "mice-and-elephants size mix head-of-line blocking one NIC engine",
        gate: Gate::Wide,
        run: heavy_tail_mix,
    },
    Scenario {
        name: "straggler_shuffle",
        about: "scatter/gather rounds where 1-in-16 worker draws run 10x slow",
        gate: Gate::Wide,
        run: straggler_shuffle,
    },
    Scenario {
        name: "retry_storm",
        about: "server outage window; timed-out clients retry with backoff",
        gate: Gate::Wide,
        run: retry_storm,
    },
    Scenario {
        name: "multirail_stripe",
        about: "newmad rendezvous transfers striped over 4 rails by the engine's scheduler",
        gate: Gate::Tail,
        run: multirail_stripe,
    },
    Scenario {
        name: "rpc_mesh_steady",
        about: "steady random pairwise request/response RPCs (the tight baseline)",
        gate: Gate::Tail,
        run: rpc_mesh_steady,
    },
    Scenario {
        name: "rdma_pull_fanin",
        about: "one-sided RDMA pulls from many peers (contention-free floor)",
        gate: Gate::Tail,
        run: rdma_pull_fanin,
    },
    Scenario {
        name: "rpc_mesh_qos_urgent",
        about: "the RPC mesh under QoS class lanes: the Urgent slice's RTTs",
        gate: Gate::Tail,
        run: rpc_mesh_qos_urgent,
    },
    Scenario {
        name: "rpc_mesh_qos_interactive",
        about: "the RPC mesh under QoS class lanes: the Interactive slice's RTTs",
        gate: Gate::Tail,
        run: rpc_mesh_qos_interactive,
    },
    Scenario {
        name: "rpc_mesh_qos_bulk",
        about: "the RPC mesh under QoS class lanes: the Bulk slice's RTTs",
        gate: Gate::Wide,
        run: rpc_mesh_qos_bulk,
    },
    Scenario {
        name: "rpc_mesh_qos_background",
        about: "the RPC mesh under QoS class lanes: the Background slice's RTTs",
        gate: Gate::Wide,
        run: rpc_mesh_qos_background,
    },
    Scenario {
        name: "incast_fanin_2048",
        about: "the incast ramp at 2048 synchronized senders (fabric-scale fan-in)",
        gate: Gate::Wide,
        run: incast_fanin_2048,
    },
    Scenario {
        name: "rpc_mesh_steady_2048",
        about: "the steady RPC mesh across 2048 endpoints (fabric-scale baseline)",
        gate: Gate::Tail,
        run: rpc_mesh_steady_2048,
    },
];

/// A size uniform within `[2^shift, 2^(shift+1))` for a shift uniform in
/// `[min_shift, max_shift]` — log-uniform, all-integer.
fn log_uniform_size(rng: &mut SplitMix64, min_shift: u32, max_shift: u32) -> usize {
    let shift = min_shift + rng.next_below((max_shift - min_shift + 1) as u64) as u32;
    let base = 1u64 << shift;
    (base + rng.next_below(base)) as usize
}

/// A geometrically heavy-tailed size: `P(level ≥ k) = 2^-k`, capped at
/// `cap_level`, so most messages are mice and a rare draw is an
/// elephant. Pure bit arithmetic — a bounded-Pareto stand-in needing no
/// `powf`.
fn heavy_tail_size(rng: &mut SplitMix64, min_bytes: u64, cap_level: u32) -> usize {
    let level = rng.next_u64().trailing_zeros().min(cap_level);
    let base = min_bytes << level;
    (base + rng.next_below(base)) as usize
}

/// An "exponential-ish" inter-arrival gap without `ln`: `mean/4` plus a
/// uniform draw up to `3·mean/2` — same mean, bounded support,
/// bit-reproducible everywhere.
fn spread_gap(rng: &mut SplitMix64, mean_ns: u64) -> SimTime {
    SimTime::from_ns(mean_ns / 4 + rng.next_below(mean_ns * 3 / 2))
}

/// A scenario's *in-event* RNG stream, independent from its precompute
/// stream: events draw in execution order (deterministic but
/// interleaved), so keeping the streams apart means a schedule-shape
/// change cannot silently re-deal the precomputed sizes and offsets.
fn event_rng(name: &str, seed: u64) -> Rc<RefCell<SplitMix64>> {
    Rc::new(RefCell::new(SplitMix64::new(crate::scenario_seed(
        name,
        seed ^ 0x9E37_79B9_7F4A_7C15,
    ))))
}

/// Drains the collected sample vector into the recorder, attributing
/// every sample to `class` and reporting the cluster's final simulated
/// time as the throughput horizon.
fn drain(c: &Cluster, samples: &Rc<RefCell<Vec<u64>>>, class: TaskClass, rec: &mut Recorder) {
    rec.note_elapsed(c.sim.now().as_ns());
    for &v in samples.borrow().iter() {
        rec.record_class(class, v);
    }
}

/// Synchronized fan-in: every round, all `endpoints` senders fire one
/// small request at the same server within a 5 µs window. The server's
/// FIFO queue turns the synchronized arrivals into a linearly growing
/// sojourn — the classic incast latency ramp. Recorded: request send →
/// server completion.
fn incast_fanin(p: &ScenarioParams, rec: &mut Recorder) {
    incast_core("incast_fanin", p.endpoints, p, rec);
}

/// [`incast_fanin`] scaled out to a fixed 2048 synchronized senders —
/// the fan-in degree of a fabric-scale collective, independent of the
/// params preset (the `endpoints` knob keeps driving the base row).
fn incast_fanin_2048(p: &ScenarioParams, rec: &mut Recorder) {
    incast_core("incast_fanin_2048", 2048, p, rec);
}

/// The shared incast simulation behind the two registry rows; `name`
/// keys the RNG streams so the rows draw independent jitter.
fn incast_core(name: &'static str, e: usize, p: &ScenarioParams, rec: &mut Recorder) {
    let rounds = (p.samples as usize / e).max(1);
    let mut c = Cluster::build(name, e + 1, 1, p.seed);
    let samples: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let srv_rng = event_rng(name, p.seed);

    let server = c.servers[0].clone();
    let s = samples.clone();
    c.on_receive(
        0,
        Rc::new(move |sim: &mut Sim, msg: Message| {
            let sent = msg.tag;
            let s = s.clone();
            let mut rng = srv_rng.borrow_mut();
            server.serve_sized(sim, msg.size, &mut rng, move |sim| {
                s.borrow_mut().push(sim.now().as_ns() - sent);
            });
        }),
    );

    for round in 0..rounds {
        let round_start = SimTime::from_us(300) * round as u64;
        for sender in 1..=e {
            let at = round_start + SimTime::from_ns(c.rng.next_below(5_000));
            let size = log_uniform_size(&mut c.rng, 8, 12); // 256 B .. 8 KiB
            schedule_send(&mut c, at, sender, 0, size);
        }
    }
    c.sim.run();
    drain(&c, &samples, TaskClass::Interactive, rec);
}

/// Schedules a stamped request from `src` to `dst` at absolute time `at`
/// (the tag carries the *actual* send time so engine queueing at the
/// sender counts toward the measured latency).
fn schedule_send(c: &mut Cluster, at: SimTime, src: usize, dst: usize, size: usize) {
    let net = c.net.clone();
    c.sim.schedule_abs(at, move |sim| {
        net.send(
            sim,
            Message {
                src,
                dst,
                rail: 0,
                tag: sim.now().as_ns(),
                size,
                data: None,
            },
        );
    });
}

/// On/off sources: each client alternates a back-to-back burst with a
/// long idle gap. Bursts overrun the server briefly; the drain of each
/// burst is the latency tail. Recorded: request send → server completion.
fn bursty_onoff(p: &ScenarioParams, rec: &mut Recorder) {
    let clients = p.endpoints.clamp(1, 4);
    let per_client = (p.samples as usize / clients).max(1);
    let mut c = Cluster::build("bursty_onoff", clients + 1, 1, p.seed);
    let samples: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let srv_rng = event_rng("bursty_onoff", p.seed);

    let server = c.servers[0].clone();
    let s = samples.clone();
    c.on_receive(
        0,
        Rc::new(move |sim: &mut Sim, msg: Message| {
            let sent = msg.tag;
            let s = s.clone();
            let mut rng = srv_rng.borrow_mut();
            server.serve_sized(sim, msg.size, &mut rng, move |sim| {
                s.borrow_mut().push(sim.now().as_ns() - sent);
            });
        }),
    );

    for client in 1..=clients {
        let mut t = SimTime::from_ns(c.rng.next_below(20_000));
        let mut sent = 0usize;
        while sent < per_client {
            let burst = (4 + c.rng.next_below(28)) as usize;
            for _ in 0..burst.min(per_client - sent) {
                let size = log_uniform_size(&mut c.rng, 9, 11); // 512 B .. 4 KiB
                schedule_send(&mut c, t, client, 0, size);
                t += SimTime::from_ns(200 + c.rng.next_below(800));
                sent += 1;
            }
            // The off period keeps long-run utilization under capacity
            // (~0.4 with 4 clients): bursts overload the server
            // *transiently* and drain — a saturated queue would just
            // measure the run length.
            t += spread_gap(&mut c.rng, 160_000);
        }
    }
    c.sim.run();
    drain(&c, &samples, TaskClass::Interactive, rec);
}

/// A compressed "day" of traffic: 24 half-millisecond hours whose
/// arrival rates follow an integer day curve — idle troughs, shoulder
/// ramps, and peak hours that run the server near criticality so queues
/// build and drain diurnally. Recorded: request send → server completion.
fn diurnal_wave(p: &ScenarioParams, rec: &mut Recorder) {
    /// Relative arrival rate per "hour of day" (sums to 160).
    const DAY_CURVE: [u64; 24] = [
        2, 1, 1, 1, 1, 2, 4, 6, 8, 10, 12, 12, 11, 10, 9, 8, 8, 9, 10, 12, 10, 6, 4, 3,
    ];
    const CURVE_SUM: u64 = 160;
    const HOUR: SimTime = SimTime::from_us(500);

    let clients = p.endpoints.clamp(1, 8);
    let mut c = Cluster::build("diurnal_wave", clients + 1, 1, p.seed);
    let samples: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let srv_rng = event_rng("diurnal_wave", p.seed);

    let server = c.servers[0].clone();
    let s = samples.clone();
    c.on_receive(
        0,
        Rc::new(move |sim: &mut Sim, msg: Message| {
            let sent = msg.tag;
            let s = s.clone();
            let mut rng = srv_rng.borrow_mut();
            server.serve_sized(sim, msg.size, &mut rng, move |sim| {
                s.borrow_mut().push(sim.now().as_ns() - sent);
            });
        }),
    );

    let mut k = 0usize;
    for (hour, &weight) in DAY_CURVE.iter().enumerate() {
        let quota = (p.samples * weight / CURVE_SUM).max(1);
        let gap = HOUR.as_ns() / quota;
        for i in 0..quota {
            let at = HOUR * hour as u64 + SimTime::from_ns(i * gap + c.rng.next_below(gap.max(1)));
            let size = log_uniform_size(&mut c.rng, 9, 11); // 512 B .. 4 KiB
            let client = 1 + k % clients;
            schedule_send(&mut c, at, client, 0, size);
            k += 1;
        }
    }
    c.sim.run();
    drain(&c, &samples, TaskClass::Interactive, rec);
}

/// Mice and elephants through one NIC engine: geometrically heavy-tailed
/// sizes (256 B up to ~2 MiB) on a steady arrival stream. An elephant
/// occupies the send engine for milliseconds, head-of-line blocking every
/// mouse behind it. Recorded: send → delivery (no server — this scenario
/// isolates the *network* path).
fn heavy_tail_mix(p: &ScenarioParams, rec: &mut Recorder) {
    let mut c = Cluster::build("heavy_tail_mix", 2, 1, p.seed);
    let samples: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));

    let s = samples.clone();
    c.on_receive(
        0,
        Rc::new(move |sim: &mut Sim, msg: Message| {
            s.borrow_mut().push(stamped_latency(sim, &msg));
        }),
    );

    let mut t = SimTime::ZERO;
    for _ in 0..p.samples {
        t += spread_gap(&mut c.rng, 4_000);
        let size = heavy_tail_size(&mut c.rng, 256, 12);
        schedule_send(&mut c, t, 1, 0, size);
    }
    c.sim.run();
    drain(&c, &samples, TaskClass::Bulk, rec);
}

/// Scatter/gather rounds: a coordinator scatters one small task to every
/// worker; each worker's service draw has a 1-in-16 chance of running
/// 10× slow. Recorded: per-reply latency at the coordinator (scatter
/// send → reply arrival), so straggler amplification lands in the upper
/// percentiles of every round.
fn straggler_shuffle(p: &ScenarioParams, rec: &mut Recorder) {
    let workers = p.endpoints;
    let rounds = (p.samples as usize / workers).max(1);
    let mut c = Cluster::build("straggler_shuffle", workers + 1, 1, p.seed);
    let samples: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let wrk_rng = event_rng("straggler_shuffle", p.seed);

    let servers = c.servers.clone();
    let net = c.net.clone();
    let s = samples.clone();
    let handler: RxHandler = Rc::new(move |sim: &mut Sim, msg: Message| {
        if msg.dst == 0 {
            // A reply landing back at the coordinator.
            s.borrow_mut().push(stamped_latency(sim, &msg));
            return;
        }
        // A scattered task arriving at a worker: jittered service with a
        // 1-in-16 straggler draw, then a reply carrying the original stamp.
        let service = {
            let mut rng = wrk_rng.borrow_mut();
            let base = SimTime::from_us(4).scale(rng.jitter(0.12));
            if rng.next_below(16) == 0 {
                base * 10
            } else {
                base
            }
        };
        let net = net.clone();
        let worker = msg.dst;
        let stamp = msg.tag;
        servers[worker].serve(sim, service, move |sim| {
            net.send(
                sim,
                Message {
                    src: worker,
                    dst: 0,
                    rail: 0,
                    tag: stamp,
                    size: 512,
                    data: None,
                },
            );
        });
    });
    for node in 0..=workers {
        c.on_receive(node, handler.clone());
    }

    for round in 0..rounds {
        let round_start = SimTime::from_us(300) * round as u64;
        for worker in 1..=workers {
            schedule_send(&mut c, round_start, 0, worker, 512);
        }
    }
    c.sim.run();
    drain(&c, &samples, TaskClass::Interactive, rec);
}

/// Per-request client state of the retry-storm scenario.
struct RetryReq {
    first_send_ns: u64,
    attempts: u32,
    done: bool,
}

/// Shared state threaded through the retry-storm event closures.
struct RetryCtx {
    net: Rc<Network>,
    reqs: RefCell<Vec<RetryReq>>,
    samples: Rc<RefCell<Vec<u64>>>,
    backoff_rng: RefCell<SplitMix64>,
}

/// Client timeout before a retry.
const RETRY_TIMEOUT: SimTime = SimTime::from_us(120);
/// Retry budget per request; a request out of budget records its
/// accumulated latency as a give-up (the storm's worst-case tail).
const RETRY_MAX_ATTEMPTS: u32 = 8;

/// One attempt of request `id`: send, then arm a timeout that either
/// gives up or schedules the next attempt after an exponential,
/// jittered backoff.
fn retry_attempt(ctx: Rc<RetryCtx>, sim: &mut Sim, id: usize, client: usize, size: usize) {
    {
        let mut reqs = ctx.reqs.borrow_mut();
        if reqs[id].done {
            return;
        }
        reqs[id].attempts += 1;
    }
    ctx.net.send(
        sim,
        Message {
            src: client,
            dst: 0,
            rail: 0,
            tag: id as u64,
            size,
            data: None,
        },
    );
    let ctx2 = ctx.clone();
    sim.schedule(RETRY_TIMEOUT, move |sim| {
        let (first_send_ns, attempts) = {
            let reqs = ctx2.reqs.borrow();
            let r = &reqs[id];
            if r.done {
                return; // answered while the timeout was in flight
            }
            (r.first_send_ns, r.attempts)
        };
        if attempts >= RETRY_MAX_ATTEMPTS {
            ctx2.reqs.borrow_mut()[id].done = true;
            ctx2.samples
                .borrow_mut()
                .push(sim.now().as_ns() - first_send_ns);
            return;
        }
        let backoff = {
            let mut rng = ctx2.backoff_rng.borrow_mut();
            let base = 20_000u64 << attempts.min(6);
            SimTime::from_ns(base + rng.next_below(base))
        };
        let ctx3 = ctx2.clone();
        sim.schedule(backoff, move |sim| {
            retry_attempt(ctx3, sim, id, client, size);
        });
    });
}

/// A server outage and the storm it seeds: steady request load, a dead
/// window in the middle of the horizon during which the server drops
/// everything on the floor, clients timing out and retrying with
/// exponential backoff — so the outage's end is hit by the original load
/// *plus* every queued-up retry at once. Recorded: first send → first
/// response (or give-up), per request.
fn retry_storm(p: &ScenarioParams, rec: &mut Recorder) {
    const HORIZON: SimTime = SimTime::from_ms(8);
    let outage_start = SimTime::from_ns(HORIZON.as_ns() * 35 / 100);
    let outage_end = SimTime::from_ns(HORIZON.as_ns() / 2);

    let clients = p.endpoints.clamp(1, 8);
    let total = p.samples as usize;
    let mut c = Cluster::build("retry_storm", clients + 1, 1, p.seed);
    let samples: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let srv_rng = event_rng("retry_storm", p.seed);

    let ctx = Rc::new(RetryCtx {
        net: c.net.clone(),
        reqs: RefCell::new(Vec::with_capacity(total)),
        samples: samples.clone(),
        backoff_rng: RefCell::new(SplitMix64::new(crate::scenario_seed(
            "retry_storm_backoff",
            p.seed,
        ))),
    });

    // Server: drop during the outage; otherwise serve and respond.
    let server = c.servers[0].clone();
    let net = c.net.clone();
    c.on_receive(
        0,
        Rc::new(move |sim: &mut Sim, msg: Message| {
            if sim.now() >= outage_start && sim.now() < outage_end {
                return; // dead server: the client's timeout will fire
            }
            let net = net.clone();
            let (id, client) = (msg.tag, msg.src);
            let mut rng = srv_rng.borrow_mut();
            server.serve_sized(sim, msg.size, &mut rng, move |sim| {
                net.send(
                    sim,
                    Message {
                        src: 0,
                        dst: client,
                        rail: 0,
                        tag: id,
                        size: 256,
                        data: None,
                    },
                );
            });
        }),
    );

    // Clients: the first response (duplicates happen — a retry raced a
    // slow reply) completes the request and records its end-to-end time.
    for client in 1..=clients {
        let ctx2 = ctx.clone();
        c.on_receive(
            client,
            Rc::new(move |sim: &mut Sim, msg: Message| {
                let id = msg.tag as usize;
                let mut reqs = ctx2.reqs.borrow_mut();
                let r = &mut reqs[id];
                if !r.done {
                    r.done = true;
                    ctx2.samples
                        .borrow_mut()
                        .push(sim.now().as_ns() - r.first_send_ns);
                }
            }),
        );
    }

    // Steady load across the horizon, round-robin over the clients.
    let slot = HORIZON.as_ns() / total as u64;
    for id in 0..total {
        let at = SimTime::from_ns(id as u64 * slot + c.rng.next_below(slot.max(1)));
        let client = 1 + id % clients;
        let size = log_uniform_size(&mut c.rng, 9, 10); // 512 B .. 2 KiB
        ctx.reqs.borrow_mut().push(RetryReq {
            first_send_ns: at.as_ns(),
            attempts: 0,
            done: false,
        });
        let ctx2 = ctx.clone();
        c.sim.schedule_abs(at, move |sim| {
            retry_attempt(ctx2, sim, id, client, size);
        });
    }
    c.sim.run();
    drain(&c, &samples, TaskClass::Interactive, rec);
}

/// Striped bulk transfers through the *real* `newmadeleine` engine: each
/// transfer runs the two-sided rendezvous protocol, and the engine's
/// [`newmadeleine::rails`] scheduler water-fills the payload chunks over
/// the 4 rails (every size here is past both the eager threshold and the
/// stripe crossover). The recorded latency is transfer start → receive
/// completion, so it includes the RTS/CTS handshake, per-rail queueing
/// behind earlier transfers, and the slowest-chunk max the striping
/// scheduler is supposed to minimize.
fn multirail_stripe(p: &ScenarioParams, rec: &mut Recorder) {
    const RAILS: usize = 4;
    let transfers = p.samples as usize;
    let mut c = Cluster::build("multirail_stripe", 2, RAILS, p.seed);
    let samples: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));

    let cfg = EngineConfig {
        stripe_threshold: 32 * 1024,
        rndv_chunk: 16 * 1024,
        ..EngineConfig::newmadeleine()
    };
    let sender = CommEngine::new(0, c.net.clone(), cfg.clone());
    let receiver = CommEngine::new(1, c.net.clone(), cfg);

    let mut t = SimTime::ZERO;
    for id in 0..transfers {
        t += SimTime::from_ns(18_000 + c.rng.next_below(8_000));
        // 32..96 KiB: always rendezvous, always striped.
        let size = (32 * 1024 + c.rng.next_below(64 * 1024)) as usize;
        let (snd, rcv, s) = (sender.clone(), receiver.clone(), samples.clone());
        c.sim.schedule_abs(t, move |sim| {
            let start = sim.now().as_ns();
            let r = rcv.irecv(sim, 0, id as u64);
            r.on_complete(sim, move |sim| {
                s.borrow_mut().push(sim.now().as_ns() - start);
            });
            snd.isend(sim, 1, id as u64, size);
        });
    }
    // Progression: both engines polled every microsecond (the scenario's
    // stand-in for PIOMan keypoints), with slack past the last submission
    // for the queue to drain.
    let horizon = t + SimTime::from_ms(10);
    let mut at = SimTime::ZERO;
    while at < horizon {
        let (snd, rcv) = (sender.clone(), receiver.clone());
        c.sim.schedule_abs(at, move |sim| {
            snd.poll(sim);
            rcv.poll(sim);
        });
        at += SimTime::from_us(1);
    }
    c.sim.run();
    assert_eq!(
        samples.borrow().len(),
        transfers,
        "every rendezvous must complete within the poll horizon"
    );
    drain(&c, &samples, TaskClass::Bulk, rec);
}

/// Response-direction marker for the RPC mesh: request tags carry the
/// send stamp, responses carry the same stamp with the top bit set
/// (simulated nanoseconds never reach 2^63).
const RPC_RESPONSE: u64 = 1 << 63;

/// A steady random mesh of request/response RPCs between `endpoints`
/// nodes: light utilization everywhere, so the distribution is the tight
/// unimodal baseline the tail gate holds hardest. Recorded: full RTT
/// (request send → response arrival).
fn rpc_mesh_steady(p: &ScenarioParams, rec: &mut Recorder) {
    rpc_mesh_core("rpc_mesh_steady", p.endpoints.clamp(2, 16), p, rec);
}

/// [`rpc_mesh_steady`] scaled out to a fixed 2048-node mesh: the same
/// arrival rate scattered across 128× more pairs, so per-node queueing
/// all but vanishes and the row pins the fabric-scale RTT floor the
/// 16-node baseline's queueing is read against.
fn rpc_mesh_steady_2048(p: &ScenarioParams, rec: &mut Recorder) {
    rpc_mesh_core("rpc_mesh_steady_2048", 2048, p, rec);
}

/// The shared mesh simulation behind the two registry rows; `name` keys
/// the RNG streams so the rows draw independent jitter.
fn rpc_mesh_core(name: &'static str, nodes: usize, p: &ScenarioParams, rec: &mut Recorder) {
    let mut c = Cluster::build(name, nodes, 1, p.seed);
    let samples: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let srv_rng = event_rng(name, p.seed);

    let servers = c.servers.clone();
    let net = c.net.clone();
    let s = samples.clone();
    let handler: RxHandler = Rc::new(move |sim: &mut Sim, msg: Message| {
        if msg.tag & RPC_RESPONSE != 0 {
            s.borrow_mut()
                .push(sim.now().as_ns() - (msg.tag & !RPC_RESPONSE));
            return;
        }
        let net = net.clone();
        let (stamp, requester, responder) = (msg.tag, msg.src, msg.dst);
        let mut rng = srv_rng.borrow_mut();
        servers[responder].serve_sized(sim, msg.size, &mut rng, move |sim| {
            net.send(
                sim,
                Message {
                    src: responder,
                    dst: requester,
                    rail: 0,
                    tag: stamp | RPC_RESPONSE,
                    size: 1024,
                    data: None,
                },
            );
        });
    });
    for node in 0..nodes {
        c.on_receive(node, handler.clone());
    }

    let mut t = SimTime::ZERO;
    for _ in 0..p.samples {
        t += spread_gap(&mut c.rng, 2_500);
        let src = c.rng.next_below(nodes as u64) as usize;
        let mut dst = c.rng.next_below(nodes as u64 - 1) as usize;
        if dst >= src {
            dst += 1;
        }
        let size = log_uniform_size(&mut c.rng, 9, 10); // 512 B .. 2 KiB
        schedule_send(&mut c, t, src, dst, size);
    }
    c.sim.run();
    drain(&c, &samples, TaskClass::Interactive, rec);
}

/// One-sided pulls: the aggregator reads jittered-size blocks from each
/// peer over RDMA — no remote CPU, no engine contention in the model, so
/// the distribution is purely the size mix through the cost model. The
/// contention-free floor the queueing scenarios are read against.
/// Recorded: pull start → completion.
fn rdma_pull_fanin(p: &ScenarioParams, rec: &mut Recorder) {
    let peers = p.endpoints;
    let mut c = Cluster::build("rdma_pull_fanin", peers + 1, 1, p.seed);
    let samples: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));

    let mut t = SimTime::ZERO;
    for k in 0..p.samples {
        t += SimTime::from_ns(25_000 + c.rng.next_below(10_000));
        let target = 1 + (k as usize) % peers;
        let size = (32 * 1024 + c.rng.next_below(96 * 1024)) as usize;
        let net = c.net.clone();
        let s = samples.clone();
        c.sim.schedule_abs(t, move |sim| {
            let started = sim.now().as_ns();
            let s = s.clone();
            net.rdma_read(sim, 0, target, 0, size, move |sim| {
                s.borrow_mut().push(sim.now().as_ns() - started);
            });
        });
    }
    c.sim.run();
    drain(&c, &samples, TaskClass::Bulk, rec);
}

/// Tag layout of the QoS mesh: bit 63 stays the [`RPC_RESPONSE`] flag,
/// bits 61–62 carry the request's [`TaskClass`] index, and the low 61
/// bits carry the send stamp (simulated nanoseconds never reach 2^61).
const QOS_CLASS_SHIFT: u32 = 61;
const QOS_STAMP_MASK: u64 = (1 << QOS_CLASS_SHIFT) - 1;

/// Per-responder class lanes, mirroring the scheduler's
/// [`pioman::lockfree::ClassLanes`] semantics in the sequential DES:
/// per-class FIFO lanes served in strict priority order, with the
/// [`BACKGROUND_BYPASS_LIMIT`] anti-starvation credit hoisting a waiting
/// `Background` request once enough higher-class requests bypassed it.
struct QosLanes {
    /// `(stamp, requester, size)` per parked request, one lane per class.
    lanes: [VecDeque<(u64, usize, usize)>; CLASS_COUNT],
    busy: bool,
    credit: u32,
}

impl QosLanes {
    /// [`pioman::lockfree::ClassLanes::pop`] on the simulated lanes:
    /// class order honouring the credit, then the credit bookkeeping of
    /// `note_served`.
    fn pop(&mut self) -> Option<(TaskClass, (u64, usize, usize))> {
        let bg = TaskClass::Background;
        let bg_waiting = !self.lanes[bg.index()].is_empty();
        let order = if self.credit >= BACKGROUND_BYPASS_LIMIT && bg_waiting {
            [
                TaskClass::Background,
                TaskClass::Urgent,
                TaskClass::Interactive,
                TaskClass::Bulk,
            ]
        } else {
            TaskClass::ALL
        };
        for class in order {
            if let Some(req) = self.lanes[class.index()].pop_front() {
                if class == bg {
                    self.credit = 0;
                } else if bg_waiting {
                    self.credit += 1;
                }
                return Some((class, req));
            }
        }
        None
    }
}

/// Shared state of one QoS mesh run, `Rc`-cloned into the completion
/// chain so a responder can keep serving lane after lane.
struct QosCtx {
    lanes: RefCell<Vec<QosLanes>>,
    servers: Vec<Server>,
    net: Rc<Network>,
    rng: Rc<RefCell<SplitMix64>>,
}

/// Serves `node`'s lanes until they drain: pop by class policy, occupy
/// the server CPU, respond, repeat from the completion event.
fn qos_serve_next(ctx: &Rc<QosCtx>, sim: &mut Sim, node: usize) {
    let popped = ctx.lanes.borrow_mut()[node].pop();
    let Some((class, (stamp, requester, size))) = popped else {
        ctx.lanes.borrow_mut()[node].busy = false;
        return;
    };
    ctx.lanes.borrow_mut()[node].busy = true;
    let ctx2 = ctx.clone();
    let mut rng = ctx.rng.borrow_mut();
    ctx.servers[node].serve_sized(sim, size, &mut rng, move |sim| {
        ctx2.net.send(
            sim,
            Message {
                src: node,
                dst: requester,
                rail: 0,
                tag: stamp | RPC_RESPONSE | ((class.index() as u64) << QOS_CLASS_SHIFT),
                size: 1024,
                data: None,
            },
        );
        qos_serve_next(&ctx2, sim, node);
    });
}

/// The common simulation behind the four `rpc_mesh_qos_*` rows: the
/// steady RPC mesh re-run hotter (4× the arrival rate) with every
/// responder serving through [`QosLanes`] instead of one FIFO. All four
/// wrappers simulate the *identical* traffic — same name-seeded streams,
/// classes dealt 2:3:2:1 (urgent:interactive:bulk:background) from the
/// precompute stream — and each records only its own class's RTT slice,
/// so the four trajectory rows decompose one workload by tier: the
/// priority classes must stay tight (`Gate::Tail`) while `Bulk` and
/// `Background` absorb the queueing (`Gate::Wide`). Every row reports
/// the *full* per-class completion throughput of the shared workload
/// (latency samples carry the focus class, sibling slices go through
/// [`Recorder::note_completions`]), so the four throughput vectors are
/// identical — pinned by `qos_rows_share_one_throughput_vector`.
fn rpc_mesh_qos(focus: TaskClass, p: &ScenarioParams, rec: &mut Recorder) {
    let nodes = p.endpoints.clamp(2, 16);
    let mut c = Cluster::build("rpc_mesh_qos", nodes, 1, p.seed);
    let samples: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let done: Rc<RefCell<[u64; CLASS_COUNT]>> = Rc::new(RefCell::new([0; CLASS_COUNT]));

    // QoS lanes differentiate only where the server CPU is the
    // bottleneck (that is the resource the task scheduler arbitrates),
    // so this mesh runs CPU-bound: a 3× request-handling floor keeps the
    // responders near saturation while the fabric stays light.
    let mut costs = ServerCosts::from_machine();
    costs.base_ns *= 3;
    c.servers = (0..nodes).map(|_| Server::new(costs)).collect();

    let ctx = Rc::new(QosCtx {
        lanes: RefCell::new(
            (0..nodes)
                .map(|_| QosLanes {
                    lanes: Default::default(),
                    busy: false,
                    credit: 0,
                })
                .collect(),
        ),
        servers: c.servers.clone(),
        net: c.net.clone(),
        rng: event_rng("rpc_mesh_qos", p.seed),
    });

    let s = samples.clone();
    let d = done.clone();
    let ctx2 = ctx.clone();
    let handler: RxHandler = Rc::new(move |sim: &mut Sim, msg: Message| {
        let class_idx = ((msg.tag >> QOS_CLASS_SHIFT) & 0b11) as usize;
        if msg.tag & RPC_RESPONSE != 0 {
            d.borrow_mut()[class_idx] += 1;
            if class_idx == focus.index() {
                s.borrow_mut()
                    .push(sim.now().as_ns() - (msg.tag & QOS_STAMP_MASK));
            }
            return;
        }
        let idle = {
            let mut all = ctx2.lanes.borrow_mut();
            let l = &mut all[msg.dst];
            l.lanes[class_idx].push_back((msg.tag & QOS_STAMP_MASK, msg.src, msg.size));
            !l.busy
        };
        if idle {
            qos_serve_next(&ctx2, sim, msg.dst);
        }
    });
    for node in 0..nodes {
        c.on_receive(node, handler.clone());
    }

    let mut t = SimTime::ZERO;
    for _ in 0..p.samples {
        t += spread_gap(&mut c.rng, 300);
        let src = c.rng.next_below(nodes as u64) as usize;
        let mut dst = c.rng.next_below(nodes as u64 - 1) as usize;
        if dst >= src {
            dst += 1;
        }
        let size = log_uniform_size(&mut c.rng, 9, 10); // 512 B .. 2 KiB
        let class = match c.rng.next_below(8) {
            0 | 1 => TaskClass::Urgent,
            2..=4 => TaskClass::Interactive,
            5 | 6 => TaskClass::Bulk,
            _ => TaskClass::Background,
        };
        let net = c.net.clone();
        c.sim.schedule_abs(t, move |sim| {
            net.send(
                sim,
                Message {
                    src,
                    dst,
                    rail: 0,
                    tag: sim.now().as_ns() | ((class.index() as u64) << QOS_CLASS_SHIFT),
                    size,
                    data: None,
                },
            );
        });
    }
    c.sim.run();
    for class in TaskClass::ALL {
        if class != focus {
            rec.note_completions(class, done.borrow()[class.index()]);
        }
    }
    drain(&c, &samples, focus, rec);
}

fn rpc_mesh_qos_urgent(p: &ScenarioParams, rec: &mut Recorder) {
    rpc_mesh_qos(TaskClass::Urgent, p, rec);
}

fn rpc_mesh_qos_interactive(p: &ScenarioParams, rec: &mut Recorder) {
    rpc_mesh_qos(TaskClass::Interactive, p, rec);
}

fn rpc_mesh_qos_bulk(p: &ScenarioParams, rec: &mut Recorder) {
    rpc_mesh_qos(TaskClass::Bulk, p, rec);
}

fn rpc_mesh_qos_background(p: &ScenarioParams, rec: &mut Recorder) {
    rpc_mesh_qos(TaskClass::Background, p, rec);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_mesh_tiers_order_by_class() {
        // The four rpc_mesh_qos_* rows decompose one simulated workload;
        // the whole point of the class lanes is that the priority tiers
        // see a tighter tail than the yielding ones. Full params so the
        // Background slice (1/8 of traffic) has a real sample count.
        let p = ScenarioParams::full(42);
        let p99 = |name: &str| crate::find(name).unwrap().run(&p).summary.p99;
        let (urgent, background) = (p99("rpc_mesh_qos_urgent"), p99("rpc_mesh_qos_background"));
        assert!(
            urgent < background,
            "Urgent p99 ({urgent} ns) must beat Background p99 ({background} ns)"
        );
        assert!(
            p99("rpc_mesh_qos_interactive") <= p99("rpc_mesh_qos_bulk"),
            "Interactive p99 must not exceed Bulk p99"
        );
    }

    #[test]
    fn qos_rows_share_one_throughput_vector() {
        // The four focus rows simulate the identical workload and report
        // the full per-class completion set; their throughput vectors
        // must therefore agree bit-for-bit, and the focus slice's
        // latency count must equal its own throughput row.
        let p = ScenarioParams::quick(42);
        let urgent = crate::find("rpc_mesh_qos_urgent").unwrap().run(&p);
        let bulk = crate::find("rpc_mesh_qos_bulk").unwrap().run(&p);
        assert_eq!(
            urgent.throughput, bulk.throughput,
            "four views of one workload must report one throughput vector"
        );
        for (class, row) in TaskClass::ALL.iter().zip(urgent.throughput) {
            assert!(row.completed > 0, "{class:?} slice completed nothing");
            assert!(row.per_ms > 0.0, "{class:?} slice has no rate");
        }
        assert_eq!(
            urgent.throughput[TaskClass::Urgent.index()].completed,
            urgent.summary.count,
            "focus slice throughput must match its latency sample count"
        );
    }

    #[test]
    fn fabric_scale_incast_ramps_far_past_the_base_row() {
        // The 2048-sender variant pins its fan-in degree regardless of
        // the params preset: one sample per synchronized sender per
        // round, and a queueing ramp orders of magnitude past the
        // 16-sender baseline's.
        let p = ScenarioParams::quick(42);
        let base = crate::find("incast_fanin").unwrap().run(&p);
        let wide = crate::find("incast_fanin_2048").unwrap().run(&p);
        assert_eq!(wide.summary.count, 2048, "one sample per sender");
        assert!(
            wide.summary.p99 > base.summary.p99,
            "2048-deep fan-in must queue far past 16-deep: {} vs {}",
            wide.summary.p99,
            base.summary.p99
        );
    }

    #[test]
    fn size_helpers_stay_in_range() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            let s = log_uniform_size(&mut rng, 8, 12) as u64;
            assert!(
                (256..8192 * 2).contains(&s),
                "log-uniform out of range: {s}"
            );
            let h = heavy_tail_size(&mut rng, 256, 12) as u64;
            assert!(
                (256..=(2 * 256) << 12).contains(&h),
                "heavy tail out of range: {h}"
            );
        }
    }

    #[test]
    fn heavy_tail_is_actually_heavy() {
        let mut rng = SplitMix64::new(1);
        let draws: Vec<u64> = (0..50_000)
            .map(|_| heavy_tail_size(&mut rng, 256, 12) as u64)
            .collect();
        let mice = draws.iter().filter(|&&s| s < 1024).count();
        let elephants = draws.iter().filter(|&&s| s > 64 * 1024).count();
        assert!(mice > draws.len() / 2, "most draws should be mice");
        assert!(elephants > 0, "elephants must exist");
    }

    #[test]
    fn incast_latency_grows_within_a_round() {
        // The incast signature: with synchronized arrivals serialized
        // behind one server, the p99 sojourn must sit well above the p50.
        let s = crate::find("incast_fanin").unwrap();
        let r = s.run(&ScenarioParams::quick(42));
        assert!(
            r.summary.p99 > 2.0 * r.summary.p50,
            "no incast queueing visible: {:?}",
            r.summary
        );
    }

    #[test]
    fn retry_storm_tail_reflects_the_outage() {
        // Requests hitting the outage pay at least one 120 µs timeout;
        // the tail must clear that floor while the median stays normal.
        let s = crate::find("retry_storm").unwrap();
        let r = s.run(&ScenarioParams::quick(42));
        assert!(
            r.summary.p999 >= RETRY_TIMEOUT.as_ns() as f64,
            "no retry visible in the tail: {:?}",
            r.summary
        );
        assert!(
            r.summary.p50 < RETRY_TIMEOUT.as_ns() as f64,
            "median should be a non-outage request: {:?}",
            r.summary
        );
    }

    #[test]
    fn rdma_floor_is_tight() {
        let s = crate::find("rdma_pull_fanin").unwrap();
        let r = s.run(&ScenarioParams::quick(42));
        // No queueing in the model: max/min bounded by the size spread
        // (sizes span 32..128 KiB, so ~4x in the bandwidth term).
        assert!(
            r.summary.max < 10.0 * r.summary.p50,
            "contention-free floor should be tight: {:?}",
            r.summary
        );
    }
}
