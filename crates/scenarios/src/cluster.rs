//! The scenario builder: wires a [`Sim`] kernel, a [`Network`] fabric, and
//! per-node [`Server`] models into one harness the workloads share.
//!
//! The network crate models NIC engines and wire time but deliberately
//! delivers into a bare rx handler — *server-side* queueing (the thing
//! incast collapse and retry storms are made of) is the consumer's job.
//! [`Server`] supplies it: a single-threaded service loop whose per-request
//! CPU cost comes from the machine crate's calibrated [`CostModel`]
//! (`base_local_ns` is the paper's ~700 ns task-handling floor), extended
//! with a per-byte term and deterministic jitter. Requests serialize FIFO
//! behind `busy_until`, which is exactly what turns synchronized arrivals
//! into a latency tail.

use piom_des::rng::SplitMix64;
use piom_des::{Sim, SimTime};
use piom_machine::CostModel;
use piom_net::{Message, NetParams, Network, RxHandler};
use std::cell::RefCell;
use std::rc::Rc;

/// Service-time parameters of one simulated server process.
#[derive(Debug, Clone, Copy)]
pub struct ServerCosts {
    /// Fixed per-request CPU cost, ns.
    pub base_ns: u64,
    /// Per-payload-byte CPU cost, picoseconds.
    pub per_byte_ps: u64,
    /// Multiplicative service jitter spread (0 = none).
    pub jitter: f64,
}

impl ServerCosts {
    /// Costs derived from the machine crate's generic [`CostModel`]: the
    /// request-handling floor is the model's task cost
    /// (`base_local_ns` + self-execution overhead), payload touching runs
    /// at ~2 GB/s, and the service jitter is the model's memory jitter
    /// widened to process scale.
    pub fn from_machine() -> Self {
        let m = CostModel::generic();
        ServerCosts {
            base_ns: m.base_local_ns + m.self_execution_overhead_ns,
            per_byte_ps: 500,
            jitter: m.jitter * 3.0,
        }
    }

    /// Service time for one request of `size` bytes, jittered by `rng`.
    pub fn service_time(&self, size: usize, rng: &mut SplitMix64) -> SimTime {
        let ns = self.base_ns + (size as u64 * self.per_byte_ps) / 1_000;
        SimTime::from_ns(ns).scale(rng.jitter(self.jitter))
    }
}

struct ServerState {
    busy_until: SimTime,
    served: u64,
}

/// A single-threaded server process: each request occupies its CPU for a
/// service time, FIFO behind whatever is already queued. Completion is a
/// simulated event at `max(now, busy_until) + service`.
#[derive(Clone)]
pub struct Server {
    costs: ServerCosts,
    st: Rc<RefCell<ServerState>>,
}

impl Server {
    /// An idle server with the given cost model.
    pub fn new(costs: ServerCosts) -> Self {
        Server {
            costs,
            st: Rc::new(RefCell::new(ServerState {
                busy_until: SimTime::ZERO,
                served: 0,
            })),
        }
    }

    /// Requests fully served so far.
    pub fn served(&self) -> u64 {
        self.st.borrow().served
    }

    /// Simulated time at which the current queue drains.
    pub fn busy_until(&self) -> SimTime {
        self.st.borrow().busy_until
    }

    /// Accepts one request of `size` bytes at the current simulated time;
    /// `done` runs when the server finishes it (after queueing + service).
    /// `service` is drawn by the caller so scenarios control jitter
    /// streams; use [`ServerCosts::service_time`] for the standard draw.
    pub fn serve<F: FnOnce(&mut Sim) + 'static>(&self, sim: &mut Sim, service: SimTime, done: F) {
        let completion = {
            let mut st = self.st.borrow_mut();
            let start = st.busy_until.max(sim.now());
            st.busy_until = start + service;
            st.busy_until
        };
        let st = self.st.clone();
        sim.schedule_abs(completion, move |sim| {
            st.borrow_mut().served += 1;
            done(sim);
        });
    }

    /// Convenience: serve with the standard jittered cost draw.
    pub fn serve_sized<F: FnOnce(&mut Sim) + 'static>(
        &self,
        sim: &mut Sim,
        size: usize,
        rng: &mut SplitMix64,
        done: F,
    ) {
        let service = self.costs.service_time(size, rng);
        self.serve(sim, service, done);
    }
}

/// The assembled testbed every workload starts from: the DES kernel, an
/// `n_nodes × n_rails` fabric, one [`Server`] per node, and the scenario's
/// own seeded RNG stream.
pub struct Cluster {
    /// The event kernel.
    pub sim: Sim,
    /// The simulated fabric.
    pub net: Rc<Network>,
    /// One server process per node (`servers[node]`).
    pub servers: Vec<Server>,
    /// The scenario's deterministic jitter stream.
    pub rng: SplitMix64,
}

impl Cluster {
    /// Builds a cluster of `n_nodes` InfiniBand-class nodes with `n_rails`
    /// rails each, servers costed from the machine model, and an RNG
    /// seeded from `(scenario name, run seed)` so scenarios draw
    /// independent streams.
    pub fn build(name: &str, n_nodes: usize, n_rails: usize, seed: u64) -> Self {
        Cluster::build_with(name, n_nodes, n_rails, seed, NetParams::infiniband())
    }

    /// [`Cluster::build`] with an explicit fabric parameter set.
    pub fn build_with(
        name: &str,
        n_nodes: usize,
        n_rails: usize,
        seed: u64,
        params: NetParams,
    ) -> Self {
        Cluster {
            sim: Sim::new(),
            net: Network::new(n_nodes, n_rails, params),
            servers: (0..n_nodes)
                .map(|_| Server::new(ServerCosts::from_machine()))
                .collect(),
            rng: SplitMix64::new(crate::scenario_seed(name, seed)),
        }
    }

    /// Installs `h` as the rx handler on every rail of `node`.
    pub fn on_receive(&self, node: usize, h: RxHandler) {
        for rail in 0..self.net.n_rails() {
            self.net.nic(node, rail).set_rx_handler(h.clone());
        }
    }

    /// Sends a request of `size` bytes from `src` to `dst` on rail 0,
    /// stamping the current simulated time into the message tag so the
    /// receiver can compute the end-to-end latency (`tag` is opaque to
    /// the network; nanoseconds fit a `u64` for any plausible run).
    pub fn send_stamped(&mut self, src: usize, dst: usize, size: usize) {
        let msg = Message {
            src,
            dst,
            rail: 0,
            tag: self.sim.now().as_ns(),
            size,
            data: None,
        };
        self.net.send(&mut self.sim, msg);
    }
}

/// Nanoseconds elapsed since the send stamp of `msg` ([`Cluster::send_stamped`]).
pub fn stamped_latency(sim: &Sim, msg: &Message) -> u64 {
    sim.now().as_ns().saturating_sub(msg.tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn server_serializes_simultaneous_arrivals() {
        let mut sim = Sim::new();
        let server = Server::new(ServerCosts {
            base_ns: 100,
            per_byte_ps: 0,
            jitter: 0.0,
        });
        let done: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let d = done.clone();
            server.serve(&mut sim, SimTime::from_ns(100), move |sim| {
                d.borrow_mut().push(sim.now().as_ns());
            });
        }
        sim.run();
        // Three requests arriving at t=0 complete at 100, 200, 300: the
        // queueing delay *is* the tail the fan-in scenarios measure.
        assert_eq!(*done.borrow(), vec![100, 200, 300]);
        assert_eq!(server.served(), 3);
    }

    #[test]
    fn server_idles_between_spaced_arrivals() {
        let mut sim = Sim::new();
        let server = Server::new(ServerCosts {
            base_ns: 10,
            per_byte_ps: 0,
            jitter: 0.0,
        });
        let s2 = server.clone();
        sim.schedule(SimTime::from_ns(1_000), move |sim| {
            s2.serve(sim, SimTime::from_ns(10), |_| {});
        });
        sim.run();
        // The queue restarts from the arrival time, not from busy_until.
        assert_eq!(server.busy_until(), SimTime::from_ns(1_010));
    }

    #[test]
    fn machine_costs_are_positive_and_jittered() {
        let costs = ServerCosts::from_machine();
        assert!(costs.base_ns >= 700, "machine task floor expected");
        let mut rng = SplitMix64::new(1);
        let a = costs.service_time(4096, &mut rng);
        let b = costs.service_time(4096, &mut rng);
        assert!(a > SimTime::ZERO && b > SimTime::ZERO);
        assert_ne!(a, b, "jitter must draw from the stream");
    }

    #[test]
    fn stamped_send_measures_end_to_end() {
        let mut c = Cluster::build("test_stamp", 2, 1, 7);
        let seen = Rc::new(Cell::new(0u64));
        let s = seen.clone();
        c.on_receive(
            1,
            Rc::new(move |sim: &mut Sim, msg: Message| {
                s.set(stamped_latency(sim, &msg));
            }),
        );
        c.send_stamped(0, 1, 1024);
        c.sim.run();
        let p = NetParams::infiniband();
        let expected = (p.occupancy() + p.byte_time(1024) + p.latency()).as_ns();
        assert_eq!(seen.get(), expected);
    }
}
