//! The OSU multi-threaded latency test (paper Fig. 4, §V-B).
//!
//! "This benchmark performs ping-pong with a single sender and multiple
//! receiver threads. The sending process sends a 4-byte message to the
//! receiver and waits for a reply. Each receiving thread calls `MPI_Recv`
//! and sends back a 4-byte reply."
//!
//! The mechanism under test is *how receiver threads wait*:
//!
//! * baselines: every thread spins inside `MPI_Recv`, polling the NIC; with
//!   more threads than cores, each poll loop only runs 1/k-th of the time
//!   and every rotation pays a context switch — latency climbs with the
//!   thread count;
//! * PIOMan: threads block on a condition; idle cores poll centrally and
//!   wake exactly the matched thread — latency stays flat, "even when this
//!   number exceeds the number of CPUs".

use crate::{MpiImpl, SimCluster};
use piom_des::rng::SplitMix64;
use piom_des::stats::OnlineStats;
use piom_des::{Sim, SimTime};
use piom_machine::threads::Step;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Result of one multi-threaded latency run.
#[derive(Debug, Clone)]
pub struct MtLatResult {
    /// Number of receiver threads.
    pub threads: usize,
    /// Mean one-way latency in microseconds (RTT/2, as OSU reports).
    pub mean_latency_us: f64,
    /// Round-trip statistics in ns.
    pub rtt_stats: OnlineStats,
}

/// Runs the Fig. 4 benchmark: `threads` receiver threads on node 1, one
/// sender thread on node 0, `rounds` round-robin pingpongs total.
pub fn run_mtlat(impl_: MpiImpl, threads: usize, rounds: usize, seed: u64) -> MtLatResult {
    assert!(threads > 0 && rounds > 0);
    let cluster = SimCluster::new(impl_, 2, 1, seed);
    let mut sim = Sim::new();
    let cores = cluster.cores_per_node();

    // --- Receiver threads on node 1, spread round-robin over cores -----
    for t in 0..threads {
        let engine = cluster.nodes[1].engine.clone();
        let sched = cluster.nodes[1].sched.clone();
        let impl_ = cluster.impl_;
        let core = t % cores;
        let cond = sched.new_cond();
        let tag = t as u64;
        let reply_tag = 0x8000_0000 | tag;
        // Receiver state machine: post recv -> wait -> reply -> repeat.
        let req: Rc<RefCell<Option<newmadeleine::ReqHandle>>> = Rc::new(RefCell::new(None));
        let spin_compute_next = Rc::new(Cell::new(true));
        let mut rng = SplitMix64::new(seed ^ ((t as u64 + 1) << 17));
        cluster.nodes[1].sched.spawn(
            &mut sim,
            core,
            Box::new(move |sim, _| {
                if req.borrow().is_none() {
                    let r = engine.irecv(sim, 0, tag);
                    if impl_.background_progress() {
                        let sched = sched.clone();
                        r.on_complete(sim, move |sim| sched.notify(sim, cond));
                    }
                    *req.borrow_mut() = Some(r);
                }
                let done = req.borrow().as_ref().unwrap().is_complete();
                if done {
                    // Reply and repost.
                    engine.isend(sim, 0, reply_tag, 4);
                    *req.borrow_mut() = None;
                    Step::Yield
                } else if impl_.background_progress() {
                    // PIOMan: blocking condition; idle cores progress.
                    Step::Block(cond)
                } else {
                    // Baseline: spin in MPI_Recv, polling the NIC. Each
                    // iteration pays the completion-queue lock stretched by
                    // the other spinners, then yields (sched_yield in the
                    // poll loop) — the rotation whose cost grows with the
                    // thread count.
                    engine.poll(sim);
                    if spin_compute_next.get() {
                        spin_compute_next.set(false);
                        // Jitter desynchronizes the spinners' rotation from
                        // the sender's round-robin (real CQ walks vary).
                        let cost = impl_.poll_cpu_contended(threads).scale(rng.jitter(0.35));
                        Step::Compute(cost)
                    } else {
                        spin_compute_next.set(true);
                        Step::Yield
                    }
                }
            }),
        );
    }

    // --- Sender thread on node 0, core 0 --------------------------------
    let rtt_stats: Rc<RefCell<OnlineStats>> = Rc::new(RefCell::new(OnlineStats::new()));
    let finished = Rc::new(Cell::new(false));
    {
        let engine = cluster.nodes[0].engine.clone();
        let sched = cluster.nodes[0].sched.clone();
        let impl_ = cluster.impl_;
        let stats = rtt_stats.clone();
        let finished = finished.clone();
        let cond = sched.new_cond();
        let mut round = 0usize;
        let mut sent_at = SimTime::ZERO;
        let reply: Rc<RefCell<Option<newmadeleine::ReqHandle>>> = Rc::new(RefCell::new(None));
        cluster.nodes[0].sched.spawn(
            &mut sim,
            0,
            Box::new(move |sim, _| {
                if reply.borrow().is_none() {
                    if round >= rounds {
                        finished.set(true);
                        sim.stop(); // receivers loop forever; end the run
                        return Step::Exit;
                    }
                    // Ping the next thread round-robin.
                    let t = (round % threads) as u64;
                    round += 1;
                    sent_at = sim.now();
                    engine.isend(sim, 1, t, 4);
                    let r = engine.irecv(sim, 1, 0x8000_0000 | t);
                    if impl_.background_progress() {
                        let sched = sched.clone();
                        r.on_complete(sim, move |sim| sched.notify(sim, cond));
                    }
                    *reply.borrow_mut() = Some(r);
                }
                let done = reply.borrow().as_ref().unwrap().is_complete();
                if done {
                    stats.borrow_mut().push_time(sim.now() - sent_at);
                    *reply.borrow_mut() = None;
                    Step::Yield
                } else if impl_.background_progress() {
                    Step::Block(cond)
                } else {
                    engine.poll(sim);
                    Step::Compute(impl_.poll_cpu())
                }
            }),
        );
    }

    sim.run_until(SimTime::from_secs(60));
    assert!(
        finished.get(),
        "{} with {threads} threads did not finish {rounds} rounds in simulated budget",
        impl_.label()
    );
    let rtt_stats = rtt_stats.borrow().clone();
    MtLatResult {
        threads,
        mean_latency_us: rtt_stats.mean() / 2.0 / 1000.0,
        rtt_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_latency_is_microseconds() {
        for impl_ in MpiImpl::ALL {
            let r = run_mtlat(impl_, 1, 40, 11);
            assert!(
                (1.0..50.0).contains(&r.mean_latency_us),
                "{}: implausible 1-thread latency {} µs",
                impl_.label(),
                r.mean_latency_us
            );
        }
    }

    #[test]
    fn baseline_latency_climbs_with_threads() {
        let l1 = run_mtlat(MpiImpl::MvapichLike, 1, 40, 11).mean_latency_us;
        let l32 = run_mtlat(MpiImpl::MvapichLike, 32, 40, 11).mean_latency_us;
        // The paper's Fig. 4 shows MVAPICH climbing steadily with the
        // thread count while PIOMan stays flat; at 32 threads the climb is
        // already a multiple of the single-thread latency.
        assert!(
            l32 > 2.2 * l1,
            "MVAPICH-like latency should climb: 1T={l1} 32T={l32}"
        );
    }

    #[test]
    fn pioman_latency_stays_flat_past_core_count() {
        let l1 = run_mtlat(MpiImpl::MadMpi, 1, 40, 11).mean_latency_us;
        let l32 = run_mtlat(MpiImpl::MadMpi, 32, 40, 11).mean_latency_us;
        assert!(
            l32 < 2.0 * l1,
            "PIOMan latency should stay flat: 1T={l1} 32T={l32}"
        );
    }

    #[test]
    fn pioman_beats_baseline_at_high_thread_counts() {
        let pioman = run_mtlat(MpiImpl::MadMpi, 64, 30, 11).mean_latency_us;
        let mvapich = run_mtlat(MpiImpl::MvapichLike, 64, 30, 11).mean_latency_us;
        assert!(
            mvapich > 4.0 * pioman,
            "expected a wide gap at 64 threads: pioman={pioman} mvapich={mvapich}"
        );
    }
}
