//! The communication/computation overlap benchmark (paper Figs. 5–7).
//!
//! Method of Shet et al. \[15\], as used in §V-C: post a non-blocking
//! operation, compute for `T`, then wait; the overlap ratio is
//! `T / T_total` where `T_total` is the time from the non-blocking call to
//! the return of the wait. A ratio near 1 means the transfer was fully
//! hidden behind the computation.
//!
//! The computing side is the experiment's variable: sender-side compute
//! (Fig. 5), receiver-side (Fig. 6), or both (Fig. 7).

use crate::{MpiImpl, SimCluster};
use newmadeleine::{CommEngine, ReqHandle};
use piom_des::{Sim, SimTime};
use piom_machine::threads::{Step, ThreadSched};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Which side computes between the non-blocking call and the wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeSide {
    /// Fig. 5: the sender computes.
    Sender,
    /// Fig. 6: the receiver computes.
    Receiver,
    /// Fig. 7: both sides compute.
    Both,
}

/// One measured point of an overlap curve.
#[derive(Debug, Clone, Copy)]
pub struct OverlapPoint {
    /// Computation time injected between post and wait.
    pub compute: SimTime,
    /// Measured overlap ratio `T / T_total` (0 when `T` is zero).
    pub ratio: f64,
}

/// Builds the wait behaviour for one request as thread-logic steps.
///
/// * MAD-MPI: check, then block on a condition; the completion callback
///   notifies it (the paper's "blocking condition", §V-B). Background
///   polling by idle cores does the progress.
/// * Baselines: spin `poll(); compute(poll_cpu)` inside the call — the only
///   place these implementations progress communication.
struct Waiter {
    req: ReqHandle,
    engine: CommEngine,
    sched: ThreadSched,
    impl_: MpiImpl,
    cond: piom_machine::threads::CondId,
    registered: bool,
}

impl Waiter {
    fn new(req: ReqHandle, engine: CommEngine, sched: ThreadSched, impl_: MpiImpl) -> Waiter {
        let cond = sched.new_cond();
        Waiter {
            req,
            engine,
            sched,
            impl_,
            cond,
            registered: false,
        }
    }

    /// One wait iteration. Returns `None` when the request is complete,
    /// otherwise the step the thread should take before retrying.
    fn step(&mut self, sim: &mut Sim) -> Option<Step> {
        if self.impl_.background_progress() {
            if !self.registered {
                self.registered = true;
                let sched = self.sched.clone();
                let cond = self.cond;
                self.req
                    .on_complete(sim, move |sim| sched.notify(sim, cond));
            }
            if self.req.is_complete() {
                None
            } else {
                Some(Step::Block(self.cond))
            }
        } else {
            self.engine.poll(sim);
            if self.req.is_complete() {
                None
            } else {
                Some(Step::Compute(self.impl_.poll_cpu()))
            }
        }
    }
}

/// Runs one overlap round and returns the measured ratio.
///
/// `size` is the message size (32 KB and 1 MB in the paper), `compute` the
/// injected computation time.
pub fn run_overlap(
    impl_: MpiImpl,
    size: usize,
    compute: SimTime,
    side: ComputeSide,
    seed: u64,
) -> f64 {
    let cluster = SimCluster::new(impl_, 2, 1, seed);
    let mut sim = Sim::new();

    let sender_total: Rc<Cell<Option<SimTime>>> = Rc::new(Cell::new(None));
    let recv_total: Rc<Cell<Option<SimTime>>> = Rc::new(Cell::new(None));

    // --- Sender thread (node 0, core 0) -----------------------------
    {
        let engine = cluster.nodes[0].engine.clone();
        let sched = cluster.nodes[0].sched.clone();
        let total = sender_total.clone();
        let computes = matches!(side, ComputeSide::Sender | ComputeSide::Both);
        let mut phase = 0;
        let mut started = SimTime::ZERO;
        let waiter: Rc<RefCell<Option<Waiter>>> = Rc::new(RefCell::new(None));
        let impl_ = cluster.impl_;
        cluster.nodes[0].sched.spawn(
            &mut sim,
            0,
            Box::new(move |sim, _| {
                match phase {
                    0 => {
                        phase = 1;
                        started = sim.now();
                        let req = engine.isend(sim, 1, 1, size);
                        *waiter.borrow_mut() =
                            Some(Waiter::new(req, engine.clone(), sched.clone(), impl_));
                        if computes && compute > SimTime::ZERO {
                            return Step::Compute(compute);
                        }
                        // Fall through to waiting on the next invocation.
                        Step::Yield
                    }
                    _ => match waiter.borrow_mut().as_mut().unwrap().step(sim) {
                        Some(step) => step,
                        None => {
                            total.set(Some(sim.now() - started));
                            Step::Exit
                        }
                    },
                }
            }),
        );
    }

    // --- Receiver thread (node 1, core 0) ---------------------------
    {
        let engine = cluster.nodes[1].engine.clone();
        let sched = cluster.nodes[1].sched.clone();
        let total = recv_total.clone();
        let computes = matches!(side, ComputeSide::Receiver | ComputeSide::Both);
        let mut phase = 0;
        let mut started = SimTime::ZERO;
        let waiter: Rc<RefCell<Option<Waiter>>> = Rc::new(RefCell::new(None));
        let impl_ = cluster.impl_;
        cluster.nodes[1].sched.spawn(
            &mut sim,
            0,
            Box::new(move |sim, _| match phase {
                0 => {
                    phase = 1;
                    started = sim.now();
                    let req = engine.irecv(sim, 0, 1);
                    *waiter.borrow_mut() =
                        Some(Waiter::new(req, engine.clone(), sched.clone(), impl_));
                    if computes && compute > SimTime::ZERO {
                        return Step::Compute(compute);
                    }
                    Step::Yield
                }
                _ => match waiter.borrow_mut().as_mut().unwrap().step(sim) {
                    Some(step) => step,
                    None => {
                        total.set(Some(sim.now() - started));
                        Step::Exit
                    }
                },
            }),
        );
    }

    sim.run_until(SimTime::from_secs(5));
    let st = sender_total.get().expect("sender wait never returned");
    let rt = recv_total.get().expect("receiver wait never returned");
    let t_total = match side {
        ComputeSide::Sender => st,
        ComputeSide::Receiver => rt,
        ComputeSide::Both => st.max(rt),
    };
    if compute == SimTime::ZERO || t_total == SimTime::ZERO {
        return 0.0;
    }
    (compute.as_ns() as f64 / t_total.as_ns() as f64).min(1.0)
}

/// Sweeps an overlap curve over `computes`.
pub fn sweep(
    impl_: MpiImpl,
    size: usize,
    computes: &[SimTime],
    side: ComputeSide,
    seed: u64,
) -> Vec<OverlapPoint> {
    computes
        .iter()
        .map(|&c| OverlapPoint {
            compute: c,
            ratio: run_overlap(impl_, size, c, side, seed),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB32: usize = 32 * 1024;
    const MB1: usize = 1 << 20;

    #[test]
    fn sender_side_overlap_works_for_everyone() {
        // Fig. 5's result: RDMA-read rendezvous lets even the baselines
        // overlap when the *sender* computes.
        for impl_ in MpiImpl::ALL {
            let r = run_overlap(impl_, KB32, SimTime::from_us(150), ComputeSide::Sender, 1);
            assert!(
                r > 0.8,
                "{} sender-side overlap too low: {r}",
                impl_.label()
            );
        }
    }

    #[test]
    fn receiver_side_overlap_separates_pioman_from_baselines() {
        // Fig. 6's result: only PIOMan overlaps when the receiver computes.
        let compute = SimTime::from_us(1000);
        let pioman = run_overlap(MpiImpl::MadMpi, MB1, compute, ComputeSide::Receiver, 1);
        let mvapich = run_overlap(MpiImpl::MvapichLike, MB1, compute, ComputeSide::Receiver, 1);
        let openmpi = run_overlap(MpiImpl::OpenMpiLike, MB1, compute, ComputeSide::Receiver, 1);
        assert!(pioman > 0.85, "PIOMan receiver overlap: {pioman}");
        assert!(mvapich < 0.62, "MVAPICH should not overlap: {mvapich}");
        assert!(openmpi < 0.62, "OpenMPI should not overlap: {openmpi}");
        // 1 MB takes ~900 µs: at T=1000 µs the no-overlap ratio is ~0.53.
        assert!(mvapich > 0.35, "sanity: ratio can't collapse: {mvapich}");
    }

    #[test]
    fn both_sides_follow_receiver_behaviour() {
        let compute = SimTime::from_us(1000);
        let pioman = run_overlap(MpiImpl::MadMpi, MB1, compute, ComputeSide::Both, 2);
        let mvapich = run_overlap(MpiImpl::MvapichLike, MB1, compute, ComputeSide::Both, 2);
        assert!(pioman > 0.85, "PIOMan both-sides overlap: {pioman}");
        assert!(mvapich < 0.65, "MVAPICH both-sides: {mvapich}");
    }

    #[test]
    fn ratio_grows_with_compute_time() {
        // As T grows past the transfer time, even no-overlap ratios climb
        // (T dominates T_total) — the curves' common asymptote.
        let r_small = run_overlap(
            MpiImpl::MvapichLike,
            KB32,
            SimTime::from_us(20),
            ComputeSide::Receiver,
            3,
        );
        let r_big = run_overlap(
            MpiImpl::MvapichLike,
            KB32,
            SimTime::from_us(200),
            ComputeSide::Receiver,
            3,
        );
        assert!(r_big > r_small, "no growth: {r_small} -> {r_big}");
    }

    #[test]
    fn zero_compute_is_zero_ratio() {
        let r = run_overlap(MpiImpl::MadMpi, KB32, SimTime::ZERO, ComputeSide::Sender, 4);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn sweep_produces_monotone_x() {
        let xs = [10u64, 50, 100].map(SimTime::from_us);
        let pts = sweep(MpiImpl::MadMpi, KB32, &xs, ComputeSide::Sender, 5);
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].compute < w[1].compute));
    }
}
