//! MAD-MPI and baseline MPI engines on the simulated cluster.
//!
//! The paper compares three MPI stacks on an InfiniBand cluster of
//! `borderline`-class nodes (§V-B/C):
//!
//! * **MAD-MPI** — NewMadeleine + PIOMan: communication progresses in the
//!   background because scheduler keypoints (idle cores, context switches,
//!   timers) poll the engine; receivers *block* on a condition instead of
//!   polling;
//! * **MVAPICH2** and **OpenMPI** — RDMA-read rendezvous, progress only
//!   inside MPI calls; every thread sitting in `MPI_Recv`/`MPI_Wait` spins
//!   on the NIC.
//!
//! [`MpiImpl`] selects the behaviour; [`SimCluster`] builds a two-node
//! cluster (network + per-node simulated machine, thread scheduler and
//! communication engine) wired accordingly. The experiment drivers live in
//! [`overlap`] (Figs. 5–7) and [`mtlat`] (Fig. 4).

#![warn(missing_docs)]

use newmadeleine::{CommEngine, EngineConfig};
use piom_des::SimTime;
use piom_machine::spinlock_model::MachineCtx;
use piom_machine::threads::{Keypoint, ThreadSched};
use piom_machine::CostModel;
use piom_net::{NetParams, Network};
use piom_topology::presets;
use std::rc::Rc;

pub mod mtlat;
pub mod overlap;

/// Which MPI implementation's behaviour to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiImpl {
    /// NewMadeleine + PIOMan ("MAD-MPI" / "PIOMan" in the figures).
    MadMpi,
    /// MVAPICH2-class baseline: RDMA-read rendezvous, poll-in-call only.
    MvapichLike,
    /// OpenMPI-class baseline: same progress model, slightly different
    /// per-call costs.
    OpenMpiLike,
}

impl MpiImpl {
    /// All three, in the figures' legend order.
    pub const ALL: [MpiImpl; 3] = [MpiImpl::MvapichLike, MpiImpl::OpenMpiLike, MpiImpl::MadMpi];

    /// Legend name used by the paper's plots.
    pub fn label(self) -> &'static str {
        match self {
            MpiImpl::MadMpi => "PIOMan",
            MpiImpl::MvapichLike => "MVAPICH",
            MpiImpl::OpenMpiLike => "OpenMPI",
        }
    }

    /// Does this implementation progress communication in the background?
    pub fn background_progress(self) -> bool {
        matches!(self, MpiImpl::MadMpi)
    }

    /// Engine configuration for this implementation.
    pub fn engine_config(self) -> EngineConfig {
        match self {
            MpiImpl::MadMpi => EngineConfig::newmadeleine(),
            MpiImpl::MvapichLike | MpiImpl::OpenMpiLike => EngineConfig::baseline_mpi(),
        }
    }

    /// CPU cost of one progress-poll iteration inside an MPI call.
    pub fn poll_cpu(self) -> SimTime {
        match self {
            MpiImpl::MadMpi => SimTime::from_ns(150),
            MpiImpl::MvapichLike => SimTime::from_ns(200),
            MpiImpl::OpenMpiLike => SimTime::from_ns(320),
        }
    }

    /// Poll cost when `spinners` threads are concurrently spinning in MPI
    /// calls on the same node. Every poll walks the completion queue under
    /// the library's lock, so each additional spinner stretches everyone's
    /// iteration (the "concurrency between the threads that wait for
    /// incoming messages and keep polling the network" of §V-B).
    pub fn poll_cpu_contended(self, spinners: usize) -> SimTime {
        let base = self.poll_cpu();
        base.scale(1.0 + spinners as f64 * 0.6)
    }
}

/// One node of the simulated cluster.
pub struct NodeCtx {
    /// The node's machine context (topology + costs).
    pub ctx: Rc<MachineCtx>,
    /// The node's thread scheduler.
    pub sched: ThreadSched,
    /// The node's communication engine.
    pub engine: CommEngine,
}

/// A two-node (or larger) simulated cluster ready to run MPI benchmarks.
pub struct SimCluster {
    /// Shared network fabric.
    pub net: Rc<Network>,
    /// Per-node machine/scheduler/engine.
    pub nodes: Vec<NodeCtx>,
    /// The implementation being simulated.
    pub impl_: MpiImpl,
}

impl SimCluster {
    /// Builds a cluster of `n_nodes` `borderline`-class machines linked by
    /// InfiniBand-class rails, configured for `impl_`.
    ///
    /// For [`MpiImpl::MadMpi`], every node's scheduler keypoints poll that
    /// node's engine (the PIOMan hook); the baselines get no hook — their
    /// only progress is polling inside MPI calls.
    pub fn new(impl_: MpiImpl, n_nodes: usize, n_rails: usize, seed: u64) -> SimCluster {
        let net = Network::new(n_nodes, n_rails, NetParams::infiniband());
        let nodes = (0..n_nodes)
            .map(|node| {
                let ctx = MachineCtx::new(
                    presets::borderline(),
                    CostModel::borderline(),
                    seed ^ ((node as u64) << 32),
                );
                let sched = ThreadSched::new(ctx.clone());
                let engine = CommEngine::new(node, net.clone(), impl_.engine_config());
                if impl_.background_progress() {
                    // PIOMan: poll the engine at every scheduler keypoint.
                    let e = engine.clone();
                    sched.set_hook(Rc::new(move |sim, _core, _k: Keypoint| e.poll(sim)));
                }
                NodeCtx { ctx, sched, engine }
            })
            .collect();
        SimCluster { net, nodes, impl_ }
    }

    /// Cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.nodes[0].ctx.topo.n_cores()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newmadeleine::ReqHandle;
    use piom_des::Sim;
    use piom_machine::threads::Step;
    use std::cell::Cell;

    #[test]
    fn madmpi_progresses_without_app_polling() {
        // With PIOMan hooks, a message completes while the app does nothing:
        // idle cores poll the engine.
        let cluster = SimCluster::new(MpiImpl::MadMpi, 2, 1, 7);
        let mut sim = Sim::new();
        let r: ReqHandle = cluster.nodes[1].engine.irecv(&mut sim, 0, 1);
        cluster.nodes[0].engine.isend(&mut sim, 1, 1, 4);
        // Park one perpetually-blocked thread per node so the schedulers
        // keep idling (and hence polling) forever.
        for n in 0..2 {
            let cond = cluster.nodes[n].sched.new_cond();
            cluster.nodes[n]
                .sched
                .spawn(&mut sim, 0, Box::new(move |_, _| Step::Block(cond)));
        }
        sim.run_until(SimTime::from_us(100));
        assert!(
            r.is_complete(),
            "idle-core polling should complete the recv"
        );
    }

    #[test]
    fn baseline_needs_explicit_polling() {
        let cluster = SimCluster::new(MpiImpl::MvapichLike, 2, 1, 7);
        let mut sim = Sim::new();
        let r = cluster.nodes[1].engine.irecv(&mut sim, 0, 1);
        cluster.nodes[0].engine.isend(&mut sim, 1, 1, 4);
        for n in 0..2 {
            let cond = cluster.nodes[n].sched.new_cond();
            cluster.nodes[n]
                .sched
                .spawn(&mut sim, 0, Box::new(move |_, _| Step::Block(cond)));
        }
        sim.run_until(SimTime::from_us(100));
        assert!(
            !r.is_complete(),
            "baseline has no background progress: nothing polls"
        );
        cluster.nodes[1].engine.poll(&mut sim);
        assert!(r.is_complete());
    }

    #[test]
    fn wait_loop_in_call_progresses_baseline() {
        // A thread spinning poll+compute inside an "MPI call" completes the
        // request for the baselines.
        let cluster = SimCluster::new(MpiImpl::OpenMpiLike, 2, 1, 7);
        let mut sim = Sim::new();
        let r = cluster.nodes[1].engine.irecv(&mut sim, 0, 1);
        cluster.nodes[0].engine.isend(&mut sim, 1, 1, 4);
        let done_at = Rc::new(Cell::new(SimTime::ZERO));
        let d = done_at.clone();
        let engine = cluster.nodes[1].engine.clone();
        let req = r.clone();
        let poll_cpu = cluster.impl_.poll_cpu();
        cluster.nodes[1].sched.spawn(
            &mut sim,
            0,
            Box::new(move |sim, _| {
                engine.poll(sim);
                if req.is_complete() {
                    d.set(sim.now());
                    Step::Exit
                } else {
                    Step::Compute(poll_cpu)
                }
            }),
        );
        sim.run_until(SimTime::from_ms(1));
        assert!(r.is_complete());
        assert!(done_at.get() > SimTime::ZERO);
    }

    #[test]
    fn labels_and_config_mapping() {
        assert_eq!(MpiImpl::MadMpi.label(), "PIOMan");
        assert!(MpiImpl::MadMpi.background_progress());
        assert!(!MpiImpl::MvapichLike.background_progress());
        assert!(MpiImpl::MvapichLike.engine_config().rdma_rendezvous);
        assert!(!MpiImpl::MadMpi.engine_config().rdma_rendezvous);
    }
}
