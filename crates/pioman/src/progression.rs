//! The progression runtime: background workers standing in for the MARCEL
//! thread scheduler's keypoints.
//!
//! In the paper, PIOMan is invoked by the thread scheduler when a CPU goes
//! idle, at context switches, and on timer interrupts (§III, §IV-A). On
//! stock OS threads there is no scheduler to hook, so this module provides
//! the equivalent service: one worker thread per (virtual) core that invokes
//! the task manager whenever work may be available, parking itself when its
//! queues are empty — an idle core in the paper's sense. Submissions unpark
//! exactly the workers whose cores may run the new task, and an optional
//! timer thread plays the role of the timer interrupt, bounding the latency
//! of event detection even when wake-ups race.
//!
//! Parking is **steal-aware** (PR 4): before sleeping, a worker publishes
//! its parked flag, re-checks its own path ([`TaskManager::has_work_for`])
//! and then runs the cheap [`TaskManager::park_probe`] over its victim
//! queues — a hit sends it back to the keypoint (where the steal path will
//! take the backlog) instead of to sleep, so a remote imbalance is picked
//! up in probe time rather than a park-timeout/timer period. Because the
//! probe's span filter may over-approximate, consecutive fruitless hits
//! are bounded ([`MAX_PROBE_STRIKES`]) before the worker parks anyway.
//! The full submit → batch → steal → park/wake lifecycle, with its
//! invariants, is documented in `docs/SCHEDULER.md`.

use crate::manager::{HookPoint, TaskManager};
use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration for [`Progression::start`].
#[derive(Debug, Clone)]
pub struct ProgressionConfig {
    /// Virtual cores to run workers for. Each worker executes the tasks
    /// visible from that core's queue path.
    pub cores: Vec<usize>,
    /// Upper bound on how long an idle worker sleeps before re-checking its
    /// queues (the "timer interrupt" period of last resort).
    pub park_timeout: Duration,
    /// Optional dedicated timer thread that unparks every worker at this
    /// period, independent of submissions.
    pub timer_period: Option<Duration>,
    /// How the per-keypoint task budget (see [`TaskManager::hook_batch`])
    /// is chosen each loop iteration: a worker drains at most that many
    /// tasks per invocation, so a flood on one queue cannot keep a worker
    /// away from its shutdown/park checks indefinitely. Queues are drained
    /// in batches of up to the budget under one lock acquisition.
    pub batch: BatchPolicy,
}

/// Upper bound on *consecutive* park probes that report stealable backlog
/// without the following keypoint actually running anything. The probe's
/// span filter may over-approximate the live backlog (see
/// [`TaskManager::park_probe`]; since PR 5 it decays when the queue
/// drains empty, but bits for tasks still enqueued can also mislead a
/// core those tasks exclude); after this many fruitless hits the worker
/// parks anyway and the park-timeout/timer bound takes over.
pub const MAX_PROBE_STRIKES: u32 = 3;

/// Per-keypoint budget policy for progression workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// Recompute the budget every keypoint from observed queue depth and
    /// contention ([`TaskManager::adaptive_budget`]). The default: a
    /// fixed budget either wastes passes on deep backlogs or reserves
    /// slots shallow ones never fill.
    #[default]
    Adaptive,
    /// A fixed budget per keypoint (clamped to at least 1). The pre-
    /// adaptive behaviour — kept for the `adaptive_batch_ramp` ablation
    /// and for callers that need strictly predictable drain sizes.
    Fixed(usize),
}

impl ProgressionConfig {
    /// Workers for every core of the manager's topology, 100 µs park
    /// timeout, no dedicated timer thread, adaptive batch budget.
    pub fn all_cores(mgr: &TaskManager) -> Self {
        Self::for_cores((0..mgr.topology().n_cores()).collect::<Vec<_>>())
    }

    /// Workers for an explicit core list.
    pub fn for_cores(cores: impl Into<Vec<usize>>) -> Self {
        ProgressionConfig {
            cores: cores.into(),
            park_timeout: Duration::from_micros(100),
            timer_period: None,
            batch: BatchPolicy::Adaptive,
        }
    }
}

/// Handle to the running progression workers. Shutting down (explicitly or
/// on drop) stops and joins every worker.
pub struct Progression {
    mgr: Arc<TaskManager>,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    timer: Option<JoinHandle<()>>,
    idle_loops: Arc<AtomicU64>,
    cores: Vec<usize>,
}

impl Progression {
    /// Spawns the workers (and timer thread, if configured).
    ///
    /// # Panics
    ///
    /// Panics if a configured core id is outside the manager's topology.
    pub fn start(mgr: Arc<TaskManager>, config: ProgressionConfig) -> Progression {
        let n = mgr.topology().n_cores();
        for &c in &config.cores {
            assert!(c < n, "progression core {c} outside topology ({n} cores)");
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let idle_loops = Arc::new(AtomicU64::new(0));
        let workers: Vec<JoinHandle<()>> = config
            .cores
            .iter()
            .map(|&core| {
                let mgr = mgr.clone();
                let shutdown = shutdown.clone();
                let idle_loops = idle_loops.clone();
                let park = config.park_timeout;
                let policy = config.batch;
                std::thread::Builder::new()
                    .name(format!("piom-worker-{core}"))
                    .spawn(move || {
                        mgr.register_waker(core, std::thread::current());
                        // Consecutive park probes that hit but whose next
                        // keypoint still ran nothing (a stale steal span,
                        // or work this core may not run).
                        let mut probe_strikes = 0u32;
                        while !shutdown.load(Ordering::Acquire) {
                            // The worker *is* the idle loop: invoke the idle
                            // keypoint; park when nothing was runnable.
                            let budget = match policy {
                                BatchPolicy::Fixed(n) => n.max(1),
                                BatchPolicy::Adaptive => mgr.adaptive_budget(core),
                            };
                            let ran = mgr.hook_batch(HookPoint::Idle, core, budget) > 0;
                            if ran {
                                probe_strikes = 0;
                                continue;
                            }
                            idle_loops.fetch_add(1, Ordering::Relaxed);
                            // Publish parked intent *before* the final work
                            // checks: an enqueue racing them either is seen
                            // by a check or sees the flag and unparks us
                            // (worst case a stale token, never a lost wake).
                            mgr.note_parked(core, true);
                            if mgr.has_work_for(core) {
                                mgr.note_parked(core, false);
                                continue;
                            }
                            // The steal-aware park check: a hit means a
                            // victim queue has backlog this core may be
                            // able to steal — run another keypoint (whose
                            // steal probe takes it) instead of parking.
                            // Strikes bound the spin when the span filter
                            // over-approximates: after MAX_PROBE_STRIKES
                            // fruitless hits the worker parks anyway and
                            // the park timeout / timer takes over.
                            if probe_strikes < MAX_PROBE_STRIKES && mgr.park_probe(core) {
                                mgr.note_parked(core, false);
                                probe_strikes += 1;
                                continue;
                            }
                            std::thread::park_timeout(park);
                            mgr.note_parked(core, false);
                            probe_strikes = 0;
                        }
                        mgr.note_parked(core, false);
                        mgr.unregister_waker(core);
                    })
                    .expect("spawn progression worker")
            })
            .collect();

        let timer = config.timer_period.map(|period| {
            let mgr = mgr.clone();
            let shutdown = shutdown.clone();
            let cores = config.cores.clone();
            std::thread::Builder::new()
                .name("piom-timer".to_owned())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        std::thread::sleep(period);
                        // Unpark everyone: the cheap software analogue of a
                        // broadcast timer interrupt.
                        for &core in &cores {
                            mgr.hook(HookPoint::TimerInterrupt, core);
                        }
                    }
                })
                .expect("spawn progression timer")
        });

        Progression {
            cores: config.cores,
            mgr,
            shutdown,
            workers,
            timer,
            idle_loops,
        }
    }

    /// The manager the workers progress.
    pub fn manager(&self) -> &Arc<TaskManager> {
        &self.mgr
    }

    /// Cores with a running worker.
    pub fn cores(&self) -> &[usize] {
        &self.cores
    }

    /// Worker loop iterations that found nothing to run (activity metric).
    pub fn idle_loops(&self) -> u64 {
        self.idle_loops.load(Ordering::Relaxed)
    }

    /// Stops and joins every worker. Idempotent; also called on drop.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        for w in &self.workers {
            w.thread().unpark();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(t) = self.timer.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Progression {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskStatus;
    use piom_cpuset::CpuSet;
    use piom_topology::presets;

    #[test]
    fn background_worker_completes_tasks() {
        let mgr = TaskManager::new(presets::symmetric(1, 1, 2).into());
        let mut prog = Progression::start(mgr.clone(), ProgressionConfig::all_cores(&mgr));
        let h = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::from_iter([0, 1]))
            .spawn();
        assert_eq!(h.wait(), Ok(()), "worker ran the task without help");
        prog.shutdown();
    }

    #[test]
    fn repeat_polling_task_progresses_in_background() {
        let mgr = TaskManager::new(presets::symmetric(1, 1, 2).into());
        let _prog = Progression::start(mgr.clone(), ProgressionConfig::all_cores(&mgr));
        let mut countdown = 50;
        let h = mgr
            .task(move |_| {
                countdown -= 1;
                if countdown == 0 {
                    TaskStatus::Done
                } else {
                    TaskStatus::Again
                }
            })
            .cpuset(CpuSet::single(0))
            .repeat()
            .spawn();
        assert_eq!(h.wait(), Ok(()));
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mgr = TaskManager::new(presets::uniprocessor().into());
        let mut prog = Progression::start(mgr.clone(), ProgressionConfig::for_cores(vec![0]));
        prog.shutdown();
        prog.shutdown();
        drop(prog);
    }

    #[test]
    fn timer_thread_drives_progress_without_submission_wakeups() {
        let mgr = TaskManager::new(presets::uniprocessor().into());
        let config = ProgressionConfig {
            timer_period: Some(Duration::from_millis(1)),
            park_timeout: Duration::from_secs(3600), // park "forever"
            ..ProgressionConfig::for_cores(vec![0])
        };
        let _prog = Progression::start(mgr.clone(), config);
        // Let the worker park first, then rely on the timer to run the task.
        std::thread::sleep(Duration::from_millis(10));
        let h = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .spawn();
        assert_eq!(h.wait(), Ok(()));
    }

    #[test]
    fn fixed_batch_policy_still_progresses() {
        let mgr = TaskManager::new(presets::symmetric(1, 1, 2).into());
        let config = ProgressionConfig {
            batch: BatchPolicy::Fixed(2),
            ..ProgressionConfig::all_cores(&mgr)
        };
        let _prog = Progression::start(mgr.clone(), config);
        let handles: Vec<_> = (0..20)
            .map(|_| {
                mgr.task(|_| TaskStatus::Done)
                    .cpuset(CpuSet::from_iter([0, 1]))
                    .spawn()
            })
            .collect();
        for h in handles {
            assert_eq!(h.wait(), Ok(()));
        }
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn bad_core_panics() {
        let mgr = TaskManager::new(presets::uniprocessor().into());
        let _ = Progression::start(mgr, ProgressionConfig::for_cores(vec![5]));
    }
}
