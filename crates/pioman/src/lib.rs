//! PIOMan: a scalable, generic task scheduling system for communication
//! libraries.
//!
//! This crate is a faithful real-thread implementation of the system
//! described by Trahay & Denis, *"A scalable and generic task scheduling
//! system for communication libraries"*, IEEE Cluster 2009. A communication
//! library (or any I/O runtime) delegates its internal chores — polling a
//! network, submitting a packet, running a rendezvous handshake — to a
//! [`TaskManager`]:
//!
//! * a **task** is a function plus a [`CpuSet`] restricting which cores may
//!   run it, and an optional *repeat* behaviour for chores that must run
//!   until they succeed (network polling) — see [`Task`] and [`TaskStatus`];
//! * tasks are stored in **hierarchical queues** mapped onto the machine
//!   topology (per-core → per-cache → per-chip → per-NUMA → global), so
//!   locality is preserved and lock contention stays between neighbouring
//!   cores (paper §III-A, Fig. 2);
//! * dequeueing uses the paper's **Algorithm 2**: test emptiness without the
//!   lock, lock only when the queue looks non-empty, re-check under the lock;
//! * execution follows **Algorithm 1**: a core scans from its own per-core
//!   queue up to the global queue, running everything it may;
//! * the thread scheduler calls the task manager at **keypoints** — CPU
//!   idleness, context switches, timer interrupts — so communication makes
//!   progress inside scheduling holes and overlaps with computation
//!   ([`HookPoint`], [`Progression`]);
//! * beyond the paper, the scan is **batched** — a keypoint that finds a
//!   backlog drains a whole pass under one lock acquisition
//!   ([`TaskManager::schedule_batch`]), with the per-keypoint budget sized
//!   adaptively from observed queue depth and a **phase-reactive windowed
//!   contention signal** ([`TaskManager::adaptive_budget`],
//!   [`ContentionWindow`], [`SignalPolicy`], [`BatchPolicy`]) — and idle
//!   cores **steal half** of the nearest eligible backlog by topological
//!   distance instead of spinning, honoring each task's `CpuSet`
//!   ([`ManagerConfig::steal`], [`SubmitSpec::on_core`]); parking is
//!   **steal-aware**: a worker probes victim backlogs before sleeping
//!   ([`TaskManager::park_probe`]) and deep queues recruit the nearest
//!   parked thief ([`TaskManager::wake_for_steal`]);
//! * every submission goes through one **builder**
//!   ([`TaskManager::task`] → [`SubmitSpec::spawn`]) carrying the task's
//!   **QoS class** ([`TaskClass`]: per-queue lanes served in strict
//!   priority order with a bounded anti-starvation bypass), an optional
//!   **EDF deadline** tick ordering tasks within their class, and
//!   **dependencies** ([`SubmitSpec::after`]) parking the task on a
//!   waitlist until its predecessors complete — the QoS-tier contract
//!   lives in `docs/SCHEDULER.md` ("QoS tiers").
//!
//! The authoritative description of the submit → batch → steal →
//! park/wake lifecycle — state diagram, invariants, and a glossary of
//! every [`ManagerStats`] counter — is the **scheduler contract** page,
//! `docs/SCHEDULER.md` at the repository root (design rationale in
//! `DESIGN.md` §5–6).
//!
//! # Quick start
//!
//! ```
//! use pioman::{TaskClass, TaskManager, TaskStatus};
//! use piom_cpuset::CpuSet;
//! use piom_topology::presets;
//!
//! let mgr = TaskManager::new(presets::kwak().into());
//! // Submit a one-shot task runnable by any core of NUMA node #1.
//! let handle = mgr
//!     .task(|_ctx| TaskStatus::Done)
//!     .cpuset(CpuSet::range(4..8))
//!     .spawn();
//! // An urgent follow-up that runs only after the first completes.
//! let after = mgr
//!     .task(|_ctx| TaskStatus::Done)
//!     .cpuset(CpuSet::range(4..8))
//!     .class(TaskClass::Urgent)
//!     .after(&handle)
//!     .spawn();
//! // Cores execute tasks when the scheduler reaches a keypoint; here we
//! // drive core 5 by hand.
//! mgr.schedule(5);
//! assert!(handle.is_complete());
//! mgr.schedule(5);
//! assert!(after.is_complete());
//! ```

#![warn(missing_docs)]

pub mod counters;
pub mod hist;
pub mod lockfree;
pub mod spinlock;

mod completion;
mod manager;
mod progression;
mod queue;
mod signal;
mod stats;
mod task;

pub use completion::{TaskError, TaskHandle};
pub use hist::{HistSnapshot, Histogram, PercentileSummary};
pub use manager::{
    HookPoint, ManagerConfig, QueueBackend, SubmitSpec, TaskManager, DEFAULT_BATCH,
    DEFAULT_CONTENTION_HALF_LIFE, DEFAULT_CROSS_SOCKET_BACKLOG, DEFAULT_SPILL_THRESHOLD,
    DEFAULT_STEAL_WAKE_BACKLOG, MAX_BATCH, MIN_BATCH,
};
pub use progression::{BatchPolicy, Progression, ProgressionConfig, MAX_PROBE_STRIKES};
pub use queue::QueueId;
pub use signal::{ContentionWindow, SignalPolicy, AUTO_HALF_LIFE_MAX, AUTO_HALF_LIFE_MIN, FP_ONE};
pub use stats::{ManagerStats, QueueStats, SocketStats};
pub use task::{Task, TaskClass, TaskContext, TaskOptions, TaskStatus, CLASS_COUNT};

// Re-export foundation types so downstream users need only this crate.
pub use piom_cpuset::CpuSet;
pub use piom_topology::{presets, Level, Topology};
