//! The spinlock protecting each task queue.
//!
//! The paper is explicit about this choice (§IV-A): "a thread that modifies
//! a list enters the corresponding critical section for a very short period,
//! less than the time required to perform a context switch. Using a
//! classical mutex or a semaphore [...] would imply a risk of costly context
//! switches. On the contrary, using spinlocks [...] guarantees a fast access
//! to the list."
//!
//! This is a test-and-test-and-set (TTAS) lock with bounded exponential
//! backoff: waiters spin on a plain load (cache-local once the line is
//! shared) and only attempt the atomic swap when the lock looks free,
//! keeping the cache line from ping-ponging under contention — the effect
//! the paper measures at the per-chip and global levels of Tables I–II.

use core::cell::UnsafeCell;
use core::ops::{Deref, DerefMut};
use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A TTAS spinlock with exponential backoff guarding a `T`.
///
/// # Examples
///
/// ```
/// use pioman::spinlock::SpinLock;
/// let lock = SpinLock::new(0u32);
/// *lock.lock() += 1;
/// assert_eq!(*lock.lock(), 1);
/// ```
pub struct SpinLock<T> {
    locked: AtomicBool,
    /// Number of lock acquisitions that had to spin at least once.
    contended: AtomicU64,
    /// Total acquisitions.
    acquisitions: AtomicU64,
    value: UnsafeCell<T>,
}

// SAFETY: the lock provides the necessary synchronization: `value` is only
// reachable through a guard obtained by winning `locked`.
unsafe impl<T: Send> Send for SpinLock<T> {}
unsafe impl<T: Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Creates an unlocked lock around `value`.
    pub const fn new(value: T) -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
            contended: AtomicU64::new(0),
            acquisitions: AtomicU64::new(0),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, spinning until available.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        let mut spun = false;
        let mut backoff = 1u32;
        // TTAS: swap only when a relaxed peek says the lock looks free.
        while self.locked.swap(true, Ordering::Acquire) {
            spun = true;
            while self.locked.load(Ordering::Relaxed) {
                for _ in 0..backoff {
                    core::hint::spin_loop();
                }
                // Cap the backoff: the critical sections are tiny, so waiting
                // long strides would only add latency.
                backoff = (backoff * 2).min(64);
            }
        }
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if spun {
            self.contended.fetch_add(1, Ordering::Relaxed);
        }
        SpinGuard { lock: self }
    }

    /// Tries to acquire without spinning. Returns `None` if held.
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            self.acquisitions.fetch_add(1, Ordering::Relaxed);
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }

    /// `true` if some thread currently holds the lock (racy snapshot).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    /// Total successful acquisitions (relaxed counter; diagnostic only).
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Acquisitions that found the lock held and had to spin.
    pub fn contended_acquisitions(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    /// Mutable access without locking (safe: `&mut self` proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for SpinLock<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("SpinLock").field(&*g).finish(),
            None => f.write_str("SpinLock(<locked>)"),
        }
    }
}

/// RAII guard: the lock is released on drop.
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard exists, so we hold the lock.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard exists, so we hold the lock exclusively.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn basic_mutation() {
        let lock = SpinLock::new(vec![1, 2]);
        lock.lock().push(3);
        assert_eq!(*lock.lock(), vec![1, 2, 3]);
        assert_eq!(lock.acquisitions(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = SpinLock::new(());
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        assert!(lock.is_locked());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut lock = SpinLock::new(5);
        *lock.get_mut() += 1;
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn counter_under_contention_is_exact() {
        // The classic torture test: N threads x M increments.
        let lock = Arc::new(SpinLock::new(0u64));
        let threads = 4;
        let iters = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let lock = lock.clone();
                thread::spawn(move || {
                    for _ in 0..iters {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), threads * iters);
    }

    #[test]
    fn guard_release_makes_writes_visible() {
        // Publication test: a value written under the lock must be visible
        // to the thread that subsequently acquires it (Release/Acquire).
        let lock = Arc::new(SpinLock::new(None::<String>));
        let l2 = lock.clone();
        let writer = thread::spawn(move || {
            *l2.lock() = Some("published".to_owned());
        });
        writer.join().unwrap();
        assert_eq!(lock.lock().as_deref(), Some("published"));
    }

    #[test]
    fn contention_counter_moves_under_fight() {
        let lock = Arc::new(SpinLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = lock.clone();
                thread::spawn(move || {
                    for _ in 0..5_000 {
                        let mut g = lock.lock();
                        *g = g.wrapping_add(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // We cannot assert contention happened on a 1-core box (threads may
        // serialize perfectly), only that counters are consistent.
        assert!(lock.contended_acquisitions() <= lock.acquisitions());
        assert_eq!(lock.acquisitions(), 4 * 5_000);
    }
}
