//! Task completion tracking: poll, block, or actively schedule while waiting.
//!
//! Since PR 8 a completion is also the release point of the **dependency
//! waitlist**: tasks submitted with `.after(&handle)` park in a
//! [`PendingTask`](crate::manager) registered here as a waiter, and the
//! completion path drains the waiter list exactly once — whether the
//! predecessor finished or panicked (a dependent is *released*, never
//! cancelled, so pipelines drain instead of wedging).

use crate::manager::PendingTask;
use core::sync::atomic::{AtomicU8, Ordering};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

const PENDING: u8 = 0;
const DONE: u8 = 1;
const PANICKED: u8 = 2;

/// Error returned by [`TaskHandle::wait`] family when the task body panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Panic payload rendered to a string, when it was a string.
    pub message: String,
}

impl core::fmt::Display for TaskError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskError {}

/// Shared completion state between a task and its handle.
pub(crate) struct Completion {
    state: AtomicU8,
    // The mutex/condvar pair is only touched by blocking waiters; the fast
    // path (poll / active wait) is a single atomic load.
    mutex: Mutex<Option<String>>,
    condvar: Condvar,
    /// Dependents parked on this task (`.after(&handle)`), drained exactly
    /// once by the completion path. The final state is stored *while this
    /// lock is held*, which closes the lost-waiter race: a registration
    /// that observed `PENDING` under this lock is guaranteed to be drained
    /// by the completer (which must take the lock to publish the state),
    /// and one that observes a final state satisfies its dependency
    /// directly instead of registering.
    waiters: Mutex<Vec<Arc<PendingTask>>>,
    /// The completions *this* task waits on, recorded at spawn for the
    /// submit-time cycle check and cleared on completion (breaking the
    /// `Arc` chains so finished pipelines free their graph).
    deps: Mutex<Vec<Arc<Completion>>>,
}

impl Completion {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Completion {
            state: AtomicU8::new(PENDING),
            mutex: Mutex::new(None),
            condvar: Condvar::new(),
            waiters: Mutex::new(Vec::new()),
            deps: Mutex::new(Vec::new()),
        })
    }

    /// Registers a dependent to be released when this task completes.
    /// Returns `false` if this task is already complete — the caller must
    /// satisfy the dependency directly (the waiter will never be drained).
    pub(crate) fn add_waiter(&self, waiter: Arc<PendingTask>) -> bool {
        let mut waiters = self.waiters.lock();
        // Checked under the waiters lock: the completer stores the final
        // state while holding it (see `finish`), so PENDING here means the
        // drain has not happened yet and must include this registration.
        if self.state.load(Ordering::Acquire) != PENDING {
            return false;
        }
        waiters.push(waiter);
        true
    }

    /// Records the dependency edges of the task owning this completion
    /// (spawn-time bookkeeping for the cycle check).
    pub(crate) fn set_deps(&self, deps: Vec<Arc<Completion>>) {
        *self.deps.lock() = deps;
    }

    /// Snapshot of the pending dependency edges (empty once complete).
    pub(crate) fn deps_snapshot(&self) -> Vec<Arc<Completion>> {
        self.deps.lock().clone()
    }

    /// The shared completion protocol: store the final state (under the
    /// waiter lock — see `waiters`), wake blocked handles, drop the
    /// dependency edges, and hand the drained waiter list to the caller
    /// for release. Each waiter appears in exactly one drain.
    fn finish(&self, state: u8) -> Vec<Arc<PendingTask>> {
        let mut waiters = self.waiters.lock();
        // Release: the task's side effects happen-before a handle observing
        // completion with an Acquire load.
        self.state.store(state, Ordering::Release);
        self.condvar.notify_all();
        self.deps.lock().clear();
        std::mem::take(&mut *waiters)
    }

    /// Marks the task done. Returns the dependents to release; the
    /// scheduler dispatches them (`run_task`'s completion path).
    #[must_use = "the drained waiters must be dispatched"]
    pub(crate) fn complete(&self) -> Vec<Arc<PendingTask>> {
        let _guard = self.mutex.lock();
        self.finish(DONE)
    }

    /// Marks the task panicked. Dependents are still released — a
    /// dependency is an ordering constraint, not a success gate — so the
    /// returned waiters must be dispatched exactly like [`Self::complete`].
    #[must_use = "the drained waiters must be dispatched"]
    pub(crate) fn complete_panicked(&self, message: String) -> Vec<Arc<PendingTask>> {
        let mut guard = self.mutex.lock();
        *guard = Some(message);
        self.finish(PANICKED)
    }

    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    fn result_now(&self) -> Option<Result<(), TaskError>> {
        match self.state() {
            PENDING => None,
            DONE => Some(Ok(())),
            _ => Some(Err(TaskError {
                message: self
                    .mutex
                    .lock()
                    .clone()
                    .unwrap_or_else(|| "<non-string panic payload>".to_owned()),
            })),
        }
    }
}

/// Handle to a submitted task.
///
/// Cloneable; all clones observe the same completion. Dropping handles does
/// not cancel the task.
#[derive(Clone)]
pub struct TaskHandle {
    pub(crate) completion: Arc<Completion>,
}

impl TaskHandle {
    /// `true` once the task has run to completion (or panicked).
    pub fn is_complete(&self) -> bool {
        self.completion.state() != PENDING
    }

    /// Non-blocking check: `None` while pending, otherwise the outcome.
    pub fn poll(&self) -> Option<Result<(), TaskError>> {
        self.completion.result_now()
    }

    /// Blocks the calling thread until completion.
    ///
    /// This is the *passive* wait — the paper's receiving threads "wait
    /// their data using a blocking condition" while idle cores make the
    /// progress (§V-B). Somebody else must run the task; see
    /// [`TaskHandle::wait_active`] for the self-progressing variant.
    pub fn wait(&self) -> Result<(), TaskError> {
        if let Some(r) = self.completion.result_now() {
            return r;
        }
        let mut guard = self.completion.mutex.lock();
        while self.completion.state() == PENDING {
            self.completion.condvar.wait(&mut guard);
        }
        drop(guard);
        self.completion.result_now().expect("state is final")
    }

    /// Actively waits: repeatedly runs the scheduler for `core` until this
    /// task completes. This mirrors the paper's §IV-B: "a thread waits for
    /// the end of the communication — the task is processed and the
    /// communication may overlap".
    pub fn wait_active(&self, manager: &crate::TaskManager, core: usize) -> Result<(), TaskError> {
        loop {
            if let Some(r) = self.completion.result_now() {
                return r;
            }
            if !manager.schedule(core) {
                // Nothing runnable from this core: yield rather than burn.
                std::thread::yield_now();
            }
        }
    }
}

impl core::fmt::Debug for TaskHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TaskHandle")
            .field("complete", &self.is_complete())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn poll_transitions() {
        let c = Completion::new();
        let h = TaskHandle {
            completion: c.clone(),
        };
        assert!(!h.is_complete());
        assert!(h.poll().is_none());
        assert!(c.complete().is_empty());
        assert!(h.is_complete());
        assert_eq!(h.poll(), Some(Ok(())));
        assert_eq!(h.wait(), Ok(()));
    }

    #[test]
    fn panicked_reports_error() {
        let c = Completion::new();
        let h = TaskHandle {
            completion: c.clone(),
        };
        assert!(c.complete_panicked("boom".into()).is_empty());
        let err = h.wait().unwrap_err();
        assert_eq!(err.message, "boom");
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn blocking_wait_wakes_on_complete() {
        let c = Completion::new();
        let h = TaskHandle {
            completion: c.clone(),
        };
        let waiter = thread::spawn(move || h.wait());
        thread::sleep(Duration::from_millis(20));
        let _ = c.complete();
        assert_eq!(waiter.join().unwrap(), Ok(()));
    }

    #[test]
    fn clones_share_state() {
        let c = Completion::new();
        let h1 = TaskHandle {
            completion: c.clone(),
        };
        let h2 = h1.clone();
        let _ = c.complete();
        assert!(h1.is_complete() && h2.is_complete());
    }
}
