//! Task completion tracking: poll, block, or actively schedule while waiting.

use core::sync::atomic::{AtomicU8, Ordering};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

const PENDING: u8 = 0;
const DONE: u8 = 1;
const PANICKED: u8 = 2;

/// Error returned by [`TaskHandle::wait`] family when the task body panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Panic payload rendered to a string, when it was a string.
    pub message: String,
}

impl core::fmt::Display for TaskError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskError {}

/// Shared completion state between a task and its handle.
pub(crate) struct Completion {
    state: AtomicU8,
    // The mutex/condvar pair is only touched by blocking waiters; the fast
    // path (poll / active wait) is a single atomic load.
    mutex: Mutex<Option<String>>,
    condvar: Condvar,
}

impl Completion {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Completion {
            state: AtomicU8::new(PENDING),
            mutex: Mutex::new(None),
            condvar: Condvar::new(),
        })
    }

    pub(crate) fn complete(&self) {
        // Release: the task's side effects happen-before a handle observing
        // completion with an Acquire load.
        let _guard = self.mutex.lock();
        self.state.store(DONE, Ordering::Release);
        self.condvar.notify_all();
    }

    pub(crate) fn complete_panicked(&self, message: String) {
        let mut guard = self.mutex.lock();
        *guard = Some(message);
        self.state.store(PANICKED, Ordering::Release);
        self.condvar.notify_all();
    }

    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    fn result_now(&self) -> Option<Result<(), TaskError>> {
        match self.state() {
            PENDING => None,
            DONE => Some(Ok(())),
            _ => Some(Err(TaskError {
                message: self
                    .mutex
                    .lock()
                    .clone()
                    .unwrap_or_else(|| "<non-string panic payload>".to_owned()),
            })),
        }
    }
}

/// Handle to a submitted task.
///
/// Cloneable; all clones observe the same completion. Dropping handles does
/// not cancel the task.
#[derive(Clone)]
pub struct TaskHandle {
    pub(crate) completion: Arc<Completion>,
}

impl TaskHandle {
    /// `true` once the task has run to completion (or panicked).
    pub fn is_complete(&self) -> bool {
        self.completion.state() != PENDING
    }

    /// Non-blocking check: `None` while pending, otherwise the outcome.
    pub fn poll(&self) -> Option<Result<(), TaskError>> {
        self.completion.result_now()
    }

    /// Blocks the calling thread until completion.
    ///
    /// This is the *passive* wait — the paper's receiving threads "wait
    /// their data using a blocking condition" while idle cores make the
    /// progress (§V-B). Somebody else must run the task; see
    /// [`TaskHandle::wait_active`] for the self-progressing variant.
    pub fn wait(&self) -> Result<(), TaskError> {
        if let Some(r) = self.completion.result_now() {
            return r;
        }
        let mut guard = self.completion.mutex.lock();
        while self.completion.state() == PENDING {
            self.completion.condvar.wait(&mut guard);
        }
        drop(guard);
        self.completion.result_now().expect("state is final")
    }

    /// Actively waits: repeatedly runs the scheduler for `core` until this
    /// task completes. This mirrors the paper's §IV-B: "a thread waits for
    /// the end of the communication — the task is processed and the
    /// communication may overlap".
    pub fn wait_active(&self, manager: &crate::TaskManager, core: usize) -> Result<(), TaskError> {
        loop {
            if let Some(r) = self.completion.result_now() {
                return r;
            }
            if !manager.schedule(core) {
                // Nothing runnable from this core: yield rather than burn.
                std::thread::yield_now();
            }
        }
    }
}

impl core::fmt::Debug for TaskHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TaskHandle")
            .field("complete", &self.is_complete())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn poll_transitions() {
        let c = Completion::new();
        let h = TaskHandle {
            completion: c.clone(),
        };
        assert!(!h.is_complete());
        assert!(h.poll().is_none());
        c.complete();
        assert!(h.is_complete());
        assert_eq!(h.poll(), Some(Ok(())));
        assert_eq!(h.wait(), Ok(()));
    }

    #[test]
    fn panicked_reports_error() {
        let c = Completion::new();
        let h = TaskHandle {
            completion: c.clone(),
        };
        c.complete_panicked("boom".into());
        let err = h.wait().unwrap_err();
        assert_eq!(err.message, "boom");
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn blocking_wait_wakes_on_complete() {
        let c = Completion::new();
        let h = TaskHandle {
            completion: c.clone(),
        };
        let waiter = thread::spawn(move || h.wait());
        thread::sleep(Duration::from_millis(20));
        c.complete();
        assert_eq!(waiter.join().unwrap(), Ok(()));
    }

    #[test]
    fn clones_share_state() {
        let c = Completion::new();
        let h1 = TaskHandle {
            completion: c.clone(),
        };
        let h2 = h1.clone();
        c.complete();
        assert!(h1.is_complete() && h2.is_complete());
    }
}
