//! Lock-free task queue (paper §VI, "short term" future work).
//!
//! The paper plans "to study the opportunity to use lock-free algorithms to
//! reduce contention on task queues". This module provides that variant:
//! [`LockFreeQueue`], a FIFO multi-producer/multi-consumer queue with
//! counters matching the spinlocked queue's instrumentation, selected with
//! [`QueueBackend::LockFree`](crate::QueueBackend).
//!
//! The queue is the **Michael–Scott lock-free linked queue** (vendored
//! `crossbeam`'s `SegQueue`): `head` points at a dummy node, `push` links
//! at `tail` by CAS (helping a lagging tail forward), and the pop-side CAS
//! winner moves the value out of the node that becomes the new dummy.
//! Safe memory reclamation is exactly the hard part of such structures
//! (ABA / use-after-free), and it is handled by a three-epoch scheme: each
//! operation pins an epoch slot, unlinked dummies are retired into one of
//! three bags by epoch, and a bag is only freed once the global epoch has
//! advanced twice past it — which requires every pinned slot to have
//! caught up, so no thread can still hold a reference into it. The full
//! soundness argument lives in `vendor/crossbeam/src/epoch.rs`; the
//! reclamation scheme also makes the CAS loops ABA-safe, because a node's
//! address cannot be recycled while any thread that might compare against
//! it remains pinned.
//!
//! This module's tests are the surface CI's Miri job checks the unsafe
//! code through (`cargo miri test -p pioman lockfree`); sizes are reduced
//! under Miri (`cfg(miri)`) to keep interpretation time bounded. The
//! ablation benches (`piom-bench`, `lockfree_vs_mutex`) compare this
//! against the paper's spinlock design and the old mutexed shim.

use core::sync::atomic::{AtomicU64, Ordering};
use crossbeam::queue::SegQueue;

/// A lock-free MPMC FIFO with pop/push counters.
///
/// # Examples
///
/// ```
/// use pioman::lockfree::LockFreeQueue;
/// let q = LockFreeQueue::new();
/// q.push(1);
/// q.push(2);
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.len(), 1);
/// ```
pub struct LockFreeQueue<T> {
    inner: SegQueue<T>,
    pushes: AtomicU64,
    pops: AtomicU64,
    /// Pops that found the queue empty (the lock-free analogue of the
    /// spinlock queue's "unlocked emptiness test" fast path).
    empty_pops: AtomicU64,
}

impl<T> Default for LockFreeQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LockFreeQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        LockFreeQueue {
            inner: SegQueue::new(),
            pushes: AtomicU64::new(0),
            pops: AtomicU64::new(0),
            empty_pops: AtomicU64::new(0),
        }
    }

    /// Appends an element (never blocks).
    pub fn push(&self, value: T) {
        self.pushes.fetch_add(1, Ordering::Relaxed);
        self.inner.push(value);
    }

    /// Removes the oldest element, or `None` if empty (never blocks).
    pub fn pop(&self) -> Option<T> {
        match self.inner.pop() {
            Some(v) => {
                self.pops.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.empty_pops.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Number of elements (racy snapshot).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if no element is present (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Successful pushes so far.
    pub fn pushes(&self) -> u64 {
        self.pushes.load(Ordering::Relaxed)
    }

    /// Successful pops so far.
    pub fn pops(&self) -> u64 {
        self.pops.load(Ordering::Relaxed)
    }

    /// Pops that found nothing.
    pub fn empty_pops(&self) -> u64 {
        self.empty_pops.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_single_thread() {
        let q = LockFreeQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert_eq!(q.pushes(), 10);
        assert_eq!(q.pops(), 10);
        assert_eq!(q.empty_pops(), 1);
    }

    #[test]
    fn len_and_empty() {
        let q = LockFreeQueue::new();
        assert!(q.is_empty());
        q.push(());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        let q = Arc::new(LockFreeQueue::new());
        let producers = if cfg!(miri) { 2 } else { 4 };
        let per_producer = if cfg!(miri) { 25u64 } else { 2_500 };
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per_producer {
                    q.push(p * per_producer + i);
                }
            }));
        }
        let consumers = if cfg!(miri) { 2 } else { 4 };
        let total = producers * per_producer;
        let consumed = Arc::new(std::sync::Mutex::new(Vec::new()));
        let done = Arc::new(core::sync::atomic::AtomicU64::new(0));
        let mut chandles = Vec::new();
        for _ in 0..consumers {
            let q = q.clone();
            let consumed = consumed.clone();
            let done = done.clone();
            chandles.push(thread::spawn(move || {
                let mut local = Vec::new();
                loop {
                    match q.pop() {
                        Some(v) => local.push(v),
                        None => {
                            if done.load(Ordering::SeqCst) == 1 && q.is_empty() {
                                break;
                            }
                            thread::yield_now();
                        }
                    }
                }
                consumed.lock().unwrap().extend(local);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        done.store(1, Ordering::SeqCst);
        for h in chandles {
            h.join().unwrap();
        }
        let mut all = consumed.lock().unwrap().clone();
        all.sort_unstable();
        assert_eq!(all.len() as u64, total, "every element consumed once");
        all.dedup();
        assert_eq!(all.len() as u64, total, "no duplicates");
    }

    #[test]
    fn reclamation_under_churn_is_sound() {
        // Drives many unlink→retire→free cycles through the epoch
        // machinery while counters stay consistent. Under Miri this is the
        // main UB probe for the reclamation path (use-after-free on the
        // retired dummies would be flagged here).
        let q = LockFreeQueue::new();
        let rounds = if cfg!(miri) { 3u64 } else { 300 };
        for round in 0..rounds {
            for i in 0..100 {
                q.push(round * 100 + i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some(round * 100 + i));
            }
            assert!(q.is_empty());
        }
        assert_eq!(q.pushes(), rounds * 100);
        assert_eq!(q.pops(), rounds * 100);
    }

    #[test]
    fn concurrent_churn_with_drop_in_flight() {
        // Producers and consumers race while the queue is dropped with
        // elements still enqueued: in-flight values must be freed exactly
        // once (Miri's leak checker and double-free detection cover both
        // directions).
        let q = Arc::new(LockFreeQueue::new());
        let threads = if cfg!(miri) { 2 } else { 4 };
        let per_thread = if cfg!(miri) { 30 } else { 3_000 };
        let mut handles = Vec::new();
        for t in 0..threads {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per_thread {
                    q.push(vec![t, i]); // heap payload: leaks are visible
                    if i % 3 == 0 {
                        drop(q.pop());
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        drop(q); // frees whatever is still enqueued
    }
}
