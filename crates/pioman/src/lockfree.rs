//! Lock-free task queue (paper §VI, "short term" future work).
//!
//! The paper plans "to study the opportunity to use lock-free algorithms to
//! reduce contention on task queues". This module provides that variant:
//! [`LockFreeQueue`], a FIFO multi-producer/multi-consumer queue with
//! counters matching the spinlocked queue's instrumentation, selected with
//! [`QueueBackend::LockFree`](crate::QueueBackend).
//!
//! The queue is the **Michael–Scott lock-free linked queue** (vendored
//! `crossbeam`'s `SegQueue`): `head` points at a dummy node, `push` links
//! at `tail` by CAS (helping a lagging tail forward), and the pop-side CAS
//! winner moves the value out of the node that becomes the new dummy.
//! Safe memory reclamation is exactly the hard part of such structures
//! (ABA / use-after-free), and it is handled by a three-epoch scheme: each
//! operation pins an epoch slot, unlinked dummies are retired into one of
//! three bags by epoch, and a bag is only freed once the global epoch has
//! advanced twice past it — which requires every pinned slot to have
//! caught up, so no thread can still hold a reference into it. The full
//! soundness argument lives in `vendor/crossbeam/src/epoch.rs`; the
//! reclamation scheme also makes the CAS loops ABA-safe, because a node's
//! address cannot be recycled while any thread that might compare against
//! it remains pinned.
//!
//! This module's tests are the surface CI's Miri job checks the unsafe
//! code through (`cargo miri test -p pioman lockfree`); sizes are reduced
//! under Miri (`cfg(miri)`) to keep interpretation time bounded. The
//! ablation benches (`piom-bench`, `lockfree_vs_mutex`) compare this
//! against the paper's spinlock design and the old mutexed shim.

use crate::task::{TaskClass, CLASS_COUNT};
use core::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use crossbeam::queue::SegQueue;
use crossbeam::utils::CachePadded;

/// A lock-free MPMC FIFO with pop/push counters.
///
/// # Examples
///
/// ```
/// use pioman::lockfree::LockFreeQueue;
/// let q = LockFreeQueue::new();
/// q.push(1);
/// q.push(2);
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.len(), 1);
/// ```
pub struct LockFreeQueue<T> {
    inner: SegQueue<T>,
    pushes: AtomicU64,
    pops: AtomicU64,
    /// Pops that found the queue empty (the lock-free analogue of the
    /// spinlock queue's "unlocked emptiness test" fast path).
    empty_pops: AtomicU64,
}

impl<T> Default for LockFreeQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LockFreeQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        LockFreeQueue {
            inner: SegQueue::new(),
            pushes: AtomicU64::new(0),
            pops: AtomicU64::new(0),
            empty_pops: AtomicU64::new(0),
        }
    }

    /// Appends an element (never blocks).
    pub fn push(&self, value: T) {
        self.pushes.fetch_add(1, Ordering::Relaxed);
        self.inner.push(value);
    }

    /// Removes the oldest element, or `None` if empty (never blocks).
    pub fn pop(&self) -> Option<T> {
        match self.inner.pop() {
            Some(v) => {
                self.pops.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.empty_pops.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Number of elements (racy snapshot).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if no element is present (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Successful pushes so far.
    pub fn pushes(&self) -> u64 {
        self.pushes.load(Ordering::Relaxed)
    }

    /// Successful pops so far.
    pub fn pops(&self) -> u64 {
        self.pops.load(Ordering::Relaxed)
    }

    /// Pops that found nothing.
    pub fn empty_pops(&self) -> u64 {
        self.empty_pops.load(Ordering::Relaxed)
    }
}

/// How many higher-class pops may bypass a waiting [`TaskClass::Background`]
/// task before the next pop serves `Background` regardless of priority.
///
/// This is the anti-starvation bound stated in docs/SCHEDULER.md ("QoS
/// tiers") and pinned by `qos_policy` tests: under a sequential popper the
/// bound is *exact* (the `BACKGROUND_BYPASS_LIMIT + 1`-th pop while
/// `Background` waits serves `Background`); under concurrent poppers the
/// relaxed credit counter admits at most one extra bypass per racing
/// popper, so the bound becomes `BACKGROUND_BYPASS_LIMIT + threads - 1`.
pub const BACKGROUND_BYPASS_LIMIT: u32 = 16;

/// Number of deadline (EDF) lanes per class in [`ClassLanes`].
pub const DL_LANES: usize = 2;

/// An element that carries QoS routing metadata: which class lane it
/// belongs in and an optional EDF deadline (integer ticks).
pub trait Classed {
    /// The QoS class lane this element is enqueued into.
    fn class(&self) -> TaskClass;
    /// Optional deadline tick; `None` reads as "infinitely late" and the
    /// element drains FIFO behind the class's deadline-carrying elements.
    fn deadline(&self) -> Option<u64>;
}

/// Picks which of a class's [`DL_LANES`] deadline lanes a push with
/// `deadline` should append to, given a snapshot of each lane's tail
/// deadline (`None` = lane empty).
///
/// The goal is to keep each lane individually sorted by deadline so the
/// tournament pop (min over lane heads) is exact EDF. A lane is *eligible*
/// when appending keeps it sorted: it is empty, or its tail deadline is
/// `<= deadline`.
///
/// - If any non-empty lane is eligible, append to the one with the
///   **greatest** tail (ties: lowest index) — the tightest fit, which
///   preserves the other lanes' headroom for earlier deadlines.
/// - Else if any lane is empty, take the lowest-indexed empty lane.
/// - Else no append keeps sortedness (the deadline precedes every tail):
///   append to the **smallest**-tail lane (ties: lowest index). That lane
///   is now locally out of order and EDF degrades to best-effort until it
///   drains — the documented trade for keeping the hot path heap-free.
///
/// Pure function: the sequential oracle in the `qos_policy` proptests and
/// both queue backends share this exact placement.
pub fn place_deadline_lane(tails: [Option<u64>; DL_LANES], deadline: u64) -> usize {
    let mut best_eligible: Option<(u64, usize)> = None;
    let mut first_empty: Option<usize> = None;
    let mut smallest: Option<(u64, usize)> = None;
    for (i, t) in tails.iter().enumerate() {
        match *t {
            Some(tail) => {
                if tail <= deadline && best_eligible.is_none_or(|(b, _)| tail > b) {
                    best_eligible = Some((tail, i));
                }
                if smallest.is_none_or(|(s, _)| tail < s) {
                    smallest = Some((tail, i));
                }
            }
            None => {
                if first_empty.is_none() {
                    first_empty = Some(i);
                }
            }
        }
    }
    if let Some((_, i)) = best_eligible {
        i
    } else if let Some(i) = first_empty {
        i
    } else {
        smallest.map(|(_, i)| i).unwrap_or(0)
    }
}

/// One class's lanes: a FIFO lane for deadline-less elements and
/// [`DL_LANES`] deadline lanes drained by a tournament over their heads.
struct ClassLane<T> {
    fifo: SegQueue<T>,
    dl: [SegQueue<T>; DL_LANES],
    /// Racy tail-deadline hints: the deadline of the last element pushed
    /// into each deadline lane, consulted (with the lane's emptiness) by
    /// [`place_deadline_lane`]. Stale reads only degrade placement
    /// quality, never correctness.
    dl_tails: [AtomicU64; DL_LANES],
}

impl<T> ClassLane<T> {
    fn new() -> Self {
        ClassLane {
            fifo: SegQueue::new(),
            dl: [SegQueue::new(), SegQueue::new()],
            dl_tails: [AtomicU64::new(0), AtomicU64::new(0)],
        }
    }

    fn is_empty(&self) -> bool {
        self.fifo.is_empty() && self.dl.iter().all(|q| q.is_empty())
    }

    fn len(&self) -> usize {
        self.fifo.len() + self.dl.iter().map(|q| q.len()).sum::<usize>()
    }
}

/// Per-class lock-free lanes with strict-priority, deadline-aware pop.
///
/// The QoS tentpole structure (ROADMAP item 1): each [`TaskClass`] owns a
/// FIFO [`SegQueue`] plus [`DL_LANES`] deadline lanes, all lock-free, so
/// enqueue/dequeue/steal acquire **no** mutex or spinlock.
///
/// - **Cross-class**: strict priority ([`TaskClass::ALL`] order), softened
///   by an anti-starvation credit — every pop that serves a higher class
///   while `Background` has work bumps a relaxed counter, and once it
///   reaches [`BACKGROUND_BYPASS_LIMIT`] the next pop serves `Background`
///   first and resets it. See the constant for the exact bound.
/// - **Within a class**: elements with deadlines drain earliest-deadline-
///   first via a *tournament pop* — peek both deadline-lane heads
///   ([`SegQueue::peek_map`]), pop the lane whose head is earliest — and
///   deadline-less elements drain FIFO behind them (no deadline reads as
///   "infinitely late"). No global heap, no lock: each lane is kept
///   individually sorted by [`place_deadline_lane`] whenever the deadline
///   stream allows, and degrades to per-lane FIFO (best-effort EDF) when
///   it does not.
///
/// Sequentially the whole policy is exact and deterministic — the
/// `qos_policy` proptests pin it against a sequential oracle. Under
/// concurrency the peeks and emptiness checks are racy hints, so EDF and
/// the starvation bound hold in the bounded-inversion sense documented in
/// docs/SCHEDULER.md.
pub struct ClassLanes<T: Classed> {
    classes: [ClassLane<T>; CLASS_COUNT],
    /// Anti-starvation credit (see [`BACKGROUND_BYPASS_LIMIT`]). Relaxed:
    /// a lost increment under races only delays the bypass by one pop.
    bg_credit: CachePadded<AtomicU32>,
    /// Total element count across every lane: one load for the scheduler's
    /// queue-length hint instead of 12.
    len: CachePadded<AtomicUsize>,
}

impl<T: Classed> Default for ClassLanes<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Classed> ClassLanes<T> {
    /// Creates empty lanes.
    pub fn new() -> Self {
        ClassLanes {
            classes: [
                ClassLane::new(),
                ClassLane::new(),
                ClassLane::new(),
                ClassLane::new(),
            ],
            bg_credit: CachePadded::new(AtomicU32::new(0)),
            len: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Appends `value` to its class's lane: the deadline lane chosen by
    /// [`place_deadline_lane`] when it carries a deadline, the class FIFO
    /// otherwise. Lock-free, never blocks.
    pub fn push(&self, value: T) {
        let lane = &self.classes[value.class().index()];
        // Count before linking so the hint can never underflow (same
        // contract as the SegQueue's own len).
        self.len.fetch_add(1, Ordering::Relaxed);
        match value.deadline() {
            Some(d) => {
                let tails = core::array::from_fn(|i| {
                    (!lane.dl[i].is_empty()).then(|| lane.dl_tails[i].load(Ordering::Relaxed))
                });
                let idx = place_deadline_lane(tails, d);
                // Hint first: a racing placement that reads the old tail
                // only mis-places, it cannot read freed memory.
                lane.dl_tails[idx].store(d, Ordering::Relaxed);
                lane.dl[idx].push(value);
            }
            None => lane.fifo.push(value),
        }
    }

    /// Pops the earliest-deadline element of `class` (tournament over the
    /// deadline-lane heads), falling back to the class FIFO. `None` when
    /// the class has no poppable element. Lock-free, never blocks.
    pub fn pop_class(&self, class: TaskClass) -> Option<T> {
        let lane = &self.classes[class.index()];
        loop {
            let heads: [Option<u64>; DL_LANES] =
                core::array::from_fn(|i| lane.dl[i].peek_map(|v| v.deadline().unwrap_or(u64::MAX)));
            let winner = match (heads[0], heads[1]) {
                (Some(a), Some(b)) => {
                    if a <= b {
                        0
                    } else {
                        1
                    }
                }
                (Some(_), None) => 0,
                (None, Some(_)) => 1,
                (None, None) => break,
            };
            if let Some(v) = lane.dl[winner].pop() {
                self.len.fetch_sub(1, Ordering::Relaxed);
                return Some(v);
            }
            // Lost the head to a racing popper; re-run the tournament.
        }
        let v = lane.fifo.pop();
        if v.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        v
    }

    /// The class order the next pop should try, honouring the
    /// anti-starvation credit: strict priority normally, `Background`
    /// hoisted to the front once the credit reaches
    /// [`BACKGROUND_BYPASS_LIMIT`] while `Background` has work.
    ///
    /// Callers that serve from *outside* these lanes too (the scheduler's
    /// steal cursor) use this with [`ClassLanes::note_served`]; plain
    /// consumers can just call [`ClassLanes::pop`].
    pub fn class_order(&self) -> [TaskClass; CLASS_COUNT] {
        self.class_order_with(!self.class_is_empty(TaskClass::Background))
    }

    /// [`ClassLanes::class_order`] with the caller's own view of whether
    /// `Background` work is waiting — for consumers whose queue extends
    /// beyond these lanes (the scheduler's steal cursor can hold
    /// `Background` tasks these lanes cannot see).
    pub fn class_order_with(&self, background_waiting: bool) -> [TaskClass; CLASS_COUNT] {
        if self.bg_credit.load(Ordering::Relaxed) >= BACKGROUND_BYPASS_LIMIT && background_waiting {
            [
                TaskClass::Background,
                TaskClass::Urgent,
                TaskClass::Interactive,
                TaskClass::Bulk,
            ]
        } else {
            TaskClass::ALL
        }
    }

    /// Credit bookkeeping for one served element: serving `Background`
    /// resets the credit; serving a higher class while `background_waiting`
    /// bumps it. `background_waiting` is the caller's view of whether
    /// `Background` work was pending anywhere in the queue at serve time
    /// (these lanes and, for the scheduler, its steal cursor).
    pub fn note_served(&self, class: TaskClass, background_waiting: bool) {
        if class == TaskClass::Background {
            self.bg_credit.store(0, Ordering::Relaxed);
        } else if background_waiting {
            self.bg_credit.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pops the next element under the full QoS policy (class order from
    /// [`ClassLanes::class_order`], credit bookkeeping included), or
    /// `None` when every lane is empty. Lock-free, never blocks.
    pub fn pop(&self) -> Option<T> {
        for class in self.class_order() {
            if let Some(v) = self.pop_class(class) {
                self.note_served(class, !self.class_is_empty(TaskClass::Background));
                return Some(v);
            }
        }
        None
    }

    /// `true` when `class` has no element in any of its lanes (racy
    /// snapshot).
    pub fn class_is_empty(&self, class: TaskClass) -> bool {
        self.classes[class.index()].is_empty()
    }

    /// Element count of `class` across its lanes (racy snapshot).
    pub fn class_len(&self, class: TaskClass) -> usize {
        self.classes[class.index()].len()
    }

    /// Total element count across every class (racy snapshot, one load).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` when no class has work (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains everything poppable into `f`, classes in strict priority
    /// order, each class in tournament (EDF-then-FIFO) order. Used by the
    /// steal path to move a queue's backlog into the FIFO steal cursor;
    /// deliberately skips the credit bookkeeping — a steal is relocation,
    /// not service.
    pub fn drain(&self, mut f: impl FnMut(T)) {
        for class in TaskClass::ALL {
            while let Some(v) = self.pop_class(class) {
                f(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_single_thread() {
        let q = LockFreeQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert_eq!(q.pushes(), 10);
        assert_eq!(q.pops(), 10);
        assert_eq!(q.empty_pops(), 1);
    }

    #[test]
    fn len_and_empty() {
        let q = LockFreeQueue::new();
        assert!(q.is_empty());
        q.push(());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        let q = Arc::new(LockFreeQueue::new());
        let producers = if cfg!(miri) { 2 } else { 4 };
        let per_producer = if cfg!(miri) { 25u64 } else { 2_500 };
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per_producer {
                    q.push(p * per_producer + i);
                }
            }));
        }
        let consumers = if cfg!(miri) { 2 } else { 4 };
        let total = producers * per_producer;
        let consumed = Arc::new(std::sync::Mutex::new(Vec::new()));
        let done = Arc::new(core::sync::atomic::AtomicU64::new(0));
        let mut chandles = Vec::new();
        for _ in 0..consumers {
            let q = q.clone();
            let consumed = consumed.clone();
            let done = done.clone();
            chandles.push(thread::spawn(move || {
                let mut local = Vec::new();
                loop {
                    match q.pop() {
                        Some(v) => local.push(v),
                        None => {
                            if done.load(Ordering::SeqCst) == 1 && q.is_empty() {
                                break;
                            }
                            thread::yield_now();
                        }
                    }
                }
                consumed.lock().unwrap().extend(local);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        done.store(1, Ordering::SeqCst);
        for h in chandles {
            h.join().unwrap();
        }
        let mut all = consumed.lock().unwrap().clone();
        all.sort_unstable();
        assert_eq!(all.len() as u64, total, "every element consumed once");
        all.dedup();
        assert_eq!(all.len() as u64, total, "no duplicates");
    }

    #[test]
    fn reclamation_under_churn_is_sound() {
        // Drives many unlink→retire→free cycles through the epoch
        // machinery while counters stay consistent. Under Miri this is the
        // main UB probe for the reclamation path (use-after-free on the
        // retired dummies would be flagged here).
        let q = LockFreeQueue::new();
        let rounds = if cfg!(miri) { 3u64 } else { 300 };
        for round in 0..rounds {
            for i in 0..100 {
                q.push(round * 100 + i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some(round * 100 + i));
            }
            assert!(q.is_empty());
        }
        assert_eq!(q.pushes(), rounds * 100);
        assert_eq!(q.pops(), rounds * 100);
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Item {
        class: TaskClass,
        deadline: Option<u64>,
        id: u64,
    }

    impl Classed for Item {
        fn class(&self) -> TaskClass {
            self.class
        }
        fn deadline(&self) -> Option<u64> {
            self.deadline
        }
    }

    fn item(class: TaskClass, deadline: Option<u64>, id: u64) -> Item {
        Item {
            class,
            deadline,
            id,
        }
    }

    #[test]
    fn placement_prefers_the_tightest_eligible_lane() {
        // Non-empty eligible lanes: greatest tail wins (tightest fit).
        assert_eq!(place_deadline_lane([Some(5), Some(8)], 10), 1);
        assert_eq!(place_deadline_lane([Some(8), Some(5)], 10), 0);
        // Ties break to the lowest index.
        assert_eq!(place_deadline_lane([Some(7), Some(7)], 10), 0);
        // An eligible non-empty lane beats an empty lane.
        assert_eq!(place_deadline_lane([None, Some(3)], 10), 1);
        // No eligible non-empty lane: lowest-indexed empty lane.
        assert_eq!(place_deadline_lane([None, None], 10), 0);
        assert_eq!(place_deadline_lane([Some(20), None], 10), 1);
        // Nothing eligible, nothing empty: smallest tail (best-effort).
        assert_eq!(place_deadline_lane([Some(20), Some(30)], 10), 0);
        assert_eq!(place_deadline_lane([Some(30), Some(20)], 10), 1);
    }

    #[test]
    fn class_lanes_pop_in_strict_priority_order() {
        let lanes = ClassLanes::new();
        for (i, class) in [
            TaskClass::Background,
            TaskClass::Bulk,
            TaskClass::Interactive,
            TaskClass::Urgent,
        ]
        .into_iter()
        .enumerate()
        {
            lanes.push(item(class, None, i as u64));
        }
        assert_eq!(lanes.len(), 4);
        let order: Vec<TaskClass> = std::iter::from_fn(|| lanes.pop().map(|t| t.class)).collect();
        assert_eq!(order, TaskClass::ALL.to_vec());
        assert!(lanes.is_empty());
    }

    #[test]
    fn class_lanes_drain_edf_within_a_class_then_fifo() {
        let lanes = ClassLanes::new();
        // FIFO (deadline-less) elements first, then out-of-submission-order
        // deadlines: the tournament must drain by deadline, then the FIFO
        // lane in submission order.
        lanes.push(item(TaskClass::Bulk, None, 100));
        lanes.push(item(TaskClass::Bulk, Some(30), 0));
        lanes.push(item(TaskClass::Bulk, Some(10), 1));
        lanes.push(item(TaskClass::Bulk, Some(20), 2));
        lanes.push(item(TaskClass::Bulk, None, 101));
        let ids: Vec<u64> = std::iter::from_fn(|| lanes.pop().map(|t| t.id)).collect();
        assert_eq!(ids, vec![1, 2, 0, 100, 101]);
    }

    #[test]
    fn background_bypass_fires_exactly_at_the_limit() {
        let lanes = ClassLanes::new();
        lanes.push(item(TaskClass::Background, None, 999));
        for i in 0..(BACKGROUND_BYPASS_LIMIT as u64 + 8) {
            lanes.push(item(TaskClass::Interactive, None, i));
        }
        // Sequentially the bound is exact: BACKGROUND_BYPASS_LIMIT pops
        // serve Interactive (each bumping the credit), and the next pop
        // serves the parked Background element.
        for i in 0..BACKGROUND_BYPASS_LIMIT as u64 {
            assert_eq!(lanes.pop().unwrap().id, i);
        }
        let bypassed = lanes.pop().unwrap();
        assert_eq!(bypassed.class, TaskClass::Background);
        assert_eq!(bypassed.id, 999);
        // Credit reset: the remaining Interactive backlog drains normally.
        for i in BACKGROUND_BYPASS_LIMIT as u64..BACKGROUND_BYPASS_LIMIT as u64 + 8 {
            assert_eq!(lanes.pop().unwrap().id, i);
        }
        assert_eq!(lanes.pop(), None);
    }

    #[test]
    fn class_lanes_drain_moves_everything_in_policy_order() {
        let lanes = ClassLanes::new();
        lanes.push(item(TaskClass::Background, None, 3));
        lanes.push(item(TaskClass::Urgent, Some(5), 0));
        lanes.push(item(TaskClass::Urgent, None, 1));
        lanes.push(item(TaskClass::Bulk, None, 2));
        let mut ids = Vec::new();
        lanes.drain(|t| ids.push(t.id));
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert!(lanes.is_empty());
        assert_eq!(lanes.len(), 0);
    }

    #[test]
    fn class_lanes_concurrent_push_pop_loses_nothing() {
        // MPMC smoke across classes and deadlines; runs under the Miri
        // lockfree step (weak memory, many seeds), so this is also the UB
        // probe for the peek_map-based tournament against racing pops.
        let lanes = Arc::new(ClassLanes::new());
        let producers = if cfg!(miri) { 2u64 } else { 4 };
        let per = if cfg!(miri) { 12u64 } else { 2_000 };
        let mut handles = Vec::new();
        for p in 0..producers {
            let lanes = lanes.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per {
                    let id = p * per + i;
                    let class = TaskClass::ALL[(id % 4) as usize];
                    let deadline = (id % 3 == 0).then_some(id);
                    lanes.push(item(class, deadline, id));
                }
            }));
        }
        let consumers = if cfg!(miri) { 2 } else { 4 };
        let done = Arc::new(AtomicU64::new(0));
        let mut chandles = Vec::new();
        for _ in 0..consumers {
            let lanes = lanes.clone();
            let done = done.clone();
            chandles.push(thread::spawn(move || {
                let mut local = Vec::new();
                loop {
                    match lanes.pop() {
                        Some(v) => local.push(v.id),
                        None => {
                            if done.load(Ordering::SeqCst) == 1 && lanes.is_empty() {
                                break;
                            }
                            thread::yield_now();
                        }
                    }
                }
                local
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        done.store(1, Ordering::SeqCst);
        let mut all: Vec<u64> = Vec::new();
        for c in chandles {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let total = (producers * per) as usize;
        assert_eq!(all.len(), total, "every element popped exactly once");
        all.dedup();
        assert_eq!(all.len(), total, "no element duplicated");
    }

    #[test]
    fn concurrent_churn_with_drop_in_flight() {
        // Producers and consumers race while the queue is dropped with
        // elements still enqueued: in-flight values must be freed exactly
        // once (Miri's leak checker and double-free detection cover both
        // directions).
        let q = Arc::new(LockFreeQueue::new());
        let threads = if cfg!(miri) { 2 } else { 4 };
        let per_thread = if cfg!(miri) { 30 } else { 3_000 };
        let mut handles = Vec::new();
        for t in 0..threads {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per_thread {
                    q.push(vec![t, i]); // heap payload: leaks are visible
                    if i % 3 == 0 {
                        drop(q.pop());
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        drop(q); // frees whatever is still enqueued
    }
}
