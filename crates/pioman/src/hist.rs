//! Fixed-footprint latency histograms: per-slot cache-padded recording,
//! log-bucketed (HDR-style) resolution, folded on snapshot.
//!
//! The scheduler's statistics so far are monotone *counts*
//! ([`ShardedCounter`](crate::counters::ShardedCounter)); this module
//! adds the *distribution* companion. A [`Histogram`] records `u64`
//! samples (nanoseconds, in every current use) into a fixed array of
//! buckets whose width grows with magnitude: values below
//! 2^[`SUB_BITS`] get exact unit buckets, and every power of two above
//! that is split into 2^[`SUB_BITS`] sub-buckets, bounding the relative
//! quantization error at one part in 2^[`SUB_BITS`] (~3% at the default
//! resolution) across the full `u64` range — the classic HDR-histogram
//! layout, sized here at [`BUCKETS`] slots (15 KiB of `AtomicU64`s per
//! shard, see `DESIGN.md` §7 for the resolution/footprint trade).
//!
//! Concurrency follows the `ShardedCounter` pattern exactly: the
//! structure is sharded over cache-padded slots, [`Histogram::record`]
//! is a handful of `Relaxed` RMWs on the calling thread's own lines
//! (lock-free, no allocation, no ordering obligations), and
//! [`Histogram::snapshot`] folds the shards slot by slot with the same
//! racy-hint contract — exact once writers quiesce, possibly missing
//! in-flight samples while they race. The `hist_shard` interleave model
//! (with its planted-bug twin) and the `shard_fold_matches_single_shard`
//! proptest pin the fold; the `quantiles_match_exact_reservoir` proptest
//! pins the bucket math against the exact reservoir in
//! [`piom_des::stats::Percentiles`] as sequential oracle.

use core::sync::atomic::{AtomicU64, Ordering::Relaxed};
use crossbeam::utils::CachePadded;

use crate::counters::thread_slot;
// The shared result vocabulary and its exact-oracle producer both live in
// `piom_des::stats`; re-exported here so scheduler-side consumers (and the
// proptests pinning the bucket math) need only this crate.
pub use piom_des::stats::{PercentileSummary, Percentiles};

/// Sub-bucket resolution: each power-of-two range above `2^SUB_BITS` is
/// split into `2^SUB_BITS` buckets, so the widest bucket spanning a value
/// `v` is `v / 2^SUB_BITS` wide — ~3.1% worst-case relative error at 5.
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per power-of-two range (`2^SUB_BITS`).
const SUB_COUNT: usize = 1 << SUB_BITS;

/// Total buckets needed to cover all of `u64`: the linear range
/// `0..2^SUB_BITS` plus `(64 - SUB_BITS)` log ranges of `SUB_COUNT`
/// sub-buckets each. 1920 at the default resolution.
pub const BUCKETS: usize = SUB_COUNT * (64 - SUB_BITS as usize + 1);

/// The bucket index covering value `v`. Monotone in `v`, continuous at
/// the linear/log boundary, and total over `u64`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        v as usize
    } else {
        // Highest set bit; `exp >= SUB_BITS` here, so the shift keeps
        // exactly SUB_BITS significant bits below the leading one.
        let exp = 63 - v.leading_zeros();
        let block = (exp - SUB_BITS + 1) as usize;
        let sub = ((v >> (exp - SUB_BITS)) as usize) & (SUB_COUNT - 1);
        (block << SUB_BITS) + sub
    }
}

/// The smallest value mapping to bucket `index` (inverse of
/// [`bucket_index`] on bucket lower bounds).
#[inline]
pub fn bucket_lower(index: usize) -> u64 {
    debug_assert!(index < BUCKETS);
    if index < SUB_COUNT {
        index as u64
    } else {
        let block = index >> SUB_BITS;
        let sub = (index & (SUB_COUNT - 1)) as u64;
        (SUB_COUNT as u64 + sub) << (block - 1)
    }
}

/// The largest value mapping to bucket `index` (saturating for the final
/// bucket, whose range ends at `u64::MAX`).
#[inline]
pub fn bucket_upper(index: usize) -> u64 {
    if index + 1 < BUCKETS {
        bucket_lower(index + 1) - 1
    } else {
        u64::MAX
    }
}

/// One cache-padded recording slot: the bucket array plus exact count,
/// sum, min and max so the snapshot can report an exact mean and exact
/// extremes even though quantiles are bucket-resolved.
struct Shard {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first sample.
    min: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        // Monotone CAS loops: each retries only while `v` still improves
        // the bound, so they terminate fast and stop touching the line at
        // all once the extremes stabilize (`fetch_min`/`fetch_max` would
        // also work; the explicit loop is the shape the `hist_shard`
        // interleave model checks, so the code and the model match).
        let mut cur = self.min.load(Relaxed);
        while v < cur {
            match self.min.compare_exchange_weak(cur, v, Relaxed, Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = self.max.load(Relaxed);
        while v > cur {
            match self.max.compare_exchange_weak(cur, v, Relaxed, Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A log-bucketed sample histogram sharded over cache-padded slots.
///
/// # Examples
///
/// ```
/// use pioman::hist::Histogram;
///
/// let h = Histogram::new(4);
/// for v in [10, 20, 30, 40, 1_000] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 5);
/// assert_eq!(snap.max(), Some(1_000));
/// assert_eq!(snap.quantile(0.5), Some(30)); // exact: 30 < 2^5
/// ```
pub struct Histogram {
    shards: Box<[CachePadded<Shard>]>,
    /// `shards.len() - 1`; power-of-two slot count so slot folding is a
    /// mask — same rationale as `ShardedCounter`.
    mask: usize,
}

impl Histogram {
    /// A histogram with at least `shards` padded slots (rounded up to the
    /// next power of two, minimum 1). Use one slot per core for
    /// core-indexed recording; thread-indexed recording folds onto
    /// `thread_slot & mask`.
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Histogram {
            shards: (0..n).map(|_| CachePadded::new(Shard::new())).collect(),
            mask: n - 1,
        }
    }

    /// Records one sample into the calling thread's slot (all `Relaxed`
    /// — the histogram is diagnostic, no data is published through it).
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_at(thread_slot(), v);
    }

    /// Records one sample into slot `slot & mask` — callers that already
    /// know a core id use it directly so the sample lands on that core's
    /// own lines.
    #[inline]
    pub fn record_at(&self, slot: usize, v: u64) {
        self.shards[slot & self.mask].record(v);
    }

    /// Number of padded slots.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Folds every slot into an owned [`HistSnapshot`]. Racy against
    /// in-flight `record`s exactly like `ShardedCounter::sum`; exact once
    /// writers quiesce.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut snap = HistSnapshot::empty();
        for shard in self.shards.iter() {
            for (i, b) in shard.buckets.iter().enumerate() {
                snap.buckets[i] += b.load(Relaxed);
            }
            snap.count += shard.count.load(Relaxed);
            snap.sum += shard.sum.load(Relaxed);
            snap.min = snap.min.min(shard.min.load(Relaxed));
            snap.max = snap.max.max(shard.max.load(Relaxed));
        }
        snap
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("shards", &self.shards.len())
            .field("buckets", &BUCKETS)
            .finish()
    }
}

/// An owned, folded view of a [`Histogram`]: plain integers, no atomics,
/// safe to ship across threads or serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HistSnapshot {
    fn empty() -> Self {
        HistSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Total samples folded into this snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (not bucket-resolved).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean (0 if empty) — computed from the exact sum, so it
    /// carries no quantization error.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (`None` if empty). Exact.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` if empty). Exact.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (`q` in `[0,1]`) by nearest-rank over the folded
    /// buckets; `None` if empty. The answer is the midpoint of the bucket
    /// holding the ranked sample, clamped to the exact `[min, max]`
    /// envelope — so the relative error is bounded by half a bucket width
    /// (~1.6% at the default [`SUB_BITS`]), and `q = 0` / `q = 1` are
    /// exact.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let mid = bucket_lower(i) + (bucket_upper(i) - bucket_lower(i)) / 2;
                return Some(mid.clamp(self.min, self.max));
            }
        }
        // count > 0 guarantees some bucket crosses the rank.
        unreachable!("rank {rank} beyond cumulative count {cum}");
    }

    /// The shared distribution vocabulary ([`PercentileSummary`]): count,
    /// exact mean and max, bucket-resolved p50/p99/p999.
    pub fn summary(&self) -> PercentileSummary {
        PercentileSummary {
            count: self.count,
            mean: self.mean(),
            p50: self.quantile(0.5).unwrap_or(0) as f64,
            p99: self.quantile(0.99).unwrap_or(0) as f64,
            p999: self.quantile(0.999).unwrap_or(0) as f64,
            max: self.max().unwrap_or(0) as f64,
        }
    }

    /// Folds another snapshot into this one (bucket-wise sum, exact
    /// count/sum/min/max combine) — merging two histograms is the same
    /// fold as merging two shards.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(inclusive upper bound, count)` pairs in
    /// ascending order — the shape a Prometheus-style cumulative `le`
    /// rendering consumes (`harness` snapshot export).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_monotone_and_continuous() {
        // Exhaustive over the low range, then spot the block boundaries
        // across the full u64 span.
        let mut prev = bucket_index(0);
        for v in 1u64..4096 {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            prev = i;
        }
        for exp in SUB_BITS..63 {
            let b = 1u64 << exp;
            for v in [b - 1, b, b + 1] {
                let i = bucket_index(v);
                assert!(
                    bucket_lower(i) <= v && v <= bucket_upper(i),
                    "v={v} outside bucket {i}: [{}, {}]",
                    bucket_lower(i),
                    bucket_upper(i)
                );
            }
            assert!(bucket_index(b) > bucket_index(b - 1));
        }
    }

    #[test]
    fn linear_range_is_exact() {
        for v in 0..SUB_COUNT as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn extremes_fit() {
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
        // The last bucket's floor is the top sub-bucket of the top block.
        assert_eq!(bucket_index(bucket_lower(BUCKETS - 1)), BUCKETS - 1);
    }

    #[test]
    fn lower_inverts_index_on_bucket_floors() {
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lower(i)), i, "floor of bucket {i}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Bucket width at value v is at most v / 2^SUB_BITS, so the
        // midpoint is within v / 2^(SUB_BITS+1) of any member (plus 1 for
        // integer rounding).
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let i = bucket_index(v);
            let mid = bucket_lower(i) + (bucket_upper(i) - bucket_lower(i)) / 2;
            let err = mid.abs_diff(v);
            let bound = v / (1 << (SUB_BITS + 1)) + 1;
            assert!(err <= bound, "v={v} mid={mid} err={err} bound={bound}");
            v = v.wrapping_mul(3).wrapping_add(7);
        }
    }

    #[test]
    fn record_snapshot_roundtrip() {
        let h = Histogram::new(1);
        for v in [0, 1, 31, 32, 1_000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum(), 1_001_064);
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), Some(1_000_000));
        assert!((s.mean() - 1_001_064.0 / 6.0).abs() < 1e-9);
        assert_eq!(s.quantile(0.0), Some(0), "q=0 exact via min clamp");
        assert_eq!(s.quantile(1.0), Some(1_000_000), "q=1 exact via max clamp");
    }

    #[test]
    fn empty_snapshot() {
        let s = Histogram::new(2).snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.quantile(0.5), None);
        let sum = s.summary();
        assert_eq!(sum.count, 0);
        assert_eq!(sum.p99, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_out_of_range_panics() {
        Histogram::new(1).snapshot().quantile(-0.1);
    }

    #[test]
    fn shard_count_rounds_up() {
        let h = Histogram::new(3);
        assert_eq!(h.shards(), 4);
        assert_eq!(Histogram::new(0).shards(), 1);
        // Slot folding: slot 7 on 4 shards lands on slot 3's lines.
        h.record_at(7, 42);
        assert_eq!(h.snapshot().count(), 1);
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let a = Histogram::new(1);
        let b = Histogram::new(4);
        for v in [5, 10, 100] {
            a.record(v);
        }
        for (slot, v) in [(0, 7u64), (1, 2_000), (2, 100)] {
            b.record_at(slot, v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 6);
        assert_eq!(m.sum(), 5 + 10 + 100 + 7 + 2_000 + 100);
        assert_eq!(m.min(), Some(5), "min folds exactly across merges");
        assert_eq!(m.max(), Some(2_000));
    }

    #[test]
    fn nonzero_buckets_are_cumulative_ready() {
        let h = Histogram::new(1);
        for v in [3, 3, 3, 40] {
            h.record(v);
        }
        let s = h.snapshot();
        let pairs: Vec<_> = s.nonzero_buckets().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], (3, 3), "unit bucket: le=3, count=3");
        assert!(pairs[1].0 >= 40 && pairs[1].1 == 1);
        assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "ascending le");
        assert_eq!(pairs.iter().map(|&(_, c)| c).sum::<u64>(), s.count());
    }

    #[test]
    fn threaded_records_are_never_lost() {
        let h = std::sync::Arc::new(Histogram::new(4));
        let threads = if cfg!(miri) { 3 } else { 8 };
        let per = if cfg!(miri) { 50u64 } else { 10_000 };
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..per {
                        h.record(t as u64 * 1_000 + i % 97);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count(), threads as u64 * per);
        assert_eq!(s.min(), Some(0));
    }
}
