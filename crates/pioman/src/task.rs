//! Tasks: the unit of work delegated to the task manager.
//!
//! "A task consists in running a function with a given parameter. A CPU set
//! is attached to the task so as to avoid unwanted cores to execute it. As
//! some treatments need to be performed repeatedly (polling a network for
//! example), an option is also added to a task." (paper §III)

use crate::completion::Completion;
use crate::manager::TaskManager;
use crate::queue::QueueId;
use piom_cpuset::CpuSet;
use std::sync::Arc;

/// What a task body reports after one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// The task completed; notify waiters, never run again.
    Done,
    /// The task made no conclusive progress (e.g. the network poll found
    /// nothing). A *repeat* task returning `Again` is re-enqueued into the
    /// same queue, exactly as Algorithm 1's `Enqueue(Queue, Task)`.
    /// A one-shot task returning `Again` is treated as `Done`.
    Again,
}

/// QoS class of a task: which per-queue lane it lives in and how soon
/// keypoints drain it relative to other classes.
///
/// Classes are served in **strict priority order** ([`TaskClass::Urgent`]
/// first, [`TaskClass::Background`] last) with one bounded exception: after
/// [`crate::lockfree::BACKGROUND_BYPASS_LIMIT`] higher-class pops that
/// bypassed a waiting `Background` task, the next pop serves `Background` —
/// the starvation bound stated in docs/SCHEDULER.md ("QoS tiers"). Within a
/// class, tasks drain FIFO, except that tasks carrying a
/// [`TaskOptions::deadline`] drain earliest-deadline-first ahead of the
/// class's no-deadline tasks (a missing deadline reads as "infinitely
/// late").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum TaskClass {
    /// Preemptive work (paper §VI future work: "tasks that can be executed
    /// immediately, even on a distant CPU where a thread is computing"):
    /// rendezvous unlocks, completion signals. Served before everything
    /// else; progression workers are woken eagerly on submission.
    Urgent = 0,
    /// The default class: ordinary request/response progression work.
    #[default]
    Interactive = 1,
    /// Throughput work that tolerates queueing — bulk packing, large
    /// transfers.
    Bulk = 2,
    /// Best-effort maintenance. Only served when no higher class has work,
    /// except for the anti-starvation credit documented on this enum.
    Background = 3,
}

/// Number of QoS classes ([`TaskClass`] variants).
pub const CLASS_COUNT: usize = 4;

impl TaskClass {
    /// All classes in strict priority order (highest first).
    pub const ALL: [TaskClass; CLASS_COUNT] = [
        TaskClass::Urgent,
        TaskClass::Interactive,
        TaskClass::Bulk,
        TaskClass::Background,
    ];

    /// Lane index of this class: 0 (highest priority) … 3 (lowest).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short lowercase label, used in stats exports.
    pub const fn label(self) -> &'static str {
        match self {
            TaskClass::Urgent => "urgent",
            TaskClass::Interactive => "interactive",
            TaskClass::Bulk => "bulk",
            TaskClass::Background => "background",
        }
    }
}

/// Options attached to a task at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaskOptions {
    /// Repetitive task: re-enqueue after each run until the body returns
    /// [`TaskStatus::Done`]. This is the paper's polling option — "it is
    /// considered completed once the corresponding network polling succeeds"
    /// (§IV-B).
    pub repeat: bool,
    /// QoS class: which per-queue lane the task is enqueued into and how
    /// soon keypoints drain it relative to other classes. Defaults to
    /// [`TaskClass::Interactive`].
    pub class: TaskClass,
    /// Optional deadline in integer ticks (caller-defined clock). Within a
    /// class, tasks carrying a deadline drain earliest-deadline-first ahead
    /// of the class's FIFO tasks; `None` reads as "infinitely late".
    /// Deadlines never override class priority.
    pub deadline: Option<u64>,
}

impl TaskOptions {
    /// A task executed at most once.
    pub const fn oneshot() -> Self {
        TaskOptions {
            repeat: false,
            class: TaskClass::Interactive,
            deadline: None,
        }
    }

    /// A repetitive (polling) task: re-run until it reports `Done`.
    pub const fn repeat() -> Self {
        TaskOptions {
            repeat: true,
            class: TaskClass::Interactive,
            deadline: None,
        }
    }

    /// Sets the QoS class (see [`TaskClass`]).
    pub const fn class(mut self, class: TaskClass) -> Self {
        self.class = class;
        self
    }

    /// Sets the deadline tick (see [`TaskOptions::deadline`]).
    pub const fn deadline(mut self, tick: u64) -> Self {
        self.deadline = Some(tick);
        self
    }

    /// Marks the task preemptive.
    #[deprecated(since = "0.1.0", note = "use `.class(TaskClass::Urgent)`")]
    pub const fn urgent(self) -> Self {
        self.class(TaskClass::Urgent)
    }
}

/// Execution context handed to a task body.
///
/// Carries the executing core and the manager, so bodies can submit
/// follow-up tasks (e.g. a request submission that did not complete
/// immediately submits a polling task, §IV-B).
pub struct TaskContext<'a> {
    /// The (virtual) core executing this task.
    pub core: usize,
    /// The manager running the task.
    pub manager: &'a TaskManager,
}

/// The boxed task body type.
///
/// `FnMut` because repetitive tasks carry state between attempts (e.g. a
/// countdown until a poll succeeds).
pub type TaskFn = Box<dyn FnMut(&TaskContext<'_>) -> TaskStatus + Send>;

/// A schedulable task, as stored in the hierarchical queues.
pub struct Task {
    pub(crate) body: TaskFn,
    pub(crate) options: TaskOptions,
    pub(crate) cpuset: CpuSet,
    /// Queue the task lives in; repeat tasks re-enqueue here.
    pub(crate) home: QueueId,
    pub(crate) completion: Arc<Completion>,
    /// Enqueue timestamp, set only when the manager's submit→execute
    /// latency histogram is enabled
    /// ([`ManagerConfig::latency_histogram`](crate::ManagerConfig)) —
    /// `None` keeps the disabled hot path free of clock reads. Taken (and
    /// for repeat tasks re-stamped) at execution time, so each *run*
    /// measures its own queueing delay.
    pub(crate) submitted_at: Option<std::time::Instant>,
}

impl Task {
    /// The CPU set the submitter attached.
    pub fn cpuset(&self) -> CpuSet {
        self.cpuset
    }

    /// The options the submitter attached.
    pub fn options(&self) -> TaskOptions {
        self.options
    }
}

impl crate::lockfree::Classed for Task {
    fn class(&self) -> TaskClass {
        self.options.class
    }
    fn deadline(&self) -> Option<u64> {
        self.options.deadline
    }
}

impl core::fmt::Debug for Task {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Task")
            .field("options", &self.options)
            .field("cpuset", &self.cpuset)
            .field("home", &self.home)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_constructors() {
        assert!(!TaskOptions::oneshot().repeat);
        assert!(TaskOptions::repeat().repeat);
        assert_eq!(TaskOptions::default(), TaskOptions::oneshot());
        assert_eq!(TaskOptions::default().class, TaskClass::Interactive);
        assert_eq!(TaskOptions::default().deadline, None);
        let o = TaskOptions::oneshot().class(TaskClass::Bulk).deadline(17);
        assert_eq!(o.class, TaskClass::Bulk);
        assert_eq!(o.deadline, Some(17));
    }

    #[test]
    fn class_priority_order_matches_indices() {
        for (i, c) in TaskClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert!(TaskClass::Urgent < TaskClass::Interactive);
        assert!(TaskClass::Bulk < TaskClass::Background);
        assert_eq!(TaskClass::default(), TaskClass::Interactive);
    }

    #[test]
    #[allow(deprecated)]
    fn urgent_forwarder_maps_to_the_urgent_class() {
        assert_eq!(
            TaskOptions::oneshot().urgent(),
            TaskOptions::oneshot().class(TaskClass::Urgent)
        );
    }
}
