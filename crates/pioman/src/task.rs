//! Tasks: the unit of work delegated to the task manager.
//!
//! "A task consists in running a function with a given parameter. A CPU set
//! is attached to the task so as to avoid unwanted cores to execute it. As
//! some treatments need to be performed repeatedly (polling a network for
//! example), an option is also added to a task." (paper §III)

use crate::completion::Completion;
use crate::manager::TaskManager;
use crate::queue::QueueId;
use piom_cpuset::CpuSet;
use std::sync::Arc;

/// What a task body reports after one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// The task completed; notify waiters, never run again.
    Done,
    /// The task made no conclusive progress (e.g. the network poll found
    /// nothing). A *repeat* task returning `Again` is re-enqueued into the
    /// same queue, exactly as Algorithm 1's `Enqueue(Queue, Task)`.
    /// A one-shot task returning `Again` is treated as `Done`.
    Again,
}

/// Options attached to a task at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaskOptions {
    /// Repetitive task: re-enqueue after each run until the body returns
    /// [`TaskStatus::Done`]. This is the paper's polling option — "it is
    /// considered completed once the corresponding network polling succeeds"
    /// (§IV-B).
    pub repeat: bool,
    /// Preemptive task (paper §VI future work: "tasks that can be executed
    /// immediately, even on a distant CPU where a thread is computing").
    /// Urgent tasks jump to the *front* of their queue (so the very next
    /// keypoint on any allowed core runs them before older work) and
    /// progression workers are woken eagerly, exactly as for a fresh
    /// submission.
    pub urgent: bool,
}

impl TaskOptions {
    /// A task executed at most once.
    pub const fn oneshot() -> Self {
        TaskOptions {
            repeat: false,
            urgent: false,
        }
    }

    /// A repetitive (polling) task: re-run until it reports `Done`.
    pub const fn repeat() -> Self {
        TaskOptions {
            repeat: true,
            urgent: false,
        }
    }

    /// Marks the task preemptive (see [`TaskOptions::urgent`]).
    pub const fn urgent(mut self) -> Self {
        self.urgent = true;
        self
    }
}

/// Execution context handed to a task body.
///
/// Carries the executing core and the manager, so bodies can submit
/// follow-up tasks (e.g. a request submission that did not complete
/// immediately submits a polling task, §IV-B).
pub struct TaskContext<'a> {
    /// The (virtual) core executing this task.
    pub core: usize,
    /// The manager running the task.
    pub manager: &'a TaskManager,
}

/// The boxed task body type.
///
/// `FnMut` because repetitive tasks carry state between attempts (e.g. a
/// countdown until a poll succeeds).
pub type TaskFn = Box<dyn FnMut(&TaskContext<'_>) -> TaskStatus + Send>;

/// A schedulable task, as stored in the hierarchical queues.
pub struct Task {
    pub(crate) body: TaskFn,
    pub(crate) options: TaskOptions,
    pub(crate) cpuset: CpuSet,
    /// Queue the task lives in; repeat tasks re-enqueue here.
    pub(crate) home: QueueId,
    pub(crate) completion: Arc<Completion>,
    /// Enqueue timestamp, set only when the manager's submit→execute
    /// latency histogram is enabled
    /// ([`ManagerConfig::latency_histogram`](crate::ManagerConfig)) —
    /// `None` keeps the disabled hot path free of clock reads. Taken (and
    /// for repeat tasks re-stamped) at execution time, so each *run*
    /// measures its own queueing delay.
    pub(crate) submitted_at: Option<std::time::Instant>,
}

impl Task {
    /// The CPU set the submitter attached.
    pub fn cpuset(&self) -> CpuSet {
        self.cpuset
    }

    /// The options the submitter attached.
    pub fn options(&self) -> TaskOptions {
        self.options
    }
}

impl core::fmt::Debug for Task {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Task")
            .field("options", &self.options)
            .field("cpuset", &self.cpuset)
            .field("home", &self.home)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_constructors() {
        assert!(!TaskOptions::oneshot().repeat);
        assert!(TaskOptions::repeat().repeat);
        assert_eq!(TaskOptions::default(), TaskOptions::oneshot());
    }
}
