//! Task queues: one per topology node, spinlock-protected or lock-free.

use crate::spinlock::SpinLock;
use crate::task::Task;
use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crossbeam::queue::SegQueue;
use piom_cpuset::CpuSet;
use piom_topology::Level;
use std::collections::VecDeque;

/// Identifier of a task queue — the arena index of the topology node owning
/// it (per-core queue for leaves, global queue for the root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueueId(pub(crate) u32);

impl QueueId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Storage backing one queue.
enum Backend {
    /// The paper's implementation: FIFO list + spinlock, dequeued with the
    /// double-checked Algorithm 2 (`len` is the unlocked emptiness hint).
    Spin {
        list: SpinLock<VecDeque<Task>>,
        len: AtomicUsize,
    },
    /// §VI future work: a lock-free queue (crossbeam's Michael-Scott-style
    /// segmented queue) — used by the ablation benchmarks.
    LockFree { list: SegQueue<Task> },
}

/// One hierarchical task queue.
pub(crate) struct TaskQueue {
    pub(crate) id: QueueId,
    pub(crate) level: Level,
    pub(crate) cpuset: CpuSet,
    backend: Backend,
    submitted: AtomicU64,
    executed: AtomicU64,
}

impl TaskQueue {
    pub(crate) fn new_spin(id: QueueId, level: Level, cpuset: CpuSet) -> Self {
        TaskQueue {
            id,
            level,
            cpuset,
            backend: Backend::Spin {
                list: SpinLock::new(VecDeque::new()),
                len: AtomicUsize::new(0),
            },
            submitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        }
    }

    pub(crate) fn new_lockfree(id: QueueId, level: Level, cpuset: CpuSet) -> Self {
        TaskQueue {
            id,
            level,
            cpuset,
            backend: Backend::LockFree {
                list: SegQueue::new(),
            },
            submitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        }
    }

    /// Appends a task (FIFO order within the queue). Urgent tasks are
    /// prepended instead, so the next scheduling pass runs them first
    /// (preemptive tasks, paper §VI).
    pub(crate) fn enqueue(&self, task: Task) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        match &self.backend {
            Backend::Spin { list, len } => {
                let mut guard = list.lock();
                if task.options.urgent {
                    guard.push_front(task);
                } else {
                    guard.push_back(task);
                }
                // Publish the new length *while holding the lock* so the
                // unlocked hint can never claim empty while an element is
                // present and unobservable.
                len.store(guard.len(), Ordering::Release);
            }
            // The lock-free backend has no two-ended variant; urgency only
            // affects wake-ups there.
            Backend::LockFree { list } => list.push(task),
        }
    }

    /// Re-enqueue a repeat task without counting a new submission.
    pub(crate) fn requeue(&self, task: Task) {
        match &self.backend {
            Backend::Spin { list, len } => {
                let mut guard = list.lock();
                guard.push_back(task);
                len.store(guard.len(), Ordering::Release);
            }
            Backend::LockFree { list } => list.push(task),
        }
    }

    /// The paper's **Algorithm 2** (`Get_Task`): evaluate the queue content
    /// without holding the mutex; if non-empty, acquire and re-check.
    /// "This technique permits to avoid race conditions with a minimal
    /// overhead since the mutex is only held when the list contains tasks."
    pub(crate) fn try_dequeue(&self) -> Option<Task> {
        match &self.backend {
            Backend::Spin { list, len } => {
                // notempty(Queue) — unlocked peek.
                if len.load(Ordering::Acquire) == 0 {
                    return None;
                }
                // LOCK(Queue); re-check; dequeue; UNLOCK(Queue).
                let mut guard = list.lock();
                let task = guard.pop_front();
                len.store(guard.len(), Ordering::Release);
                task
            }
            Backend::LockFree { list } => list.pop(),
        }
    }

    /// Batched Algorithm 2: drains up to `max` tasks into `out` under a
    /// *single* lock acquisition (the unlocked emptiness test still guards
    /// the lock). Returns the number of tasks drained.
    ///
    /// This is the schedule-side half of batching: where `try_dequeue`
    /// re-acquires the spinlock once per task, a keypoint that finds a
    /// backlog of `n` tasks pays one acquisition for all of them.
    pub(crate) fn dequeue_batch(&self, max: usize, out: &mut Vec<Task>) -> usize {
        match &self.backend {
            Backend::Spin { list, len } => {
                if len.load(Ordering::Acquire) == 0 {
                    return 0;
                }
                let mut guard = list.lock();
                let take = guard.len().min(max);
                out.extend(guard.drain(..take));
                len.store(guard.len(), Ordering::Release);
                take
            }
            Backend::LockFree { list } => {
                let mut n = 0;
                while n < max {
                    let Some(task) = list.pop() else { break };
                    out.push(task);
                    n += 1;
                }
                n
            }
        }
    }

    /// Steals the oldest task that `thief` is allowed to run, skipping
    /// tasks whose CPU set excludes it. Unlike `try_dequeue` + requeue,
    /// ineligible tasks keep their queue position (spinlock backend), so a
    /// probing thief never reorders work it cannot take.
    ///
    /// The lock-free backend cannot scan in place; it pops at most one
    /// bounded pass, re-pushing ineligible tasks (which moves them to the
    /// tail — acceptable for the ablation backend, documented in
    /// `DESIGN.md`).
    pub(crate) fn try_steal(&self, thief: usize) -> Option<Task> {
        match &self.backend {
            Backend::Spin { list, len } => {
                if len.load(Ordering::Acquire) == 0 {
                    return None;
                }
                let mut guard = list.lock();
                let pos = guard.iter().position(|t| t.cpuset.contains(thief))?;
                let task = guard.remove(pos);
                len.store(guard.len(), Ordering::Release);
                task
            }
            Backend::LockFree { list } => {
                let mut scan = list.len();
                while scan > 0 {
                    scan -= 1;
                    let task = list.pop()?;
                    if task.cpuset.contains(thief) {
                        return Some(task);
                    }
                    list.push(task);
                }
                None
            }
        }
    }

    /// Current length (hint; racy by nature).
    pub(crate) fn len_hint(&self) -> usize {
        match &self.backend {
            Backend::Spin { len, .. } => len.load(Ordering::Acquire),
            Backend::LockFree { list } => list.len(),
        }
    }

    pub(crate) fn note_executed(&self) {
        self.executed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    pub(crate) fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Lock statistics, when the backend has a lock.
    pub(crate) fn lock_stats(&self) -> Option<(u64, u64)> {
        match &self.backend {
            Backend::Spin { list, .. } => {
                Some((list.acquisitions(), list.contended_acquisitions()))
            }
            Backend::LockFree { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::completion::Completion;
    use crate::task::{TaskOptions, TaskStatus};

    fn dummy_task(home: QueueId) -> Task {
        task_for(home, CpuSet::single(0))
    }

    fn task_for(home: QueueId, cpuset: CpuSet) -> Task {
        Task {
            body: Box::new(|_| TaskStatus::Done),
            options: TaskOptions::oneshot(),
            cpuset,
            home,
            completion: Completion::new(),
        }
    }

    fn spin_queue() -> TaskQueue {
        TaskQueue::new_spin(QueueId(0), Level::Core, CpuSet::single(0))
    }

    fn lockfree_queue() -> TaskQueue {
        TaskQueue::new_lockfree(QueueId(0), Level::Core, CpuSet::single(0))
    }

    #[test]
    fn fifo_order_spin() {
        let q = spin_queue();
        for _ in 0..3 {
            q.enqueue(dummy_task(q.id));
        }
        assert_eq!(q.len_hint(), 3);
        let mut n = 0;
        while q.try_dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
        assert_eq!(q.len_hint(), 0);
        assert!(q.try_dequeue().is_none());
    }

    #[test]
    fn fifo_order_lockfree() {
        let q = lockfree_queue();
        q.enqueue(dummy_task(q.id));
        q.enqueue(dummy_task(q.id));
        assert_eq!(q.len_hint(), 2);
        assert!(q.try_dequeue().is_some());
        assert!(q.try_dequeue().is_some());
        assert!(q.try_dequeue().is_none());
    }

    #[test]
    fn empty_dequeue_never_locks() {
        let q = spin_queue();
        assert!(q.try_dequeue().is_none());
        // Algorithm 2's whole point: an empty queue is detected without a
        // single lock acquisition.
        assert_eq!(q.lock_stats().unwrap().0, 0);
    }

    #[test]
    fn requeue_does_not_count_as_submission() {
        let q = spin_queue();
        q.enqueue(dummy_task(q.id));
        let t = q.try_dequeue().unwrap();
        q.requeue(t);
        assert_eq!(q.submitted(), 1);
        assert_eq!(q.len_hint(), 1);
    }

    #[test]
    fn batch_drains_in_one_lock_acquisition() {
        let q = spin_queue();
        for _ in 0..5 {
            q.enqueue(dummy_task(q.id));
        }
        let locks_before = q.lock_stats().unwrap().0;
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(8, &mut out), 5);
        assert_eq!(out.len(), 5);
        assert_eq!(q.len_hint(), 0);
        assert_eq!(
            q.lock_stats().unwrap().0 - locks_before,
            1,
            "a batch drain must lock exactly once"
        );
        // Draining an empty queue takes the unlocked fast path.
        assert_eq!(q.dequeue_batch(8, &mut out), 0);
        assert_eq!(q.lock_stats().unwrap().0 - locks_before, 1);
    }

    #[test]
    fn batch_respects_max() {
        let q = spin_queue();
        for _ in 0..5 {
            q.enqueue(dummy_task(q.id));
        }
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(2, &mut out), 2);
        assert_eq!(q.len_hint(), 3);

        let lf = lockfree_queue();
        for _ in 0..5 {
            lf.enqueue(dummy_task(lf.id));
        }
        let mut out = Vec::new();
        assert_eq!(lf.dequeue_batch(2, &mut out), 2);
        assert_eq!(lf.len_hint(), 3);
    }

    #[test]
    fn steal_skips_ineligible_tasks_without_reordering() {
        let q = spin_queue();
        q.enqueue(task_for(q.id, CpuSet::single(0)));
        q.enqueue(task_for(q.id, CpuSet::from_iter([0, 3])));
        q.enqueue(task_for(q.id, CpuSet::single(0)));
        // Thief core 3 takes the (only) eligible task...
        let stolen = q.try_steal(3).expect("eligible task present");
        assert!(stolen.cpuset().contains(3));
        // ...and the two ineligible ones stay, in order, still dequeuable.
        assert_eq!(q.len_hint(), 2);
        assert!(q.try_steal(3).is_none());
        assert!(q.try_dequeue().is_some());
        assert!(q.try_dequeue().is_some());
    }

    #[test]
    fn steal_on_empty_queue_never_locks() {
        let q = spin_queue();
        assert!(q.try_steal(1).is_none());
        assert_eq!(q.lock_stats().unwrap().0, 0);
    }

    #[test]
    fn steal_lockfree_backend() {
        let q = lockfree_queue();
        q.enqueue(task_for(q.id, CpuSet::single(0)));
        q.enqueue(task_for(q.id, CpuSet::from_iter([0, 3])));
        assert!(q.try_steal(3).is_some());
        assert!(q.try_steal(3).is_none());
        assert_eq!(q.len_hint(), 1, "ineligible task survives the pass");
    }

    #[test]
    fn counters() {
        let q = spin_queue();
        q.enqueue(dummy_task(q.id));
        q.note_executed();
        assert_eq!(q.submitted(), 1);
        assert_eq!(q.executed(), 1);
        assert!(q.lock_stats().is_some());
        assert!(lockfree_queue().lock_stats().is_none());
    }
}
