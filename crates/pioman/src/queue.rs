//! Task queues: one per topology node, spinlock-protected or lock-free.
//!
//! # Layout (false-sharing pass, PR 5)
//!
//! A queue's hot atomics are touched by different cores in different
//! roles: the *owner* drains the list, *thieves* read the length hint and
//! the steal span (and take the steal cursor), and *submitters* bump the
//! statistics counters. Each of those groups sits behind a
//! [`CachePadded`] so one role's writes never evict the line another
//! role is polling — and the `submitted`/`executed` statistics, which
//! every core RMWs, are [`ShardedCounter`]s (per-slot padded,
//! aggregated only on snapshot). `DESIGN.md` §6 has the full layout
//! rationale; the `stats_sharding_contended` bench records the cost of
//! the shared-counter alternative.

use crate::counters::ShardedCounter;
use crate::lockfree::{place_deadline_lane, ClassLanes, DL_LANES};
use crate::spinlock::SpinLock;
use crate::task::{Task, TaskClass, CLASS_COUNT};
use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crossbeam::utils::CachePadded;
use piom_cpuset::CpuSet;
use piom_topology::Level;
use std::collections::VecDeque;

/// Identifier of a task queue — the arena index of the topology node owning
/// it (per-core queue for leaves, global queue for the root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueueId(pub(crate) u32);

impl QueueId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Storage backing one queue. Since PR 8 every backend stores its tasks in
/// per-class QoS lanes ([`TaskClass`]) and pops under the shared policy:
/// strict class priority with the `Background` anti-starvation credit
/// ([`crate::lockfree::BACKGROUND_BYPASS_LIMIT`]), earliest-deadline-first
/// within a class ahead of the class's FIFO tasks. The locked backends run
/// the policy sequentially over [`SeqLanes`] under their existing lock (no
/// *new* lock acquisitions); the lock-free backend runs it over
/// [`ClassLanes`] with zero locks on the enqueue/dequeue fast path.
// The per-class `SeqLanes` put the `Spin` variant a few hundred bytes above
// the `Mutex` one. Boxing it (clippy's suggestion) would add a pointer
// chase to every pop on the *default* backend to slim an enum that is
// constructed once per topology node and never moved; the arena happily
// pays the footprint instead. (`LockFree` *is* boxed — its epoch collectors
// are KiB-scale, a different regime.)
#[allow(clippy::large_enum_variant)]
enum Backend {
    /// The paper's implementation: per-class lanes + spinlock, dequeued
    /// with the double-checked Algorithm 2 (`len` is the unlocked
    /// emptiness hint). The lock (owner + thieves) and the hint (read by
    /// every park probe) are padded apart so probe traffic does not
    /// contend the lock line.
    Spin {
        list: CachePadded<SpinLock<SeqLanes>>,
        len: CachePadded<AtomicUsize>,
    },
    /// §VI future work: true lock-free class lanes over Michael–Scott
    /// queues with epoch reclamation (vendored `crossbeam`) — compared
    /// against the spinlock design by the ablation benchmarks. Boxed: the
    /// embedded epoch collectors' cache-line-padded pin slots make the
    /// lanes many KiB, which would bloat every `TaskQueue` in the arena
    /// otherwise.
    ///
    /// `cursor` is the *steal cursor*: a small spinlocked deque holding
    /// steal leftovers — the logical **front** of the queue. A
    /// Michael–Scott queue cannot remove from the middle, so a steal pass
    /// drains the lanes and parks everything it must leave behind here
    /// *in policy order* instead of re-pushing at the tail (which rotated
    /// the victim queue before PR 4). All dequeue paths consult the
    /// cursor before the lanes *class by class*, so class priority
    /// survives steals and intra-queue FIFO of non-stolen tasks is
    /// preserved. `cursor_len` is the unlocked emptiness hint: the common
    /// no-steal case pays one relaxed load, never the lock; `cursor_bg`
    /// counts the `Background` tasks parked in the cursor so the
    /// anti-starvation credit keeps ticking for them too. The cursor
    /// (thief-owned) and its hints are padded away from the lanes so a
    /// steal pass never bounces the line the owner's pop is reading — the
    /// lanes' own hot words are padded inside `ClassLanes` itself.
    ///
    /// Urgent work no longer needs the cursor front: [`TaskClass::Urgent`]
    /// *is* the front by class priority, so urgent enqueues (and urgent
    /// repeat requeues) go through the lanes like everything else.
    LockFree {
        lanes: Box<ClassLanes<Task>>,
        cursor: CachePadded<SpinLock<VecDeque<Task>>>,
        cursor_len: CachePadded<AtomicUsize>,
        cursor_bg: CachePadded<AtomicUsize>,
    },
    /// The pre-lock-free shim, kept as an ablation baseline: a plain OS
    /// mutex around the sequential lanes, locked on **every** operation
    /// including emptiness checks (no Algorithm-2 unlocked hint). This is
    /// what `QueueBackend::LockFree` silently was before the real
    /// lock-free queue landed; the `lockfree_vs_mutex` bench quantifies
    /// the gap. Deliberately unpadded — it is the "what we had" baseline.
    Mutex { list: std::sync::Mutex<SeqLanes> },
}

/// Locks a poisoned-agnostic mutex (a panicking task body must not poison
/// the scheduler).
fn lock_lanes(list: &std::sync::Mutex<SeqLanes>) -> std::sync::MutexGuard<'_, SeqLanes> {
    list.lock().unwrap_or_else(|e| e.into_inner())
}

/// The sequential twin of [`ClassLanes`]: the same per-class lanes and the
/// same pop policy (class priority + anti-starvation credit, EDF ahead of
/// FIFO within a class, [`place_deadline_lane`] placement), implemented
/// over plain `VecDeque`s for the backends that already hold a lock.
/// Driven sequentially, the two are *behaviourally identical* — the
/// `qos_policy` proptests pin all three backends against one oracle.
pub(crate) struct SeqLanes {
    classes: [SeqClassLane; CLASS_COUNT],
    /// Anti-starvation credit (see
    /// [`crate::lockfree::BACKGROUND_BYPASS_LIMIT`]): exact, since every
    /// access happens under the backend's lock.
    bg_credit: u32,
    len: usize,
}

#[derive(Default)]
struct SeqClassLane {
    fifo: VecDeque<Task>,
    dl: [VecDeque<Task>; DL_LANES],
}

impl SeqClassLane {
    fn is_empty(&self) -> bool {
        self.fifo.is_empty() && self.dl.iter().all(|l| l.is_empty())
    }

    fn iter(&self) -> impl Iterator<Item = &Task> {
        self.dl.iter().flatten().chain(self.fifo.iter())
    }
}

impl SeqLanes {
    pub(crate) fn new() -> Self {
        SeqLanes {
            classes: Default::default(),
            bg_credit: 0,
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Appends to the task's class lane: the deadline lane chosen by
    /// [`place_deadline_lane`] when it carries a deadline, the class FIFO
    /// otherwise.
    pub(crate) fn push(&mut self, task: Task) {
        let lane = &mut self.classes[task.options.class.index()];
        self.len += 1;
        match task.options.deadline {
            Some(d) => {
                let tails =
                    core::array::from_fn(|i| lane.dl[i].back().and_then(|t| t.options.deadline));
                lane.dl[place_deadline_lane(tails, d)].push_back(task);
            }
            None => lane.fifo.push_back(task),
        }
    }

    /// Pops the earliest-deadline task of `class` (tournament over the
    /// deadline-lane fronts), falling back to the class FIFO.
    pub(crate) fn pop_class(&mut self, class: TaskClass) -> Option<Task> {
        let lane = &mut self.classes[class.index()];
        let heads: [Option<u64>; DL_LANES] = core::array::from_fn(|i| {
            lane.dl[i]
                .front()
                .map(|t| t.options.deadline.unwrap_or(u64::MAX))
        });
        let task = match (heads[0], heads[1]) {
            (Some(a), Some(b)) => lane.dl[usize::from(a > b)].pop_front(),
            (Some(_), None) => lane.dl[0].pop_front(),
            (None, Some(_)) => lane.dl[1].pop_front(),
            (None, None) => lane.fifo.pop_front(),
        };
        if task.is_some() {
            self.len -= 1;
        }
        task
    }

    /// Pops the next task under the full QoS policy, mirroring
    /// [`ClassLanes::pop`] exactly (sequentially the credit bound is
    /// precise: the `BACKGROUND_BYPASS_LIMIT + 1`-th pop while
    /// `Background` waits serves `Background`).
    pub(crate) fn pop(&mut self) -> Option<Task> {
        use crate::lockfree::BACKGROUND_BYPASS_LIMIT;
        let bg = TaskClass::Background.index();
        let order = if self.bg_credit >= BACKGROUND_BYPASS_LIMIT && !self.classes[bg].is_empty() {
            [
                TaskClass::Background,
                TaskClass::Urgent,
                TaskClass::Interactive,
                TaskClass::Bulk,
            ]
        } else {
            TaskClass::ALL
        };
        for class in order {
            if let Some(task) = self.pop_class(class) {
                if class == TaskClass::Background {
                    self.bg_credit = 0;
                } else if !self.classes[bg].is_empty() {
                    self.bg_credit += 1;
                }
                return Some(task);
            }
        }
        None
    }

    /// Steal-half over the lanes: removes the
    /// `min(max, ceil(eligible / 2))` eligible tasks the *pop policy
    /// would serve first* (class priority, EDF ahead of FIFO, FIFO in
    /// order), leaving ineligible tasks in place and in order. Returns
    /// how many were taken. Deliberately skips the credit bookkeeping —
    /// a steal is relocation, not service.
    pub(crate) fn steal_eligible(
        &mut self,
        thief: usize,
        max: usize,
        out: &mut Vec<Task>,
    ) -> usize {
        let eligible = self
            .classes
            .iter()
            .flat_map(|c| c.iter())
            .filter(|t| t.cpuset.contains(thief))
            .count();
        if eligible == 0 {
            return 0;
        }
        let quota = eligible.div_ceil(2).min(max);
        let mut taken = 0;
        'classes: for ci in 0..CLASS_COUNT {
            let lane = &mut self.classes[ci];
            // Deadline tasks first: repeatedly remove the earliest-deadline
            // eligible element across the class's (sorted) deadline lanes.
            loop {
                if taken >= quota {
                    break 'classes;
                }
                let mut best: Option<(u64, usize, usize)> = None;
                for (li, l) in lane.dl.iter().enumerate() {
                    for (i, t) in l.iter().enumerate() {
                        if t.cpuset.contains(thief) {
                            let d = t.options.deadline.unwrap_or(u64::MAX);
                            if best.is_none_or(|(bd, _, _)| d < bd) {
                                best = Some((d, li, i));
                            }
                            break; // lanes are sorted: first eligible is earliest
                        }
                    }
                }
                let Some((_, li, i)) = best else { break };
                out.push(lane.dl[li].remove(i).expect("index checked"));
                taken += 1;
                self.len -= 1;
            }
            // Then the class FIFO, oldest eligible first.
            let mut i = 0;
            while taken < quota && i < lane.fifo.len() {
                if lane.fifo[i].cpuset.contains(thief) {
                    out.push(lane.fifo.remove(i).expect("index checked"));
                    taken += 1;
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
        taken
    }
}

/// Width of the steal-span bitmask in 64-bit words — one bit per possible
/// CPU, matching [`CpuSet::MAX_CPUS`] so the span can admit any core of the
/// widest supported fabric (the 1024-core quad-socket preset).
pub(crate) const SPAN_WORDS: usize = CpuSet::MAX_CPUS / 64;

/// One hierarchical task queue.
pub(crate) struct TaskQueue {
    pub(crate) id: QueueId,
    pub(crate) level: Level,
    pub(crate) cpuset: CpuSet,
    backend: Backend,
    /// Tasks enqueued by submission — sharded: submitters are arbitrary
    /// threads, so each lands on its thread's padded slot.
    submitted: ShardedCounter,
    /// Task executions drawn from this queue — sharded by the *executing
    /// core*, so each core's increment stays on its own line.
    executed: ShardedCounter,
    /// The *steal span*: a union of the cpusets of the tasks enqueued
    /// here, kept as [`SPAN_WORDS`] atomic words so
    /// [`steal_span_admits`](Self::steal_span_admits) is a single relaxed
    /// load. This is the cpuset filter behind the park probe and
    /// steal-targeted wake-ups: a core outside the span can never steal
    /// from this queue, whatever its depth, so probing it is pointless.
    /// It may over-approximate the *current* backlog — an
    /// over-approximation only costs a wasted probe, never a lost task
    /// (the steal path re-checks real task cpusets under the victim's
    /// lock) — but since PR 5 it is no longer a *monotone* union: a
    /// drain that leaves the queue empty clears any bits wider than the
    /// queue's own cpuset ([`Self::maybe_decay_span`]), so a queue that
    /// once held wide-cpuset tasks stops attracting park probes forever.
    /// Padded: every about-to-park core reads these words while
    /// enqueuers OR into them.
    steal_span: CachePadded<[AtomicU64; SPAN_WORDS]>,
}

impl TaskQueue {
    pub(crate) fn new_spin(id: QueueId, level: Level, cpuset: CpuSet, shards: usize) -> Self {
        TaskQueue {
            id,
            level,
            cpuset,
            backend: Backend::Spin {
                list: CachePadded::new(SpinLock::new(SeqLanes::new())),
                len: CachePadded::new(AtomicUsize::new(0)),
            },
            submitted: ShardedCounter::new(shards),
            executed: ShardedCounter::new(shards),
            steal_span: Default::default(),
        }
    }

    pub(crate) fn new_lockfree(id: QueueId, level: Level, cpuset: CpuSet, shards: usize) -> Self {
        TaskQueue {
            id,
            level,
            cpuset,
            backend: Backend::LockFree {
                lanes: Box::new(ClassLanes::new()),
                cursor: CachePadded::new(SpinLock::new(VecDeque::new())),
                cursor_len: CachePadded::new(AtomicUsize::new(0)),
                cursor_bg: CachePadded::new(AtomicUsize::new(0)),
            },
            submitted: ShardedCounter::new(shards),
            executed: ShardedCounter::new(shards),
            steal_span: Default::default(),
        }
    }

    pub(crate) fn new_mutex(id: QueueId, level: Level, cpuset: CpuSet, shards: usize) -> Self {
        TaskQueue {
            id,
            level,
            cpuset,
            backend: Backend::Mutex {
                list: std::sync::Mutex::new(SeqLanes::new()),
            },
            submitted: ShardedCounter::new(shards),
            executed: ShardedCounter::new(shards),
            steal_span: Default::default(),
        }
    }

    /// Folds `set` into the steal span (see the field docs). Word-skipping:
    /// after the first task with a given span shape, the common case is
    /// relaxed loads only and zero RMWs.
    ///
    /// Called **after** the backend push, never before: the decay path
    /// clears the span only when it observes the queue empty and restores
    /// whatever it cleared when it observes a concurrent enqueue — an
    /// ordering that can only lose a task's bits if those bits were
    /// published before the task itself existed in the queue. Folding
    /// after the push closes that window; the cost is that a probe racing
    /// the enqueue may transiently miss the new task (a wasted park, and
    /// the submission's own wake path covers it), never a stuck one.
    ///
    /// The `fetch_or` is Release, pairing with the decay's Acquire swap:
    /// when a decaying drain captures this enqueue's bits, it is
    /// guaranteed to also see the push's length update and restore them
    /// (see [`maybe_decay_span`](Self::maybe_decay_span) for the full
    /// race budget, including the one narrow case that can still drop
    /// bits and why it is bounded).
    fn note_span(&self, set: &CpuSet) {
        for (word, &bits) in self.steal_span.iter().zip(set.as_words()) {
            if bits != 0 && word.load(Ordering::Relaxed) & bits != bits {
                word.fetch_or(bits, Ordering::Release);
            }
        }
    }

    /// Steal-span decay: when a dequeue leaves the queue empty and the
    /// span has grown *wider than the queue's own cpuset* (the only case
    /// in which staleness misleads anyone — bits inside the cpuset can
    /// only attract cores whose own path already includes this queue),
    /// clear it so stale wide spans stop attracting park probes.
    ///
    /// Concurrency: the clear is a `swap(0)` per word followed by an
    /// emptiness re-check; if a task slipped in, every cleared bit is
    /// OR-ed straight back. The race budget, spelled out:
    ///
    /// * an enqueue whose `fetch_or` lands **after** the swap re-adds its
    ///   bits directly — nothing to restore;
    /// * an enqueue whose `fetch_or` (Release) landed **before** the swap
    ///   (Acquire) synchronizes with it, and since [`note_span`]
    ///   (Self::note_span) runs after the backend push, the re-check
    ///   below is then guaranteed to observe the push and restore the
    ///   captured bits;
    /// * the one interleaving that can still drop bits: an enqueuer
    ///   *skips* its `fetch_or` because the word-check read bits some
    ///   earlier task set, and this drain clears them before the new
    ///   task leaves. Closing that would take a store-load fence on the
    ///   enqueue hot path, and the miss is strictly bounded: the span
    ///   only gates the *advisory* park probe and `wake_for_steal`
    ///   escalation — the submission itself already unparked every core
    ///   in the task's cpuset with an unforgeable token, the steal path
    ///   never consults the span, and the next enqueue (or park
    ///   timeout / timer) re-covers the escalation. A dropped bit can
    ///   cost a bounded wasted park, never a lost task or wake.
    fn maybe_decay_span(&self) {
        let own = self.cpuset.as_words();
        if self
            .steal_span
            .iter()
            .zip(own)
            .all(|(w, &own_bits)| w.load(Ordering::Relaxed) & !own_bits == 0)
        {
            return; // nothing wider than the cpuset: staleness is harmless
        }
        let mut cleared = [0u64; SPAN_WORDS];
        for (c, w) in cleared.iter_mut().zip(self.steal_span.iter()) {
            // Acquire pairs with note_span's Release fetch_or: capturing
            // an enqueue's bits makes its push visible to the re-check.
            *c = w.swap(0, Ordering::Acquire);
        }
        if self.len_hint() != 0 {
            // A concurrent enqueue raced the clear: restore everything we
            // took (fetch_or also preserves bits added in between).
            for (c, w) in cleared.iter().zip(self.steal_span.iter()) {
                if *c != 0 {
                    w.fetch_or(*c, Ordering::Relaxed);
                }
            }
        }
    }

    /// `true` if some task with `core` in its cpuset was enqueued here and
    /// the span has not decayed since the queue last drained — the O(1)
    /// lock-free filter the park probe and
    /// [`wake_for_steal`](crate::TaskManager::wake_for_steal) consult
    /// before treating this queue's backlog as stealable by `core`.
    pub(crate) fn steal_span_admits(&self, core: usize) -> bool {
        core < CpuSet::MAX_CPUS
            && self.steal_span[core / 64].load(Ordering::Relaxed) & (1u64 << (core % 64)) != 0
    }

    /// Appends a task to its class lane (tail of the lane; the deadline
    /// lanes order by [`place_deadline_lane`]) and returns the queue depth
    /// just after the append (a hint under the lock-free backend).
    /// Class priority replaces the old urgent-to-the-front special case:
    /// a [`TaskClass::Urgent`] task is served before every lower class by
    /// the pop policy itself, under every backend. The returned depth
    /// feeds the backlog-threshold check behind
    /// [`wake_for_steal`](crate::TaskManager::wake_for_steal).
    pub(crate) fn enqueue(&self, task: Task) -> usize {
        self.submitted.add(1);
        let span = task.cpuset;
        let depth = match &self.backend {
            Backend::Spin { list, len } => {
                let mut guard = list.lock();
                guard.push(task);
                // Published while holding the lock; Relaxed — the hint may
                // transiently read stale (including stale-empty) on weak
                // memory, which is the same race Algorithm 2's unlocked
                // test always had: correctness rides the lock (data) and
                // the submission's unpark tokens (progress), never hint
                // freshness.
                len.store(guard.len(), Ordering::Relaxed);
                guard.len()
            }
            Backend::LockFree {
                lanes, cursor_len, ..
            } => {
                lanes.push(task);
                lanes.len() + cursor_len.load(Ordering::Relaxed)
            }
            Backend::Mutex { list } => {
                let mut guard = lock_lanes(list);
                guard.push(task);
                guard.len()
            }
        };
        // After the push, so the decay path's clear/restore protocol can
        // never drop the bits of a task already in the queue (note_span
        // docs walk the interleavings).
        self.note_span(&span);
        depth
    }

    /// Re-enqueue a repeat task without counting a new submission. Goes
    /// through the same class lanes as a fresh enqueue — in particular an
    /// urgent repeat task requeues at the *tail of the Urgent lane* (it
    /// still preempts every lower class, but no longer cuts ahead of
    /// older urgent work the way the pre-PR-8 cursor front did).
    pub(crate) fn requeue(&self, task: Task) {
        let span = task.cpuset;
        match &self.backend {
            Backend::Spin { list, len } => {
                let mut guard = list.lock();
                guard.push(task);
                len.store(guard.len(), Ordering::Relaxed);
            }
            Backend::LockFree { lanes, .. } => lanes.push(task),
            Backend::Mutex { list } => lock_lanes(list).push(task),
        }
        self.note_span(&span);
    }

    /// Removes the earliest-deadline eligible element of `class` from the
    /// steal cursor (`None` deadline reads as "infinitely late", ties go
    /// to the oldest), or `None` when the cursor holds no task of that
    /// class.
    fn take_first_of_class(guard: &mut VecDeque<Task>, class: TaskClass) -> Option<Task> {
        let mut best: Option<(u64, usize)> = None;
        for (i, t) in guard.iter().enumerate() {
            if t.options.class == class {
                let d = t.options.deadline.unwrap_or(u64::MAX);
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, i));
                }
            }
        }
        best.and_then(|(_, i)| guard.remove(i))
    }

    /// One policy-ordered pop for the lock-free backend: for each class in
    /// credit-adjusted priority order, the steal cursor (older, left-behind
    /// tasks — the logical front) is consulted before the lanes. The
    /// common no-steal case never touches the cursor lock: `cursor_len` is
    /// the unlocked hint, so the whole pop is lock-free.
    fn lockfree_pop_one(
        lanes: &ClassLanes<Task>,
        cursor: &SpinLock<VecDeque<Task>>,
        cursor_len: &AtomicUsize,
        cursor_bg: &AtomicUsize,
    ) -> Option<Task> {
        let bg_waiting = || {
            !lanes.class_is_empty(TaskClass::Background) || cursor_bg.load(Ordering::Relaxed) > 0
        };
        let order = lanes.class_order_with(bg_waiting());
        let mut served = None;
        if cursor_len.load(Ordering::Relaxed) > 0 {
            let mut guard = cursor.lock();
            for class in order {
                if let Some(t) = Self::take_first_of_class(&mut guard, class) {
                    cursor_len.store(guard.len(), Ordering::Relaxed);
                    if class == TaskClass::Background {
                        cursor_bg.fetch_sub(1, Ordering::Relaxed);
                    }
                    served = Some(t);
                    break;
                }
                if let Some(t) = lanes.pop_class(class) {
                    served = Some(t);
                    break;
                }
            }
        } else {
            for class in order {
                if let Some(t) = lanes.pop_class(class) {
                    served = Some(t);
                    break;
                }
            }
        }
        if let Some(t) = &served {
            lanes.note_served(t.options.class, bg_waiting());
        }
        served
    }

    /// The paper's **Algorithm 2** (`Get_Task`): evaluate the queue content
    /// without holding the mutex; if non-empty, acquire and re-check.
    /// "This technique permits to avoid race conditions with a minimal
    /// overhead since the mutex is only held when the list contains tasks."
    /// The dequeued task is whichever the QoS pop policy serves next (see
    /// [`SeqLanes::pop`] / [`ClassLanes::pop`]); plain same-class FIFO
    /// submissions drain in submission order exactly as before PR 8.
    pub(crate) fn try_dequeue(&self) -> Option<Task> {
        let task = match &self.backend {
            Backend::Spin { list, len } => {
                // notempty(Queue) — unlocked peek.
                if len.load(Ordering::Relaxed) == 0 {
                    return None;
                }
                // LOCK(Queue); re-check; dequeue; UNLOCK(Queue).
                let mut guard = list.lock();
                let task = guard.pop();
                len.store(guard.len(), Ordering::Relaxed);
                task
            }
            Backend::LockFree {
                lanes,
                cursor,
                cursor_len,
                cursor_bg,
            } => Self::lockfree_pop_one(lanes, cursor, cursor_len, cursor_bg),
            Backend::Mutex { list } => lock_lanes(list).pop(),
        };
        if task.is_some() && self.len_hint() == 0 {
            self.maybe_decay_span();
        }
        task
    }

    /// Batched Algorithm 2: drains up to `max` tasks into `out` under a
    /// *single* lock acquisition (the unlocked emptiness test still guards
    /// the lock). Returns the number of tasks drained.
    ///
    /// This is the schedule-side half of batching: where `try_dequeue`
    /// re-acquires the spinlock once per task, a keypoint that finds a
    /// backlog of `n` tasks pays one acquisition for all of them.
    pub(crate) fn dequeue_batch(&self, max: usize, out: &mut Vec<Task>) -> usize {
        let taken = match &self.backend {
            Backend::Spin { list, len } => {
                if len.load(Ordering::Relaxed) == 0 {
                    return 0;
                }
                let mut guard = list.lock();
                let take = guard.len().min(max);
                for _ in 0..take {
                    out.push(guard.pop().expect("len checked under the lock"));
                }
                len.store(guard.len(), Ordering::Relaxed);
                take
            }
            Backend::LockFree {
                lanes,
                cursor,
                cursor_len,
                cursor_bg,
            } => {
                let mut n = 0;
                while n < max {
                    let Some(task) = Self::lockfree_pop_one(lanes, cursor, cursor_len, cursor_bg)
                    else {
                        break;
                    };
                    out.push(task);
                    n += 1;
                }
                n
            }
            Backend::Mutex { list } => {
                let mut guard = lock_lanes(list);
                let take = guard.len().min(max);
                for _ in 0..take {
                    out.push(guard.pop().expect("len checked under the lock"));
                }
                take
            }
        };
        if taken > 0 && self.len_hint() == 0 {
            self.maybe_decay_span();
        }
        taken
    }

    /// Batched stealing (*steal-half*): takes up to `max` of the tasks
    /// `thief` may run — at most **half of the eligible backlog**, rounded
    /// up — into `out`, returning how many were taken.
    ///
    /// Half, not all: the thief is catching a transient imbalance, and a
    /// probe that looted the whole backlog would trade one starved core
    /// for another while the home core's next keypoint finds nothing.
    /// Half splits the backlog geometrically between the home core and
    /// however many thieves arrive, so a drain completes in `O(log n)`
    /// probes instead of `n` single-task probes (the per-probe premium
    /// PR 2's trajectory measured).
    ///
    /// Ineligible tasks keep their queue positions under every backend.
    /// Spin and Mutex scan the deque in place under the lock. The
    /// lock-free backend cannot scan a Michael–Scott queue in place, so
    /// its steal pass pops a bounded prefix and parks everything it must
    /// leave behind in the *steal cursor* — the spinlocked logical front
    /// that all dequeue paths drain first — in original order. Before
    /// PR 4 the leftovers were re-pushed at the tail, rotating the victim
    /// queue on every probe; the cursor removes that reordering (a
    /// concurrent dequeue racing the steal pass itself may still observe
    /// tasks out of order — intra-queue FIFO is only defined for
    /// operations that don't overlap the steal).
    pub(crate) fn try_steal_half(&self, thief: usize, max: usize, out: &mut Vec<Task>) -> usize {
        if max == 0 {
            return 0;
        }
        let taken = match &self.backend {
            Backend::Spin { list, len } => {
                if len.load(Ordering::Relaxed) == 0 {
                    return 0;
                }
                let mut guard = list.lock();
                let taken = guard.steal_eligible(thief, max, out);
                len.store(guard.len(), Ordering::Relaxed);
                taken
            }
            Backend::Mutex { list } => lock_lanes(list).steal_eligible(thief, max, out),
            Backend::LockFree {
                lanes,
                cursor,
                cursor_len,
                cursor_bg,
            } => {
                // Holding the cursor lock for the whole pass serializes
                // thieves on this queue (stealing is the rare path) and
                // lets the leftovers land at the logical front in order.
                // The lanes drain in policy order (class priority, EDF
                // ahead of FIFO), so the cursor's element order *is* the
                // pop-policy order of the drained snapshot and the FIFO
                // steal below takes the tasks the policy would serve
                // first.
                let mut guard = cursor.lock();
                lanes.drain(|task| {
                    guard.push_back(task);
                    // Publish as we go: a racing dequeue that misses the
                    // hint only loses to the ordinary pop race.
                    cursor_len.store(guard.len(), Ordering::Relaxed);
                });
                let taken = Self::drain_half_eligible(&mut guard, thief, max, out);
                cursor_len.store(guard.len(), Ordering::Relaxed);
                cursor_bg.store(
                    guard
                        .iter()
                        .filter(|t| t.options.class == TaskClass::Background)
                        .count(),
                    Ordering::Relaxed,
                );
                taken
            }
        };
        if taken > 0 && self.len_hint() == 0 {
            self.maybe_decay_span();
        }
        taken
    }

    /// Lock-free-backend steal body, applied to the steal cursor after the
    /// lanes drained into it: removes the first (policy-ordered)
    /// `min(max, ceil(eligible / 2))` eligible tasks, leaving ineligible
    /// ones in place and in order.
    fn drain_half_eligible(
        guard: &mut VecDeque<Task>,
        thief: usize,
        max: usize,
        out: &mut Vec<Task>,
    ) -> usize {
        let eligible = guard.iter().filter(|t| t.cpuset.contains(thief)).count();
        if eligible == 0 {
            return 0;
        }
        let quota = eligible.div_ceil(2).min(max);
        let mut taken = 0;
        let mut i = 0;
        while taken < quota && i < guard.len() {
            if guard[i].cpuset.contains(thief) {
                out.push(guard.remove(i).expect("index checked"));
                taken += 1;
            } else {
                i += 1;
            }
        }
        taken
    }

    /// Removes up to `quota` tasks for a **socket-overflow spill**: lowest
    /// class first (reverse [`TaskClass::ALL`] order), each class drained
    /// in its own pop order (EDF ahead of FIFO, oldest first). A spill is
    /// relocation, not service, so — like
    /// [`steal_eligible`](SeqLanes::steal_eligible) — it skips the
    /// anti-starvation credit. Evicting from the *bottom* of the priority
    /// order keeps the work the pop policy would serve next on the
    /// uncontended local queue; the excess that was going to wait anyway
    /// is what gains from whole-socket visibility.
    ///
    /// The lock-free backend spills from the lanes only: tasks already
    /// staged in the steal cursor are the logical front — the work most
    /// likely to be served next — and stay put.
    pub(crate) fn spill_lowest(&self, quota: usize, out: &mut Vec<Task>) -> usize {
        if quota == 0 {
            return 0;
        }
        let taken = match &self.backend {
            Backend::Spin { list, len } => {
                let mut guard = list.lock();
                let n = Self::spill_lowest_seq(&mut guard, quota, out);
                len.store(guard.len(), Ordering::Relaxed);
                n
            }
            Backend::Mutex { list } => Self::spill_lowest_seq(&mut lock_lanes(list), quota, out),
            Backend::LockFree { lanes, .. } => {
                let mut n = 0;
                'classes: for class in TaskClass::ALL.iter().rev() {
                    while n < quota {
                        let Some(task) = lanes.pop_class(*class) else {
                            continue 'classes;
                        };
                        out.push(task);
                        n += 1;
                    }
                    break;
                }
                n
            }
        };
        if taken > 0 && self.len_hint() == 0 {
            self.maybe_decay_span();
        }
        taken
    }

    /// [`spill_lowest`](Self::spill_lowest) body for the locked backends.
    fn spill_lowest_seq(lanes: &mut SeqLanes, quota: usize, out: &mut Vec<Task>) -> usize {
        let mut n = 0;
        'classes: for class in TaskClass::ALL.iter().rev() {
            while n < quota {
                let Some(task) = lanes.pop_class(*class) else {
                    continue 'classes;
                };
                out.push(task);
                n += 1;
            }
            break;
        }
        n
    }

    /// Current length (hint; racy by nature). The Mutex backend pays a
    /// lock acquisition here — exactly the cost Algorithm 2's unlocked
    /// hint (Spin) and the atomic counter (LockFree) avoid. The hint
    /// loads are Relaxed: no data is consumed through them (the lock or
    /// the queue's own acquire edges publish the tasks), and the wake
    /// paths that guarantee progress carry unpark tokens, not this value.
    pub(crate) fn len_hint(&self) -> usize {
        match &self.backend {
            Backend::Spin { len, .. } => len.load(Ordering::Relaxed),
            Backend::LockFree {
                lanes, cursor_len, ..
            } => lanes.len() + cursor_len.load(Ordering::Relaxed),
            Backend::Mutex { list } => lock_lanes(list).len(),
        }
    }

    /// Snapshot of the steal span as a [`CpuSet`] (see the field docs).
    pub(crate) fn steal_span(&self) -> CpuSet {
        let mut words = [0u64; SPAN_WORDS];
        for (w, a) in words.iter_mut().zip(self.steal_span.iter()) {
            *w = a.load(Ordering::Relaxed);
        }
        CpuSet::from_words(words)
    }

    pub(crate) fn note_executed(&self, core: usize) {
        self.executed.add_at(core, 1);
    }

    pub(crate) fn submitted(&self) -> u64 {
        self.submitted.sum()
    }

    pub(crate) fn executed(&self) -> u64 {
        self.executed.sum()
    }

    /// Lock statistics, when the backend has an instrumented lock (the
    /// Mutex backend's OS lock is not instrumented).
    pub(crate) fn lock_stats(&self) -> Option<(u64, u64)> {
        match &self.backend {
            Backend::Spin { list, .. } => {
                Some((list.acquisitions(), list.contended_acquisitions()))
            }
            Backend::LockFree { .. } | Backend::Mutex { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::completion::Completion;
    use crate::task::{TaskOptions, TaskStatus};

    fn dummy_task(home: QueueId) -> Task {
        task_for(home, CpuSet::single(0))
    }

    fn task_for(home: QueueId, cpuset: CpuSet) -> Task {
        task_with(home, cpuset, TaskOptions::oneshot())
    }

    fn task_with(home: QueueId, cpuset: CpuSet, options: TaskOptions) -> Task {
        Task {
            body: Box::new(|_| TaskStatus::Done),
            options,
            cpuset,
            home,
            completion: Completion::new(),
            submitted_at: None,
        }
    }

    fn spin_queue() -> TaskQueue {
        TaskQueue::new_spin(QueueId(0), Level::Core, CpuSet::single(0), 4)
    }

    fn lockfree_queue() -> TaskQueue {
        TaskQueue::new_lockfree(QueueId(0), Level::Core, CpuSet::single(0), 4)
    }

    fn mutex_queue() -> TaskQueue {
        TaskQueue::new_mutex(QueueId(0), Level::Core, CpuSet::single(0), 4)
    }

    #[test]
    fn fifo_order_spin() {
        let q = spin_queue();
        for _ in 0..3 {
            q.enqueue(dummy_task(q.id));
        }
        assert_eq!(q.len_hint(), 3);
        let mut n = 0;
        while q.try_dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
        assert_eq!(q.len_hint(), 0);
        assert!(q.try_dequeue().is_none());
    }

    #[test]
    fn fifo_order_lockfree() {
        let q = lockfree_queue();
        q.enqueue(dummy_task(q.id));
        q.enqueue(dummy_task(q.id));
        assert_eq!(q.len_hint(), 2);
        assert!(q.try_dequeue().is_some());
        assert!(q.try_dequeue().is_some());
        assert!(q.try_dequeue().is_none());
    }

    #[test]
    fn empty_dequeue_never_locks() {
        let q = spin_queue();
        assert!(q.try_dequeue().is_none());
        // Algorithm 2's whole point: an empty queue is detected without a
        // single lock acquisition.
        assert_eq!(q.lock_stats().unwrap().0, 0);
    }

    #[test]
    fn requeue_does_not_count_as_submission() {
        let q = spin_queue();
        q.enqueue(dummy_task(q.id));
        let t = q.try_dequeue().unwrap();
        q.requeue(t);
        assert_eq!(q.submitted(), 1);
        assert_eq!(q.len_hint(), 1);
    }

    #[test]
    fn batch_drains_in_one_lock_acquisition() {
        let q = spin_queue();
        for _ in 0..5 {
            q.enqueue(dummy_task(q.id));
        }
        let locks_before = q.lock_stats().unwrap().0;
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(8, &mut out), 5);
        assert_eq!(out.len(), 5);
        assert_eq!(q.len_hint(), 0);
        assert_eq!(
            q.lock_stats().unwrap().0 - locks_before,
            1,
            "a batch drain must lock exactly once"
        );
        // Draining an empty queue takes the unlocked fast path.
        assert_eq!(q.dequeue_batch(8, &mut out), 0);
        assert_eq!(q.lock_stats().unwrap().0 - locks_before, 1);
    }

    #[test]
    fn batch_respects_max() {
        let q = spin_queue();
        for _ in 0..5 {
            q.enqueue(dummy_task(q.id));
        }
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(2, &mut out), 2);
        assert_eq!(q.len_hint(), 3);

        let lf = lockfree_queue();
        for _ in 0..5 {
            lf.enqueue(dummy_task(lf.id));
        }
        let mut out = Vec::new();
        assert_eq!(lf.dequeue_batch(2, &mut out), 2);
        assert_eq!(lf.len_hint(), 3);
    }

    #[test]
    fn steal_skips_ineligible_tasks_without_reordering() {
        let q = spin_queue();
        q.enqueue(task_for(q.id, CpuSet::single(0)));
        q.enqueue(task_for(q.id, CpuSet::from_iter([0, 3])));
        q.enqueue(task_for(q.id, CpuSet::single(0)));
        // Thief core 3 takes the (only) eligible task...
        let mut out = Vec::new();
        assert_eq!(q.try_steal_half(3, usize::MAX, &mut out), 1);
        assert!(out.pop().unwrap().cpuset().contains(3));
        // ...and the two ineligible ones stay, in order, still dequeuable.
        assert_eq!(q.len_hint(), 2);
        assert_eq!(q.try_steal_half(3, usize::MAX, &mut out), 0);
        assert!(q.try_dequeue().is_some());
        assert!(q.try_dequeue().is_some());
    }

    #[test]
    fn steal_lockfree_backend() {
        let q = lockfree_queue();
        q.enqueue(task_for(q.id, CpuSet::single(0)));
        q.enqueue(task_for(q.id, CpuSet::from_iter([0, 3])));
        let mut out = Vec::new();
        assert_eq!(q.try_steal_half(3, usize::MAX, &mut out), 1);
        assert_eq!(q.try_steal_half(3, usize::MAX, &mut out), 0);
        assert_eq!(q.len_hint(), 1, "ineligible task survives the pass");
    }

    #[test]
    fn fifo_order_mutex() {
        let q = mutex_queue();
        for _ in 0..3 {
            q.enqueue(dummy_task(q.id));
        }
        assert_eq!(q.len_hint(), 3);
        let mut n = 0;
        while q.try_dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
        assert!(q.lock_stats().is_none(), "OS mutex is uninstrumented");
    }

    #[test]
    fn steal_half_takes_half_of_eligible_backlog() {
        for q in [spin_queue(), mutex_queue()] {
            // 6 eligible for thief 3, 2 not.
            for i in 0..8 {
                let set = if i % 4 == 3 {
                    CpuSet::single(0)
                } else {
                    CpuSet::from_iter([0, 3])
                };
                q.enqueue(task_for(q.id, set));
            }
            let mut out = Vec::new();
            assert_eq!(q.try_steal_half(3, usize::MAX, &mut out), 3);
            assert!(out.iter().all(|t| t.cpuset().contains(3)));
            assert_eq!(q.len_hint(), 5, "half the eligible + all ineligible stay");
            // The survivors are still dequeuable in order by the home core.
            let mut left = 0;
            while q.try_dequeue().is_some() {
                left += 1;
            }
            assert_eq!(left, 5);
        }
    }

    #[test]
    fn steal_half_rounds_up_and_honours_max() {
        let q = spin_queue();
        q.enqueue(task_for(q.id, CpuSet::from_iter([0, 1])));
        let mut out = Vec::new();
        // ceil(1/2) = 1: a lone straggler is still stealable.
        assert_eq!(q.try_steal_half(1, usize::MAX, &mut out), 1);
        assert_eq!(q.len_hint(), 0);

        for _ in 0..10 {
            q.enqueue(task_for(q.id, CpuSet::from_iter([0, 1])));
        }
        out.clear();
        // Budget caps below the half quota.
        assert_eq!(q.try_steal_half(1, 2, &mut out), 2);
        assert_eq!(q.len_hint(), 8);
        assert_eq!(
            q.try_steal_half(1, 0, &mut out),
            0,
            "zero budget steals nothing"
        );
    }

    #[test]
    fn steal_half_on_empty_queue_never_locks() {
        let q = spin_queue();
        let mut out = Vec::new();
        assert_eq!(q.try_steal_half(1, usize::MAX, &mut out), 0);
        assert_eq!(q.lock_stats().unwrap().0, 0);
    }

    #[test]
    fn steal_half_lockfree_keeps_ineligible_tasks() {
        let q = lockfree_queue();
        for i in 0..6 {
            let set = if i % 2 == 0 {
                CpuSet::from_iter([0, 2])
            } else {
                CpuSet::single(0)
            };
            q.enqueue(task_for(q.id, set));
        }
        let mut out = Vec::new();
        // 3 eligible -> ceil(3/2) = 2 stolen, 1 re-pushed, 3 ineligible kept.
        assert_eq!(q.try_steal_half(2, usize::MAX, &mut out), 2);
        assert!(out.iter().all(|t| t.cpuset().contains(2)));
        assert_eq!(q.len_hint(), 4);
    }

    #[test]
    fn steal_lockfree_preserves_fifo_of_survivors() {
        // The PR-4 steal cursor: stealing must not rotate the victim queue.
        // Tag each task with a unique marker cpu (10+i) so the drain order
        // is observable; even-indexed tasks are eligible for thief 3.
        let q = lockfree_queue();
        for i in 0..6 {
            let mut set = CpuSet::from_iter([0, 10 + i]);
            if i % 2 == 0 {
                set.insert(3);
            }
            q.enqueue(task_for(q.id, set));
        }
        let mut out = Vec::new();
        // 3 eligible -> quota 2: tasks 0 and 2 (the oldest eligible) leave.
        assert_eq!(q.try_steal_half(3, usize::MAX, &mut out), 2);
        assert!(out[0].cpuset().contains(10));
        assert!(out[1].cpuset().contains(12));
        // Survivors drain in original submission order: 1, 3, 4, 5.
        for expect in [11, 13, 14, 15] {
            let t = q.try_dequeue().expect("survivor present");
            assert!(
                t.cpuset().contains(expect),
                "queue was reordered: expected marker {expect}"
            );
        }
        assert!(q.try_dequeue().is_none());
    }

    #[test]
    fn steal_cursor_survivors_precede_newer_pushes() {
        // Tasks left behind by a steal sit at the logical *front*: a task
        // pushed after the steal must drain later than every survivor.
        let q = lockfree_queue();
        q.enqueue(task_for(q.id, CpuSet::from_iter([0, 3, 10])));
        q.enqueue(task_for(q.id, CpuSet::from_iter([0, 3, 11])));
        let mut out = Vec::new();
        assert_eq!(q.try_steal_half(3, usize::MAX, &mut out), 1);
        q.enqueue(task_for(q.id, CpuSet::from_iter([0, 12])));
        let first = q.try_dequeue().unwrap();
        assert!(
            first.cpuset().contains(11),
            "survivor drains before newer work"
        );
        assert!(q.try_dequeue().unwrap().cpuset().contains(12));
    }

    #[test]
    fn urgent_class_preempts_queue_order_under_every_backend() {
        // Class priority is the preemption mechanism since PR 8 (the old
        // urgent bool mapped to a cursor/deque front): an Urgent task
        // submitted after older Interactive work still drains first.
        for q in [spin_queue(), lockfree_queue(), mutex_queue()] {
            q.enqueue(task_for(q.id, CpuSet::from_iter([0, 10])));
            q.enqueue(task_with(
                q.id,
                CpuSet::from_iter([0, 11]),
                TaskOptions::oneshot().class(TaskClass::Urgent),
            ));
            assert_eq!(q.len_hint(), 2);
            assert!(q.try_dequeue().unwrap().cpuset().contains(11));
            assert!(q.try_dequeue().unwrap().cpuset().contains(10));
        }
    }

    #[test]
    fn urgent_requeue_lands_at_its_class_lane_tail() {
        // The satellite fix: an urgent repeat task requeues *behind* older
        // urgent work (class-lane tail), not ahead of it the way the old
        // cursor-front special case did — while still preempting every
        // lower class.
        for q in [spin_queue(), lockfree_queue(), mutex_queue()] {
            q.enqueue(task_for(q.id, CpuSet::from_iter([0, 10])));
            let urgent = TaskOptions::repeat().class(TaskClass::Urgent);
            q.enqueue(task_with(q.id, CpuSet::from_iter([0, 11]), urgent));
            let first = q.try_dequeue().unwrap();
            assert!(first.cpuset().contains(11), "urgent preempts interactive");
            q.enqueue(task_with(q.id, CpuSet::from_iter([0, 12]), urgent));
            q.requeue(first);
            // The freshly enqueued urgent task (12) is older in the lane
            // than the requeued one (11); both beat the interactive task.
            assert!(q.try_dequeue().unwrap().cpuset().contains(12));
            assert!(q.try_dequeue().unwrap().cpuset().contains(11));
            assert!(q.try_dequeue().unwrap().cpuset().contains(10));
        }
    }

    #[test]
    fn deadlines_drain_edf_within_a_class_under_every_backend() {
        for q in [spin_queue(), lockfree_queue(), mutex_queue()] {
            let bulk = TaskOptions::oneshot().class(TaskClass::Bulk);
            q.enqueue(task_with(q.id, CpuSet::from_iter([0, 10]), bulk));
            q.enqueue(task_with(
                q.id,
                CpuSet::from_iter([0, 11]),
                bulk.deadline(30),
            ));
            q.enqueue(task_with(
                q.id,
                CpuSet::from_iter([0, 12]),
                bulk.deadline(10),
            ));
            q.enqueue(task_with(
                q.id,
                CpuSet::from_iter([0, 13]),
                bulk.deadline(20),
            ));
            // EDF among deadline tasks, then the FIFO (deadline-less) task.
            for marker in [12, 13, 11, 10] {
                assert!(
                    q.try_dequeue().unwrap().cpuset().contains(marker),
                    "expected marker {marker}"
                );
            }
            assert!(q.try_dequeue().is_none());
        }
    }

    #[test]
    fn steal_takes_the_tasks_the_pop_policy_would_serve_first() {
        // 2 eligible tasks (quota 1): the thief must get the Urgent one,
        // not the older Interactive one — steals honour class priority.
        for q in [spin_queue(), lockfree_queue(), mutex_queue()] {
            q.enqueue(task_for(q.id, CpuSet::from_iter([0, 3])));
            q.enqueue(task_with(
                q.id,
                CpuSet::from_iter([0, 3]),
                TaskOptions::oneshot().class(TaskClass::Urgent),
            ));
            let mut out = Vec::new();
            assert_eq!(q.try_steal_half(3, usize::MAX, &mut out), 1);
            assert_eq!(out.pop().unwrap().options().class, TaskClass::Urgent);
            assert_eq!(q.len_hint(), 1);
            assert_eq!(
                q.try_dequeue().unwrap().options().class,
                TaskClass::Interactive
            );
        }
    }

    #[test]
    fn lockfree_cursor_keeps_class_priority_for_leftovers() {
        // A steal drains the lanes into the cursor; a Background leftover
        // parked there must not be served ahead of fresher higher-class
        // lane work (the cursor is consulted *per class*, not wholesale).
        let q = lockfree_queue();
        q.enqueue(task_with(
            q.id,
            CpuSet::from_iter([0, 10]),
            TaskOptions::oneshot().class(TaskClass::Background),
        ));
        q.enqueue(task_with(
            q.id,
            CpuSet::from_iter([0, 3, 11]),
            TaskOptions::oneshot().class(TaskClass::Background),
        ));
        let mut out = Vec::new();
        // Thief 3 takes the one eligible task; the other Background task
        // is left parked in the cursor.
        assert_eq!(q.try_steal_half(3, usize::MAX, &mut out), 1);
        assert!(out.pop().unwrap().cpuset().contains(11));
        // Fresh Interactive work submitted *after* the steal still beats
        // the parked Background leftover.
        q.enqueue(task_for(q.id, CpuSet::from_iter([0, 12])));
        assert!(q.try_dequeue().unwrap().cpuset().contains(12));
        assert!(q.try_dequeue().unwrap().cpuset().contains(10));
    }

    #[test]
    fn steal_span_unions_enqueued_cpusets() {
        let q = spin_queue();
        assert!(!q.steal_span_admits(0), "empty queue admits nobody");
        q.enqueue(task_for(q.id, CpuSet::single(0)));
        assert!(q.steal_span_admits(0));
        assert!(!q.steal_span_admits(3));
        q.enqueue(task_for(q.id, CpuSet::from_iter([0, 3])));
        assert!(q.steal_span_admits(3));
        assert!(!q.steal_span_admits(255), "unseen cores stay excluded");
    }

    #[test]
    fn steal_span_decays_when_a_wide_queue_drains_empty() {
        // PR 5: the span is no longer a forever-monotone union. Draining a
        // queue whose span grew wider than its own cpuset clears it, so
        // the stale wide bits stop attracting park probes.
        for q in [spin_queue(), lockfree_queue(), mutex_queue()] {
            q.enqueue(task_for(q.id, CpuSet::from_iter([0, 3])));
            assert!(q.steal_span_admits(3));
            assert!(q.try_dequeue().is_some());
            assert!(
                !q.steal_span_admits(3),
                "drained-empty queue must drop the wide span bit"
            );
            assert!(!q.steal_span_admits(0), "the whole span resets");
            // The span rebuilds from the next enqueue.
            q.enqueue(task_for(q.id, CpuSet::from_iter([0, 5])));
            assert!(q.steal_span_admits(5));
        }
    }

    #[test]
    fn steal_span_within_own_cpuset_never_decays() {
        // Bits inside the queue's own cpuset can only attract cores whose
        // hierarchy path already includes this queue — clearing them would
        // buy nothing, so the drain-empty path skips the swap entirely.
        let q = spin_queue(); // cpuset {0}
        q.enqueue(task_for(q.id, CpuSet::single(0)));
        assert!(q.try_dequeue().is_some());
        assert!(
            q.steal_span_admits(0),
            "narrow span survives the drain (decay gated on wider-than-cpuset)"
        );
    }

    #[test]
    fn steal_span_decays_after_batch_and_steal_drains_too() {
        let q = spin_queue();
        for _ in 0..3 {
            q.enqueue(task_for(q.id, CpuSet::from_iter([0, 3])));
        }
        let mut out = Vec::new();
        q.dequeue_batch(8, &mut out);
        assert!(!q.steal_span_admits(3), "batch drain decays the span");

        q.enqueue(task_for(q.id, CpuSet::from_iter([0, 3])));
        out.clear();
        assert_eq!(q.try_steal_half(3, usize::MAX, &mut out), 1);
        assert!(!q.steal_span_admits(3), "a steal that empties decays too");
    }

    #[test]
    fn enqueue_reports_post_append_depth() {
        for q in [spin_queue(), lockfree_queue(), mutex_queue()] {
            assert_eq!(q.enqueue(dummy_task(q.id)), 1);
            assert_eq!(q.enqueue(dummy_task(q.id)), 2);
            q.try_dequeue();
            assert_eq!(q.enqueue(dummy_task(q.id)), 2);
        }
    }

    #[test]
    fn counters() {
        let q = spin_queue();
        q.enqueue(dummy_task(q.id));
        q.note_executed(0);
        assert_eq!(q.submitted(), 1);
        assert_eq!(q.executed(), 1);
        assert!(q.lock_stats().is_some());
        assert!(lockfree_queue().lock_stats().is_none());
    }
}
