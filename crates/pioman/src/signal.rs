//! Phase-reactive scheduler signals: the windowed contention rate behind
//! [`TaskManager::adaptive_budget`](crate::TaskManager::adaptive_budget).
//!
//! PR 3's adaptive budgets widened batches from the **cumulative**
//! `lock_contended / lock_acquisitions` ratio. A cumulative ratio ossifies:
//! after a million quiet acquisitions, a contention burst moves it by parts
//! per thousand, and after a long contended phase a newly quiet system keeps
//! paying bursty-phase budgets for just as long. [`ContentionWindow`] fixes
//! both by tracking an **exponentially-decayed** rate with a configurable
//! half-life ([`ManagerConfig::contention_half_life`](crate::ManagerConfig)),
//! so the signal follows phase changes at a speed the operator chooses.
//! [`SignalPolicy`] selects between the two — the cumulative variant is kept
//! for the `phase_shift_ramp` ablation, not as a recommended mode.
//!
//! Everything here is plain atomics (no locks, no floats on the sampling
//! path); CI runs this module's tests under Miri alongside the lock-free
//! queue.

use core::sync::atomic::{AtomicU64, Ordering};

/// How [`TaskManager::adaptive_budget`](crate::TaskManager::adaptive_budget)
/// turns the spinlock contention counters into a batch-widening signal.
///
/// ```
/// use pioman::{ManagerConfig, SignalPolicy, TaskManager};
/// use piom_topology::presets;
///
/// // The default is the windowed signal with a 32-sample half-life…
/// assert_eq!(ManagerConfig::default().signal, SignalPolicy::Windowed);
///
/// // …and the cumulative PR-3 variant stays available for ablation runs.
/// let mgr = TaskManager::with_config(
///     presets::kwak().into(),
///     ManagerConfig {
///         signal: SignalPolicy::Cumulative,
///         ..ManagerConfig::default()
///     },
/// );
/// assert_eq!(mgr.config().signal, SignalPolicy::Cumulative);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SignalPolicy {
    /// Exponentially-decayed contention rate ([`ContentionWindow`]), sampled
    /// every budget computation: recent acquisitions dominate, history older
    /// than a few half-lives is forgotten. The default — budgets track the
    /// *current* phase.
    #[default]
    Windowed,
    /// The PR-3 behaviour: lifetime `lock_contended / lock_acquisitions`.
    /// Kept for the `phase_shift_ramp` ablation; ossifies as history
    /// accumulates (the longer the process runs, the less a phase change
    /// moves the ratio).
    Cumulative,
}

/// Fixed-point scale of [`ContentionWindow`] rates: `FP_ONE` represents a
/// contention rate of 1.0 (every acquisition was fought over).
pub const FP_ONE: u64 = 1 << 16;

/// An exponentially-decayed estimate of a contended/total event rate, fed
/// from monotone cumulative counters.
///
/// The window never touches the counters' hot path: producers keep
/// incrementing their plain cumulative counters (the spinlocks already do),
/// and a *sampler* — in practice each call to
/// [`adaptive_budget`](crate::TaskManager::adaptive_budget) — hands the
/// current totals to [`observe`](ContentionWindow::observe). The window
/// diffs them against the previous sample and folds the batch's rate into
/// an EWMA whose weight halves every `half_life` samples:
///
/// `rate ← rate + (batch_rate − rate) / K`, with `K = 1 / (1 − 2^(−1/h))`.
///
/// Samples with no new acquisitions are ignored (an idle system carries no
/// contention evidence either way), so the half-life is measured in
/// *active* samples, not wall-clock time.
///
/// ```
/// use pioman::ContentionWindow;
///
/// let w = ContentionWindow::new(4);
/// let (mut acq, mut cont) = (0u64, 0u64);
/// // A fully contended phase: every acquisition was fought over.
/// for _ in 0..64 {
///     acq += 100;
///     cont += 100;
///     w.observe(acq, cont);
/// }
/// assert!(w.rate() > 0.9);
/// // Phase change: contention vanishes. The cumulative ratio would still
/// // read 0.5 here forever-ish; the window forgets within a few half-lives.
/// for _ in 0..64 {
///     acq += 100;
///     w.observe(acq, cont);
/// }
/// assert!(w.rate() < 0.05);
/// ```
#[derive(Debug)]
pub struct ContentionWindow {
    /// EWMA divisor `K` derived from the half-life (≥ 2).
    decay_k: u64,
    /// Cumulative acquisition count at the last accepted sample.
    last_acquisitions: AtomicU64,
    /// Cumulative contended count at the last accepted sample.
    last_contended: AtomicU64,
    /// Current rate in [`FP_ONE`]-scaled fixed point (`0..=FP_ONE`).
    rate_fp: AtomicU64,
}

impl ContentionWindow {
    /// A window whose sample weight halves every `half_life` active samples
    /// (clamped to at least 1).
    pub fn new(half_life: u32) -> Self {
        let h = half_life.max(1) as f64;
        // K = 1 / (1 - 2^(-1/h)); h = 1 gives the floor K = 2.
        let k = (1.0 / (1.0 - 0.5f64.powf(1.0 / h))).round() as u64;
        ContentionWindow {
            decay_k: k.max(2),
            last_acquisitions: AtomicU64::new(0),
            last_contended: AtomicU64::new(0),
            rate_fp: AtomicU64::new(0),
        }
    }

    /// Feeds the current *cumulative* counters and returns the updated rate
    /// in fixed point (`0..=`[`FP_ONE`]).
    ///
    /// Both counters must be monotone (they are lock-lifetime totals). A
    /// sample that advanced no acquisitions leaves the rate untouched. When
    /// several threads sample concurrently, one wins the delta and the
    /// others read the freshest rate. The contended watermark advances by
    /// `fetch_max`, never a plain store, so a claim winner that stalls
    /// mid-update cannot drag it backward and inflate a later sampler's
    /// delta — the worst concurrent outcome is an *under*-counted sample
    /// (one EWMA step of delay), never a spurious contention spike.
    pub fn observe(&self, acquisitions: u64, contended: u64) -> u64 {
        let prev_a = self.last_acquisitions.load(Ordering::Relaxed);
        let delta_a = acquisitions.saturating_sub(prev_a);
        if delta_a == 0 {
            return self.rate_fp.load(Ordering::Relaxed);
        }
        // Claim this sampling window; a loser just reads the current rate.
        if self
            .last_acquisitions
            .compare_exchange(prev_a, acquisitions, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return self.rate_fp.load(Ordering::Relaxed);
        }
        let prev_c = self.last_contended.fetch_max(contended, Ordering::Relaxed);
        let delta_c = contended.saturating_sub(prev_c).min(delta_a);
        // Widening multiply: delta_c can exceed 2^48 when a window is
        // attached to (or left behind by) a long-running counter pair.
        let sample_fp = ((delta_c as u128 * FP_ONE as u128) / delta_a as u128) as u64;
        let rate = self.rate_fp.load(Ordering::Relaxed);
        // div_ceil on the step keeps the EWMA moving even when the gap is
        // below K, so a quiet phase decays all the way to 0 instead of
        // stalling a few fixed-point units above it (and a contended one
        // climbs off 0). Equilibrium oscillates by at most 1/65536.
        let new = if sample_fp >= rate {
            rate + (sample_fp - rate).div_ceil(self.decay_k)
        } else {
            rate - (rate - sample_fp).div_ceil(self.decay_k)
        };
        self.rate_fp.store(new.min(FP_ONE), Ordering::Relaxed);
        new.min(FP_ONE)
    }

    /// Current rate in fixed point (`0..=`[`FP_ONE`]), without sampling.
    pub fn rate_fp(&self) -> u64 {
        self.rate_fp.load(Ordering::Relaxed)
    }

    /// Current rate as a float in `0.0..=1.0`, without sampling.
    pub fn rate(&self) -> f64 {
        self.rate_fp() as f64 / FP_ONE as f64
    }

    /// The batch-widening multiplier this rate maps to: ×1 when uncontended
    /// up to ×9 when every recent acquisition was fought over — the same
    /// range the cumulative PR-3 formula produced, so the two
    /// [`SignalPolicy`] arms differ only in *what history* they weigh.
    pub fn boost(&self) -> usize {
        1 + ((8 * self.rate_fp()) >> 16) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_changes_nothing() {
        let w = ContentionWindow::new(8);
        assert_eq!(w.observe(0, 0), 0);
        w.observe(100, 50);
        let r = w.rate_fp();
        assert_eq!(w.observe(100, 50), r, "no new acquisitions: rate frozen");
    }

    #[test]
    fn saturated_signal_converges_to_one_and_boost_maxes() {
        let w = ContentionWindow::new(4);
        let mut acq = 0;
        for _ in 0..128 {
            acq += 10;
            w.observe(acq, acq);
        }
        assert!(w.rate() > 0.95, "rate {} should approach 1", w.rate());
        assert_eq!(w.boost(), 9);
    }

    #[test]
    fn half_life_is_roughly_honoured_on_decay() {
        let half_life = 8;
        let w = ContentionWindow::new(half_life);
        // Saturate, then feed exactly `half_life` contention-free samples.
        let mut acq = 0;
        for _ in 0..256 {
            acq += 100;
            w.observe(acq, acq);
        }
        let start = w.rate_fp();
        assert!(start > (FP_ONE * 9) / 10);
        let cont = acq;
        for _ in 0..half_life {
            acq += 100;
            w.observe(acq, cont);
        }
        let halved = w.rate_fp();
        let ratio = halved as f64 / start as f64;
        assert!(
            (0.4..=0.6).contains(&ratio),
            "after one half-life the rate should be ~halved, got {ratio}"
        );
    }

    #[test]
    fn quiet_phase_decays_all_the_way_to_zero() {
        let w = ContentionWindow::new(2);
        let mut acq = 0;
        for _ in 0..32 {
            acq += 4;
            w.observe(acq, acq);
        }
        let cont = acq;
        for _ in 0..2048 {
            acq += 4;
            w.observe(acq, cont);
        }
        assert_eq!(w.rate_fp(), 0, "div_ceil decay must reach exactly 0");
        assert_eq!(w.boost(), 1);
    }

    #[test]
    fn contended_delta_is_clamped_to_acquisitions() {
        // A torn read pair (contended sampled after acquisitions) can show
        // more contended events than acquisitions; the rate must cap at 1.
        let w = ContentionWindow::new(1);
        for i in 1..64 {
            w.observe(i, i * 10);
        }
        assert!(w.rate_fp() <= FP_ONE);
        assert_eq!(w.boost(), 9);
    }

    /// Shrunk under Miri (CI's `miri test -p pioman signal` matches this
    /// module by name): the interpreter explores interleavings orders of
    /// magnitude slower than native threads run them.
    const SAMPLER_THREADS: usize = if cfg!(miri) { 2 } else { 4 };
    const SAMPLES_PER_THREAD: usize = if cfg!(miri) { 25 } else { 200 };

    #[test]
    fn concurrent_samplers_never_corrupt_the_rate() {
        // The claim-CAS means one thread wins each window; losers read. Run
        // real threads over a shared window and check the invariant bounds.
        let w = std::sync::Arc::new(ContentionWindow::new(4));
        let total = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..SAMPLER_THREADS {
                let w = w.clone();
                let total = total.clone();
                s.spawn(move || {
                    for _ in 0..SAMPLES_PER_THREAD {
                        let a = total.fetch_add(5, Ordering::Relaxed) + 5;
                        w.observe(a, a / 2);
                    }
                });
            }
        });
        assert!(w.rate_fp() <= FP_ONE);
        // Every sample's batch rate was ~0.5, so the EWMA must sit near it.
        assert!(
            (0.2..=0.8).contains(&w.rate()),
            "rate {} drifted outside the sampled band",
            w.rate()
        );
    }

    #[test]
    fn huge_deltas_do_not_overflow_the_sample() {
        // A window attached to an already-ancient counter pair: the first
        // sample's delta exceeds 2^48, which a narrow `delta_c << 16`
        // would wrap on.
        let w = ContentionWindow::new(1);
        let big = 1u64 << 60;
        w.observe(big, big);
        assert_eq!(w.rate_fp(), FP_ONE / 2, "saturated giant sample: half up");
        w.observe(big + (1 << 50), big + (1 << 50));
        assert!(w.rate_fp() <= FP_ONE);
    }

    #[test]
    fn half_life_floor_is_one_sample() {
        let w = ContentionWindow::new(0); // clamped to 1 → K = 2
        w.observe(100, 100);
        assert_eq!(w.rate_fp(), FP_ONE / 2, "first saturated sample: half up");
    }
}
