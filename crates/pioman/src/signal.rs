//! Phase-reactive scheduler signals: the windowed contention rate behind
//! [`TaskManager::adaptive_budget`](crate::TaskManager::adaptive_budget).
//!
//! PR 3's adaptive budgets widened batches from the **cumulative**
//! `lock_contended / lock_acquisitions` ratio. A cumulative ratio ossifies:
//! after a million quiet acquisitions, a contention burst moves it by parts
//! per thousand, and after a long contended phase a newly quiet system keeps
//! paying bursty-phase budgets for just as long. [`ContentionWindow`] fixes
//! both by tracking an **exponentially-decayed** rate with a configurable
//! half-life ([`ManagerConfig::contention_half_life`](crate::ManagerConfig)),
//! so the signal follows phase changes at a speed the operator chooses.
//! [`SignalPolicy`] selects between the two — the cumulative variant is kept
//! for the `phase_shift_ramp` ablation, not as a recommended mode.
//!
//! Everything here is plain atomics (no locks, no floats on the sampling
//! path); CI runs this module's tests under Miri alongside the lock-free
//! queue.

use core::sync::atomic::{AtomicU64, Ordering};

/// How [`TaskManager::adaptive_budget`](crate::TaskManager::adaptive_budget)
/// turns the spinlock contention counters into a batch-widening signal.
///
/// ```
/// use pioman::{ManagerConfig, SignalPolicy, TaskManager};
/// use piom_topology::presets;
///
/// // The default is the windowed signal with a 32-sample half-life…
/// assert_eq!(ManagerConfig::default().signal, SignalPolicy::Windowed);
///
/// // …and the cumulative PR-3 variant stays available for ablation runs.
/// let mgr = TaskManager::with_config(
///     presets::kwak().into(),
///     ManagerConfig {
///         signal: SignalPolicy::Cumulative,
///         ..ManagerConfig::default()
///     },
/// );
/// assert_eq!(mgr.config().signal, SignalPolicy::Cumulative);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SignalPolicy {
    /// Exponentially-decayed contention rate ([`ContentionWindow`]), sampled
    /// every budget computation: recent acquisitions dominate, history older
    /// than a few half-lives is forgotten. The default — budgets track the
    /// *current* phase.
    #[default]
    Windowed,
    /// The PR-3 behaviour: lifetime `lock_contended / lock_acquisitions`.
    /// Kept for the `phase_shift_ramp` ablation; ossifies as history
    /// accumulates (the longer the process runs, the less a phase change
    /// moves the ratio).
    Cumulative,
}

/// Fixed-point scale of [`ContentionWindow`] rates: `FP_ONE` represents a
/// contention rate of 1.0 (every acquisition was fought over).
pub const FP_ONE: u64 = 1 << 16;

/// Smallest half-life the auto-tuner will select: below this the window is
/// all noise (a single sample moves the rate by a quarter).
pub const AUTO_HALF_LIFE_MIN: u64 = 4;

/// Largest half-life the auto-tuner will select: beyond this the window
/// ossifies like the cumulative ratio it exists to replace.
pub const AUTO_HALF_LIFE_MAX: u64 = 1024;

/// EWMA divisor `K = 1 / (1 − 2^(−1/h))` for half-life `h`, in pure
/// integer arithmetic: the closed form expands to `h/ln 2 + ½ + O(1/h)`,
/// so `round(K) = ⌊h·1.442695 + 1⌋` — computed with a parts-per-million
/// fixed-point constant (matches the rounded closed form on every
/// half-life up to the auto-tuner's clamp range; floor ≥ 2 because even a
/// one-sample half-life folds at most half the gap per step). Integer so
/// the auto-tuner can recompute it *on the sampling path* without
/// breaking this module's no-floats contract.
fn decay_k_for(half_life: u64) -> u64 {
    ((half_life * 1_442_695 + 1_000_000) / 1_000_000).max(2)
}

/// An exponentially-decayed estimate of a contended/total event rate, fed
/// from monotone cumulative counters.
///
/// The window never touches the counters' hot path: producers keep
/// incrementing their plain cumulative counters (the spinlocks already do),
/// and a *sampler* — in practice each call to
/// [`adaptive_budget`](crate::TaskManager::adaptive_budget) — hands the
/// current totals to [`observe`](ContentionWindow::observe). The window
/// diffs them against the previous sample and folds the batch's rate into
/// an EWMA whose weight halves every `half_life` samples:
///
/// `rate ← rate + (batch_rate − rate) / K`, with `K = 1 / (1 − 2^(−1/h))`.
///
/// Samples with no new acquisitions are ignored (an idle system carries no
/// contention evidence either way), so the half-life is measured in
/// *active* samples, not wall-clock time.
///
/// ```
/// use pioman::ContentionWindow;
///
/// let w = ContentionWindow::new(4);
/// let (mut acq, mut cont) = (0u64, 0u64);
/// // A fully contended phase: every acquisition was fought over.
/// for _ in 0..64 {
///     acq += 100;
///     cont += 100;
///     w.observe(acq, cont);
/// }
/// assert!(w.rate() > 0.9);
/// // Phase change: contention vanishes. The cumulative ratio would still
/// // read 0.5 here forever-ish; the window forgets within a few half-lives.
/// for _ in 0..64 {
///     acq += 100;
///     w.observe(acq, cont);
/// }
/// assert!(w.rate() < 0.05);
/// ```
#[derive(Debug)]
pub struct ContentionWindow {
    /// EWMA divisor `K` derived from the half-life (≥ 2). Atomic because
    /// the auto-tuner re-derives it on burst boundaries; fixed windows
    /// write it once at construction.
    decay_k: AtomicU64,
    /// Whether the half-life auto-tunes from the observed burst cadence
    /// (see [`new_auto`](Self::new_auto)).
    auto: bool,
    /// The half-life `decay_k` was derived from (exposed for tests and the
    /// `phase_shift_ramp_auto` bench; the adaptation writes both together).
    half_life: AtomicU64,
    /// Active (winning, acquisition-advancing) samples seen: the
    /// adaptation's clock, so gaps are measured in the same unit as the
    /// half-life itself.
    samples: AtomicU64,
    /// `samples` value at the last burst (a sample with new contention).
    last_burst: AtomicU64,
    /// EWMA of inter-burst gaps in active samples, `<<8` fixed point,
    /// weight 1/8 per burst. Zero until the first burst.
    gap_ewma_fp: AtomicU64,
    /// Cumulative acquisition count at the last accepted sample.
    last_acquisitions: AtomicU64,
    /// Cumulative contended count at the last accepted sample.
    last_contended: AtomicU64,
    /// Current rate in [`FP_ONE`]-scaled fixed point (`0..=FP_ONE`).
    rate_fp: AtomicU64,
}

impl ContentionWindow {
    /// A window whose sample weight halves every `half_life` active samples
    /// (clamped to at least 1), fixed for the window's lifetime.
    pub fn new(half_life: u32) -> Self {
        Self::build(half_life, false)
    }

    /// A window that starts at `half_life` and then **auto-tunes** it from
    /// the workload's own phase cadence: each burst (an active sample that
    /// saw new contention) folds the gap since the previous burst into an
    /// EWMA, and the half-life tracks *half* that typical gap, clamped to
    /// [`AUTO_HALF_LIFE_MIN`]`..=`[`AUTO_HALF_LIFE_MAX`].
    ///
    /// Rationale: a window much slower than the burst cadence smears
    /// adjacent phases together (the ossification failure, in miniature),
    /// while one much faster forgets a phase before the next burst
    /// confirms it; half the gap keeps roughly two half-lives of memory
    /// between bursts — reactive, but not amnesiac. The fixed
    /// [`new`](Self::new) constructor remains the override for operators
    /// (and ablation benches) that want a pinned response curve.
    ///
    /// ```
    /// use pioman::ContentionWindow;
    ///
    /// let w = ContentionWindow::new_auto(32);
    /// assert_eq!(w.half_life(), 32);
    /// let (mut acq, mut cont) = (0u64, 0u64);
    /// // Bursts every 16 active samples: the half-life converges to 8.
    /// for burst in 0..64 {
    ///     for s in 0..16 {
    ///         acq += 10;
    ///         if s == 0 {
    ///             cont += 10;
    ///         }
    ///         w.observe(acq, cont);
    ///     }
    ///     let _ = burst;
    /// }
    /// assert_eq!(w.half_life(), 8);
    /// ```
    pub fn new_auto(half_life: u32) -> Self {
        Self::build(half_life, true)
    }

    fn build(half_life: u32, auto: bool) -> Self {
        let h = half_life.max(1) as u64;
        ContentionWindow {
            decay_k: AtomicU64::new(decay_k_for(h)),
            auto,
            half_life: AtomicU64::new(h),
            samples: AtomicU64::new(0),
            last_burst: AtomicU64::new(0),
            gap_ewma_fp: AtomicU64::new(0),
            last_acquisitions: AtomicU64::new(0),
            last_contended: AtomicU64::new(0),
            rate_fp: AtomicU64::new(0),
        }
    }

    /// The current effective half-life in active samples: the constructor
    /// argument for fixed windows, the adapted value for
    /// [`new_auto`](Self::new_auto) windows.
    pub fn half_life(&self) -> u64 {
        self.half_life.load(Ordering::Relaxed)
    }

    /// Burst-cadence adaptation, run only on the claim-CAS winner's path:
    /// count the active sample, and on a burst fold the inter-burst gap
    /// into the EWMA and re-derive the half-life/divisor pair.
    fn adapt(&self, delta_c: u64) {
        let idx = self.samples.fetch_add(1, Ordering::Relaxed) + 1;
        if delta_c == 0 {
            return;
        }
        let prev = self.last_burst.swap(idx, Ordering::Relaxed);
        // Saturate the gap well below the shift headroom; a once-a-2^32-
        // samples burst is past the clamp ceiling anyway.
        let gap = idx.saturating_sub(prev).clamp(1, 1 << 32);
        let target = gap << 8;
        let prev_ewma = self.gap_ewma_fp.load(Ordering::Relaxed);
        let ewma = if prev_ewma == 0 {
            target // first burst: adopt the gap outright
        } else if target >= prev_ewma {
            prev_ewma + (target - prev_ewma).div_ceil(8)
        } else {
            prev_ewma - (prev_ewma - target).div_ceil(8)
        };
        self.gap_ewma_fp.store(ewma, Ordering::Relaxed);
        let hl = ((ewma >> 8) / 2).clamp(AUTO_HALF_LIFE_MIN, AUTO_HALF_LIFE_MAX);
        if hl != self.half_life.load(Ordering::Relaxed) {
            // Two relaxed stores; a reader between them sees a torn but
            // valid (half-life, K) pair from adjacent adaptations — the
            // EWMA step it mis-sizes is one of thousands.
            self.half_life.store(hl, Ordering::Relaxed);
            self.decay_k.store(decay_k_for(hl), Ordering::Relaxed);
        }
    }

    /// Feeds the current *cumulative* counters and returns the updated rate
    /// in fixed point (`0..=`[`FP_ONE`]).
    ///
    /// Both counters must be monotone (they are lock-lifetime totals). A
    /// sample that advanced no acquisitions leaves the rate untouched. When
    /// several threads sample concurrently, one wins the delta and the
    /// others read the freshest rate. The contended watermark advances by
    /// `fetch_max`, never a plain store, so a claim winner that stalls
    /// mid-update cannot drag it backward and inflate a later sampler's
    /// delta — the worst concurrent outcome is an *under*-counted sample
    /// (one EWMA step of delay), never a spurious contention spike.
    pub fn observe(&self, acquisitions: u64, contended: u64) -> u64 {
        let prev_a = self.last_acquisitions.load(Ordering::Relaxed);
        let delta_a = acquisitions.saturating_sub(prev_a);
        if delta_a == 0 {
            return self.rate_fp.load(Ordering::Relaxed);
        }
        // Claim this sampling window; a loser just reads the current rate.
        if self
            .last_acquisitions
            .compare_exchange(prev_a, acquisitions, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return self.rate_fp.load(Ordering::Relaxed);
        }
        let prev_c = self.last_contended.fetch_max(contended, Ordering::Relaxed);
        let delta_c = contended.saturating_sub(prev_c).min(delta_a);
        if self.auto {
            self.adapt(delta_c);
        }
        // Widening multiply: delta_c can exceed 2^48 when a window is
        // attached to (or left behind by) a long-running counter pair.
        let sample_fp = ((delta_c as u128 * FP_ONE as u128) / delta_a as u128) as u64;
        let rate = self.rate_fp.load(Ordering::Relaxed);
        let decay_k = self.decay_k.load(Ordering::Relaxed);
        // div_ceil on the step keeps the EWMA moving even when the gap is
        // below K, so a quiet phase decays all the way to 0 instead of
        // stalling a few fixed-point units above it (and a contended one
        // climbs off 0). Equilibrium oscillates by at most 1/65536.
        let new = if sample_fp >= rate {
            rate + (sample_fp - rate).div_ceil(decay_k)
        } else {
            rate - (rate - sample_fp).div_ceil(decay_k)
        };
        self.rate_fp.store(new.min(FP_ONE), Ordering::Relaxed);
        new.min(FP_ONE)
    }

    /// Current rate in fixed point (`0..=`[`FP_ONE`]), without sampling.
    pub fn rate_fp(&self) -> u64 {
        self.rate_fp.load(Ordering::Relaxed)
    }

    /// Current rate as a float in `0.0..=1.0`, without sampling.
    pub fn rate(&self) -> f64 {
        self.rate_fp() as f64 / FP_ONE as f64
    }

    /// The batch-widening multiplier this rate maps to: ×1 when uncontended
    /// up to ×9 when every recent acquisition was fought over — the same
    /// range the cumulative PR-3 formula produced, so the two
    /// [`SignalPolicy`] arms differ only in *what history* they weigh.
    pub fn boost(&self) -> usize {
        1 + ((8 * self.rate_fp()) >> 16) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_changes_nothing() {
        let w = ContentionWindow::new(8);
        assert_eq!(w.observe(0, 0), 0);
        w.observe(100, 50);
        let r = w.rate_fp();
        assert_eq!(w.observe(100, 50), r, "no new acquisitions: rate frozen");
    }

    #[test]
    fn saturated_signal_converges_to_one_and_boost_maxes() {
        let w = ContentionWindow::new(4);
        let mut acq = 0;
        for _ in 0..128 {
            acq += 10;
            w.observe(acq, acq);
        }
        assert!(w.rate() > 0.95, "rate {} should approach 1", w.rate());
        assert_eq!(w.boost(), 9);
    }

    #[test]
    fn half_life_is_roughly_honoured_on_decay() {
        let half_life = 8;
        let w = ContentionWindow::new(half_life);
        // Saturate, then feed exactly `half_life` contention-free samples.
        let mut acq = 0;
        for _ in 0..256 {
            acq += 100;
            w.observe(acq, acq);
        }
        let start = w.rate_fp();
        assert!(start > (FP_ONE * 9) / 10);
        let cont = acq;
        for _ in 0..half_life {
            acq += 100;
            w.observe(acq, cont);
        }
        let halved = w.rate_fp();
        let ratio = halved as f64 / start as f64;
        assert!(
            (0.4..=0.6).contains(&ratio),
            "after one half-life the rate should be ~halved, got {ratio}"
        );
    }

    #[test]
    fn quiet_phase_decays_all_the_way_to_zero() {
        let w = ContentionWindow::new(2);
        let mut acq = 0;
        for _ in 0..32 {
            acq += 4;
            w.observe(acq, acq);
        }
        let cont = acq;
        for _ in 0..2048 {
            acq += 4;
            w.observe(acq, cont);
        }
        assert_eq!(w.rate_fp(), 0, "div_ceil decay must reach exactly 0");
        assert_eq!(w.boost(), 1);
    }

    #[test]
    fn contended_delta_is_clamped_to_acquisitions() {
        // A torn read pair (contended sampled after acquisitions) can show
        // more contended events than acquisitions; the rate must cap at 1.
        let w = ContentionWindow::new(1);
        for i in 1..64 {
            w.observe(i, i * 10);
        }
        assert!(w.rate_fp() <= FP_ONE);
        assert_eq!(w.boost(), 9);
    }

    /// Shrunk under Miri (CI's `miri test -p pioman signal` matches this
    /// module by name): the interpreter explores interleavings orders of
    /// magnitude slower than native threads run them.
    const SAMPLER_THREADS: usize = if cfg!(miri) { 2 } else { 4 };
    const SAMPLES_PER_THREAD: usize = if cfg!(miri) { 25 } else { 200 };

    #[test]
    fn concurrent_samplers_never_corrupt_the_rate() {
        // The claim-CAS means one thread wins each window; losers read. Run
        // real threads over a shared window and check the invariant bounds.
        let w = std::sync::Arc::new(ContentionWindow::new(4));
        let total = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..SAMPLER_THREADS {
                let w = w.clone();
                let total = total.clone();
                s.spawn(move || {
                    for _ in 0..SAMPLES_PER_THREAD {
                        let a = total.fetch_add(5, Ordering::Relaxed) + 5;
                        w.observe(a, a / 2);
                    }
                });
            }
        });
        assert!(w.rate_fp() <= FP_ONE);
        // Every sample's batch rate was ~0.5, so the EWMA must sit near it.
        assert!(
            (0.2..=0.8).contains(&w.rate()),
            "rate {} drifted outside the sampled band",
            w.rate()
        );
    }

    #[test]
    fn huge_deltas_do_not_overflow_the_sample() {
        // A window attached to an already-ancient counter pair: the first
        // sample's delta exceeds 2^48, which a narrow `delta_c << 16`
        // would wrap on.
        let w = ContentionWindow::new(1);
        let big = 1u64 << 60;
        w.observe(big, big);
        assert_eq!(w.rate_fp(), FP_ONE / 2, "saturated giant sample: half up");
        w.observe(big + (1 << 50), big + (1 << 50));
        assert!(w.rate_fp() <= FP_ONE);
    }

    #[test]
    fn half_life_floor_is_one_sample() {
        let w = ContentionWindow::new(0); // clamped to 1 → K = 2
        w.observe(100, 100);
        assert_eq!(w.rate_fp(), FP_ONE / 2, "first saturated sample: half up");
    }

    #[test]
    fn integer_decay_k_matches_the_closed_form() {
        // decay_k_for must agree with round(1 / (1 − 2^(−1/h))) — the
        // float formula the docs state — across the whole clamp range.
        for h in 1..=AUTO_HALF_LIFE_MAX {
            let exact = (1.0 / (1.0 - 0.5f64.powf(1.0 / h as f64))).round() as u64;
            assert_eq!(
                decay_k_for(h),
                exact.max(2),
                "integer K diverges from the closed form at h={h}"
            );
        }
    }

    /// Drives an auto window with one burst every `gap` active samples,
    /// continuing from the window's current cumulative watermarks so
    /// back-to-back drives model one monotone counter stream.
    fn drive_bursts(w: &ContentionWindow, gap: u64, bursts: u64) {
        let mut acq = w.last_acquisitions.load(Ordering::Relaxed);
        let mut cont = w.last_contended.load(Ordering::Relaxed);
        for _ in 0..bursts {
            for s in 0..gap {
                acq += 10;
                if s == 0 {
                    cont += 10;
                }
                w.observe(acq, cont);
            }
        }
    }

    #[test]
    fn auto_half_life_tracks_the_burst_cadence() {
        let w = ContentionWindow::new_auto(DEFAULT_HL);
        assert_eq!(w.half_life(), DEFAULT_HL as u64, "starts at the seed");
        drive_bursts(&w, 64, 128);
        assert_eq!(
            w.half_life(),
            32,
            "bursts every 64 active samples converge the half-life to 32"
        );
        // Cadence shift: denser bursts shrink the half-life again.
        drive_bursts(&w, 16, 256);
        assert_eq!(w.half_life(), 8);
    }

    #[test]
    fn auto_half_life_clamps_both_ends() {
        let fast = ContentionWindow::new_auto(32);
        drive_bursts(&fast, 1, 64); // continuous contention: gap 1
        assert_eq!(fast.half_life(), AUTO_HALF_LIFE_MIN);

        let slow = ContentionWindow::new_auto(32);
        drive_bursts(&slow, 3000, 64); // sparser than the ceiling admits
        assert_eq!(slow.half_life(), AUTO_HALF_LIFE_MAX);
    }

    #[test]
    fn fixed_window_never_adapts() {
        let w = ContentionWindow::new(DEFAULT_HL);
        drive_bursts(&w, 16, 128);
        assert_eq!(
            w.half_life(),
            DEFAULT_HL as u64,
            "the fixed constructor is the auto-tuning override"
        );
    }

    #[test]
    fn quiet_samples_do_not_move_the_gap_clock_backward() {
        // Quiet (burst-free) samples advance the sample clock but never
        // fold a gap; only the next burst does, measuring the whole quiet
        // stretch. A long quiet phase therefore *lengthens* the half-life
        // on the burst that ends it, never mid-phase.
        let w = ContentionWindow::new_auto(32);
        drive_bursts(&w, 8, 128);
        let before = w.half_life();
        let (mut acq, cont) = (10_240 * 10, 0); // past drive_bursts totals
        for _ in 0..512 {
            acq += 10;
            w.observe(acq, cont + 1280);
        }
        assert_eq!(w.half_life(), before, "no burst, no adaptation");
    }

    const DEFAULT_HL: u32 = 32;
}
