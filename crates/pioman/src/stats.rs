//! Counter snapshots exposed by [`TaskManager::stats`](crate::TaskManager::stats).
//!
//! Every field here is defined, with its invariants, in the scheduler
//! contract page (`docs/SCHEDULER.md`, "Counter glossary").

use crate::queue::QueueId;
use piom_cpuset::CpuSet;
use piom_topology::Level;

/// Counters of one hierarchical queue.
#[derive(Debug, Clone)]
pub struct QueueStats {
    /// Queue id (the topology node index).
    pub id: QueueId,
    /// Topology level of the owning node.
    pub level: Level,
    /// Cores this queue serves.
    pub cpuset: CpuSet,
    /// The queue's *steal span*: the union of the cpusets of the tasks
    /// enqueued here. This is the filter the park probe and
    /// [`wake_for_steal`](crate::TaskManager::wake_for_steal) consult;
    /// it may over-approximate the currently-enqueued tasks (stale bits
    /// cost a wasted probe, never a misplaced task), but *decays*: a
    /// dequeue that leaves the queue empty clears bits wider than the
    /// queue's own cpuset, so stale wide spans stop attracting probes.
    pub steal_span: CpuSet,
    /// Tasks submitted directly to this queue.
    pub submitted: u64,
    /// Task executions drawn from this queue (repeat runs count each time).
    pub executed: u64,
    /// Tasks currently enqueued (racy snapshot).
    pub pending: usize,
    /// Spinlock acquisitions (0 for the lock-free backend).
    pub lock_acquisitions: u64,
    /// Acquisitions that found the lock held (contention indicator).
    pub lock_contended: u64,
}

/// Counters of one socket of the per-socket overflow tier
/// ([`ManagerConfig::socket_overflow`](crate::ManagerConfig)).
#[derive(Debug, Clone)]
pub struct SocketStats {
    /// Arena index of the topology node this socket aggregates (a NUMA
    /// node, or a chip / the machine root on shallower trees).
    pub node: usize,
    /// Cores the socket spans.
    pub cpuset: CpuSet,
    /// Tasks currently in the socket's overflow lanes (racy snapshot).
    pub overflow_pending: usize,
    /// Union of the cpusets of tasks spilled into the overflow (decays
    /// when the overflow drains) — the gate on claims and cross-socket
    /// overflow steals.
    pub overflow_span: CpuSet,
    /// Socket-wide pending hint: tasks across the socket's member queues
    /// *and* overflow, clamped at zero (the raw counter is a racy signed
    /// hint).
    pub pending_hint: usize,
    /// Union of enqueued task cpusets across the socket (decays when the
    /// socket drains) — the eligibility half of the O(sockets) park probe.
    pub span: CpuSet,
    /// Currently-parked progression workers among the socket's cores.
    pub parked: u64,
    /// Tasks ever spilled from a deep member queue into the overflow.
    pub spilled: u64,
    /// Tasks ever claimed out of the overflow and run (member-core claims
    /// and remote-socket overflow steals both count).
    pub claimed: u64,
}

/// Snapshot of every manager counter.
#[derive(Debug, Clone)]
pub struct ManagerStats {
    /// Per-queue counters, indexed like the topology arena.
    pub queues: Vec<QueueStats>,
    /// Task executions per core — the paper reports this distribution for
    /// the per-chip and global-queue experiments (§V-A).
    pub executed_by_core: Vec<u64>,
    /// Tasks each core stole from a queue outside its own hierarchy path
    /// (and then executed). Always zero with stealing disabled.
    pub stolen_by_core: Vec<u64>,
    /// Steal probes per core: hierarchy scans that ran dry and went looking
    /// at victim queues, successful or not. The ratio of steals to attempts
    /// measures how often idleness found displaceable work.
    pub steal_attempts_by_core: Vec<u64>,
    /// Successful steal-half batches per thief core (each batch moved at
    /// least one task). `stolen_by_core / stolen_batch_by_core` is the mean
    /// batch size — how much each probe's victim-scan premium was amortized
    /// over; 1.0 means stealing degenerated to the old one-task-per-probe
    /// behaviour.
    pub stolen_batch_by_core: Vec<u64>,
    /// Pre-park steal probes per core that *hit* — found a victim queue
    /// with backlog whose steal span admits the prober — sending the
    /// worker back to another keypoint instead of parking. The
    /// steal-aware-parking half of PR 4: with stealing disabled this is
    /// always zero ([`park_probe`](crate::TaskManager::park_probe)).
    pub park_probe_hits: Vec<u64>,
    /// Pre-park steal probes per core that found nothing stealable, so
    /// the worker parked. `hits / (hits + misses)` is how often the probe
    /// saved a park/unpark round-trip (plus up to a park-timeout of
    /// latency) per idle episode.
    pub park_probe_misses: Vec<u64>,
    /// Socket aggregates consulted by pre-park probes, per core: a probe
    /// that misses everywhere costs exactly `sockets.len()` polls under
    /// the overflow tier — the scaling study's O(sockets) assertion reads
    /// this counter.
    pub park_probe_polls: Vec<u64>,
    /// Per-socket overflow-tier counters, indexed by socket id (empty
    /// only on managers built before any topology — never in practice;
    /// single-socket machines still report their one inert socket).
    pub sockets: Vec<SocketStats>,
    /// Steal-targeted wake-ups *received* per core: how often
    /// [`wake_for_steal`](crate::TaskManager::wake_for_steal) chose this
    /// parked core as the nearest eligible thief for a queue whose depth
    /// crossed [`ManagerConfig::steal_wake_backlog`](crate::ManagerConfig).
    pub wakeups_for_steal: Vec<u64>,
    /// Invocations of the idle hook.
    pub hook_idle: u64,
    /// Invocations of the context-switch hook.
    pub hook_context_switch: u64,
    /// Invocations of the timer hook.
    pub hook_timer: u64,
    /// Task executions per QoS class, indexed by
    /// [`TaskClass::index`](crate::TaskClass::index) (repeat runs count
    /// each time). Sums to `total_executed()`.
    pub executed_by_class: [u64; crate::task::CLASS_COUNT],
    /// Tasks stolen (and run by the thief) per QoS class. Sums to
    /// `total_stolen()`.
    pub stolen_by_class: [u64; crate::task::CLASS_COUNT],
    /// Dependency-waitlist releases per QoS class: tasks submitted with
    /// [`SubmitSpec::after`](crate::SubmitSpec::after) that re-entered the
    /// queues because their last predecessor completed (or panicked).
    pub waitlist_released_by_class: [u64; crate::task::CLASS_COUNT],
    /// Submit→execute latency distribution across all task runs, folded
    /// from the per-core shards — present only when the manager was built
    /// with [`ManagerConfig::latency_histogram`](crate::ManagerConfig)
    /// set. Nanoseconds from `spawn` (or a repeat task's re-enqueue, or a
    /// waitlist release) to the moment a core committed to running the
    /// body.
    pub latency: Option<crate::hist::HistSnapshot>,
    /// Per-class submit→execute latency distributions, indexed by
    /// [`TaskClass::index`](crate::TaskClass::index); armed together with
    /// `latency`. Each run records into its class's histogram *and* the
    /// overall one.
    pub latency_by_class: Option<Vec<crate::hist::HistSnapshot>>,
}

impl ManagerStats {
    /// Total task executions across all queues.
    pub fn total_executed(&self) -> u64 {
        self.queues.iter().map(|q| q.executed).sum()
    }

    /// Total submissions across all queues.
    pub fn total_submitted(&self) -> u64 {
        self.queues.iter().map(|q| q.submitted).sum()
    }

    /// Total tasks stolen across all cores.
    pub fn total_stolen(&self) -> u64 {
        self.stolen_by_core.iter().sum()
    }

    /// Total successful steal-half batches across all cores.
    pub fn total_steal_batches(&self) -> u64 {
        self.stolen_batch_by_core.iter().sum()
    }

    /// Total pre-park probes that found stealable backlog, across cores.
    pub fn total_park_probe_hits(&self) -> u64 {
        self.park_probe_hits.iter().sum()
    }

    /// Total pre-park probes that found nothing, across cores.
    pub fn total_park_probe_misses(&self) -> u64 {
        self.park_probe_misses.iter().sum()
    }

    /// Total steal-targeted wake-ups delivered, across cores.
    pub fn total_wakeups_for_steal(&self) -> u64 {
        self.wakeups_for_steal.iter().sum()
    }

    /// Total dependency-waitlist releases, across classes.
    pub fn total_waitlist_released(&self) -> u64 {
        self.waitlist_released_by_class.iter().sum()
    }

    /// Total tasks spilled into socket overflows, across sockets.
    pub fn total_spilled(&self) -> u64 {
        self.sockets.iter().map(|s| s.spilled).sum()
    }

    /// Total tasks claimed out of socket overflows, across sockets.
    pub fn total_claimed(&self) -> u64 {
        self.sockets.iter().map(|s| s.claimed).sum()
    }

    /// Total socket aggregates consulted by pre-park probes, across cores.
    pub fn total_park_probe_polls(&self) -> u64 {
        self.park_probe_polls.iter().sum()
    }

    /// Share of task executions done by each core, as fractions of 1.
    /// Empty if nothing ran. Mirrors the paper's observation that "each of
    /// them executes roughly 25% of the submitted tasks" for a 4-core
    /// per-chip queue.
    pub fn execution_shares(&self) -> Vec<f64> {
        let total: u64 = self.executed_by_core.iter().sum();
        if total == 0 {
            return vec![0.0; self.executed_by_core.len()];
        }
        self.executed_by_core
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(executed_by_core: Vec<u64>) -> ManagerStats {
        let n = executed_by_core.len();
        ManagerStats {
            queues: vec![],
            executed_by_core,
            stolen_by_core: vec![0; n],
            steal_attempts_by_core: vec![0; n],
            stolen_batch_by_core: vec![0; n],
            park_probe_hits: vec![0; n],
            park_probe_misses: vec![0; n],
            park_probe_polls: vec![0; n],
            sockets: vec![],
            wakeups_for_steal: vec![0; n],
            hook_idle: 0,
            hook_context_switch: 0,
            hook_timer: 0,
            executed_by_class: [0; crate::task::CLASS_COUNT],
            stolen_by_class: [0; crate::task::CLASS_COUNT],
            waitlist_released_by_class: [0; crate::task::CLASS_COUNT],
            latency: None,
            latency_by_class: None,
        }
    }

    #[test]
    fn shares_sum_to_one() {
        let s = mk(vec![25, 25, 25, 25]);
        let shares = s.execution_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(shares.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn shares_empty_when_nothing_ran() {
        let s = mk(vec![0, 0]);
        assert_eq!(s.execution_shares(), vec![0.0, 0.0]);
    }
}
