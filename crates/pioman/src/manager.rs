//! The task manager: hierarchical queues + Algorithms 1 and 2.

use crate::completion::Completion;
use crate::lockfree::ClassLanes;
use crate::queue::{QueueId, TaskQueue, SPAN_WORDS};
use crate::signal::{ContentionWindow, SignalPolicy};
use crate::stats::{ManagerStats, QueueStats, SocketStats};
use crate::task::{Task, TaskClass, TaskContext, TaskFn, TaskOptions, TaskStatus, CLASS_COUNT};
use crate::TaskHandle;
use core::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use piom_cpuset::CpuSet;
use piom_topology::{Level, NodeId, Topology};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::Thread;

/// Which storage backs the task queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// FIFO list + TTAS spinlock with double-checked dequeue (the paper's
    /// implementation, §IV-A).
    #[default]
    Spinlock,
    /// True lock-free Michael–Scott queue with epoch-based reclamation
    /// (the paper's §VI "short term" future work; compared against
    /// spinlocks and the mutexed baseline by the ablation benches).
    LockFree,
    /// OS mutex around a `VecDeque`, locked on every operation — the
    /// shim that previously backed [`QueueBackend::LockFree`], kept as an
    /// ablation baseline so `lockfree_vs_mutex` measures what replacing
    /// it bought.
    Mutex,
}

/// Smallest per-keypoint budget [`TaskManager::adaptive_budget`] returns:
/// even an apparently-empty hierarchy gets a few slots, because work can
/// land between the depth probe and the drain.
pub const MIN_BATCH: usize = 4;

/// Largest budget [`TaskManager::adaptive_budget`] returns: one keypoint
/// never monopolizes its core beyond this many tasks, however deep the
/// backlog, so shutdown/park checks stay responsive.
pub const MAX_BATCH: usize = 256;

/// The fixed per-keypoint budget used when adaptivity is off
/// ([`BatchPolicy::Fixed`](crate::BatchPolicy)), and the cap
/// [`TaskManager::adaptive_budget`] applies to cores that mostly run dry.
pub const DEFAULT_BATCH: usize = 32;

/// Default [`ManagerConfig::contention_half_life`]: the windowed contention
/// signal halves the weight of history every this many active samples.
pub const DEFAULT_CONTENTION_HALF_LIFE: u32 = 32;

/// Default [`ManagerConfig::steal_wake_backlog`]: a queue reaching this
/// depth at enqueue time triggers a steal-targeted wake-up
/// ([`TaskManager::wake_for_steal`]).
pub const DEFAULT_STEAL_WAKE_BACKLOG: usize = 8;

/// Default [`ManagerConfig::spill_threshold`]: a per-core queue reaching
/// this depth at enqueue time spills half its backlog (lowest class first)
/// into its socket's overflow tier. Sized well above
/// [`DEFAULT_STEAL_WAKE_BACKLOG`] *and* [`MAX_BATCH`]: wake-ups and
/// steal-half probes get first crack at an imbalance, and a backlog a
/// single keypoint budget can clear never pays the spill round-trip
/// (each spill moves half the queue into the overflow tier and the
/// drain claims it back — measurably slower than a local batched drain
/// for small backlogs, which is exactly the regime below this default).
/// Many-core saturation setups lower it; the `steal_scaling_*` bench
/// ladder pins 16 so a 256-task backlog engages the tier.
pub const DEFAULT_SPILL_THRESHOLD: usize = 512;

/// Default [`ManagerConfig::cross_socket_backlog`]: the minimum observed
/// backlog (queue depth or overflow depth) a *remote-socket* victim must
/// show before a thief crosses the interconnect for it. `1` keeps the
/// pre-hierarchy behaviour — any visible remote work is worth a probe —
/// which suits latency-bound workloads; throughput-bound many-core setups
/// raise it so only meaningful imbalances pay the cross-NUMA traffic.
pub const DEFAULT_CROSS_SOCKET_BACKLOG: usize = 1;

/// Task-manager construction options.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Queue storage choice, compared head-to-head by the
    /// `lockfree_vs_mutex` bench scenarios.
    pub queue_backend: QueueBackend,
    /// Locality-aware work stealing: when a core's own hierarchy scan
    /// (Algorithm 1) finds nothing runnable, it probes the other queues in
    /// [`Topology::steal_order`] — nearest sibling first, deepest backlog
    /// first within a distance tier — and takes **half** of the eligible
    /// backlog of the first victim that has any (steal-half; every stolen
    /// task's [`CpuSet`] admits the thief). Enabled by default; the
    /// steal-vs-spin benchmarks flip it off for comparison. Disabling it
    /// also disables the steal-aware park machinery
    /// ([`TaskManager::park_probe`] always reports "park") and the
    /// backlog-triggered wake-ups.
    pub steal: bool,
    /// Which contention signal sizes adaptive batch budgets (see
    /// [`SignalPolicy`]): the decayed window (default) or the cumulative
    /// PR-3 ratio kept for ablation.
    pub signal: SignalPolicy,
    /// Half-life, in active samples, of the windowed contention signal
    /// ([`ContentionWindow::new`]). Smaller reacts faster to phase changes
    /// but is noisier; ignored under [`SignalPolicy::Cumulative`].
    pub contention_half_life: u32,
    /// Queue depth at enqueue time that triggers a steal-targeted wake of
    /// the nearest parked eligible worker ([`TaskManager::wake_for_steal`]).
    /// `usize::MAX` disables the escalation without disabling stealing.
    pub steal_wake_backlog: usize,
    /// Record every task's submit→execute latency into a per-core sharded
    /// histogram ([`crate::hist::Histogram`], one slot per core), exposed
    /// as [`ManagerStats::latency`](crate::ManagerStats). **Off by
    /// default**: enabling it puts two `Instant` clock reads and a few
    /// relaxed RMWs on every task execution — cheap, but not free, and
    /// the scheduler's own benches must not pay for their observability.
    pub latency_histogram: bool,
    /// The **per-socket overflow tier** (on by default): each NUMA node
    /// (falling back to chips, then the whole machine, on shallower trees)
    /// gets a socket-shared set of lock-free class lanes. A per-core queue
    /// whose depth crosses [`spill_threshold`](Self::spill_threshold)
    /// spills half its backlog there — lowest class first, QoS lanes
    /// preserved — instead of letting it age behind the queue's own core;
    /// idle keypoints drain the overflow between their socket-node queue
    /// and the Global Queue (core → socket → global), and thieves prefer a
    /// remote socket's concentrated overflow to picking through its member
    /// queues. On single-socket topologies the tier is inert regardless of
    /// this flag (there is no "whole socket" distinct from the machine).
    pub socket_overflow: bool,
    /// Per-core queue depth, observed at enqueue time, that triggers a
    /// spill into the socket overflow tier (see
    /// [`socket_overflow`](Self::socket_overflow)).
    pub spill_threshold: usize,
    /// Minimum backlog a remote-socket victim (queue or overflow) must
    /// show before a thief crosses the interconnect for it; intra-socket
    /// victims are never gated. `1` = any visible remote work qualifies.
    pub cross_socket_backlog: usize,
    /// Auto-tune each core's contention-window half-life from the observed
    /// inter-burst gap (EWMA), so the window tracks the workload's own
    /// phase cadence instead of a compile-time guess. **On by default**;
    /// disable to pin [`contention_half_life`](Self::contention_half_life)
    /// exactly (the ablation benches do, so fixed-vs-auto is measurable).
    pub auto_half_life: bool,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            queue_backend: QueueBackend::default(),
            steal: true,
            signal: SignalPolicy::default(),
            contention_half_life: DEFAULT_CONTENTION_HALF_LIFE,
            steal_wake_backlog: DEFAULT_STEAL_WAKE_BACKLOG,
            latency_histogram: false,
            socket_overflow: true,
            spill_threshold: DEFAULT_SPILL_THRESHOLD,
            cross_socket_backlog: DEFAULT_CROSS_SOCKET_BACKLOG,
            auto_half_life: true,
        }
    }
}

/// Thread-scheduler keypoints at which the task manager is invoked
/// (paper §III: "CPU idleness, context switches, timer interrupts").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookPoint {
    /// A core ran out of ready threads.
    Idle,
    /// The thread scheduler switched contexts on a core.
    ContextSwitch,
    /// The periodic timer fired on a core.
    TimerInterrupt,
}

// Reused per thread so steady-state keypoints never allocate. Taken (not
// borrowed): a task body that re-enters the scheduler simply sees an empty
// scratch instead of a reentrancy panic.
thread_local! {
    static SCRATCH: core::cell::Cell<Vec<Task>> =
        const { core::cell::Cell::new(Vec::new()) };
}

impl HookPoint {
    fn index(self) -> usize {
        match self {
            HookPoint::Idle => 0,
            HookPoint::ContextSwitch => 1,
            HookPoint::TimerInterrupt => 2,
        }
    }
}

/// A task parked on the **dependency waitlist**: submitted with
/// [`SubmitSpec::after`] while at least one predecessor was still pending.
///
/// One `PendingTask` is registered as a waiter on *every* pending
/// predecessor's completion; each completion drain calls
/// [`satisfy_one`](Self::satisfy_one), and the call that observes the last
/// outstanding predecessor takes the task out of the slot — exactly once,
/// however the predecessor completions race.
pub(crate) struct PendingTask {
    /// Predecessors not yet known complete. The releasing decrement is the
    /// one that brings this to zero.
    remaining: AtomicUsize,
    /// The parked task, taken by the single releasing decrement.
    slot: Mutex<Option<Task>>,
}

impl PendingTask {
    /// Records that one predecessor completed. Returns the parked task iff
    /// this was the last outstanding predecessor.
    ///
    /// `AcqRel`: the decrement that wins publication-wise also acquires
    /// every earlier decrementer's view, so the released task observes all
    /// of its predecessors' side effects.
    pub(crate) fn satisfy_one(&self) -> Option<Task> {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.slot.lock().take()
        } else {
            None
        }
    }
}

impl core::fmt::Debug for PendingTask {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PendingTask")
            .field("remaining", &self.remaining.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Per-core scheduler state, one cache-line-padded block per core.
///
/// Before PR 5 these lived in seven parallel `Vec<AtomicU64>`s: per-core
/// *indexing* without per-core *isolation* — cores 0..16 shared the same
/// handful of cache lines, so every `executed` bump on core 3 evicted the
/// line core 2's counters sat on (false sharing; measured by the
/// `stats_sharding_contended` bench). Grouping a core's counters into one
/// padded block keeps all of its hot-path RMWs on a line no other core
/// writes — with one deliberate split: the fields *other* cores touch
/// while this core is busy (`remote`) sit on their own padded line, so a
/// `wake_for_steal` scan polling parked flags never pulls the line this
/// core's executor is hammering with `executed`/`steal_attempts` RMWs.
#[derive(Debug)]
struct CoreState {
    /// Tasks executed on this core (the paper's distribution measurements).
    executed: AtomicU64,
    /// Tasks executed on this core, split by [`TaskClass`] lane (indexed by
    /// [`TaskClass::index`]). Sums to `executed`.
    executed_class: [AtomicU64; CLASS_COUNT],
    /// Tasks stolen (and run) by this core.
    stolen: AtomicU64,
    /// Tasks stolen by this core, split by [`TaskClass`] lane. Sums to
    /// `stolen`.
    stolen_class: [AtomicU64; CLASS_COUNT],
    /// Steal probes by this core (a probe is one empty hierarchy scan).
    steal_attempts: AtomicU64,
    /// Successful steal-half batches (each took ≥ 1 task).
    steal_batches: AtomicU64,
    /// Park probes that found a stealable victim backlog.
    park_hits: AtomicU64,
    /// Park probes that found nothing stealable (the worker parked).
    park_misses: AtomicU64,
    /// Socket aggregates consulted by park probes: the work a pre-park
    /// scan actually performs, `O(sockets)` per probe under the overflow
    /// tier (the scaling study's headline assertion), one poll per victim
    /// queue in the flat fallback.
    park_polls: AtomicU64,
    /// Decayed contention window feeding
    /// [`TaskManager::adaptive_budget`] under [`SignalPolicy::Windowed`].
    window: ContentionWindow,
    /// Remotely-touched state, padded away from the owner-hot counters
    /// above (see the struct docs).
    remote: CachePadded<RemoteCoreState>,
}

/// The slice of a core's state that *other* cores read or write: the
/// parked flag (polled by every `wake_for_steal` candidate scan) and the
/// steal-wakeup counter (bumped by the waking thread).
#[derive(Debug)]
struct RemoteCoreState {
    /// Whether this core's progression worker is currently parked (racy
    /// hint; published by the worker just *before* its final pre-park
    /// checks so a racing [`TaskManager::wake_for_steal`] errs toward an
    /// extra unpark token, never a missed one). `SeqCst`: one half of the
    /// Dekker-style park/wake handshake — see the ordering table in
    /// `docs/SCHEDULER.md` and the `vendor/interleave` park_wake model.
    parked: AtomicBool,
    /// Whether a progression worker is registered for this core at all —
    /// the cheap pre-check that lets [`TaskManager::wake_cores`] skip the
    /// waker mutex for workerless cores. At 1024 cores a machine-wide
    /// submission otherwise pays one mutex round-trip per core per
    /// enqueue just to find `None`; with the flag an absent worker costs
    /// one load. Set *before* the waker installs and cleared *after* it
    /// is removed, so a `false` read genuinely means no waker — the only
    /// race window is a worker between registration and its first
    /// keypoint scan, and that scan sees any task the skipped wake would
    /// have flagged.
    waker_present: AtomicBool,
    /// Steal-targeted wake-ups received by this core's worker (written by
    /// the *waking* core).
    steal_wakeups: AtomicU64,
}

impl CoreState {
    fn new(contention_half_life: u32, auto_half_life: bool) -> Self {
        CoreState {
            executed: AtomicU64::new(0),
            executed_class: Default::default(),
            stolen: AtomicU64::new(0),
            stolen_class: Default::default(),
            steal_attempts: AtomicU64::new(0),
            steal_batches: AtomicU64::new(0),
            park_hits: AtomicU64::new(0),
            park_misses: AtomicU64::new(0),
            park_polls: AtomicU64::new(0),
            window: if auto_half_life {
                ContentionWindow::new_auto(contention_half_life)
            } else {
                ContentionWindow::new(contention_half_life)
            },
            remote: CachePadded::new(RemoteCoreState {
                parked: AtomicBool::new(false),
                waker_present: AtomicBool::new(false),
                steal_wakeups: AtomicU64::new(0),
            }),
        }
    }
}

/// OR a cpuset into an atomic span-word array — the same protocol as
/// [`TaskQueue`]'s steal span: words already covering the bits are
/// skipped, new bits publish with `Release` so a decay's `Acquire` swap
/// that captures them also sees the push they describe.
fn span_or(span: &[AtomicU64; SPAN_WORDS], set: &CpuSet) {
    for (word, &bits) in span.iter().zip(set.as_words()) {
        if bits != 0 && word.load(Ordering::Relaxed) & bits != bits {
            word.fetch_or(bits, Ordering::Release);
        }
    }
}

/// `true` if `core`'s bit is set in the span (one relaxed load).
fn span_admits(span: &[AtomicU64; SPAN_WORDS], core: usize) -> bool {
    core < CpuSet::MAX_CPUS && span[core / 64].load(Ordering::Relaxed) & (1u64 << (core % 64)) != 0
}

/// Relaxed snapshot of a span-word array as a [`CpuSet`].
fn span_snapshot(span: &[AtomicU64; SPAN_WORDS]) -> CpuSet {
    let mut words = [0u64; SPAN_WORDS];
    for (w, a) in words.iter_mut().zip(span.iter()) {
        *w = a.load(Ordering::Relaxed);
    }
    CpuSet::from_words(words)
}

/// One socket of the **per-socket overflow tier** (see
/// [`ManagerConfig::socket_overflow`]): the overflow lanes deep member
/// queues spill into, plus the socket-aggregated signals — pending hint,
/// steal spans, parked-worker count — that let park probes, steal-targeted
/// wakes and cross-socket steal gates consult one padded block per socket
/// instead of touching every member core's state.
struct SocketTier {
    /// Arena index of the topology node this socket aggregates (a NUMA
    /// node; a chip or the machine root on trees without that level).
    node: u32,
    /// Cores the socket spans.
    cpuset: CpuSet,
    /// The overflow lanes: the same lock-free [`ClassLanes`] the LockFree
    /// queue backend uses, so spilled tasks keep their QoS class and
    /// deadline lane across the spill (boxed: the lanes are several cache
    /// lines of per-class queues, cold for every socket but the busy one).
    overflow: Box<ClassLanes<Task>>,
    /// Depth of `overflow` (racy hint, same contract as queue len hints).
    overflow_len: CachePadded<AtomicUsize>,
    /// Union of the cpusets of tasks spilled into `overflow`, decayed when
    /// the overflow drains: gates claims and cross-socket overflow steals
    /// the way a queue's steal span gates queue steals.
    overflow_span: CachePadded<[AtomicU64; SPAN_WORDS]>,
    /// Tasks pending across the socket's member queues *and* overflow
    /// (racy signed hint — increments and decrements race, so transient
    /// negatives are possible and callers clamp at zero). The O(1) filter
    /// a *remote* core's park probe reads instead of scanning this
    /// socket's member queues.
    pending: CachePadded<AtomicI64>,
    /// Union of enqueued task cpusets across member queues and overflow,
    /// decayed when `pending` drains: the eligibility half of the remote
    /// park-probe filter.
    span: CachePadded<[AtomicU64; SPAN_WORDS]>,
    /// Parked progression workers among this socket's cores, maintained
    /// alongside the per-core flags: lets a steal-targeted wake skip a
    /// fully-busy socket's whole candidate run in O(1).
    parked: AtomicU64,
    /// Tasks spilled into this socket's overflow (lifetime counter).
    spilled: AtomicU64,
    /// Tasks claimed out of the overflow and run (lifetime counter; claims
    /// by member cores and steals by remote cores both count).
    claimed: AtomicU64,
}

impl SocketTier {
    fn new(node: u32, cpuset: CpuSet) -> Self {
        SocketTier {
            node,
            cpuset,
            overflow: Box::new(ClassLanes::new()),
            overflow_len: CachePadded::new(AtomicUsize::new(0)),
            overflow_span: CachePadded::new(std::array::from_fn(|_| AtomicU64::new(0))),
            pending: CachePadded::new(AtomicI64::new(0)),
            span: CachePadded::new(std::array::from_fn(|_| AtomicU64::new(0))),
            parked: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
            claimed: AtomicU64::new(0),
        }
    }

    /// Socket-span decay, mirroring [`TaskQueue`]'s: when the pending hint
    /// says the socket drained and the span grew wider than the socket's
    /// own cpuset (the only bits that can mislead — in-cpuset bits only
    /// attract member cores, whose probes re-check the member queues), the
    /// span clears, restoring if work raced in. Same bounded race budget
    /// as the queue-level decay: the span gates advisory probes only.
    fn maybe_decay_span(&self) {
        let own = self.cpuset.as_words();
        if self
            .span
            .iter()
            .zip(own)
            .all(|(w, &own_bits)| w.load(Ordering::Relaxed) & !own_bits == 0)
        {
            return;
        }
        let mut cleared = [0u64; SPAN_WORDS];
        for (c, w) in cleared.iter_mut().zip(self.span.iter()) {
            *c = w.swap(0, Ordering::Acquire);
        }
        if self.pending.load(Ordering::Relaxed) > 0 {
            for (c, w) in cleared.iter().zip(self.span.iter()) {
                if *c != 0 {
                    w.fetch_or(*c, Ordering::Relaxed);
                }
            }
        }
    }

    /// Overflow-span decay on an overflow that drained empty. Unlike the
    /// socket span there is no "own cpuset" exemption: a claim re-checks
    /// nothing (it pops blind and bounces ineligible tasks home), so every
    /// stale bit costs a wasted pop — clear them all.
    fn maybe_decay_overflow_span(&self) {
        let mut cleared = [0u64; SPAN_WORDS];
        for (c, w) in cleared.iter_mut().zip(self.overflow_span.iter()) {
            *c = w.swap(0, Ordering::Acquire);
        }
        if self.overflow_len.load(Ordering::Relaxed) != 0 {
            for (c, w) in cleared.iter().zip(self.overflow_span.iter()) {
                if *c != 0 {
                    w.fetch_or(*c, Ordering::Relaxed);
                }
            }
        }
    }
}

/// One socket group in a core's victim scan: the socket id plus its member
/// victim queues as `(queue index, distance)` pairs, kept in
/// [`Topology::steal_order_with_distance`] order.
type SocketVictimGroup = (u32, Vec<(u32, u8)>);

/// The scalable task scheduling system: one queue per topology node,
/// submission by CPU set, execution by upward queue scan.
///
/// See the [crate docs](crate) for an overview and the paper mapping.
pub struct TaskManager {
    topo: Arc<Topology>,
    /// One queue per topology node, indexed by node arena index.
    queues: Vec<TaskQueue>,
    /// Per-core hot counters + parked flag + contention window, each core
    /// on its own cache line (see [`CoreState`]).
    cores: Vec<CachePadded<CoreState>>,
    /// Hook invocation counters, indexed by `HookPoint::index`.
    hook_counts: [AtomicU64; 3],
    /// Progression workers to unpark when work arrives, one slot per core.
    wakers: Vec<Mutex<Option<Thread>>>,
    /// Per-core victim scan, socket-major: the core's own socket's victim
    /// queues first (the old flat order restricted to the socket), then
    /// each remote socket's in [`socket_order`](Self::socket_order)
    /// sequence. Within a socket group the entries keep the
    /// [`Topology::steal_order_with_distance`] order: equal distances form
    /// a *tier*, re-ranked by observed queue depth at probe time.
    steal_order: Vec<Vec<SocketVictimGroup>>,
    /// The socket tiers (one per NUMA node / chip / machine — see
    /// [`SocketTier::node`]), indexed by socket id.
    sockets: Vec<SocketTier>,
    /// Each core's socket id.
    core_socket: Vec<u32>,
    /// Each queue's socket id (`None` only for queues *above* every
    /// socket node — the Global Queue on multi-socket trees).
    queue_socket: Vec<Option<u32>>,
    /// Per-core socket visit order: own socket first, then remote sockets
    /// by nearest-span distance (ties by id). The O(sockets) scan behind
    /// park probes and the cross-socket half of the steal path.
    socket_order: Vec<Vec<u32>>,
    /// Whether the overflow tier is live: configured on *and* the tree
    /// actually has more than one socket (single-socket machines have no
    /// "whole socket" distinct from the machine, so the tier would only
    /// duplicate the Global Queue).
    socket_overflow_active: bool,
    /// Count of set `CoreState::parked` flags, maintained alongside them:
    /// the O(1) short-circuit that keeps
    /// [`wake_for_steal`](Self::wake_for_steal) off the submit hot path
    /// while a deep queue is being hammered and every worker is busy (the
    /// common overload shape). `SeqCst` with the flag transitions so the
    /// deterministic park tests can rely on flag-then-count agreement.
    parked_count: AtomicU64,
    /// Per-queue wake order: every core sorted nearest-first from the
    /// queue's span ([`Topology::cores_by_distance_from_node`]), scanned by
    /// [`wake_for_steal`](Self::wake_for_steal). Consecutive same-socket
    /// runs are grouped so a socket whose [`SocketTier::parked`] count is
    /// zero skips its whole run in one load.
    wake_order: Vec<Vec<(u32, Vec<u32>)>>,
    /// Submit→execute latency histogram, one shard per core, present only
    /// when [`ManagerConfig::latency_histogram`] is set. The executing core
    /// records into its own shard, so concurrent workers never contend.
    latency: Option<crate::hist::Histogram>,
    /// Per-class latency histograms (same sharding as `latency`), armed
    /// together with it: each run records into the overall histogram *and*
    /// its class's, so per-class tails are visible without re-deriving.
    latency_class: Option<Box<[crate::hist::Histogram; CLASS_COUNT]>>,
    /// Dependency-waitlist releases per [`TaskClass`]: tasks parked by
    /// [`SubmitSpec::after`] that re-entered the queues because their last
    /// predecessor completed. Manager-level (not per-core sharded): a
    /// release happens at most once per dependent task, far off the
    /// enqueue/dequeue hot path.
    released_class: CachePadded<[AtomicU64; CLASS_COUNT]>,
    config: ManagerConfig,
}

impl TaskManager {
    /// Creates a manager with default configuration (spinlock queues).
    pub fn new(topo: Arc<Topology>) -> Arc<Self> {
        Self::with_config(topo, ManagerConfig::default())
    }

    /// Creates a manager with explicit configuration.
    pub fn with_config(topo: Arc<Topology>, config: ManagerConfig) -> Arc<Self> {
        let n_cores = topo.n_cores();
        let queues = topo
            .iter()
            .map(|(id, node)| {
                let qid = QueueId(id.index() as u32);
                match config.queue_backend {
                    QueueBackend::Spinlock => {
                        TaskQueue::new_spin(qid, node.level, node.cpuset, n_cores)
                    }
                    QueueBackend::LockFree => {
                        TaskQueue::new_lockfree(qid, node.level, node.cpuset, n_cores)
                    }
                    QueueBackend::Mutex => {
                        TaskQueue::new_mutex(qid, node.level, node.cpuset, n_cores)
                    }
                }
            })
            .collect();
        let cores = (0..n_cores)
            .map(|_| {
                CachePadded::new(CoreState::new(
                    config.contention_half_life,
                    config.auto_half_life,
                ))
            })
            .collect();
        let wakers = (0..n_cores).map(|_| Mutex::new(None)).collect();

        // Socket detection: NUMA nodes are the natural spill/steal
        // aggregation domain; trees without a NUMA level fall back to
        // chips, and flat trees to the machine root (one socket — the
        // overflow tier then stays inert).
        let socket_nodes: Vec<NodeId> = {
            let numa = topo.nodes_at_level(Level::NumaNode);
            if !numa.is_empty() {
                numa
            } else {
                let chips = topo.nodes_at_level(Level::Chip);
                if !chips.is_empty() {
                    chips
                } else {
                    vec![topo.root()]
                }
            }
        };
        let map_queue_sockets = |socket_nodes: &[NodeId]| -> Vec<Option<u32>> {
            let mut direct = vec![None; topo.n_nodes()];
            for (s, id) in socket_nodes.iter().enumerate() {
                direct[id.index()] = Some(s as u32);
            }
            topo.node_ids()
                .map(|id| {
                    let mut cur = Some(id);
                    while let Some(n) = cur {
                        if let Some(s) = direct[n.index()] {
                            return Some(s);
                        }
                        cur = topo.node(n).parent;
                    }
                    None
                })
                .collect()
        };
        let mut queue_socket = map_queue_sockets(&socket_nodes);
        // Irregular trees could leave a core outside every socket node;
        // collapse to the single-root socket rather than schedule blind.
        let covered = (0..n_cores).all(|c| queue_socket[topo.core_node(c).index()].is_some());
        let socket_nodes = if covered {
            socket_nodes
        } else {
            let roots = vec![topo.root()];
            queue_socket = map_queue_sockets(&roots);
            roots
        };
        let sockets: Vec<SocketTier> = socket_nodes
            .iter()
            .map(|&id| SocketTier::new(id.index() as u32, topo.node(id).cpuset))
            .collect();
        let socket_overflow_active = config.socket_overflow && sockets.len() > 1;
        let core_socket: Vec<u32> = (0..n_cores)
            .map(|c| queue_socket[topo.core_node(c).index()].expect("core outside every socket"))
            .collect();
        let socket_order: Vec<Vec<u32>> = (0..n_cores)
            .map(|c| {
                let mut order: Vec<u32> = (0..sockets.len() as u32).collect();
                // Own socket lands first naturally: the core is inside its
                // own socket's span, so its nearest-span distance is 0.
                order.sort_by_cached_key(|&s| {
                    let d = sockets[s as usize]
                        .cpuset
                        .iter()
                        .map(|other| topo.distance(c, other))
                        .min()
                        .unwrap_or(usize::MAX);
                    (d, s)
                });
                order
            })
            .collect();
        let steal_order: Vec<Vec<SocketVictimGroup>> = (0..n_cores)
            .map(|c| {
                let mut groups: Vec<SocketVictimGroup> =
                    socket_order[c].iter().map(|&s| (s, Vec::new())).collect();
                let slot: std::collections::HashMap<u32, usize> = groups
                    .iter()
                    .enumerate()
                    .map(|(i, &(s, _))| (s, i))
                    .collect();
                for (id, dist) in topo.steal_order_with_distance(c) {
                    // Every victim sits at or below some socket node (only
                    // strict ancestors of the sockets lack one, and those
                    // are on every core's path, hence never victims).
                    let s = queue_socket[id.index()].expect("victim above every socket");
                    groups[slot[&s]]
                        .1
                        .push((id.index() as u32, dist.min(u8::MAX as usize) as u8));
                }
                groups
            })
            .collect();
        let wake_order = topo
            .node_ids()
            .map(|id| {
                let mut groups: Vec<(u32, Vec<u32>)> = Vec::new();
                for c in topo.cores_by_distance_from_node(id) {
                    let s = core_socket[c];
                    match groups.last_mut() {
                        Some((gs, cores)) if *gs == s => cores.push(c as u32),
                        _ => groups.push((s, vec![c as u32])),
                    }
                }
                groups
            })
            .collect();
        Arc::new(TaskManager {
            topo,
            queues,
            cores,
            hook_counts: Default::default(),
            wakers,
            steal_order,
            sockets,
            core_socket,
            queue_socket,
            socket_order,
            socket_overflow_active,
            parked_count: AtomicU64::new(0),
            wake_order,
            latency: config
                .latency_histogram
                .then(|| crate::hist::Histogram::new(n_cores)),
            latency_class: config.latency_histogram.then(|| {
                Box::new(std::array::from_fn(|_| {
                    crate::hist::Histogram::new(n_cores)
                }))
            }),
            released_class: CachePadded::new(Default::default()),
            config,
        })
    }

    /// The topology the queues are mapped onto.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The configuration used at construction.
    pub fn config(&self) -> &ManagerConfig {
        &self.config
    }

    /// Starts building a task submission: the one entry point behind every
    /// submission shape (see [`SubmitSpec`]).
    ///
    /// The default spec is an [`Interactive`](TaskClass::Interactive)
    /// one-shot task runnable on every core, enqueued — as the paper's
    /// §III-A prescribes — on the smallest topology node covering its CPU
    /// set; every knob is a chained method:
    ///
    /// ```
    /// use pioman::{TaskClass, TaskManager, TaskStatus};
    /// use piom_cpuset::CpuSet;
    /// use piom_topology::presets;
    ///
    /// let mgr = TaskManager::new(presets::kwak().into());
    /// let first = mgr
    ///     .task(|_| TaskStatus::Done)
    ///     .cpuset(CpuSet::range(0..4))
    ///     .class(TaskClass::Bulk)
    ///     .deadline(7)
    ///     .spawn();
    /// // Runs only after `first` completes, on core 2's own queue.
    /// let second = mgr
    ///     .task(|_| TaskStatus::Done)
    ///     .cpuset(CpuSet::range(0..4))
    ///     .on_core(2)
    ///     .after(&first)
    ///     .spawn();
    /// while !second.is_complete() {
    ///     mgr.schedule(2);
    /// }
    /// ```
    pub fn task<F>(&self, body: F) -> SubmitSpec<'_>
    where
        F: FnMut(&TaskContext<'_>) -> TaskStatus + Send + 'static,
    {
        self.task_boxed(Box::new(body))
    }

    /// [`task`](Self::task) for an already-boxed body (avoids double boxing
    /// when the caller stores `TaskFn`s).
    pub fn task_boxed(&self, body: TaskFn) -> SubmitSpec<'_> {
        SubmitSpec {
            mgr: self,
            body,
            cpuset: None,
            home: None,
            options: TaskOptions::oneshot(),
            deps: Vec::new(),
            completion: Completion::new(),
        }
    }

    /// Submits a task runnable by any core in `cpuset`.
    ///
    /// # Panics
    ///
    /// Panics if `cpuset` contains no core of this machine.
    #[deprecated(since = "0.1.0", note = "use `mgr.task(body).cpuset(..).spawn()`")]
    pub fn submit<F>(&self, body: F, cpuset: CpuSet, options: TaskOptions) -> TaskHandle
    where
        F: FnMut(&TaskContext<'_>) -> TaskStatus + Send + 'static,
    {
        self.task(body).cpuset(cpuset).options(options).spawn()
    }

    /// [`task_boxed`](Self::task_boxed) + [`SubmitSpec::spawn`] in one call.
    #[deprecated(
        since = "0.1.0",
        note = "use `mgr.task_boxed(body).cpuset(..).spawn()`"
    )]
    pub fn submit_boxed(&self, body: TaskFn, cpuset: CpuSet, options: TaskOptions) -> TaskHandle {
        self.task_boxed(body)
            .cpuset(cpuset)
            .options(options)
            .spawn()
    }

    /// Submits to the Global Queue: runnable by every core. Used when no
    /// idle core was found at submission time (§IV-B).
    #[deprecated(
        since = "0.1.0",
        note = "use `mgr.task(body).spawn()` (every core is the default cpuset)"
    )]
    pub fn submit_global<F>(&self, body: F, options: TaskOptions) -> TaskHandle
    where
        F: FnMut(&TaskContext<'_>) -> TaskStatus + Send + 'static,
    {
        self.task(body).options(options).spawn()
    }

    /// Submits a task with a *home-core placement hint* (see
    /// [`SubmitSpec::on_core`] for the placement contract).
    ///
    /// # Panics
    ///
    /// Panics if `home` is outside the topology or not contained in
    /// `cpuset` (a home the task may never run on would strand it).
    #[deprecated(
        since = "0.1.0",
        note = "use `mgr.task(body).cpuset(..).on_core(home).spawn()`"
    )]
    pub fn submit_on<F>(
        &self,
        body: F,
        home: usize,
        cpuset: CpuSet,
        options: TaskOptions,
    ) -> TaskHandle
    where
        F: FnMut(&TaskContext<'_>) -> TaskStatus + Send + 'static,
    {
        self.task(body)
            .cpuset(cpuset)
            .on_core(home)
            .options(options)
            .spawn()
    }

    /// Common submission tail: enqueue the built task on its home queue and
    /// wake the cores that may run it. Shared by [`SubmitSpec::spawn`], the
    /// waitlist release path, and nothing else — requeues of *running*
    /// tasks go through [`TaskQueue::requeue`] directly.
    fn dispatch(&self, task: Task) {
        let effective = task.cpuset;
        let home = task.home;
        let depth = self.queues[home.index()].enqueue(task);
        self.note_enqueued(home, &effective);
        // Spill escalation: a queue *below* its socket node that out-runs
        // the spill threshold moves half its backlog (lowest class first)
        // into the socket overflow, where every member core's hierarchy
        // walk — not just thieves — can drain it.
        if self.socket_overflow_active && depth >= self.config.spill_threshold {
            if let Some(s) = self.queue_socket[home.index()] {
                if home.index() as u32 != self.sockets[s as usize].node {
                    self.spill(home, s as usize, depth);
                }
            }
        }
        self.wake_cores(effective);
        // Backlog escalation: the queue is deep enough that its own cores
        // are visibly not keeping up, so recruit the nearest parked thief
        // (which may be eligible only for *older* tasks in the backlog and
        // hence missed by the cpuset-targeted wake above).
        if self.config.steal && depth >= self.config.steal_wake_backlog {
            self.wake_for_steal(home);
        }
    }

    /// Records `cpuset`'s task landing on `queue` in the queue's socket
    /// aggregates (pending hint + socket span). Queues above every socket
    /// node (the Global Queue) have no socket to account to.
    fn note_enqueued(&self, queue: QueueId, cpuset: &CpuSet) {
        if let Some(s) = self.queue_socket[queue.index()] {
            let sock = &self.sockets[s as usize];
            sock.pending.fetch_add(1, Ordering::Relaxed);
            span_or(&sock.span, cpuset);
        }
    }

    /// Records `n` tasks leaving `queue`; a drain that (by the racy hint)
    /// empties the socket decays its span, mirroring the queue-level decay.
    fn note_removed(&self, queue: QueueId, n: usize) {
        if n == 0 {
            return;
        }
        if let Some(s) = self.queue_socket[queue.index()] {
            self.note_removed_socket(s as usize, n);
        }
    }

    /// [`note_removed`](Self::note_removed) when the socket is already
    /// known (overflow pops).
    fn note_removed_socket(&self, s: usize, n: usize) {
        let sock = &self.sockets[s];
        if sock.pending.fetch_sub(n as i64, Ordering::Relaxed) <= n as i64 {
            sock.maybe_decay_span();
        }
    }

    /// Moves half of `home`'s backlog into socket `s`'s overflow lanes,
    /// lowest class first ([`TaskQueue::spill_lowest`]). Socket pending is
    /// unchanged — the tasks stay in the socket — so only the overflow
    /// depth, its span, and the lifetime spill counter move.
    fn spill(&self, home: QueueId, s: usize, depth: usize) {
        let quota = depth / 2;
        if quota == 0 {
            return;
        }
        let mut batch = SCRATCH.take();
        batch.clear();
        let taken = self.queues[home.index()].spill_lowest(quota, &mut batch);
        let sock = &self.sockets[s];
        for task in batch.drain(..) {
            span_or(&sock.overflow_span, &task.cpuset);
            sock.overflow.push(task);
            sock.overflow_len.fetch_add(1, Ordering::Relaxed);
        }
        if taken > 0 {
            sock.spilled.fetch_add(taken as u64, Ordering::Relaxed);
        }
        batch.clear();
        SCRATCH.set(batch);
    }

    /// Drains up to `max` tasks from `core`'s **own** socket overflow in
    /// pop-policy order (highest class first, EDF within a class — the
    /// [`ClassLanes`] pop) and runs them: the socket rung of the
    /// core → socket → global walk. A popped task whose cpuset excludes
    /// `core` bounces to its home queue through the ordinary
    /// [`run_task`](Self::run_task) requeue path. Returns bodies run.
    fn claim_overflow(&self, core: usize, max: usize) -> usize {
        let s = self.core_socket[core] as usize;
        let sock = &self.sockets[s];
        if max == 0
            || sock.overflow_len.load(Ordering::Relaxed) == 0
            || !span_admits(&sock.overflow_span, core)
        {
            return 0;
        }
        let mut ran = 0;
        // One pass: bound the pops by the depth at arrival so a stream of
        // ineligible bounces cannot spin this keypoint.
        let mut pass = sock.overflow_len.load(Ordering::Relaxed);
        while ran < max && pass > 0 {
            let Some(task) = sock.overflow.pop() else {
                break;
            };
            pass -= 1;
            sock.overflow_len.fetch_sub(1, Ordering::Relaxed);
            self.note_removed_socket(s, 1);
            let home = task.home;
            if self.run_task(task, core, &self.queues[home.index()]) {
                ran += 1;
                sock.claimed.fetch_add(1, Ordering::Relaxed);
            }
        }
        if sock.overflow_len.load(Ordering::Relaxed) == 0 {
            sock.maybe_decay_overflow_span();
        }
        ran
    }

    /// Dispatches every waitlisted task whose last outstanding predecessor
    /// just completed: the release half of [`SubmitSpec::after`], called
    /// with the waiter list drained by the predecessor's completion.
    fn release_waiters(&self, waiters: Vec<Arc<PendingTask>>) {
        for waiter in waiters {
            if let Some(mut task) = waiter.satisfy_one() {
                self.released_class[task.options.class.index()].fetch_add(1, Ordering::Relaxed);
                // Queueing delay starts now: while parked the task was not
                // schedulable, so the wait on predecessors is not charged
                // to the queues.
                task.submitted_at = self.latency.is_some().then(std::time::Instant::now);
                self.dispatch(task);
            }
        }
    }

    /// Panics iff making `new` depend on `deps` would close a dependency
    /// cycle: depth-first walk of the recorded dependency edges
    /// ([`Completion::deps_snapshot`]) looking for `new` itself. Called at
    /// spawn time, before any waiter is registered, so a rejected
    /// submission has no side effects on its predecessors.
    fn assert_acyclic(new: &Arc<Completion>, deps: &[Arc<Completion>]) {
        let mut visited: Vec<*const Completion> = Vec::new();
        let mut stack: Vec<Arc<Completion>> = deps.to_vec();
        while let Some(c) = stack.pop() {
            if Arc::ptr_eq(&c, new) {
                panic!("dependency cycle: a task cannot (transitively) run after itself");
            }
            let p = Arc::as_ptr(&c);
            if visited.contains(&p) {
                continue;
            }
            visited.push(p);
            // Completed predecessors have empty snapshots: the walk only
            // follows edges that can still delay anything.
            stack.extend(c.deps_snapshot());
        }
    }

    /// The paper's **Algorithm 1** (`Task Schedule`), invoked from scheduler
    /// keypoints: starting at `core`'s Per-Core Queue and walking up to the
    /// Global Queue, run every task found. Repeat tasks that report
    /// [`TaskStatus::Again`] are re-enqueued into the same queue.
    ///
    /// Each queue is drained at most one *pass* (its length at arrival) per
    /// call, so repetitive polling tasks cannot livelock the keypoint: they
    /// get exactly one attempt per invocation, matching the paper's "PIOMan
    /// first processes local tasks and scans upper queues" description.
    ///
    /// When the scan runs dry and stealing is enabled, the core probes the
    /// other queues nearest-first and takes one eligible task (see
    /// [`ManagerConfig::steal`]).
    ///
    /// Returns `true` if at least one task body was executed.
    pub fn schedule(&self, core: usize) -> bool {
        self.schedule_batch(core, usize::MAX) > 0
    }

    /// [`schedule`](Self::schedule) with a task budget and batched
    /// dequeueing: each queue on `core`'s path is drained up to
    /// `min(pass, budget)` tasks under a **single** lock acquisition,
    /// instead of re-locking per task. Returns the number of task bodies
    /// executed (at most `max`).
    ///
    /// If the whole hierarchy scan executes nothing and stealing is
    /// enabled, one steal probe runs before returning, so a starved core
    /// helps a loaded neighbor instead of reporting idleness.
    ///
    /// ```
    /// use pioman::{TaskManager, TaskOptions, TaskStatus};
    /// use piom_cpuset::CpuSet;
    /// use piom_topology::presets;
    ///
    /// let mgr = TaskManager::new(presets::kwak().into());
    /// for _ in 0..8 {
    ///     mgr.task(|_| TaskStatus::Done).cpuset(CpuSet::single(0)).spawn();
    /// }
    /// // One keypoint drains the whole backlog, one lock acquisition for
    /// // all eight tasks; the budget caps how much one keypoint may run.
    /// assert_eq!(mgr.schedule_batch(0, 6), 6);
    /// assert_eq!(mgr.schedule_batch(0, 6), 2);
    /// assert_eq!(mgr.schedule_batch(0, 6), 0);
    /// ```
    pub fn schedule_batch(&self, core: usize, max: usize) -> usize {
        debug_assert!(core < self.topo.n_cores(), "core id out of range");
        let mut ran = 0;
        let socket_node = self.sockets[self.core_socket[core] as usize].node;
        let mut batch = SCRATCH.take();
        for node in self.topo.path_to_root(core) {
            if ran >= max {
                break;
            }
            let queue = &self.queues[node.index()];
            // One *pass* (the queue length at arrival) per queue per call,
            // so repetitive polling tasks cannot livelock the keypoint.
            let pass = queue.len_hint().min(max - ran);
            if pass > 0 {
                batch.clear();
                let taken = queue.dequeue_batch(pass, &mut batch);
                self.note_removed(queue.id, taken);
                for task in batch.drain(..) {
                    if self.run_task(task, core, queue) {
                        ran += 1;
                    }
                }
            }
            // The socket rung of the core → socket → global walk: after
            // the socket node's own queue, drain what the socket's deep
            // member queues spilled.
            if self.socket_overflow_active && node.index() as u32 == socket_node && ran < max {
                ran += self.claim_overflow(core, max - ran);
            }
        }
        batch.clear();
        SCRATCH.set(batch);
        if ran == 0 && self.config.steal {
            ran += self.steal_batch(core, max);
        }
        ran
    }

    /// Computes an adaptive per-keypoint task budget for `core`, replacing
    /// the fixed [`DEFAULT_BATCH`]: sized from the observed depth of the
    /// queues on `core`'s hierarchy path, widened when their locks show
    /// contention, and capped low for cores whose steal history says they
    /// mostly run dry. Always within [`MIN_BATCH`]`..=`[`MAX_BATCH`].
    ///
    /// The signals and the reasoning:
    ///
    /// * **queue depth** — the budget should cover the backlog actually
    ///   visible, not a guess: a keypoint facing 3 tasks has no business
    ///   reserving 32 slots, and one facing 200 should not need 7 passes;
    /// * **the contention signal** on the path — when the queues' locks
    ///   are fought over, each acquisition is expensive, so the batch
    ///   widens to amortize more tasks per acquisition. Under the default
    ///   [`SignalPolicy::Windowed`] the widening tracks an exponentially-
    ///   decayed *recent* contention rate ([`ContentionWindow`], sampled
    ///   here on every call), so a phase change moves budgets within a few
    ///   half-lives; [`SignalPolicy::Cumulative`] keeps the PR-3 lifetime
    ///   ratio for ablation;
    /// * **`steal_attempts_by_core` vs executions** — a core that probes
    ///   victims more often than it runs tasks is chronically starved;
    ///   it keeps a small cap ([`DEFAULT_BATCH`]) so it parks quickly
    ///   instead of reserving budget it will not use.
    ///
    /// A core whose own path is *empty* does not get the floor: its
    /// keypoint falls through to the steal-half probe, and a budget of
    /// [`MIN_BATCH`] would clamp every stolen half-backlog to 4 tasks,
    /// re-introducing the per-probe premium steal-half exists to remove.
    /// With stealing enabled the empty-path budget is [`DEFAULT_BATCH`]
    /// (a budget is a cap, not reserved work — an idle keypoint still
    /// runs nothing and parks just as fast).
    ///
    /// ```
    /// use pioman::{TaskManager, TaskOptions, TaskStatus, DEFAULT_BATCH};
    /// use piom_cpuset::CpuSet;
    /// use piom_topology::presets;
    ///
    /// let mgr = TaskManager::new(presets::kwak().into());
    /// // Empty hierarchy: budget covers a steal-half batch.
    /// assert_eq!(mgr.adaptive_budget(0), DEFAULT_BATCH);
    /// for _ in 0..100 {
    ///     mgr.task(|_| TaskStatus::Done).cpuset(CpuSet::single(0)).spawn();
    /// }
    /// assert!(mgr.adaptive_budget(0) >= 100); // budget tracks the backlog
    /// ```
    pub fn adaptive_budget(&self, core: usize) -> usize {
        debug_assert!(core < self.topo.n_cores(), "core id out of range");
        let mut depth = 0usize;
        let mut acquisitions = 0u64;
        let mut contended = 0u64;
        for node in self.topo.path_to_root(core) {
            let queue = &self.queues[node.index()];
            depth += queue.len_hint();
            if let Some((a, c)) = queue.lock_stats() {
                acquisitions += a;
                contended += c;
            }
        }
        // The socket overflow is on this core's drain path too (the claim
        // rung of `schedule_batch`), so its depth sizes the budget alike.
        if self.socket_overflow_active {
            depth += self.sockets[self.core_socket[core] as usize]
                .overflow_len
                .load(Ordering::Relaxed);
        }
        // Sample the window on *every* budget computation (even an empty
        // path), so quiet keypoints keep decaying a stale contended-phase
        // rate instead of freezing it until the next backlog.
        let boost = match self.config.signal {
            SignalPolicy::Windowed => {
                self.cores[core].window.observe(acquisitions, contended);
                self.cores[core].window.boost()
            }
            SignalPolicy::Cumulative => {
                1 + (8 * contended).checked_div(acquisitions).unwrap_or(0) as usize
            }
        };
        if depth == 0 {
            return if self.config.steal {
                DEFAULT_BATCH
            } else {
                MIN_BATCH
            };
        }
        let starved = {
            let probes = self.cores[core].steal_attempts.load(Ordering::Relaxed);
            let executed = self.cores[core].executed.load(Ordering::Relaxed);
            probes > executed.saturating_add(MIN_BATCH as u64)
        };
        let cap = if starved { DEFAULT_BATCH } else { MAX_BATCH };
        depth.saturating_mul(boost).clamp(MIN_BATCH, cap)
    }

    /// Runs at most one task visible from `core` (deepest queue first),
    /// with the same steal fallback as [`schedule`](Self::schedule).
    /// Returns `true` if a task body was executed.
    pub fn schedule_one(&self, core: usize) -> bool {
        let socket_node = self.sockets[self.core_socket[core] as usize].node;
        for node in self.topo.path_to_root(core) {
            let queue = &self.queues[node.index()];
            // Bounded retry: skip over tasks this core may not run.
            let pass = queue.len_hint();
            for _ in 0..pass {
                let Some(task) = queue.try_dequeue() else {
                    break;
                };
                self.note_removed(queue.id, 1);
                if self.run_task(task, core, queue) {
                    return true;
                }
            }
            // Socket rung, single-task budget (see `schedule_batch`).
            if self.socket_overflow_active
                && node.index() as u32 == socket_node
                && self.claim_overflow(core, 1) > 0
            {
                return true;
            }
        }
        self.config.steal && self.steal_batch(core, 1) > 0
    }

    /// One steal probe for `core`: visit the victim queues nearest-first
    /// and, at the first victim holding eligible work, take **half of its
    /// eligible backlog** ([`TaskQueue::try_steal_half`], bounded by the
    /// caller's remaining budget `max`) and run every stolen task.
    ///
    /// Within a distance tier (victims equally near by [`Topology::
    /// steal_order_with_distance`]) the deepest backlog is probed first,
    /// so a thief skips hot-but-empty neighbours — but it never crosses
    /// to a farther tier while a nearer one still has candidates, keeping
    /// steal traffic as local as the hierarchy itself.
    ///
    /// Half, not one and not all: single-task probes pay the victim-scan
    /// premium once per task when draining a starved backlog (the ~32 µs
    /// vs ~20 µs gap PR 2 recorded), while looting a whole pass would
    /// just move the imbalance onto the victim. Returns the number of
    /// tasks stolen and executed.
    ///
    /// The scan is socket-major (strict core → socket → global locality):
    /// every victim inside the thief's own socket is exhausted before any
    /// remote socket is touched. At each remote socket the concentrated
    /// *overflow* is probed first ([`steal_overflow`](Self::
    /// steal_overflow)), then the socket's member queues — and both are
    /// gated on [`ManagerConfig::cross_socket_backlog`], so a thief only
    /// crosses the interconnect for an imbalance worth the traffic.
    fn steal_batch(&self, core: usize, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        self.cores[core]
            .steal_attempts
            .fetch_add(1, Ordering::Relaxed);
        let own = self.core_socket[core];
        let cross_gate = self.config.cross_socket_backlog.max(1);
        let mut batch = SCRATCH.take();
        let mut ran = 0;
        'sockets: for (s, order) in &self.steal_order[core] {
            let remote = *s != own;
            if remote && self.socket_overflow_active {
                ran = self.steal_overflow(core, *s as usize, max);
                if ran > 0 {
                    break;
                }
            }
            let gate = if remote { cross_gate } else { 1 };
            let mut tier_start = 0;
            while tier_start < order.len() {
                let distance = order[tier_start].1;
                let tier_end = tier_start
                    + order[tier_start..]
                        .iter()
                        .take_while(|&&(_, d)| d == distance)
                        .count();
                // Deepest backlog first within the tier; len_hint is racy,
                // but a misranked probe only costs one extra empty visit.
                let mut tier: Vec<(u32, usize)> = order[tier_start..tier_end]
                    .iter()
                    .map(|&(qi, _)| (qi, self.queues[qi as usize].len_hint()))
                    .filter(|&(_, depth)| depth >= gate)
                    .collect();
                tier.sort_by_key(|&(qi, depth)| (core::cmp::Reverse(depth), qi));
                for (qi, _) in tier {
                    let queue = &self.queues[qi as usize];
                    batch.clear();
                    let stolen = queue.try_steal_half(core, max, &mut batch);
                    if stolen > 0 {
                        self.note_removed(queue.id, stolen);
                        self.cores[core]
                            .stolen
                            .fetch_add(stolen as u64, Ordering::Relaxed);
                        self.cores[core]
                            .steal_batches
                            .fetch_add(1, Ordering::Relaxed);
                        for task in batch.drain(..) {
                            self.cores[core].stolen_class[task.options.class.index()]
                                .fetch_add(1, Ordering::Relaxed);
                            // try_steal_half only yields tasks whose cpuset
                            // admits `core`, so this never requeues.
                            self.run_task(task, core, queue);
                        }
                        ran = stolen;
                        break 'sockets;
                    }
                }
                tier_start = tier_end;
            }
        }
        batch.clear();
        SCRATCH.set(batch);
        ran
    }

    /// Steal-half against a **remote socket's overflow**: takes up to half
    /// of the overflow's observed depth (bounded by `max`), runs the tasks
    /// whose cpuset admits `core` and bounces the rest to their home
    /// queues. Gated on [`ManagerConfig::cross_socket_backlog`] and the
    /// overflow span, so an ineligible or trivial overflow costs two
    /// relaxed loads. Returns tasks stolen and executed.
    fn steal_overflow(&self, core: usize, s: usize, max: usize) -> usize {
        let sock = &self.sockets[s];
        let depth = sock.overflow_len.load(Ordering::Relaxed);
        if depth == 0
            || depth < self.config.cross_socket_backlog.max(1)
            || !span_admits(&sock.overflow_span, core)
        {
            return 0;
        }
        let quota = depth.div_ceil(2).min(max.max(1));
        let mut ran = 0;
        for _ in 0..quota {
            let Some(task) = sock.overflow.pop() else {
                break;
            };
            sock.overflow_len.fetch_sub(1, Ordering::Relaxed);
            self.note_removed_socket(s, 1);
            if task.cpuset.contains(core) {
                self.cores[core].stolen.fetch_add(1, Ordering::Relaxed);
                self.cores[core].stolen_class[task.options.class.index()]
                    .fetch_add(1, Ordering::Relaxed);
                sock.claimed.fetch_add(1, Ordering::Relaxed);
                let home = task.home;
                self.run_task(task, core, &self.queues[home.index()]);
                ran += 1;
            } else {
                // The span over-approximated: this task cannot run here.
                // Bounce it to its home queue, where its own cores (and
                // correctly-targeted thieves) still see it.
                let cpuset = task.cpuset;
                let home = task.home;
                self.queues[home.index()].requeue(task);
                self.note_enqueued(home, &cpuset);
            }
        }
        if ran > 0 {
            self.cores[core]
                .steal_batches
                .fetch_add(1, Ordering::Relaxed);
        }
        if sock.overflow_len.load(Ordering::Relaxed) == 0 {
            sock.maybe_decay_overflow_span();
        }
        ran
    }

    /// Executes `task` on `core` if allowed; requeues it otherwise.
    /// Returns `true` if the body ran.
    fn run_task(&self, mut task: Task, core: usize, queue: &TaskQueue) -> bool {
        if !task.cpuset.contains(core) {
            // The queue's span covers the task's cpuset, but this particular
            // core was excluded by the submitter. Put it back for a sibling.
            let cpuset = task.cpuset;
            queue.requeue(task);
            self.note_enqueued(queue.id, &cpuset);
            return false;
        }
        let class = task.options.class;
        // Queueing delay ends here: the task is committed to run on this
        // core. Record into the executing core's shard, `take()`ing the
        // stamp so a panic in the body cannot double-count.
        if let (Some(hist), Some(t0)) = (&self.latency, task.submitted_at.take()) {
            let nanos = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            hist.record_at(core, nanos);
            if let Some(by_class) = &self.latency_class {
                by_class[class.index()].record_at(core, nanos);
            }
        }
        let ctx = TaskContext {
            core,
            manager: self,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| (task.body)(&ctx)));
        queue.note_executed(core);
        self.cores[core].executed.fetch_add(1, Ordering::Relaxed);
        self.cores[core].executed_class[class.index()].fetch_add(1, Ordering::Relaxed);
        match outcome {
            Ok(TaskStatus::Done) => self.release_waiters(task.completion.complete()),
            Ok(TaskStatus::Again) if task.options.repeat => {
                // A repeat task re-entering its queue starts a fresh
                // queueing interval; each run measures its own delay.
                task.submitted_at = self.latency.is_some().then(std::time::Instant::now);
                let cpuset = task.cpuset;
                let home = task.home;
                self.queues[home.index()].requeue(task);
                self.note_enqueued(home, &cpuset);
            }
            Ok(TaskStatus::Again) => self.release_waiters(task.completion.complete()),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_owned());
                // Dependents are released even on panic: a dependency is
                // an ordering constraint, not a success gate.
                self.release_waiters(task.completion.complete_panicked(msg));
            }
        }
        true
    }

    /// Scheduler-keypoint entry: records which hook fired and schedules.
    pub fn hook(&self, point: HookPoint, core: usize) -> bool {
        self.hook_batch(point, core, usize::MAX) > 0
    }

    /// [`hook`](Self::hook) with a task budget: records the keypoint and
    /// runs [`schedule_batch`](Self::schedule_batch). Progression workers
    /// use this so one keypoint invocation cannot monopolize a core when a
    /// large backlog arrives at once.
    pub fn hook_batch(&self, point: HookPoint, core: usize, max: usize) -> usize {
        self.hook_counts[point.index()].fetch_add(1, Ordering::Relaxed);
        self.schedule_batch(core, max)
    }

    /// Total tasks currently enqueued anywhere — queues and socket
    /// overflows (racy hint).
    pub fn pending_tasks(&self) -> usize {
        self.queues.iter().map(|q| q.len_hint()).sum::<usize>()
            + self
                .sockets
                .iter()
                .map(|s| s.overflow_len.load(Ordering::Relaxed))
                .sum::<usize>()
    }

    /// `true` if some queue visible from `core` — its hierarchy path or
    /// its socket's overflow — holds work (racy hint).
    pub fn has_work_for(&self, core: usize) -> bool {
        if self
            .topo
            .path_to_root(core)
            .any(|node| self.queues[node.index()].len_hint() > 0)
        {
            return true;
        }
        let sock = &self.sockets[self.core_socket[core] as usize];
        sock.overflow_len.load(Ordering::Relaxed) > 0 && span_admits(&sock.overflow_span, core)
    }

    /// The current contention signal for `core`'s hierarchy path, in
    /// `0.0..=1.0`, **without** advancing the window: the decayed recent
    /// rate under [`SignalPolicy::Windowed`], the lifetime
    /// `contended / acquisitions` ratio under
    /// [`SignalPolicy::Cumulative`]. Observability only — budgets read the
    /// signal through [`adaptive_budget`](Self::adaptive_budget).
    pub fn contention_rate(&self, core: usize) -> f64 {
        debug_assert!(core < self.topo.n_cores(), "core id out of range");
        match self.config.signal {
            SignalPolicy::Windowed => self.cores[core].window.rate(),
            SignalPolicy::Cumulative => {
                let (mut acquisitions, mut contended) = (0u64, 0u64);
                for node in self.topo.path_to_root(core) {
                    if let Some((a, c)) = self.queues[node.index()].lock_stats() {
                        acquisitions += a;
                        contended += c;
                    }
                }
                if acquisitions == 0 {
                    0.0
                } else {
                    contended as f64 / acquisitions as f64
                }
            }
        }
    }

    /// The half-life (in samples) currently governing `core`'s windowed
    /// contention signal: the configured
    /// [`contention_half_life`](ManagerConfig::contention_half_life) when
    /// [`auto_half_life`](ManagerConfig::auto_half_life) is off, the
    /// auto-tuner's latest pick (clamped to
    /// [`AUTO_HALF_LIFE_MIN`](crate::AUTO_HALF_LIFE_MIN)`..=`
    /// [`AUTO_HALF_LIFE_MAX`](crate::AUTO_HALF_LIFE_MAX)) when it is on.
    /// Observability only — the `phase_shift_ramp_auto` bench row reads it
    /// to pin the tuner inside its clamp.
    pub fn contention_half_life(&self, core: usize) -> u64 {
        debug_assert!(core < self.topo.n_cores(), "core id out of range");
        self.cores[core].window.half_life()
    }

    /// The steal-aware park check: `true` if some victim queue (a queue
    /// *not* on `core`'s hierarchy path) holds backlog that `core` may be
    /// able to steal, so the caller should run another keypoint instead of
    /// parking.
    ///
    /// The scan is deliberately cheap — it must run on every
    /// about-to-park decision — and under the socket tier it is
    /// **`O(sockets)`, not `O(cores)`**: each socket is one padded block
    /// of aggregates (pending hint + span), so a remote socket costs two
    /// relaxed loads regardless of how many member queues it has. Only the
    /// prober's *own* socket, whose aggregate cannot distinguish work on
    /// the prober's own path (not stealable) from a sibling's (stealable),
    /// confirms a positive aggregate with the per-queue scan — bounded by
    /// that one socket's victim group. The spans may over-approximate, so
    /// a hit is a *hint*: the next keypoint's steal probe re-checks real
    /// task cpusets under the victim's lock, and
    /// [`Progression`](crate::Progression) workers bound consecutive
    /// fruitless hits so a stale span cannot spin a worker forever.
    ///
    /// Returns `false` without probing when stealing is disabled. Updates
    /// the `park_probe_hits` / `park_probe_misses` /
    /// `park_probe_polls` counters in [`ManagerStats`] (`park_probe_polls`
    /// counts socket aggregates consulted — the scaling study's
    /// O(sockets) assertion reads it directly).
    pub fn park_probe(&self, core: usize) -> bool {
        debug_assert!(core < self.topo.n_cores(), "core id out of range");
        if !self.config.steal {
            return false;
        }
        let own = self.core_socket[core];
        let cross_gate = self.config.cross_socket_backlog.max(1);
        for &s in &self.socket_order[core] {
            self.cores[core].park_polls.fetch_add(1, Ordering::Relaxed);
            let sock = &self.sockets[s as usize];
            let overflow_visible = |gate: usize| {
                self.socket_overflow_active
                    && sock.overflow_len.load(Ordering::Relaxed) >= gate
                    && span_admits(&sock.overflow_span, core)
            };
            if s == own {
                // The own-socket overflow is directly claimable — no
                // confirmation needed beyond its span.
                if overflow_visible(1) {
                    self.cores[core].park_hits.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                if sock.pending.load(Ordering::Relaxed) > 0 && span_admits(&sock.span, core) {
                    // Confirm against the member queues: the aggregate
                    // counts this core's own-path work too, which is
                    // drainable but not *stealable*. `steal_order`'s own
                    // group is exactly the off-path member queues.
                    let (_, member_victims) = &self.steal_order[core][0];
                    for &(qi, _) in member_victims {
                        let queue = &self.queues[qi as usize];
                        if queue.len_hint() > 0 && queue.steal_span_admits(core) {
                            self.cores[core].park_hits.fetch_add(1, Ordering::Relaxed);
                            return true;
                        }
                    }
                }
            } else if overflow_visible(cross_gate)
                || (sock.pending.load(Ordering::Relaxed) >= cross_gate as i64
                    && span_admits(&sock.span, core))
            {
                self.cores[core].park_hits.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        self.cores[core].park_misses.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Wakes the nearest parked worker eligible to steal from `queue`,
    /// returning the woken core.
    ///
    /// This is the escalation half of steal-aware parking: the ordinary
    /// submission wake targets the *new* task's cpuset, but a queue whose
    /// depth has crossed [`ManagerConfig::steal_wake_backlog`] holds older
    /// tasks too, and the nearest core able to help with *those* may not
    /// be in the new task's set at all. Candidates are scanned in the
    /// queue's precomputed nearest-first order
    /// ([`Topology::cores_by_distance_from_node`]); a candidate is woken
    /// when it is parked and the queue's steal span admits it. Each wake
    /// increments the woken core's `wakeups_for_steal` counter in
    /// [`ManagerStats`].
    ///
    /// Called automatically on threshold-crossing enqueues; public so
    /// embedders driving their own keypoints can escalate by hand.
    ///
    /// ```
    /// use pioman::TaskManager;
    /// use piom_topology::presets;
    ///
    /// let mgr = TaskManager::new(presets::kwak().into());
    /// let home = mgr.stats().queues[mgr.topology().core_node(0).index()].id;
    /// // No progression workers are running, so nobody is parked and
    /// // there is nothing to wake.
    /// assert_eq!(mgr.wake_for_steal(home), None);
    /// assert_eq!(mgr.stats().total_wakeups_for_steal(), 0);
    /// ```
    pub fn wake_for_steal(&self, queue: QueueId) -> Option<usize> {
        // Nobody parked (the common overload shape: every worker busy) —
        // skip the candidate scan entirely so a deep queue under a
        // submission hammer pays one load per enqueue, not O(cores).
        if self.parked_count.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let q = &self.queues[queue.index()];
        for (s, cores) in &self.wake_order[queue.index()] {
            // Socket-aggregated recruitment: a socket with every worker
            // busy skips its whole candidate run on one padded load,
            // keeping the scan O(sockets) in the common overload shape
            // instead of polling each member's parked flag.
            if self.sockets[*s as usize].parked.load(Ordering::SeqCst) == 0 {
                continue;
            }
            for &core in cores {
                let core = core as usize;
                if self.cores[core].remote.parked.load(Ordering::SeqCst)
                    && q.steal_span_admits(core)
                {
                    if let Some(t) = self.wakers[core].lock().as_ref() {
                        t.unpark();
                        self.cores[core]
                            .remote
                            .steal_wakeups
                            .fetch_add(1, Ordering::Relaxed);
                        return Some(core);
                    }
                }
            }
        }
        None
    }

    /// `true` if `core`'s progression worker has announced it is parked
    /// (racy hint — see [`Progression`](crate::Progression) for the
    /// publication ordering).
    pub fn is_parked(&self, core: usize) -> bool {
        debug_assert!(core < self.topo.n_cores(), "core id out of range");
        self.cores[core].remote.parked.load(Ordering::SeqCst)
    }

    /// Publishes `core`'s parked state. Workers set it *before* their
    /// final pre-park work checks, so an enqueue racing the park either
    /// is seen by the checks or sees the flag and unparks the worker.
    pub(crate) fn note_parked(&self, core: usize, parked: bool) {
        if self.cores[core]
            .remote
            .parked
            .swap(parked, Ordering::SeqCst)
            != parked
        {
            // Keep the aggregate count in step with the flag transition.
            // The count is published before/after the flag consistently
            // enough for its only consumer, the wake_for_steal
            // short-circuit: a racing enqueue that misses a just-parking
            // worker is the same bounded race as missing the flag itself
            // (covered by the unpark-token ordering argument).
            let sock = &self.sockets[self.core_socket[core] as usize];
            if parked {
                self.parked_count.fetch_add(1, Ordering::SeqCst);
                sock.parked.fetch_add(1, Ordering::SeqCst);
            } else {
                self.parked_count.fetch_sub(1, Ordering::SeqCst);
                sock.parked.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Maps every core's padded state block to one snapshot value.
    fn per_core<T>(&self, f: impl Fn(&CoreState) -> T) -> Vec<T> {
        self.cores.iter().map(|c| f(c)).collect()
    }

    /// Folds a per-core per-class counter array into class totals.
    fn class_totals(
        &self,
        f: impl Fn(&CoreState) -> &[AtomicU64; CLASS_COUNT],
    ) -> [u64; CLASS_COUNT] {
        let mut totals = [0u64; CLASS_COUNT];
        for core in &self.cores {
            for (total, counter) in totals.iter_mut().zip(f(core).iter()) {
                *total += counter.load(Ordering::Relaxed);
            }
        }
        totals
    }

    /// Snapshot of per-queue and per-core counters.
    pub fn stats(&self) -> ManagerStats {
        ManagerStats {
            queues: self
                .queues
                .iter()
                .map(|q| {
                    let (lock_acquisitions, lock_contended) = q.lock_stats().unwrap_or((0, 0));
                    QueueStats {
                        id: q.id,
                        level: q.level,
                        cpuset: q.cpuset,
                        steal_span: q.steal_span(),
                        submitted: q.submitted(),
                        executed: q.executed(),
                        pending: q.len_hint(),
                        lock_acquisitions,
                        lock_contended,
                    }
                })
                .collect(),
            executed_by_core: self.per_core(|c| c.executed.load(Ordering::Relaxed)),
            stolen_by_core: self.per_core(|c| c.stolen.load(Ordering::Relaxed)),
            steal_attempts_by_core: self.per_core(|c| c.steal_attempts.load(Ordering::Relaxed)),
            stolen_batch_by_core: self.per_core(|c| c.steal_batches.load(Ordering::Relaxed)),
            park_probe_hits: self.per_core(|c| c.park_hits.load(Ordering::Relaxed)),
            park_probe_misses: self.per_core(|c| c.park_misses.load(Ordering::Relaxed)),
            park_probe_polls: self.per_core(|c| c.park_polls.load(Ordering::Relaxed)),
            sockets: self
                .sockets
                .iter()
                .map(|s| SocketStats {
                    node: s.node as usize,
                    cpuset: s.cpuset,
                    overflow_pending: s.overflow_len.load(Ordering::Relaxed),
                    overflow_span: span_snapshot(&s.overflow_span),
                    pending_hint: s.pending.load(Ordering::Relaxed).max(0) as usize,
                    span: span_snapshot(&s.span),
                    parked: s.parked.load(Ordering::Relaxed),
                    spilled: s.spilled.load(Ordering::Relaxed),
                    claimed: s.claimed.load(Ordering::Relaxed),
                })
                .collect(),
            wakeups_for_steal: self.per_core(|c| c.remote.steal_wakeups.load(Ordering::Relaxed)),
            hook_idle: self.hook_counts[0].load(Ordering::Relaxed),
            hook_context_switch: self.hook_counts[1].load(Ordering::Relaxed),
            hook_timer: self.hook_counts[2].load(Ordering::Relaxed),
            executed_by_class: self.class_totals(|c| &c.executed_class),
            stolen_by_class: self.class_totals(|c| &c.stolen_class),
            waitlist_released_by_class: {
                let mut totals = [0u64; CLASS_COUNT];
                for (total, counter) in totals.iter_mut().zip(self.released_class.iter()) {
                    *total = counter.load(Ordering::Relaxed);
                }
                totals
            },
            latency: self.latency.as_ref().map(|h| h.snapshot()),
            latency_by_class: self
                .latency_class
                .as_ref()
                .map(|hs| hs.iter().map(|h| h.snapshot()).collect()),
        }
    }

    /// Registers the calling progression worker as the runner for `core`
    /// so submissions can unpark it. Returns the previous registrant.
    pub(crate) fn register_waker(&self, core: usize, thread: Thread) -> Option<Thread> {
        // Presence first: a submitter that reads `true` before the slot
        // fills pays one harmless mutex peek; one that reads `false`
        // after it fills cannot exist.
        self.cores[core]
            .remote
            .waker_present
            .store(true, Ordering::SeqCst);
        self.wakers[core].lock().replace(thread)
    }

    /// Removes the waker registration for `core`.
    pub(crate) fn unregister_waker(&self, core: usize) {
        self.wakers[core].lock().take();
        self.cores[core]
            .remote
            .waker_present
            .store(false, Ordering::SeqCst);
    }

    /// Unparks every registered worker whose core may run a new task.
    ///
    /// Cost discipline (the 1024-core scaling study's submit path): a
    /// core without a registered worker is skipped on one `waker_present`
    /// load — the waker mutex is only touched for cores that actually
    /// have a worker to unpark, so a machine-wide submission on a
    /// workerless (or sparsely-workered) manager is a read-only sweep,
    /// not `n_cores` mutex round-trips per enqueue.
    fn wake_cores(&self, cpuset: CpuSet) {
        for core in cpuset.iter() {
            if core >= self.wakers.len() {
                break;
            }
            if !self.cores[core].remote.waker_present.load(Ordering::SeqCst) {
                continue;
            }
            if let Some(t) = self.wakers[core].lock().as_ref() {
                t.unpark();
            }
        }
    }
}

impl core::fmt::Debug for TaskManager {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TaskManager")
            .field("topology", &self.topo.name())
            .field("queues", &self.queues.len())
            .field("queue_backend", &self.config.queue_backend)
            .finish()
    }
}

/// A task submission being built: created by [`TaskManager::task`],
/// finished by [`spawn`](Self::spawn).
///
/// Defaults: runnable on **every** core (the Global Queue shape), placed on
/// the smallest topology node covering its CPU set, one-shot,
/// [`TaskClass::Interactive`], no deadline, no dependencies. Each method
/// overrides one knob; the four deprecated `submit*` entry points are thin
/// wrappers over this builder.
#[must_use = "a SubmitSpec does nothing until `.spawn()` is called"]
pub struct SubmitSpec<'m> {
    mgr: &'m TaskManager,
    body: TaskFn,
    cpuset: Option<CpuSet>,
    home: Option<usize>,
    options: TaskOptions,
    deps: Vec<TaskHandle>,
    /// Created with the spec (not at spawn) so [`handle`](Self::handle) can
    /// hand out references to the not-yet-spawned task — which is what
    /// makes dependency cycles *expressible*, and why
    /// [`spawn`](Self::spawn) checks for them.
    completion: Arc<Completion>,
}

impl SubmitSpec<'_> {
    /// Restricts execution to `cpuset` ("a CPU set is attached to the task
    /// so as to avoid unwanted cores to execute it", paper §III). The set
    /// is intersected with the machine's cores; the task is enqueued on
    /// the smallest topology node covering the result unless
    /// [`on_core`](Self::on_core) pins a home.
    pub fn cpuset(mut self, cpuset: CpuSet) -> Self {
        self.cpuset = Some(cpuset);
        self
    }

    /// Pins the task's *home* to `core`'s Per-Core Queue instead of the
    /// smallest node covering its CPU set.
    ///
    /// `core` names the core expected to run the task (it dequeues from
    /// its local queue with an uncontended lock), while the CPU set names
    /// every core *allowed* to — if the home falls behind, those cores
    /// steal the backlog in [`Topology::steal_order`] (nearest sibling
    /// first). Without a home, a multi-core cpuset lands in a shared queue
    /// whose lock every allowed core hits on the fast path; a home keeps
    /// the fast path private and pays the shared-lock cost only when
    /// stealing actually happens.
    ///
    /// A repeat task re-enqueues on its home queue after every run, even a
    /// stolen one, so a transient imbalance does not permanently migrate
    /// polling work away from its preferred core.
    pub fn on_core(mut self, core: usize) -> Self {
        self.home = Some(core);
        self
    }

    /// Sets the QoS class lane (default [`TaskClass::Interactive`]; see
    /// [`TaskClass`] for the service order and the starvation bound).
    pub fn class(mut self, class: TaskClass) -> Self {
        self.options.class = class;
        self
    }

    /// Sets the deadline tick: within its class the task drains
    /// earliest-deadline-first, ahead of the class's no-deadline tasks
    /// (see [`TaskOptions::deadline`]). Never overrides class priority.
    pub fn deadline(mut self, tick: u64) -> Self {
        self.options.deadline = Some(tick);
        self
    }

    /// Marks the task repetitive: re-enqueued after each run until the
    /// body returns [`TaskStatus::Done`] (the paper's polling option).
    pub fn repeat(mut self) -> Self {
        self.options.repeat = true;
        self
    }

    /// Replaces the whole option block at once (repeat + class +
    /// deadline), for callers that already hold a [`TaskOptions`].
    pub fn options(mut self, options: TaskOptions) -> Self {
        self.options = options;
        self
    }

    /// Adds a dependency: the task stays parked on the **waitlist** until
    /// `predecessor` completes (or panics — a dependency is an ordering
    /// constraint, not a success gate; see `docs/SCHEDULER.md`). May be
    /// chained to wait on several predecessors; the task is released by
    /// the last one to finish.
    pub fn after(mut self, predecessor: &TaskHandle) -> Self {
        self.deps.push(predecessor.clone());
        self
    }

    /// The handle of the task being built, available *before*
    /// [`spawn`](Self::spawn). Useful for wiring graphs where a
    /// predecessor's body needs the successor's handle.
    pub fn handle(&self) -> TaskHandle {
        TaskHandle {
            completion: self.completion.clone(),
        }
    }

    /// Builds the task and hands it to the scheduler: enqueued immediately
    /// when it has no pending dependencies, parked on the waitlist
    /// otherwise. Returns the same handle as [`handle`](Self::handle).
    ///
    /// # Panics
    ///
    /// Panics if the CPU set selects no core of this machine, if
    /// [`on_core`](Self::on_core) named a core outside the topology or
    /// outside the CPU set, or if the [`after`](Self::after) edges would
    /// close a dependency cycle (checked before any waiter is registered,
    /// so a rejected spawn leaves its predecessors untouched).
    pub fn spawn(self) -> TaskHandle {
        let mgr = self.mgr;
        let requested = self.cpuset.unwrap_or_else(|| mgr.topo.all_cores());
        let effective = requested & mgr.topo.all_cores();
        let home = if let Some(core) = self.home {
            assert!(
                core < mgr.topo.n_cores(),
                "home core {core} outside topology"
            );
            assert!(
                effective.contains(core),
                "home core {core} not in cpuset {requested}"
            );
            QueueId(mgr.topo.core_node(core).index() as u32)
        } else {
            let node = mgr
                .topo
                .smallest_covering(&effective)
                .unwrap_or_else(|| panic!("cpuset {requested} selects no core of this machine"));
            QueueId(node.index() as u32)
        };
        let handle = TaskHandle {
            completion: self.completion.clone(),
        };
        let deps: Vec<Arc<Completion>> = self.deps.iter().map(|h| h.completion.clone()).collect();
        let task = Task {
            body: self.body,
            options: self.options,
            cpuset: effective,
            home,
            completion: self.completion.clone(),
            submitted_at: mgr.latency.is_some().then(std::time::Instant::now),
        };
        if deps.is_empty() {
            mgr.dispatch(task);
            return handle;
        }
        TaskManager::assert_acyclic(&self.completion, &deps);
        self.completion.set_deps(deps.clone());
        let pending = Arc::new(PendingTask {
            remaining: AtomicUsize::new(deps.len()),
            slot: Mutex::new(Some(task)),
        });
        // A predecessor already complete at registration time will never
        // drain this waiter; satisfy its share here. Wherever the *last*
        // satisfaction lands — here or on a completion path — it releases
        // the task exactly once.
        let already_complete = deps
            .iter()
            .filter(|dep| !dep.add_waiter(pending.clone()))
            .count();
        mgr.release_waiters(vec![pending; already_complete]);
        handle
    }
}

impl core::fmt::Debug for SubmitSpec<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SubmitSpec")
            .field("cpuset", &self.cpuset)
            .field("home", &self.home)
            .field("options", &self.options)
            .field("deps", &self.deps.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piom_topology::presets;
    use std::sync::atomic::AtomicUsize;

    fn kwak_mgr() -> Arc<TaskManager> {
        TaskManager::new(presets::kwak().into())
    }

    #[test]
    fn oneshot_runs_once_on_allowed_core() {
        let mgr = kwak_mgr();
        let ran_on = Arc::new(AtomicUsize::new(usize::MAX));
        let r = ran_on.clone();
        let h = mgr
            .task(move |ctx| {
                r.store(ctx.core, Ordering::SeqCst);
                TaskStatus::Done
            })
            .cpuset(CpuSet::single(3))
            .spawn();
        assert!(!mgr.schedule(2), "core 2 sees nothing in its path");
        assert!(!h.is_complete());
        assert!(mgr.schedule(3));
        assert!(h.is_complete());
        assert_eq!(ran_on.load(Ordering::SeqCst), 3);
        assert!(!mgr.schedule(3), "nothing left");
    }

    #[test]
    fn numa_level_task_runs_on_any_node_core() {
        let mgr = kwak_mgr();
        let h = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::range(4..8))
            .spawn();
        // Core 9 is on NUMA #2: its path does not include NUMA #1's queue.
        assert!(!mgr.schedule(9));
        assert!(mgr.schedule(6));
        assert!(h.is_complete());
    }

    #[test]
    fn strict_cpuset_is_honoured_within_shared_queue() {
        let mgr = kwak_mgr();
        // Cores {4, 6}: smallest covering queue is NUMA #1 (cores 4-7),
        // but core 5 must NOT run the task.
        let h = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::from_iter([4, 6]))
            .spawn();
        assert!(!mgr.schedule(5), "excluded core skips the task");
        assert!(!h.is_complete());
        assert_eq!(mgr.pending_tasks(), 1, "task was requeued, not lost");
        assert!(mgr.schedule(6));
        assert!(h.is_complete());
    }

    #[test]
    fn repeat_task_reenqueues_until_done() {
        let mgr = kwak_mgr();
        let mut polls_left = 3;
        let h = mgr
            .task(move |_| {
                polls_left -= 1;
                if polls_left == 0 {
                    TaskStatus::Done
                } else {
                    TaskStatus::Again
                }
            })
            .cpuset(CpuSet::single(0))
            .repeat()
            .spawn();
        assert!(mgr.schedule(0));
        assert!(!h.is_complete(), "first poll fails, task requeued");
        assert!(mgr.schedule(0));
        assert!(!h.is_complete());
        assert!(mgr.schedule(0));
        assert!(h.is_complete(), "third poll succeeds");
        assert_eq!(
            mgr.stats().queues[mgr.topology().core_node(0).index()].executed,
            3
        );
    }

    #[test]
    fn oneshot_returning_again_completes() {
        let mgr = kwak_mgr();
        let h = mgr
            .task(|_| TaskStatus::Again)
            .cpuset(CpuSet::single(0))
            .spawn();
        mgr.schedule(0);
        assert!(h.is_complete());
    }

    #[test]
    fn panicking_task_reports_error_and_scheduler_survives() {
        let mgr = kwak_mgr();
        let h = mgr
            .task(|_| panic!("injected failure"))
            .cpuset(CpuSet::single(0))
            .spawn();
        let h2 = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .spawn();
        mgr.schedule(0);
        let err = h.wait().unwrap_err();
        assert!(err.message.contains("injected failure"));
        assert_eq!(h2.wait(), Ok(()), "subsequent task unaffected");
    }

    #[test]
    fn global_submission_visible_from_every_core() {
        let mgr = kwak_mgr();
        for core in [0, 7, 15] {
            let h = mgr.task(|_| TaskStatus::Done).spawn();
            assert!(mgr.schedule(core));
            assert!(h.is_complete());
        }
    }

    #[test]
    #[should_panic(expected = "selects no core")]
    fn empty_cpuset_panics() {
        let mgr = kwak_mgr();
        let _ = mgr.task(|_| TaskStatus::Done).cpuset(CpuSet::EMPTY).spawn();
    }

    #[test]
    fn foreign_cores_are_masked() {
        let mgr = kwak_mgr();
        // Core 100 does not exist on kwak; the effective set is {1}.
        let h = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::from_iter([1, 100]))
            .spawn();
        assert!(mgr.schedule(1));
        assert!(h.is_complete());
    }

    #[test]
    fn per_core_queue_priority_over_global() {
        // Algorithm 1 processes local tasks before upper queues.
        let mgr = kwak_mgr();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o1 = order.clone();
        mgr.task(move |_| {
            o1.lock().push("global");
            TaskStatus::Done
        })
        .spawn();
        let o2 = order.clone();
        mgr.task(move |_| {
            o2.lock().push("local");
            TaskStatus::Done
        })
        .cpuset(CpuSet::single(2))
        .spawn();
        mgr.schedule(2);
        assert_eq!(*order.lock(), vec!["local", "global"]);
    }

    #[test]
    fn schedule_one_runs_exactly_one() {
        let mgr = kwak_mgr();
        let h1 = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .spawn();
        let h2 = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .spawn();
        assert!(mgr.schedule_one(0));
        assert!(h1.is_complete());
        assert!(!h2.is_complete());
        assert!(mgr.schedule_one(0));
        assert!(h2.is_complete());
        assert!(!mgr.schedule_one(0));
    }

    #[test]
    fn tasks_can_submit_tasks() {
        let mgr = kwak_mgr();
        let h = mgr
            .task(|ctx| {
                // A request submission that must be polled afterwards
                // submits a polling task (paper §IV-B).
                ctx.manager
                    .task(|_| TaskStatus::Done)
                    .cpuset(CpuSet::single(0))
                    .spawn();
                TaskStatus::Done
            })
            .cpuset(CpuSet::single(0))
            .spawn();
        mgr.schedule(0);
        assert!(h.is_complete());
        assert_eq!(mgr.pending_tasks(), 1);
        mgr.schedule(0);
        assert_eq!(mgr.pending_tasks(), 0);
    }

    #[test]
    fn hooks_count_and_schedule() {
        let mgr = kwak_mgr();
        mgr.task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .spawn();
        assert!(mgr.hook(HookPoint::Idle, 0));
        mgr.hook(HookPoint::TimerInterrupt, 1);
        mgr.hook(HookPoint::ContextSwitch, 2);
        mgr.hook(HookPoint::ContextSwitch, 3);
        let stats = mgr.stats();
        assert_eq!(stats.hook_idle, 1);
        assert_eq!(stats.hook_timer, 1);
        assert_eq!(stats.hook_context_switch, 2);
    }

    #[test]
    fn lockfree_backend_runs_tasks() {
        let mgr = TaskManager::with_config(
            presets::kwak().into(),
            ManagerConfig {
                queue_backend: QueueBackend::LockFree,
                ..ManagerConfig::default()
            },
        );
        let h = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::range(0..4))
            .spawn();
        assert!(mgr.schedule(2));
        assert!(h.is_complete());
        let qstats = &mgr.stats().queues;
        assert!(qstats.iter().all(|q| q.lock_acquisitions == 0));
    }

    #[test]
    fn mutex_backend_runs_tasks() {
        let mgr = TaskManager::with_config(
            presets::kwak().into(),
            ManagerConfig {
                queue_backend: QueueBackend::Mutex,
                ..ManagerConfig::default()
            },
        );
        let h = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::range(0..4))
            .spawn();
        assert!(mgr.schedule(2));
        assert!(h.is_complete());
        // The OS mutex is uninstrumented: no spinlock stats.
        assert!(mgr.stats().queues.iter().all(|q| q.lock_acquisitions == 0));
    }

    #[test]
    fn latency_histogram_off_by_default() {
        let mgr = kwak_mgr();
        let h = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .spawn();
        mgr.schedule(0);
        assert!(h.is_complete());
        assert!(mgr.stats().latency.is_none(), "observability is opt-in");
    }

    #[test]
    fn latency_histogram_counts_each_run() {
        let mgr = TaskManager::with_config(
            presets::kwak().into(),
            ManagerConfig {
                latency_histogram: true,
                ..ManagerConfig::default()
            },
        );
        // A repeat task running 3 times + a oneshot: 4 recorded intervals.
        let mut left = 3;
        let h = mgr
            .task(move |_| {
                left -= 1;
                if left == 0 {
                    TaskStatus::Done
                } else {
                    TaskStatus::Again
                }
            })
            .cpuset(CpuSet::single(0))
            .repeat()
            .spawn();
        let h2 = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(1))
            .spawn();
        while !h.is_complete() {
            mgr.schedule(0);
        }
        mgr.schedule(1);
        assert!(h2.is_complete());
        let snap = mgr.stats().latency.expect("histogram enabled");
        assert_eq!(snap.count(), 4, "each execution measures its own delay");
        assert!(snap.min().is_some());
    }

    #[test]
    fn latency_histogram_survives_cpuset_bounce() {
        // A task requeued because the drawing core is outside its cpuset
        // keeps its original stamp: the bounce is queueing delay, not a
        // fresh interval.
        let mgr = TaskManager::with_config(
            presets::kwak().into(),
            ManagerConfig {
                latency_histogram: true,
                ..ManagerConfig::default()
            },
        );
        let h = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(1))
            .spawn();
        // Core 0 shares the chip queue with core 1 but may not run the
        // task; it requeues it without recording.
        mgr.schedule(0);
        assert!(!h.is_complete());
        assert_eq!(mgr.stats().latency.as_ref().unwrap().count(), 0);
        mgr.schedule(1);
        assert!(h.is_complete());
        assert_eq!(mgr.stats().latency.unwrap().count(), 1);
    }

    #[test]
    fn wait_active_self_progresses() {
        let mgr = kwak_mgr();
        let h = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(4))
            .spawn();
        h.wait_active(&mgr, 4).unwrap();
        assert!(h.is_complete());
    }

    #[test]
    fn urgent_task_preempts_queue_order() {
        // Preemptive tasks (§VI): submitted last, executed first.
        let mgr = kwak_mgr();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let o = order.clone();
            mgr.task(move |_| {
                o.lock().push(format!("normal{i}"));
                TaskStatus::Done
            })
            .cpuset(CpuSet::single(0))
            .spawn();
        }
        let o = order.clone();
        mgr.task(move |_| {
            o.lock().push("urgent".to_owned());
            TaskStatus::Done
        })
        .cpuset(CpuSet::single(0))
        .class(TaskClass::Urgent)
        .spawn();
        mgr.schedule(0);
        assert_eq!(
            *order.lock(),
            vec!["urgent", "normal0", "normal1", "normal2"]
        );
    }

    #[test]
    fn urgent_repeat_requeues_at_tail() {
        // An urgent polling task re-enqueues at its *class lane's* tail:
        // it still outranks lower classes on the next pop, but within the
        // Urgent lane it queues behind other urgent work instead of
        // jumping the front (the PR-8 fix: requeue used to push urgent
        // repeats at the steal-cursor front, starving same-class peers).
        let mgr = kwak_mgr();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = order.clone();
        let mut polls = 0;
        mgr.task(move |_| {
            polls += 1;
            o.lock().push("urgent-poll");
            if polls == 2 {
                TaskStatus::Done
            } else {
                TaskStatus::Again
            }
        })
        .cpuset(CpuSet::single(0))
        .repeat()
        .class(TaskClass::Urgent)
        .spawn();
        let o = order.clone();
        mgr.task(move |_| {
            o.lock().push("normal");
            TaskStatus::Done
        })
        .cpuset(CpuSet::single(0))
        .spawn();
        // One pass runs each pending task once (the requeued poll waits for
        // the next keypoint).
        mgr.schedule(0);
        assert_eq!(*order.lock(), vec!["urgent-poll", "normal"]);
        mgr.schedule(0);
        assert_eq!(*order.lock(), vec!["urgent-poll", "normal", "urgent-poll"]);
    }

    fn no_steal_mgr() -> Arc<TaskManager> {
        TaskManager::with_config(
            presets::kwak().into(),
            ManagerConfig {
                steal: false,
                ..ManagerConfig::default()
            },
        )
    }

    #[test]
    fn schedule_batch_respects_budget_and_drains_in_one_lock() {
        let mgr = kwak_mgr();
        for _ in 0..10 {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::single(0))
                .spawn();
        }
        let locks_before =
            mgr.stats().queues[mgr.topology().core_node(0).index()].lock_acquisitions;
        assert_eq!(mgr.schedule_batch(0, 4), 4);
        let q = &mgr.stats().queues[mgr.topology().core_node(0).index()];
        assert_eq!(q.pending, 6);
        assert_eq!(
            q.lock_acquisitions - locks_before,
            1,
            "one batch, one lock acquisition"
        );
        assert_eq!(mgr.schedule_batch(0, usize::MAX), 6);
    }

    #[test]
    fn schedule_batch_scans_whole_hierarchy_within_budget() {
        let mgr = kwak_mgr();
        let local = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(2))
            .spawn();
        let global = mgr.task(|_| TaskStatus::Done).spawn();
        assert_eq!(mgr.schedule_batch(2, 8), 2);
        assert!(local.is_complete());
        assert!(global.is_complete());
    }

    #[test]
    fn starved_core_completes_backlog_via_steal_half() {
        // The satellite scenario: every task is homed on core 1's queue but
        // cores {0, 1} may run them. Core 1 never schedules (it is "busy
        // computing"); core 0's keypoints must finish everything by
        // stealing. Deterministic: single-threaded, driven by hand.
        //
        // With steal-half, each probe takes half the remaining eligible
        // backlog: 16 tasks drain in 8+4+2+1+1 over exactly 5 probes —
        // the geometric drain that replaces 16 one-task probes.
        let mgr = kwak_mgr();
        let handles: Vec<_> = (0..16)
            .map(|_| {
                mgr.task(|_| TaskStatus::Done)
                    .cpuset(CpuSet::from_iter([0, 1]))
                    .on_core(1)
                    .spawn()
            })
            .collect();
        let mut rounds = 0;
        while handles.iter().any(|h| !h.is_complete()) {
            assert!(mgr.schedule(0), "steal round {rounds} found nothing");
            rounds += 1;
        }
        assert_eq!(rounds, 5, "steal-half drains 16 tasks in 5 probes");
        assert!(!mgr.schedule(0), "backlog fully drained");
        let stats = mgr.stats();
        assert_eq!(stats.stolen_by_core[0], 16);
        assert_eq!(stats.executed_by_core[0], 16);
        assert_eq!(stats.stolen_batch_by_core[0], 5);
        assert!(stats.steal_attempts_by_core[0] >= 5);
        assert_eq!(stats.total_stolen(), 16);
        assert_eq!(stats.total_steal_batches(), 5);
    }

    #[test]
    fn adaptive_budget_covers_steal_half_when_local_path_is_empty() {
        // An idle worker's budget must not clamp a stolen half-backlog to
        // the MIN_BATCH floor: with stealing on, the empty-path budget is
        // DEFAULT_BATCH, so one adaptive keypoint takes the full half.
        let mgr = kwak_mgr();
        for _ in 0..64 {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::from_iter([0, 1]))
                .on_core(1)
                .spawn();
        }
        assert_eq!(mgr.adaptive_budget(0), DEFAULT_BATCH);
        let budget = mgr.adaptive_budget(0);
        assert_eq!(
            mgr.schedule_batch(0, budget),
            32,
            "one adaptive keypoint steals the whole half-backlog"
        );
        // Without stealing there is nothing an empty-path keypoint could
        // run; the floor is enough to cover submission races.
        let no_steal = no_steal_mgr();
        assert_eq!(no_steal.adaptive_budget(0), MIN_BATCH);
    }

    #[test]
    fn schedule_one_steals_at_most_one_task() {
        let mgr = kwak_mgr();
        for _ in 0..8 {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::from_iter([0, 1]))
                .on_core(1)
                .spawn();
        }
        assert!(mgr.schedule_one(0));
        let stats = mgr.stats();
        assert_eq!(stats.stolen_by_core[0], 1, "budget 1 caps the half quota");
        assert_eq!(mgr.pending_tasks(), 7);
    }

    #[test]
    fn steal_prefers_deeper_backlog_within_a_tier() {
        // Victims at the same locality distance from the thief (core 4):
        // cores 5, 6 and 7 are all SameNuma siblings. Core 6's queue is
        // deepest, so the probe must start there, not at core 5 (the
        // lowest-id hot-but-shallower victim).
        let mgr = kwak_mgr();
        let shallow = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::from_iter([4, 5]))
            .on_core(5)
            .spawn();
        let deep: Vec<_> = (0..6)
            .map(|_| {
                mgr.task(|_| TaskStatus::Done)
                    .cpuset(CpuSet::from_iter([4, 6]))
                    .on_core(6)
                    .spawn()
            })
            .collect();
        assert!(mgr.schedule(4));
        // Steal-half of core 6's backlog: 3 of its 6 tasks ran, core 5's
        // single task untouched.
        assert_eq!(deep.iter().filter(|h| h.is_complete()).count(), 3);
        assert!(!shallow.is_complete());
    }

    #[test]
    fn steal_never_takes_a_task_whose_cpuset_excludes_the_thief() {
        // The other satellite scenario: core 2 is idle, core 3's queue is
        // loaded, but every task's cpuset is {3} — nothing may move.
        let mgr = kwak_mgr();
        for _ in 0..4 {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::single(3))
                .spawn();
        }
        for _ in 0..10 {
            assert!(!mgr.schedule(2), "core 2 must not run core-3-only work");
        }
        let stats = mgr.stats();
        assert_eq!(stats.stolen_by_core[2], 0);
        assert!(stats.steal_attempts_by_core[2] >= 10, "probes were made");
        assert_eq!(mgr.pending_tasks(), 4, "no task lost or displaced");
        assert_eq!(mgr.schedule_batch(3, usize::MAX), 4);
    }

    #[test]
    fn steal_prefers_the_nearest_sibling() {
        let mgr = kwak_mgr();
        // Two stealable tasks: one homed on core 5 (same NUMA node as the
        // thief, core 4), one homed on core 12 (across the interconnect).
        let near = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::from_iter([4, 5]))
            .on_core(5)
            .spawn();
        let far = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::from_iter([4, 12]))
            .on_core(12)
            .spawn();
        assert!(mgr.schedule(4));
        assert!(near.is_complete(), "nearest victim first");
        assert!(!far.is_complete());
        assert!(mgr.schedule(4));
        assert!(far.is_complete());
    }

    #[test]
    fn stealing_disabled_leaves_foreign_backlogs_alone() {
        let mgr = no_steal_mgr();
        let h = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::from_iter([0, 1]))
            .on_core(1)
            .spawn();
        assert!(!mgr.schedule(0), "steal disabled: core 0 spins");
        assert!(!h.is_complete());
        let stats = mgr.stats();
        assert_eq!(stats.stolen_by_core[0], 0);
        assert_eq!(stats.steal_attempts_by_core[0], 0);
        assert!(mgr.schedule(1), "home core drains its own queue");
        assert!(h.is_complete());
    }

    #[test]
    fn stolen_repeat_task_requeues_on_its_home_queue() {
        let mgr = kwak_mgr();
        let mut polls = 0;
        let h = mgr
            .task(move |_| {
                polls += 1;
                if polls == 2 {
                    TaskStatus::Done
                } else {
                    TaskStatus::Again
                }
            })
            .cpuset(CpuSet::from_iter([0, 1]))
            .on_core(1)
            .repeat()
            .spawn();
        assert!(mgr.schedule(0), "first poll runs stolen on core 0");
        assert!(!h.is_complete());
        // The re-enqueue went back to core 1's queue, not the thief's.
        let home_q = mgr.topology().core_node(1).index();
        assert_eq!(mgr.stats().queues[home_q].pending, 1);
        assert!(mgr.schedule(1), "home core finishes it locally");
        assert!(h.is_complete());
    }

    #[test]
    fn lockfree_backend_steals_too() {
        let mgr = TaskManager::with_config(
            presets::kwak().into(),
            ManagerConfig {
                queue_backend: QueueBackend::LockFree,
                ..ManagerConfig::default()
            },
        );
        let h = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::from_iter([0, 1]))
            .on_core(1)
            .spawn();
        assert!(mgr.schedule(0));
        assert!(h.is_complete());
        assert_eq!(mgr.stats().stolen_by_core[0], 1);
    }

    #[test]
    #[should_panic(expected = "not in cpuset")]
    fn submit_on_rejects_home_outside_cpuset() {
        let mgr = kwak_mgr();
        let _ = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(3))
            .on_core(2)
            .spawn();
    }

    #[test]
    fn park_probe_sees_distant_stealable_backlog() {
        let mgr = kwak_mgr();
        // Nothing anywhere: every probe misses.
        assert!(!mgr.park_probe(0));
        // Backlog homed across the interconnect, stealable by core 0.
        for _ in 0..4 {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::from_iter([0, 12]))
                .on_core(12)
                .spawn();
        }
        assert!(mgr.park_probe(0), "distant victim backlog must be seen");
        let stats = mgr.stats();
        assert_eq!(stats.park_probe_hits[0], 1);
        assert_eq!(stats.park_probe_misses[0], 1);
    }

    #[test]
    fn park_probe_ignores_backlog_outside_the_steal_span() {
        let mgr = kwak_mgr();
        for _ in 0..4 {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::single(3))
                .spawn();
        }
        // Core 2 may never run core-3-only work: the span filter must
        // reject the queue without a hit, so the worker parks instead of
        // spinning on unstealable backlog.
        assert!(!mgr.park_probe(2));
        assert_eq!(mgr.stats().park_probe_misses[2], 1);
        assert_eq!(mgr.stats().park_probe_hits[2], 0);
        // Core 3 itself has the work on its own path — the probe is about
        // *victim* queues only and still misses (path queues are excluded).
        assert!(!mgr.park_probe(3));
    }

    #[test]
    fn park_probe_disabled_with_stealing() {
        let mgr = no_steal_mgr();
        mgr.task(|_| TaskStatus::Done)
            .cpuset(CpuSet::from_iter([0, 1]))
            .on_core(1)
            .spawn();
        assert!(!mgr.park_probe(0), "no stealing: always park");
        let stats = mgr.stats();
        assert_eq!(stats.total_park_probe_hits(), 0);
        assert_eq!(
            stats.total_park_probe_misses(),
            0,
            "disabled probes are not counted as misses"
        );
    }

    #[test]
    fn wake_for_steal_without_workers_is_a_no_op() {
        let mgr = kwak_mgr();
        for _ in 0..16 {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::from_iter([0, 1]))
                .on_core(1)
                .spawn();
        }
        let home = mgr.stats().queues[mgr.topology().core_node(1).index()].id;
        assert_eq!(mgr.wake_for_steal(home), None);
        assert_eq!(mgr.stats().total_wakeups_for_steal(), 0);
        assert!(!mgr.is_parked(0));
    }

    #[test]
    fn queue_stats_expose_the_steal_span() {
        let mgr = kwak_mgr();
        mgr.task(|_| TaskStatus::Done)
            .cpuset(CpuSet::from_iter([0, 1]))
            .on_core(1)
            .spawn();
        let qstats = &mgr.stats().queues[mgr.topology().core_node(1).index()];
        assert!(qstats.steal_span.contains(0));
        assert!(qstats.steal_span.contains(1));
        assert!(!qstats.steal_span.contains(2));
    }

    #[test]
    fn windowed_budget_matches_cumulative_shape_on_quiet_queues() {
        // With no contention both policies must produce the same budgets:
        // depth-sized, clamped, DEFAULT_BATCH on an empty stealing path.
        let windowed = kwak_mgr();
        let cumulative = TaskManager::with_config(
            presets::kwak().into(),
            ManagerConfig {
                signal: SignalPolicy::Cumulative,
                ..ManagerConfig::default()
            },
        );
        for mgr in [&windowed, &cumulative] {
            assert_eq!(mgr.adaptive_budget(0), DEFAULT_BATCH);
            for _ in 0..100 {
                mgr.task(|_| TaskStatus::Done)
                    .cpuset(CpuSet::single(0))
                    .spawn();
            }
            let b = mgr.adaptive_budget(0);
            assert!((100..=MAX_BATCH).contains(&b), "budget {b} tracks depth");
        }
        assert_eq!(windowed.contention_rate(0), 0.0);
        assert_eq!(cumulative.contention_rate(0), 0.0);
    }

    #[test]
    fn executed_by_core_distribution() {
        let mgr = kwak_mgr();
        for _ in 0..10 {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::single(3))
                .spawn();
        }
        mgr.schedule(3);
        let stats = mgr.stats();
        assert_eq!(stats.executed_by_core[3], 10);
        assert_eq!(stats.executed_by_core.iter().sum::<u64>(), 10);
    }

    #[test]
    fn dependent_task_waits_for_its_predecessor() {
        let mgr = kwak_mgr();
        let first = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .spawn();
        let second = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .after(&first)
            .spawn();
        // Only the predecessor is enqueued; the dependent is parked.
        assert_eq!(mgr.pending_tasks(), 1);
        assert!(mgr.schedule_one(0), "runs the predecessor");
        assert!(first.is_complete());
        assert!(!second.is_complete());
        assert_eq!(mgr.pending_tasks(), 1, "release re-enqueued the dependent");
        assert!(mgr.schedule_one(0));
        assert!(second.is_complete());
        assert_eq!(mgr.stats().waitlist_released_by_class, [0, 1, 0, 0]);
    }

    #[test]
    fn dependent_on_completed_predecessor_dispatches_immediately() {
        let mgr = kwak_mgr();
        let first = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .spawn();
        mgr.schedule(0);
        assert!(first.is_complete());
        let second = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .after(&first)
            .spawn();
        assert_eq!(mgr.pending_tasks(), 1, "no parking on a finished task");
        mgr.schedule(0);
        assert!(second.is_complete());
        assert_eq!(mgr.stats().total_waitlist_released(), 1);
    }

    #[test]
    fn dependent_waits_for_every_predecessor() {
        let mgr = kwak_mgr();
        let a = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .spawn();
        let b = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(1))
            .spawn();
        let joined = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::from_iter([0, 1]))
            .after(&a)
            .after(&b)
            .spawn();
        mgr.schedule(0);
        assert!(a.is_complete());
        assert!(!joined.is_complete());
        assert!(
            !mgr.has_work_for(0),
            "one of two predecessors done: still parked"
        );
        // Running b releases the join; the same keypoint's upward scan may
        // already execute it (the release re-enqueues on the {0,1} queue,
        // which is on core 1's path above its per-core queue).
        mgr.schedule(1);
        assert!(b.is_complete());
        let _ = mgr.schedule(0) || mgr.schedule(1);
        assert!(joined.is_complete());
        assert_eq!(mgr.stats().total_waitlist_released(), 1);
    }

    #[test]
    fn panicked_predecessor_still_releases_dependents() {
        // A dependency is an ordering constraint, not a success gate:
        // pipelines drain even when a stage fails.
        let mgr = kwak_mgr();
        let doomed = mgr
            .task(|_| panic!("stage failed"))
            .cpuset(CpuSet::single(0))
            .spawn();
        let dependent = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .after(&doomed)
            .spawn();
        mgr.schedule(0);
        assert!(doomed.wait().is_err());
        mgr.schedule(0);
        assert_eq!(dependent.wait(), Ok(()), "released despite the panic");
    }

    #[test]
    fn repeat_predecessor_releases_only_on_done() {
        let mgr = kwak_mgr();
        let mut polls = 0;
        let poll = mgr
            .task(move |_| {
                polls += 1;
                if polls == 3 {
                    TaskStatus::Done
                } else {
                    TaskStatus::Again
                }
            })
            .cpuset(CpuSet::single(0))
            .repeat()
            .spawn();
        let dependent = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .after(&poll)
            .spawn();
        mgr.schedule(0); // poll 1: Again — no release
        mgr.schedule(0); // poll 2: Again — no release
        assert!(!dependent.is_complete());
        assert_eq!(mgr.stats().total_waitlist_released(), 0);
        mgr.schedule(0); // poll 3: Done — release
        mgr.schedule(0);
        assert!(dependent.is_complete());
        assert_eq!(mgr.stats().total_waitlist_released(), 1);
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn dependency_cycle_rejected_at_spawn() {
        let mgr = kwak_mgr();
        // `handle()` makes the cycle expressible: b waits on a's future
        // handle, then a tries to wait on b.
        let spec_a = mgr.task(|_| TaskStatus::Done).cpuset(CpuSet::single(0));
        let ha = spec_a.handle();
        let hb = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .after(&ha)
            .spawn();
        let _ = spec_a.after(&hb).spawn();
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn self_dependency_rejected_at_spawn() {
        let mgr = kwak_mgr();
        let spec = mgr.task(|_| TaskStatus::Done).cpuset(CpuSet::single(0));
        let own = spec.handle();
        let _ = spec.after(&own).spawn();
    }

    #[test]
    fn spec_handle_is_the_spawned_handle() {
        let mgr = kwak_mgr();
        let spec = mgr.task(|_| TaskStatus::Done).cpuset(CpuSet::single(0));
        let early = spec.handle();
        let spawned = spec.spawn();
        assert!(!early.is_complete());
        mgr.schedule(0);
        assert!(early.is_complete() && spawned.is_complete());
    }

    #[test]
    fn per_class_counters_split_executions_and_steals() {
        let mgr = kwak_mgr();
        for (class, n) in [
            (TaskClass::Urgent, 1),
            (TaskClass::Interactive, 2),
            (TaskClass::Bulk, 3),
            (TaskClass::Background, 4),
        ] {
            for _ in 0..n {
                mgr.task(|_| TaskStatus::Done)
                    .cpuset(CpuSet::single(0))
                    .class(class)
                    .spawn();
            }
        }
        mgr.schedule(0);
        let stats = mgr.stats();
        assert_eq!(stats.executed_by_class, [1, 2, 3, 4]);
        assert_eq!(stats.stolen_by_class, [0; CLASS_COUNT]);
        assert_eq!(
            stats.executed_by_class.iter().sum::<u64>(),
            stats.executed_by_core.iter().sum::<u64>()
        );
        // A stolen bulk task lands in both the stolen and executed splits.
        mgr.task(|_| TaskStatus::Done)
            .cpuset(CpuSet::from_iter([0, 1]))
            .on_core(1)
            .class(TaskClass::Bulk)
            .spawn();
        assert!(mgr.schedule(0), "core 0 steals core 1's bulk task");
        let stats = mgr.stats();
        assert_eq!(stats.stolen_by_class, [0, 0, 1, 0]);
        assert_eq!(stats.executed_by_class, [1, 2, 4, 4]);
    }

    #[test]
    fn per_class_latency_histograms_record_each_run() {
        let mgr = TaskManager::with_config(
            presets::kwak().into(),
            ManagerConfig {
                latency_histogram: true,
                ..ManagerConfig::default()
            },
        );
        mgr.task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .class(TaskClass::Urgent)
            .spawn();
        mgr.task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .spawn();
        mgr.schedule(0);
        let stats = mgr.stats();
        let by_class = stats.latency_by_class.expect("armed with the histogram");
        assert_eq!(by_class.len(), CLASS_COUNT);
        assert_eq!(by_class[TaskClass::Urgent.index()].count(), 1);
        assert_eq!(by_class[TaskClass::Interactive.index()].count(), 1);
        assert_eq!(by_class[TaskClass::Bulk.index()].count(), 0);
        assert_eq!(
            stats.latency.expect("overall histogram").count(),
            2,
            "overall histogram still counts every run"
        );
    }

    #[test]
    fn per_class_latency_absent_when_disabled() {
        let mgr = kwak_mgr();
        mgr.task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .spawn();
        mgr.schedule(0);
        assert!(mgr.stats().latency_by_class.is_none());
    }

    /// The four deprecated entry points stay behaviourally identical to
    /// their builder expansions. This module is their only caller.
    #[allow(deprecated)]
    mod deprecated_wrappers {
        use super::*;

        #[test]
        fn submit_matches_builder() {
            let mgr = kwak_mgr();
            let h = mgr.submit(
                |_| TaskStatus::Done,
                CpuSet::single(0),
                TaskOptions::oneshot(),
            );
            assert!(mgr.schedule(0));
            assert!(h.is_complete());
        }

        #[test]
        fn submit_boxed_matches_builder() {
            let mgr = kwak_mgr();
            let h = mgr.submit_boxed(
                Box::new(|_| TaskStatus::Done),
                CpuSet::single(0),
                TaskOptions::repeat(),
            );
            assert!(mgr.schedule(0));
            assert!(h.is_complete(), "repeat + Done completes");
        }

        #[test]
        fn submit_global_matches_builder() {
            let mgr = kwak_mgr();
            let h = mgr.submit_global(|_| TaskStatus::Done, TaskOptions::oneshot());
            assert!(mgr.schedule(15), "visible from any core");
            assert!(h.is_complete());
        }

        #[test]
        fn submit_on_matches_builder() {
            let mgr = kwak_mgr();
            let h = mgr.submit_on(
                |_| TaskStatus::Done,
                1,
                CpuSet::from_iter([0, 1]),
                TaskOptions::oneshot(),
            );
            let home_q = mgr.topology().core_node(1).index();
            assert_eq!(mgr.stats().queues[home_q].pending, 1, "homed on core 1");
            assert!(mgr.schedule(1));
            assert!(h.is_complete());
        }

        #[test]
        fn urgent_option_forwarder_reaches_the_urgent_lane() {
            let mgr = kwak_mgr();
            let order = Arc::new(Mutex::new(Vec::new()));
            let o = order.clone();
            mgr.submit(
                move |_| {
                    o.lock().push("normal");
                    TaskStatus::Done
                },
                CpuSet::single(0),
                TaskOptions::oneshot(),
            );
            let o = order.clone();
            mgr.submit(
                move |_| {
                    o.lock().push("urgent");
                    TaskStatus::Done
                },
                CpuSet::single(0),
                TaskOptions::oneshot().urgent(),
            );
            mgr.schedule(0);
            assert_eq!(*order.lock(), vec!["urgent", "normal"]);
        }
    }
}
