//! The task manager: hierarchical queues + Algorithms 1 and 2.

use crate::completion::Completion;
use crate::queue::{QueueId, TaskQueue};
use crate::stats::{ManagerStats, QueueStats};
use crate::task::{Task, TaskContext, TaskFn, TaskOptions, TaskStatus};
use crate::TaskHandle;
use core::sync::atomic::{AtomicU64, Ordering};
use parking_lot::Mutex;
use piom_cpuset::CpuSet;
use piom_topology::Topology;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::Thread;

/// Which storage backs the task queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// FIFO list + TTAS spinlock with double-checked dequeue (the paper's
    /// implementation, §IV-A).
    #[default]
    Spinlock,
    /// Lock-free segmented queue (the paper's §VI "short term" future work;
    /// compared against spinlocks by the ablation benches).
    LockFree,
}

/// Task-manager construction options.
#[derive(Debug, Clone, Default)]
pub struct ManagerConfig {
    /// Queue storage choice.
    pub backend: QueueBackend,
}

/// Thread-scheduler keypoints at which the task manager is invoked
/// (paper §III: "CPU idleness, context switches, timer interrupts").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookPoint {
    /// A core ran out of ready threads.
    Idle,
    /// The thread scheduler switched contexts on a core.
    ContextSwitch,
    /// The periodic timer fired on a core.
    TimerInterrupt,
}

impl HookPoint {
    fn index(self) -> usize {
        match self {
            HookPoint::Idle => 0,
            HookPoint::ContextSwitch => 1,
            HookPoint::TimerInterrupt => 2,
        }
    }
}

/// The scalable task scheduling system: one queue per topology node,
/// submission by CPU set, execution by upward queue scan.
///
/// See the [crate docs](crate) for an overview and the paper mapping.
pub struct TaskManager {
    topo: Arc<Topology>,
    /// One queue per topology node, indexed by node arena index.
    queues: Vec<TaskQueue>,
    /// Tasks executed per core (the paper's task-distribution measurements).
    executed_by_core: Vec<AtomicU64>,
    /// Hook invocation counters, indexed by `HookPoint::index`.
    hook_counts: [AtomicU64; 3],
    /// Progression workers to unpark when work arrives, one slot per core.
    wakers: Vec<Mutex<Option<Thread>>>,
    config: ManagerConfig,
}

impl TaskManager {
    /// Creates a manager with default configuration (spinlock queues).
    pub fn new(topo: Arc<Topology>) -> Arc<Self> {
        Self::with_config(topo, ManagerConfig::default())
    }

    /// Creates a manager with explicit configuration.
    pub fn with_config(topo: Arc<Topology>, config: ManagerConfig) -> Arc<Self> {
        let queues = topo
            .iter()
            .map(|(id, node)| {
                let qid = QueueId(id.index() as u32);
                match config.backend {
                    QueueBackend::Spinlock => {
                        TaskQueue::new_spin(qid, node.level, node.cpuset)
                    }
                    QueueBackend::LockFree => {
                        TaskQueue::new_lockfree(qid, node.level, node.cpuset)
                    }
                }
            })
            .collect();
        let executed_by_core = (0..topo.n_cores()).map(|_| AtomicU64::new(0)).collect();
        let wakers = (0..topo.n_cores()).map(|_| Mutex::new(None)).collect();
        Arc::new(TaskManager {
            topo,
            queues,
            executed_by_core,
            hook_counts: Default::default(),
            wakers,
            config,
        })
    }

    /// The topology the queues are mapped onto.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The configuration used at construction.
    pub fn config(&self) -> &ManagerConfig {
        &self.config
    }

    /// Submits a task runnable by any core in `cpuset`.
    ///
    /// The CPU set "is examinated to find the corresponding task queue and
    /// the task is inserted in this list" (§III-A): the queue is the
    /// smallest topology node covering the set.
    ///
    /// # Panics
    ///
    /// Panics if `cpuset` contains no core of this machine.
    pub fn submit<F>(&self, body: F, cpuset: CpuSet, options: TaskOptions) -> TaskHandle
    where
        F: FnMut(&TaskContext<'_>) -> TaskStatus + Send + 'static,
    {
        self.submit_boxed(Box::new(body), cpuset, options)
    }

    /// [`submit`](Self::submit) for an already-boxed body (avoids double
    /// boxing when the caller stores `TaskFn`s).
    pub fn submit_boxed(&self, body: TaskFn, cpuset: CpuSet, options: TaskOptions) -> TaskHandle {
        let effective = cpuset & self.topo.all_cores();
        let node = self
            .topo
            .smallest_covering(&effective)
            .unwrap_or_else(|| panic!("cpuset {cpuset} selects no core of this machine"));
        let home = QueueId(node.index() as u32);
        let completion = Completion::new();
        let handle = TaskHandle {
            completion: completion.clone(),
        };
        self.queues[home.index()].enqueue(Task {
            body,
            options,
            cpuset: effective,
            home,
            completion,
        });
        self.wake_cores(effective);
        handle
    }

    /// Submits to the Global Queue: runnable by every core. Used when no
    /// idle core was found at submission time (§IV-B).
    pub fn submit_global<F>(&self, body: F, options: TaskOptions) -> TaskHandle
    where
        F: FnMut(&TaskContext<'_>) -> TaskStatus + Send + 'static,
    {
        self.submit(body, self.topo.all_cores(), options)
    }

    /// The paper's **Algorithm 1** (`Task Schedule`), invoked from scheduler
    /// keypoints: starting at `core`'s Per-Core Queue and walking up to the
    /// Global Queue, run every task found. Repeat tasks that report
    /// [`TaskStatus::Again`] are re-enqueued into the same queue.
    ///
    /// Each queue is drained at most one *pass* (its length at arrival) per
    /// call, so repetitive polling tasks cannot livelock the keypoint: they
    /// get exactly one attempt per invocation, matching the paper's "PIOMan
    /// first processes local tasks and scans upper queues" description.
    ///
    /// Returns `true` if at least one task body was executed.
    pub fn schedule(&self, core: usize) -> bool {
        debug_assert!(core < self.topo.n_cores(), "core id out of range");
        let mut ran_any = false;
        for node in self.topo.path_to_root(core) {
            let queue = &self.queues[node.index()];
            let pass = queue.len_hint();
            for _ in 0..pass {
                let Some(task) = queue.try_dequeue() else {
                    break; // another core drained it first
                };
                ran_any |= self.run_task(task, core, queue);
            }
        }
        ran_any
    }

    /// Runs at most one task visible from `core` (deepest queue first).
    /// Returns `true` if a task body was executed.
    pub fn schedule_one(&self, core: usize) -> bool {
        for node in self.topo.path_to_root(core) {
            let queue = &self.queues[node.index()];
            // Bounded retry: skip over tasks this core may not run.
            let pass = queue.len_hint();
            for _ in 0..pass {
                let Some(task) = queue.try_dequeue() else { break };
                if self.run_task(task, core, queue) {
                    return true;
                }
            }
        }
        false
    }

    /// Executes `task` on `core` if allowed; requeues it otherwise.
    /// Returns `true` if the body ran.
    fn run_task(&self, mut task: Task, core: usize, queue: &TaskQueue) -> bool {
        if !task.cpuset.contains(core) {
            // The queue's span covers the task's cpuset, but this particular
            // core was excluded by the submitter. Put it back for a sibling.
            queue.requeue(task);
            return false;
        }
        let ctx = TaskContext {
            core,
            manager: self,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| (task.body)(&ctx)));
        queue.note_executed();
        self.executed_by_core[core].fetch_add(1, Ordering::Relaxed);
        match outcome {
            Ok(TaskStatus::Done) => task.completion.complete(),
            Ok(TaskStatus::Again) if task.options.repeat => {
                self.queues[task.home.index()].requeue(task);
            }
            Ok(TaskStatus::Again) => task.completion.complete(),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_owned());
                task.completion.complete_panicked(msg);
            }
        }
        true
    }

    /// Scheduler-keypoint entry: records which hook fired and schedules.
    pub fn hook(&self, point: HookPoint, core: usize) -> bool {
        self.hook_counts[point.index()].fetch_add(1, Ordering::Relaxed);
        self.schedule(core)
    }

    /// Total tasks currently enqueued anywhere (racy hint).
    pub fn pending_tasks(&self) -> usize {
        self.queues.iter().map(|q| q.len_hint()).sum()
    }

    /// `true` if some queue visible from `core` holds work (racy hint).
    pub fn has_work_for(&self, core: usize) -> bool {
        self.topo
            .path_to_root(core)
            .any(|node| self.queues[node.index()].len_hint() > 0)
    }

    /// Snapshot of per-queue and per-core counters.
    pub fn stats(&self) -> ManagerStats {
        ManagerStats {
            queues: self
                .queues
                .iter()
                .map(|q| {
                    let (lock_acquisitions, lock_contended) =
                        q.lock_stats().unwrap_or((0, 0));
                    QueueStats {
                        id: q.id,
                        level: q.level,
                        cpuset: q.cpuset,
                        submitted: q.submitted(),
                        executed: q.executed(),
                        pending: q.len_hint(),
                        lock_acquisitions,
                        lock_contended,
                    }
                })
                .collect(),
            executed_by_core: self
                .executed_by_core
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            hook_idle: self.hook_counts[0].load(Ordering::Relaxed),
            hook_context_switch: self.hook_counts[1].load(Ordering::Relaxed),
            hook_timer: self.hook_counts[2].load(Ordering::Relaxed),
        }
    }

    /// Registers the calling progression worker as the runner for `core`
    /// so submissions can unpark it. Returns the previous registrant.
    pub(crate) fn register_waker(&self, core: usize, thread: Thread) -> Option<Thread> {
        self.wakers[core].lock().replace(thread)
    }

    /// Removes the waker registration for `core`.
    pub(crate) fn unregister_waker(&self, core: usize) {
        self.wakers[core].lock().take();
    }

    /// Unparks every registered worker whose core may run a new task.
    fn wake_cores(&self, cpuset: CpuSet) {
        for core in cpuset.iter() {
            if core >= self.wakers.len() {
                break;
            }
            if let Some(t) = self.wakers[core].lock().as_ref() {
                t.unpark();
            }
        }
    }
}

impl core::fmt::Debug for TaskManager {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TaskManager")
            .field("topology", &self.topo.name())
            .field("queues", &self.queues.len())
            .field("backend", &self.config.backend)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piom_topology::presets;
    use std::sync::atomic::AtomicUsize;

    fn kwak_mgr() -> Arc<TaskManager> {
        TaskManager::new(presets::kwak().into())
    }

    #[test]
    fn oneshot_runs_once_on_allowed_core() {
        let mgr = kwak_mgr();
        let ran_on = Arc::new(AtomicUsize::new(usize::MAX));
        let r = ran_on.clone();
        let h = mgr.submit(
            move |ctx| {
                r.store(ctx.core, Ordering::SeqCst);
                TaskStatus::Done
            },
            CpuSet::single(3),
            TaskOptions::oneshot(),
        );
        assert!(!mgr.schedule(2), "core 2 sees nothing in its path");
        assert!(!h.is_complete());
        assert!(mgr.schedule(3));
        assert!(h.is_complete());
        assert_eq!(ran_on.load(Ordering::SeqCst), 3);
        assert!(!mgr.schedule(3), "nothing left");
    }

    #[test]
    fn numa_level_task_runs_on_any_node_core() {
        let mgr = kwak_mgr();
        let h = mgr.submit(
            |_| TaskStatus::Done,
            CpuSet::range(4..8),
            TaskOptions::oneshot(),
        );
        // Core 9 is on NUMA #2: its path does not include NUMA #1's queue.
        assert!(!mgr.schedule(9));
        assert!(mgr.schedule(6));
        assert!(h.is_complete());
    }

    #[test]
    fn strict_cpuset_is_honoured_within_shared_queue() {
        let mgr = kwak_mgr();
        // Cores {4, 6}: smallest covering queue is NUMA #1 (cores 4-7),
        // but core 5 must NOT run the task.
        let h = mgr.submit(
            |_| TaskStatus::Done,
            CpuSet::from_iter([4, 6]),
            TaskOptions::oneshot(),
        );
        assert!(!mgr.schedule(5), "excluded core skips the task");
        assert!(!h.is_complete());
        assert_eq!(mgr.pending_tasks(), 1, "task was requeued, not lost");
        assert!(mgr.schedule(6));
        assert!(h.is_complete());
    }

    #[test]
    fn repeat_task_reenqueues_until_done() {
        let mgr = kwak_mgr();
        let mut polls_left = 3;
        let h = mgr.submit(
            move |_| {
                polls_left -= 1;
                if polls_left == 0 {
                    TaskStatus::Done
                } else {
                    TaskStatus::Again
                }
            },
            CpuSet::single(0),
            TaskOptions::repeat(),
        );
        assert!(mgr.schedule(0));
        assert!(!h.is_complete(), "first poll fails, task requeued");
        assert!(mgr.schedule(0));
        assert!(!h.is_complete());
        assert!(mgr.schedule(0));
        assert!(h.is_complete(), "third poll succeeds");
        assert_eq!(mgr.stats().queues[mgr.topology().core_node(0).index()].executed, 3);
    }

    #[test]
    fn oneshot_returning_again_completes() {
        let mgr = kwak_mgr();
        let h = mgr.submit(
            |_| TaskStatus::Again,
            CpuSet::single(0),
            TaskOptions::oneshot(),
        );
        mgr.schedule(0);
        assert!(h.is_complete());
    }

    #[test]
    fn panicking_task_reports_error_and_scheduler_survives() {
        let mgr = kwak_mgr();
        let h = mgr.submit(
            |_| panic!("injected failure"),
            CpuSet::single(0),
            TaskOptions::oneshot(),
        );
        let h2 = mgr.submit(|_| TaskStatus::Done, CpuSet::single(0), TaskOptions::oneshot());
        mgr.schedule(0);
        let err = h.wait().unwrap_err();
        assert!(err.message.contains("injected failure"));
        assert_eq!(h2.wait(), Ok(()), "subsequent task unaffected");
    }

    #[test]
    fn global_submission_visible_from_every_core() {
        let mgr = kwak_mgr();
        for core in [0, 7, 15] {
            let h = mgr.submit_global(|_| TaskStatus::Done, TaskOptions::oneshot());
            assert!(mgr.schedule(core));
            assert!(h.is_complete());
        }
    }

    #[test]
    #[should_panic(expected = "selects no core")]
    fn empty_cpuset_panics() {
        let mgr = kwak_mgr();
        let _ = mgr.submit(|_| TaskStatus::Done, CpuSet::EMPTY, TaskOptions::oneshot());
    }

    #[test]
    fn foreign_cores_are_masked() {
        let mgr = kwak_mgr();
        // Core 100 does not exist on kwak; the effective set is {1}.
        let h = mgr.submit(
            |_| TaskStatus::Done,
            CpuSet::from_iter([1, 100]),
            TaskOptions::oneshot(),
        );
        assert!(mgr.schedule(1));
        assert!(h.is_complete());
    }

    #[test]
    fn per_core_queue_priority_over_global() {
        // Algorithm 1 processes local tasks before upper queues.
        let mgr = kwak_mgr();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o1 = order.clone();
        mgr.submit_global(
            move |_| {
                o1.lock().push("global");
                TaskStatus::Done
            },
            TaskOptions::oneshot(),
        );
        let o2 = order.clone();
        mgr.submit(
            move |_| {
                o2.lock().push("local");
                TaskStatus::Done
            },
            CpuSet::single(2),
            TaskOptions::oneshot(),
        );
        mgr.schedule(2);
        assert_eq!(*order.lock(), vec!["local", "global"]);
    }

    #[test]
    fn schedule_one_runs_exactly_one() {
        let mgr = kwak_mgr();
        let h1 = mgr.submit(|_| TaskStatus::Done, CpuSet::single(0), TaskOptions::oneshot());
        let h2 = mgr.submit(|_| TaskStatus::Done, CpuSet::single(0), TaskOptions::oneshot());
        assert!(mgr.schedule_one(0));
        assert!(h1.is_complete());
        assert!(!h2.is_complete());
        assert!(mgr.schedule_one(0));
        assert!(h2.is_complete());
        assert!(!mgr.schedule_one(0));
    }

    #[test]
    fn tasks_can_submit_tasks() {
        let mgr = kwak_mgr();
        let h = mgr.submit(
            |ctx| {
                // A request submission that must be polled afterwards
                // submits a polling task (paper §IV-B).
                ctx.manager.submit(
                    |_| TaskStatus::Done,
                    CpuSet::single(0),
                    TaskOptions::oneshot(),
                );
                TaskStatus::Done
            },
            CpuSet::single(0),
            TaskOptions::oneshot(),
        );
        mgr.schedule(0);
        assert!(h.is_complete());
        assert_eq!(mgr.pending_tasks(), 1);
        mgr.schedule(0);
        assert_eq!(mgr.pending_tasks(), 0);
    }

    #[test]
    fn hooks_count_and_schedule() {
        let mgr = kwak_mgr();
        mgr.submit(|_| TaskStatus::Done, CpuSet::single(0), TaskOptions::oneshot());
        assert!(mgr.hook(HookPoint::Idle, 0));
        mgr.hook(HookPoint::TimerInterrupt, 1);
        mgr.hook(HookPoint::ContextSwitch, 2);
        mgr.hook(HookPoint::ContextSwitch, 3);
        let stats = mgr.stats();
        assert_eq!(stats.hook_idle, 1);
        assert_eq!(stats.hook_timer, 1);
        assert_eq!(stats.hook_context_switch, 2);
    }

    #[test]
    fn lockfree_backend_runs_tasks() {
        let mgr = TaskManager::with_config(
            presets::kwak().into(),
            ManagerConfig {
                backend: QueueBackend::LockFree,
            },
        );
        let h = mgr.submit(
            |_| TaskStatus::Done,
            CpuSet::range(0..4),
            TaskOptions::oneshot(),
        );
        assert!(mgr.schedule(2));
        assert!(h.is_complete());
        let qstats = &mgr.stats().queues;
        assert!(qstats.iter().all(|q| q.lock_acquisitions == 0));
    }

    #[test]
    fn wait_active_self_progresses() {
        let mgr = kwak_mgr();
        let h = mgr.submit(|_| TaskStatus::Done, CpuSet::single(4), TaskOptions::oneshot());
        h.wait_active(&mgr, 4).unwrap();
        assert!(h.is_complete());
    }

    #[test]
    fn urgent_task_preempts_queue_order() {
        // Preemptive tasks (§VI): submitted last, executed first.
        let mgr = kwak_mgr();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let o = order.clone();
            mgr.submit(
                move |_| {
                    o.lock().push(format!("normal{i}"));
                    TaskStatus::Done
                },
                CpuSet::single(0),
                TaskOptions::oneshot(),
            );
        }
        let o = order.clone();
        mgr.submit(
            move |_| {
                o.lock().push("urgent".to_owned());
                TaskStatus::Done
            },
            CpuSet::single(0),
            TaskOptions::oneshot().urgent(),
        );
        mgr.schedule(0);
        assert_eq!(
            *order.lock(),
            vec!["urgent", "normal0", "normal1", "normal2"]
        );
    }

    #[test]
    fn urgent_repeat_requeues_at_tail() {
        // Once an urgent polling task has had its immediate shot, its
        // re-enqueues go to the tail like any repeat task (no starvation).
        let mgr = kwak_mgr();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = order.clone();
        let mut polls = 0;
        mgr.submit(
            move |_| {
                polls += 1;
                o.lock().push("urgent-poll");
                if polls == 2 {
                    TaskStatus::Done
                } else {
                    TaskStatus::Again
                }
            },
            CpuSet::single(0),
            TaskOptions::repeat().urgent(),
        );
        let o = order.clone();
        mgr.submit(
            move |_| {
                o.lock().push("normal");
                TaskStatus::Done
            },
            CpuSet::single(0),
            TaskOptions::oneshot(),
        );
        // One pass runs each pending task once (the requeued poll waits for
        // the next keypoint).
        mgr.schedule(0);
        assert_eq!(*order.lock(), vec!["urgent-poll", "normal"]);
        mgr.schedule(0);
        assert_eq!(*order.lock(), vec!["urgent-poll", "normal", "urgent-poll"]);
    }

    #[test]
    fn executed_by_core_distribution() {
        let mgr = kwak_mgr();
        for _ in 0..10 {
            mgr.submit(|_| TaskStatus::Done, CpuSet::single(3), TaskOptions::oneshot());
        }
        mgr.schedule(3);
        let stats = mgr.stats();
        assert_eq!(stats.executed_by_core[3], 10);
        assert_eq!(stats.executed_by_core.iter().sum::<u64>(), 10);
    }
}
