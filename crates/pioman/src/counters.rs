//! Sharded statistics counters: per-slot cache-padded accumulation,
//! aggregated on snapshot.
//!
//! A single `AtomicU64` counter that every core increments is a shared
//! cache line by construction: each `fetch_add` pulls the line exclusive,
//! so under load the counter serializes cores that are otherwise touching
//! disjoint data — the queue-level `submitted`/`executed` counters had
//! exactly that shape (every submitter and every executing core RMWs the
//! same word). [`ShardedCounter`] splits the count across cache-padded
//! slots — each thread (or an explicitly-chosen slot, e.g. the executing
//! core) increments its own line — and sums the slots only when a
//! snapshot is taken ([`TaskManager::stats`](crate::TaskManager::stats)),
//! which is the rare path by design.
//!
//! The trade is exactness of *concurrent* snapshots: the sum is taken
//! slot by slot, so a snapshot racing increments may miss in-flight ones
//! — the same racy-hint contract the single atomic already had (a
//! `Relaxed` counter never promised a linearizable read). Once writers
//! quiesce, the sum equals the true total; the
//! `sharded_counter_matches_shadow_total` proptest pins that against a
//! shadow single-atomic under threaded load, and the
//! `stats_sharding_contended` bench records what the sharding buys.

use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use crossbeam::utils::CachePadded;

/// Monotonically-assigned per-thread slot hint, so each thread settles on
/// one shard instead of hashing per call.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Relaxed);
}

/// This thread's stable shard-slot hint, shared by every sharded
/// statistic in the crate ([`ShardedCounter`],
/// [`Histogram`](crate::hist::Histogram)) so one thread always lands on
/// the same slot regardless of which structure it touches.
#[inline]
pub(crate) fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

/// A monotone event counter sharded over cache-padded slots.
///
/// # Examples
///
/// ```
/// use pioman::counters::ShardedCounter;
///
/// let c = ShardedCounter::new(4);
/// c.add(2);        // this thread's slot
/// c.add_at(3, 5);  // an explicit slot (e.g. the executing core)
/// assert_eq!(c.sum(), 7);
/// ```
#[derive(Debug)]
pub struct ShardedCounter {
    shards: Box<[CachePadded<AtomicU64>]>,
    /// `shards.len() - 1`; the slot count is rounded up to a power of two
    /// so slot folding is a mask, not a runtime division — the increment
    /// is on task-execution hot paths, and a `div` per bump measurably
    /// drags the `stats_sharding_contended` bench.
    mask: usize,
}

impl ShardedCounter {
    /// A counter with at least `shards` padded slots (rounded up to the
    /// next power of two, minimum 1). Use one slot per core for
    /// core-indexed increments; thread-indexed increments fold onto
    /// `thread_slot & mask`.
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedCounter {
            shards: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            mask: n - 1,
        }
    }

    /// Adds `n` to the calling thread's slot (Relaxed — the counter is
    /// diagnostic, no data is published through it).
    #[inline]
    pub fn add(&self, n: u64) {
        self.add_at(thread_slot(), n);
    }

    /// Adds `n` to slot `slot & mask` — callers that already know a
    /// core id use it directly, guaranteeing the increment lands on that
    /// core's own line.
    #[inline]
    pub fn add_at(&self, slot: usize, n: u64) {
        self.shards[slot & self.mask].fetch_add(n, Relaxed);
    }

    /// Sums every slot (the snapshot aggregation). Racy against in-flight
    /// increments exactly like a `Relaxed` load of a single atomic;
    /// exact once writers quiesce.
    pub fn sum(&self) -> u64 {
        self.shards.iter().map(|s| s.load(Relaxed)).sum()
    }

    /// Number of padded slots.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_across_slots() {
        let c = ShardedCounter::new(3);
        for slot in 0..9 {
            c.add_at(slot, 1);
        }
        assert_eq!(c.sum(), 9, "slots fold onto the masked shard count");
        assert_eq!(c.shards(), 4, "3 rounds up to the next power of two");
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let c = ShardedCounter::new(0);
        c.add(5);
        assert_eq!(c.sum(), 5);
        assert_eq!(c.shards(), 1);
    }

    #[test]
    fn threaded_increments_are_never_lost() {
        let c = std::sync::Arc::new(ShardedCounter::new(4));
        let threads = if cfg!(miri) { 3 } else { 8 };
        let per = if cfg!(miri) { 50u64 } else { 10_000 };
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.sum(), threads as u64 * per);
    }
}
