//! Property tests: no task is ever lost, duplicated, or run on a forbidden
//! core, across random topologies, cpusets, and backends.

use piom_cpuset::CpuSet;
use piom_topology::TopologyBuilder;
use pioman::{ManagerConfig, QueueBackend, TaskManager, TaskStatus};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Shape {
    numa: usize,
    chips: usize,
    cores: usize,
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    (1usize..=3, 1usize..=2, 1usize..=4).prop_map(|(numa, chips, cores)| Shape {
        numa,
        chips,
        cores,
    })
}

fn arb_backend() -> impl Strategy<Value = QueueBackend> {
    prop_oneof![
        Just(QueueBackend::Spinlock),
        Just(QueueBackend::LockFree),
        Just(QueueBackend::Mutex),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Submit a batch of tasks with random cpusets; drive every core until
    /// quiescent; every task must complete exactly once, on an allowed core.
    #[test]
    fn no_task_lost_or_misplaced(
        shape in arb_shape(),
        backend in arb_backend(),
        seeds in proptest::collection::vec(any::<u64>(), 1..40),
    ) {
        let topo = Arc::new(
            TopologyBuilder::new("prop")
                .numa_nodes(shape.numa)
                .chips_per_numa(shape.chips)
                .cores_per_cache(shape.cores)
                .build(),
        );
        let n = topo.n_cores();
        let mgr = TaskManager::with_config(topo.clone(), ManagerConfig { queue_backend: backend, ..ManagerConfig::default() });

        let run_counts: Vec<Arc<AtomicU64>> =
            (0..seeds.len()).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut handles = Vec::new();
        let mut cpusets = Vec::new();

        for (i, &seed) in seeds.iter().enumerate() {
            // Random nonempty cpuset from the seed.
            let mut set = CpuSet::new();
            let mut s = seed;
            for cpu in 0..n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if s & 1 == 1 { set.insert(cpu); }
            }
            if set.is_empty() { set.insert(seed as usize % n); }
            cpusets.push(set);

            let count = run_counts[i].clone();
            let set_copy = set;
            let h = mgr.task(move |ctx| {
                    count.fetch_add(1, Ordering::SeqCst);
                    assert!(set_copy.contains(ctx.core), "ran on forbidden core");
                    TaskStatus::Done
                }).cpuset(set).spawn();
            handles.push(h);
        }

        // Drive all cores round-robin until quiescent.
        let mut spins = 0;
        while mgr.pending_tasks() > 0 {
            for core in 0..n {
                mgr.schedule(core);
            }
            spins += 1;
            prop_assert!(spins < 10_000, "scheduler failed to quiesce");
        }

        for (i, h) in handles.iter().enumerate() {
            prop_assert!(h.is_complete(), "task {i} never completed");
            prop_assert_eq!(run_counts[i].load(Ordering::SeqCst), 1, "task {} ran != once", i);
        }
        let stats = mgr.stats();
        prop_assert_eq!(stats.total_submitted() as usize, seeds.len());
        prop_assert_eq!(stats.total_executed() as usize, seeds.len());
    }

    /// Repeat tasks run exactly `k` times (k-1 Again + 1 Done), regardless
    /// of which allowed cores pick them up.
    #[test]
    fn repeat_tasks_run_exact_count(
        shape in arb_shape(),
        backend in arb_backend(),
        k in 1u64..20,
    ) {
        let topo = Arc::new(
            TopologyBuilder::new("prop")
                .numa_nodes(shape.numa)
                .chips_per_numa(shape.chips)
                .cores_per_cache(shape.cores)
                .build(),
        );
        let n = topo.n_cores();
        let mgr = TaskManager::with_config(topo, ManagerConfig { queue_backend: backend, ..ManagerConfig::default() });
        let runs = Arc::new(AtomicU64::new(0));
        let r = runs.clone();
        let h = mgr.task(move |_| {
                if r.fetch_add(1, Ordering::SeqCst) + 1 == k {
                    TaskStatus::Done
                } else {
                    TaskStatus::Again
                }
            }).cpuset(CpuSet::first_n(n)).repeat().spawn();
        let mut spins = 0;
        while !h.is_complete() {
            for core in 0..n {
                mgr.schedule(core);
            }
            spins += 1;
            prop_assert!(spins < 10_000);
        }
        prop_assert_eq!(runs.load(Ordering::SeqCst), k);
    }

    /// Concurrent submission + multi-threaded progression: all tasks finish.
    /// (Kept small: the test host has a single CPU.)
    #[test]
    fn concurrent_progression_completes_everything(
        backend in arb_backend(),
        n_tasks in 1usize..60,
    ) {
        let topo = Arc::new(TopologyBuilder::new("p").cores_per_cache(4).build());
        let mgr = TaskManager::with_config(topo, ManagerConfig { queue_backend: backend, ..ManagerConfig::default() });
        let prog = pioman::Progression::start(
            mgr.clone(),
            pioman::ProgressionConfig::all_cores(&mgr),
        );
        let handles: Vec<_> = (0..n_tasks)
            .map(|i| {
                mgr.task(|_| TaskStatus::Done).cpuset(CpuSet::single(i % 4)).spawn()
            })
            .collect();
        for h in handles {
            prop_assert_eq!(h.wait(), Ok(()));
        }
        drop(prog);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The PR-4 steal-cursor guarantee, via the public API: stealing from
    /// a lock-free queue must not reorder the tasks it leaves behind.
    ///
    /// Tasks are homed on core 1 with per-task eligibility for the thief
    /// (core 0) drawn from the seed; a random number of steal probes run
    /// first, then the home core drains everything. Every execution logs
    /// `(core, submission index)`; the home core's subsequence — exactly
    /// the non-stolen tasks — must appear in submission order. (Before the
    /// cursor, each probe's pop/re-push pass rotated the survivors.)
    /// Deterministic: single-threaded, keypoints driven by hand.
    #[test]
    fn lockfree_steal_preserves_victim_fifo(
        n_tasks in 1usize..48,
        eligibility in any::<u64>(),
        n_probes in 0usize..6,
    ) {
        let topo = Arc::new(TopologyBuilder::new("p").cores_per_cache(4).build());
        let mgr = TaskManager::with_config(
            topo,
            ManagerConfig {
                queue_backend: QueueBackend::LockFree,
                ..ManagerConfig::default()
            },
        );
        let log = Arc::new(std::sync::Mutex::new(Vec::<(usize, usize)>::new()));
        let mut bits = eligibility;
        let handles: Vec<_> = (0..n_tasks)
            .map(|i| {
                // At least the home core; the thief from the seed bit.
                let steal_ok = bits & 1 == 1;
                bits = bits.rotate_right(1) ^ 0x9e3779b97f4a7c15;
                let cpuset = if steal_ok {
                    CpuSet::from_iter([0, 1])
                } else {
                    CpuSet::single(1)
                };
                let log = log.clone();
                mgr.task(move |ctx| {
                        log.lock().unwrap().push((ctx.core, i));
                        TaskStatus::Done
                    }).cpuset(cpuset).on_core(1).spawn()
            })
            .collect();

        for _ in 0..n_probes {
            // A steal probe from the idle thief (budget-capped so several
            // probes interleave with the later drain).
            mgr.schedule_batch(0, 3);
        }
        let mut spins = 0;
        while handles.iter().any(|h| !h.is_complete()) {
            mgr.schedule(1);
            spins += 1;
            prop_assert!(spins < 10_000, "home core failed to drain");
        }

        let log = log.lock().unwrap();
        prop_assert_eq!(log.len(), n_tasks, "every task ran exactly once");
        let survivors: Vec<usize> = log
            .iter()
            .filter(|&&(core, _)| core == 1)
            .map(|&(_, i)| i)
            .collect();
        prop_assert!(
            survivors.windows(2).all(|w| w[0] < w[1]),
            "home core saw non-stolen tasks out of submission order: {:?}",
            survivors
        );
        // And the stolen ones were the *oldest eligible* at each probe —
        // at minimum, stolen tasks must all have admitted the thief.
        for &(core, i) in log.iter() {
            if core == 0 {
                prop_assert!(
                    mgr.stats().stolen_by_core[0] > 0,
                    "task {} ran on the thief without a recorded steal", i
                );
            }
        }
    }
}

/// Sizes for the interleaving proptest below, shrunk under Miri: CI's
/// `cargo miri test -p pioman lockfree` matches this test by name, and
/// the interpreter is orders of magnitude slower than native, so both
/// the case count and the thread/task ranges stay small there.
const INTERLEAVE_CASES: u32 = if cfg!(miri) { 2 } else { 64 };
const MAX_INTERLEAVE_THREADS: usize = if cfg!(miri) { 3 } else { 4 };
const MAX_TASKS_PER_PRODUCER: usize = if cfg!(miri) { 5 } else { 30 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(INTERLEAVE_CASES))]

    /// The lock-free backend under real-thread interleavings of push
    /// (submission), pop (home-core drains), and steal (sibling drains):
    /// no task lost, none duplicated. Producer threads home every task on
    /// core 0 with a multi-core cpuset; consumer threads hammer keypoints
    /// on *all* cores concurrently, so local batched pops race steal-half
    /// probes on the same Michael–Scott queue throughout. The vendored
    /// proptest RNG is seeded from the test name (deterministic), and
    /// iterations are bounded by the case count below.
    #[test]
    fn lockfree_backend_survives_push_pop_steal_interleaving(
        n_producers in 1usize..MAX_INTERLEAVE_THREADS,
        tasks_per_producer in 1usize..MAX_TASKS_PER_PRODUCER,
        n_consumers in 1usize..MAX_INTERLEAVE_THREADS,
    ) {
        let topo = Arc::new(TopologyBuilder::new("p").cores_per_cache(4).build());
        let mgr = TaskManager::with_config(
            topo,
            ManagerConfig {
                queue_backend: QueueBackend::LockFree,
                ..ManagerConfig::default()
            },
        );
        let total = n_producers * tasks_per_producer;
        let runs = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicU64::new(0));

        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..n_producers {
                let mgr = mgr.clone();
                let runs = runs.clone();
                handles.push(s.spawn(move || {
                    (0..tasks_per_producer)
                        .map(|_| {
                            let runs = runs.clone();
                            mgr.task(move |_| {
                                    runs.fetch_add(1, Ordering::SeqCst);
                                    TaskStatus::Done
                                }).cpuset(CpuSet::first_n(4)).on_core(0).spawn()
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for consumer in 0..n_consumers {
                let mgr = mgr.clone();
                let done = done.clone();
                s.spawn(move || {
                    // Each consumer sweeps every core, so home-core pops
                    // and cross-core steals interleave freely. Yield on an
                    // empty sweep: keeps Miri's deterministic scheduler
                    // rotating instead of burning interpreter cycles.
                    while done.load(Ordering::SeqCst) == 0 {
                        let mut ran = 0;
                        for core in 0..4 {
                            ran += mgr.schedule_batch(core, 1 + consumer);
                        }
                        if ran == 0 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let mut all = Vec::new();
            for h in handles {
                all.extend(h.join().unwrap());
            }
            for h in &all {
                h.wait().unwrap();
            }
            done.store(1, Ordering::SeqCst);
            assert!(all.iter().all(|h| h.is_complete()));
        });

        prop_assert_eq!(runs.load(Ordering::SeqCst) as usize, total, "each task ran exactly once");
        let stats = mgr.stats();
        prop_assert_eq!(stats.total_executed() as usize, total);
        prop_assert_eq!(mgr.pending_tasks(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The sharded-counter contract (PR 5): whatever mix of threads, slots
    /// and increments hits a `ShardedCounter`, its quiesced snapshot equals
    /// a shadow single-atomic total maintained alongside it — sharding
    /// changes the cache-line traffic, never the arithmetic.
    #[test]
    fn sharded_counter_matches_shadow_total(
        shards in 1usize..=8,
        per_thread in proptest::collection::vec(
            proptest::collection::vec((0usize..16, 1u64..50), 1..64),
            1..6,
        ),
    ) {
        use pioman::counters::ShardedCounter;
        let sharded = ShardedCounter::new(shards);
        let shadow = AtomicU64::new(0);
        std::thread::scope(|s| {
            let (sharded, shadow) = (&sharded, &shadow);
            for plan in &per_thread {
                s.spawn(move || {
                    for &(slot, n) in plan {
                        // Mix explicit-slot and thread-slot increments the
                        // way the queue counters do (executed is core-
                        // indexed, submitted is thread-indexed).
                        if slot % 2 == 0 {
                            sharded.add_at(slot, n);
                        } else {
                            sharded.add(n);
                        }
                        shadow.fetch_add(n, Ordering::Relaxed);
                    }
                });
            }
        });
        prop_assert_eq!(sharded.sum(), shadow.load(Ordering::Relaxed));
        prop_assert!(sharded.shards() >= shards, "slots never round down");
        prop_assert!(sharded.shards().is_power_of_two(), "mask-foldable");
    }
}

/// `cargo miri test -p pioman hist` matches the histogram properties by
/// name; shrink the case count and stream length so the interpreted run
/// stays in CI budget while still crossing the linear/log bucket boundary.
const HIST_CASES: u32 = if cfg!(miri) { 2 } else { 32 };
const HIST_MAX_STREAM: usize = if cfg!(miri) { 24 } else { 256 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(HIST_CASES))]

    /// The histogram's sharding contract (PR 6, mirror of the counter one
    /// above): for any stream of `(slot, value)` records, folding the
    /// shards yields byte-for-byte the snapshot a single-shard histogram
    /// produces from the same stream — sharding changes cache-line
    /// traffic, never the distribution.
    #[test]
    fn hist_shard_fold_matches_single_shard(
        shards in 1usize..=8,
        stream in proptest::collection::vec((0usize..16, 0u64..2_000_000), 1..HIST_MAX_STREAM),
    ) {
        use pioman::hist::Histogram;
        let sharded = Histogram::new(shards);
        let single = Histogram::new(1);
        for &(slot, v) in &stream {
            sharded.record_at(slot, v);
            single.record_at(0, v);
        }
        prop_assert_eq!(sharded.snapshot(), single.snapshot());
    }

    /// The histogram's accuracy contract, against the exact reservoir in
    /// `piom_des::stats` as sequential oracle: every quantile is within
    /// the documented half-bucket relative error (1/2^(SUB_BITS+1), +1
    /// for integer rounding), count/mean/max are exact.
    #[test]
    fn hist_quantiles_match_exact_reservoir(
        samples in proptest::collection::vec(0u64..10_000_000, 1..(2 * HIST_MAX_STREAM)),
    ) {
        use pioman::hist::{Histogram, Percentiles, SUB_BITS};
        let h = Histogram::new(4);
        let mut oracle = Percentiles::new();
        for (i, &v) in samples.iter().enumerate() {
            h.record_at(i % 4, v);
            oracle.push(v as f64);
        }
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = oracle.quantile(q).expect("nonempty");
            let approx = snap.quantile(q).expect("nonempty") as f64;
            let bound = exact / (1u64 << (SUB_BITS + 1)) as f64 + 1.0;
            prop_assert!(
                (approx - exact).abs() <= bound,
                "q={} exact={} approx={} bound={}", q, exact, approx, bound
            );
        }
        let exact = oracle.summary();
        prop_assert_eq!(snap.count(), exact.count);
        prop_assert!((snap.mean() - exact.mean).abs() <= 1e-6 * (1.0 + exact.mean));
        prop_assert_eq!(snap.summary().max, exact.max, "max is tracked exactly");
    }
}
