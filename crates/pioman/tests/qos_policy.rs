//! The QoS-tier scheduling contract, pinned from outside the crate:
//!
//! * a **sequential oracle** — an independent reimplementation of the
//!   documented lane policy (docs/SCHEDULER.md, "QoS tiers") — must agree
//!   with every backend on the exact service order of any single-threaded
//!   push/pop interleaving (property-tested);
//! * the anti-starvation bound is **exact** when driven sequentially: a
//!   waiting `Background` task is served on the pop after
//!   [`BACKGROUND_BYPASS_LIMIT`] higher-class bypasses, not before, not
//!   after;
//! * dependency releases fire **exactly once** per dependent, however the
//!   predecessor completions race across real threads.

use parking_lot::Mutex;
use piom_cpuset::CpuSet;
use piom_topology::TopologyBuilder;
use pioman::lockfree::{BACKGROUND_BYPASS_LIMIT, DL_LANES};
use pioman::{ManagerConfig, QueueBackend, TaskClass, TaskManager, TaskStatus, CLASS_COUNT};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const BACKENDS: [QueueBackend; 3] = [
    QueueBackend::Spinlock,
    QueueBackend::LockFree,
    QueueBackend::Mutex,
];

/// A single-core machine: every submission lands in core 0's queue, so the
/// observed execution order *is* the queue's pop order.
fn single_core_mgr(backend: QueueBackend) -> Arc<TaskManager> {
    let topo = Arc::new(
        TopologyBuilder::new("one")
            .numa_nodes(1)
            .chips_per_numa(1)
            .cores_per_cache(1)
            .build(),
    );
    TaskManager::with_config(
        topo,
        ManagerConfig {
            queue_backend: backend,
            ..ManagerConfig::default()
        },
    )
}

/// Independent sequential model of the lane policy. Deliberately written
/// from the *documented* contract, not from the scheduler's code: one FIFO
/// lane plus `DL_LANES` deadline lanes per class; a deadline task is placed
/// in the fullest lane whose tail does not exceed its deadline (ties: the
/// lowest index), else the first empty lane, else the lane with the
/// smallest tail; a class pops the smaller lane-head deadline (ties: the
/// lower lane), deadline lanes before FIFO; classes are served in strict
/// priority order except that after `BACKGROUND_BYPASS_LIMIT` pops that
/// bypassed waiting Background work, the next pop serves Background.
#[derive(Default)]
struct OracleClass {
    fifo: VecDeque<usize>,
    dl: [VecDeque<(u64, usize)>; DL_LANES],
}

#[derive(Default)]
struct Oracle {
    classes: [OracleClass; CLASS_COUNT],
    credit: u32,
}

impl Oracle {
    fn push(&mut self, id: usize, class: TaskClass, deadline: Option<u64>) {
        let lane = &mut self.classes[class.index()];
        let Some(d) = deadline else {
            lane.fifo.push_back(id);
            return;
        };
        let tails: Vec<Option<u64>> = lane.dl.iter().map(|q| q.back().map(|t| t.0)).collect();
        // Fullest eligible lane (tail <= d), ties to the lowest index.
        let eligible = (0..DL_LANES)
            .filter(|&i| tails[i].is_some_and(|t| t <= d))
            .max_by_key(|&i| (tails[i], core::cmp::Reverse(i)));
        let slot = eligible
            .or_else(|| (0..DL_LANES).find(|&i| tails[i].is_none()))
            .unwrap_or_else(|| {
                (0..DL_LANES)
                    .min_by_key(|&i| (tails[i], i))
                    .expect("DL_LANES > 0")
            });
        lane.dl[slot].push_back((d, id));
    }

    fn pop_class(&mut self, class: usize) -> Option<usize> {
        let lane = &mut self.classes[class];
        let best = (0..DL_LANES)
            .filter_map(|i| lane.dl[i].front().map(|&(d, _)| (d, i)))
            .min()?;
        Some(lane.dl[best.1].pop_front().expect("front seen").1)
    }

    fn len(&self) -> usize {
        self.classes
            .iter()
            .map(|c| c.fifo.len() + c.dl.iter().map(VecDeque::len).sum::<usize>())
            .sum()
    }

    /// The spill pop (`TaskQueue::spill_lowest`): lowest class first, the
    /// ordinary within-class order (deadline lanes, then FIFO), and no
    /// bypass-credit movement — a spill relocates work, it serves nothing.
    fn pop_lowest(&mut self) -> Option<usize> {
        for class in (0..CLASS_COUNT).rev() {
            let popped = self
                .pop_class(class)
                .or_else(|| self.classes[class].fifo.pop_front());
            if popped.is_some() {
                return popped;
            }
        }
        None
    }

    fn pop(&mut self) -> Option<usize> {
        let background_waiting = {
            let bg = &self.classes[TaskClass::Background.index()];
            !bg.fifo.is_empty() || bg.dl.iter().any(|q| !q.is_empty())
        };
        let mut order: Vec<usize> = (0..CLASS_COUNT).collect();
        if background_waiting && self.credit >= BACKGROUND_BYPASS_LIMIT {
            order.rotate_right(1); // Background first, then strict order.
        }
        for class in order {
            let popped = self
                .pop_class(class)
                .or_else(|| self.classes[class].fifo.pop_front());
            if let Some(id) = popped {
                if class == TaskClass::Background.index() {
                    self.credit = 0;
                } else if background_waiting {
                    self.credit += 1;
                }
                return Some(id);
            }
        }
        None
    }
}

#[derive(Debug, Clone)]
enum Op {
    Push {
        class: TaskClass,
        deadline: Option<u64>,
    },
    Pop,
}

/// Decodes `(selector, value)` pairs into ops: selectors 0–3 push that
/// class (the value choosing no-deadline vs a small deadline tick, so lane
/// collisions actually happen), 4–5 pop.
fn decode_op(selector: usize, value: u64) -> Op {
    match selector {
        c @ 0..=3 => Op::Push {
            class: TaskClass::ALL[c],
            deadline: (!value.is_multiple_of(3)).then_some(value % 16),
        },
        _ => Op::Pop,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every backend serves any sequential push/pop interleaving in
    /// exactly the oracle's order.
    #[test]
    fn pop_policy_matches_the_sequential_oracle(
        raw_ops in proptest::collection::vec((0usize..6, 0u64..48), 1..80),
        backend_idx in 0usize..3,
    ) {
        let backend = BACKENDS[backend_idx];
        let mgr = single_core_mgr(backend);
        let ran = Arc::new(Mutex::new(Vec::new()));
        let mut oracle = Oracle::default();
        let mut expected = Vec::new();
        let mut next_id = 0usize;
        for &(selector, value) in &raw_ops {
            match decode_op(selector, value) {
                Op::Push { class, deadline } => {
                    let id = next_id;
                    next_id += 1;
                    oracle.push(id, class, deadline);
                    let r = ran.clone();
                    let mut spec = mgr
                        .task(move |_| {
                            r.lock().push(id);
                            TaskStatus::Done
                        })
                        .cpuset(CpuSet::single(0))
                        .class(class);
                    if let Some(d) = deadline {
                        spec = spec.deadline(d);
                    }
                    spec.spawn();
                }
                Op::Pop => {
                    if let Some(id) = oracle.pop() {
                        expected.push(id);
                        prop_assert!(mgr.schedule_one(0), "oracle has work, so must {backend:?}");
                    } else {
                        prop_assert!(!mgr.schedule_one(0), "oracle is empty, so must be {backend:?}");
                    }
                }
            }
        }
        // Drain what is left; the tails must agree too.
        while let Some(id) = oracle.pop() {
            expected.push(id);
            prop_assert!(mgr.schedule_one(0));
        }
        prop_assert!(!mgr.schedule_one(0));
        prop_assert_eq!(&*ran.lock(), &expected, "{:?} diverged from the oracle", backend);
    }

    /// The oracle property *across the spill boundary* (PR 10): on a
    /// two-socket machine whose overflow tier is live, any push/pop
    /// interleaving that drives the home queue over `spill_threshold`
    /// must still serve in the composed model's order — the home queue's
    /// QoS pop first, then the socket overflow's QoS pop over whatever
    /// the spills relocated (lowest class, deadline lanes before FIFO).
    /// Stealing is off, so the claim rung is the only path back.
    #[test]
    fn spill_and_claim_path_matches_the_sequential_oracle(
        raw_ops in proptest::collection::vec((0usize..6, 0u64..48), 1..120),
        backend_idx in 0usize..3,
        threshold in 2usize..10,
    ) {
        let backend = BACKENDS[backend_idx];
        let topo = Arc::new(
            TopologyBuilder::new("two-socket")
                .numa_nodes(2)
                .chips_per_numa(1)
                .cores_per_cache(1)
                .build(),
        );
        let mgr = TaskManager::with_config(
            topo,
            ManagerConfig {
                queue_backend: backend,
                steal: false,
                spill_threshold: threshold,
                ..ManagerConfig::default()
            },
        );
        let ran = Arc::new(Mutex::new(Vec::new()));
        let mut home = Oracle::default();
        let mut ovf = Oracle::default();
        let mut meta: Vec<(TaskClass, Option<u64>)> = Vec::new();
        let mut expected = Vec::new();
        let (mut spilled_model, mut claimed_model) = (0u64, 0u64);
        let mut drive = |home: &mut Oracle, ovf: &mut Oracle, expected: &mut Vec<usize>| {
            let from_home = home.pop();
            let id = from_home.or_else(|| ovf.pop());
            if let Some(id) = id {
                expected.push(id);
                if from_home.is_none() {
                    claimed_model += 1;
                }
            }
            id.is_some()
        };
        for &(selector, value) in &raw_ops {
            match decode_op(selector, value) {
                Op::Push { class, deadline } => {
                    let id = meta.len();
                    meta.push((class, deadline));
                    home.push(id, class, deadline);
                    let r = ran.clone();
                    let mut spec = mgr
                        .task(move |_| {
                            r.lock().push(id);
                            TaskStatus::Done
                        })
                        .cpuset(CpuSet::single(0))
                        .class(class);
                    if let Some(d) = deadline {
                        spec = spec.deadline(d);
                    }
                    spec.spawn();
                    // Model the dispatch-time escalation: at or over the
                    // threshold, half the post-push depth spills, lowest
                    // class first, preserving class and deadline.
                    let depth = home.len();
                    if depth >= threshold {
                        for _ in 0..depth / 2 {
                            let moved = home.pop_lowest().expect("depth accounted");
                            let (c, d) = meta[moved];
                            ovf.push(moved, c, d);
                            spilled_model += 1;
                        }
                    }
                }
                Op::Pop => {
                    if drive(&mut home, &mut ovf, &mut expected) {
                        prop_assert!(mgr.schedule_one(0), "oracle has work, so must {backend:?}");
                    } else {
                        prop_assert!(!mgr.schedule_one(0), "oracle is empty, so must be {backend:?}");
                    }
                }
            }
        }
        while drive(&mut home, &mut ovf, &mut expected) {
            prop_assert!(mgr.schedule_one(0));
        }
        prop_assert!(!mgr.schedule_one(0));
        prop_assert_eq!(
            &*ran.lock(), &expected,
            "{:?} diverged across the spill boundary", backend
        );
        let stats = mgr.stats();
        prop_assert_eq!(stats.total_spilled(), spilled_model, "spill count drifted");
        prop_assert_eq!(stats.total_claimed(), claimed_model, "claim count drifted");
    }
}

#[test]
fn background_bypass_bound_is_exact_under_every_backend() {
    // 1 Background + (LIMIT + 8) Interactive tasks, popped one at a time:
    // the Background task must run as pop number LIMIT + 1 (0-indexed
    // position LIMIT) — after exactly LIMIT bypasses, before any further
    // Interactive work. This pins the starvation bound stated in
    // docs/SCHEDULER.md; a drift in either direction fails.
    let limit = BACKGROUND_BYPASS_LIMIT as usize;
    for backend in BACKENDS {
        let mgr = single_core_mgr(backend);
        let ran: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let r = ran.clone();
        mgr.task(move |_| {
            r.lock().push("background");
            TaskStatus::Done
        })
        .cpuset(CpuSet::single(0))
        .class(TaskClass::Background)
        .spawn();
        for _ in 0..limit + 8 {
            let r = ran.clone();
            mgr.task(move |_| {
                r.lock().push("interactive");
                TaskStatus::Done
            })
            .cpuset(CpuSet::single(0))
            .spawn();
        }
        while mgr.schedule_one(0) {}
        let order = ran.lock();
        let position = order
            .iter()
            .position(|&name| name == "background")
            .expect("background ran");
        assert_eq!(
            position, limit,
            "{backend:?}: background served after exactly {limit} bypasses"
        );
    }
}

#[test]
fn edf_tournament_order_is_deterministic_across_backends() {
    // Deadlines 10, 5, 3 on two deadline lanes: 10 opens lane 0, 5 opens
    // lane 1 (lane 0's tail exceeds it), 3 queues behind 5 (no eligible or
    // empty lane; smallest tail wins). Tournament pop: 5, 3, 10 — the
    // documented lane-approximate EDF, identical for every backend.
    for backend in BACKENDS {
        let mgr = single_core_mgr(backend);
        let ran: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        for d in [10u64, 5, 3] {
            let r = ran.clone();
            mgr.task(move |_| {
                r.lock().push(d);
                TaskStatus::Done
            })
            .cpuset(CpuSet::single(0))
            .class(TaskClass::Bulk)
            .deadline(d)
            .spawn();
        }
        while mgr.schedule_one(0) {}
        assert_eq!(*ran.lock(), vec![5, 3, 10], "{backend:?}");
    }
}

#[test]
fn racing_predecessor_completions_release_exactly_once() {
    // Two predecessors complete concurrently on two real threads; their
    // shared dependent must be dispatched exactly once. 200 rounds of the
    // race, all three backends exercised round-robin.
    for round in 0..200 {
        let backend = BACKENDS[round % BACKENDS.len()];
        let topo = Arc::new(
            TopologyBuilder::new("two")
                .numa_nodes(1)
                .chips_per_numa(1)
                .cores_per_cache(2)
                .build(),
        );
        let mgr = TaskManager::with_config(
            topo,
            ManagerConfig {
                queue_backend: backend,
                steal: false, // keep each predecessor on its own core
                ..ManagerConfig::default()
            },
        );
        let runs = Arc::new(AtomicUsize::new(0));
        let a = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(0))
            .spawn();
        let b = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(1))
            .spawn();
        let n = runs.clone();
        let dependent = mgr
            .task(move |_| {
                n.fetch_add(1, Ordering::SeqCst);
                TaskStatus::Done
            })
            .cpuset(CpuSet::from_iter([0, 1]))
            .after(&a)
            .after(&b)
            .spawn();
        std::thread::scope(|s| {
            for core in [0usize, 1] {
                let mgr = &mgr;
                let dependent = &dependent;
                s.spawn(move || {
                    while !dependent.is_complete() {
                        if !mgr.schedule(core) {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1, "round {round}: ran once");
        let stats = mgr.stats();
        assert_eq!(
            stats.total_waitlist_released(),
            1,
            "round {round}: released once"
        );
        assert_eq!(stats.waitlist_released_by_class, [0, 1, 0, 0]);
    }
}

#[test]
fn chained_pipeline_preserves_order_and_counts_releases() {
    // a -> b -> c -> d across classes: each stage waits for the previous,
    // so the execution order is the chain order even though the classes
    // alone would reorder them.
    let mgr = single_core_mgr(QueueBackend::Spinlock);
    let ran: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    let push = |name: &'static str| {
        let r = ran.clone();
        move |_: &pioman::TaskContext<'_>| {
            r.lock().push(name);
            TaskStatus::Done
        }
    };
    let a = mgr
        .task(push("bulk"))
        .cpuset(CpuSet::single(0))
        .class(TaskClass::Bulk)
        .spawn();
    let b = mgr
        .task(push("urgent"))
        .cpuset(CpuSet::single(0))
        .class(TaskClass::Urgent)
        .after(&a)
        .spawn();
    let c = mgr
        .task(push("background"))
        .cpuset(CpuSet::single(0))
        .class(TaskClass::Background)
        .after(&b)
        .spawn();
    let d = mgr
        .task(push("interactive"))
        .cpuset(CpuSet::single(0))
        .after(&c)
        .spawn();
    while mgr.schedule_one(0) {}
    assert!(d.is_complete());
    assert_eq!(
        *ran.lock(),
        vec!["bulk", "urgent", "background", "interactive"]
    );
    assert_eq!(
        mgr.stats().waitlist_released_by_class,
        [1, 1, 0, 1],
        "each dependent stage counted in its own class"
    );
}
