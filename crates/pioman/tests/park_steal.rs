//! Steal-aware parking: deterministic coverage of the PR-4 park/wake
//! contract (`docs/SCHEDULER.md`).
//!
//! The first test drives the worker lifecycle *by hand* — the park-probe
//! decision and the keypoints it feeds back into are public API — so the
//! paper-critical property ("an idle core reacts to a remote backlog
//! without waiting for a timer keypoint") is asserted with zero timing
//! dependence. The live-`Progression` tests then pin the same contract on
//! real worker threads, with bounded waits only on *observable* state
//! (parked flags, task completion), never on sleeps standing in for
//! scheduling decisions.

use piom_cpuset::CpuSet;
use piom_topology::presets;
use pioman::{ManagerConfig, Progression, ProgressionConfig, TaskManager, TaskStatus};
use std::time::{Duration, Instant};

/// Spins until `cond` holds, failing the test after a generous bound.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

/// The satellite scenario, fully deterministic: core 0's own hierarchy is
/// empty while a *distant* victim (core 12, across the kwak interconnect)
/// holds a backlog core 0 may steal. The pre-park probe must see it —
/// sending the worker back to the keypoint, whose steal path drains the
/// backlog — without a single timer keypoint firing.
#[test]
fn park_probe_path_drains_distant_backlog_without_timer() {
    let mgr = TaskManager::new(presets::kwak().into());
    let handles: Vec<_> = (0..8)
        .map(|_| {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::from_iter([0, 12]))
                .on_core(12)
                .spawn()
        })
        .collect();

    // The worker contract, executed synchronously for core 0: a dry idle
    // keypoint is followed by the own-path re-check and the park probe.
    assert!(!mgr.has_work_for(0), "core 0's own path is empty");
    assert!(
        mgr.park_probe(0),
        "the probe must see the distant stealable backlog"
    );
    // A hit means "do not park: run another keypoint" — which steals.
    let mut rounds = 0;
    while handles.iter().any(|h| !h.is_complete()) {
        assert!(mgr.schedule(0), "post-hit keypoint found nothing");
        rounds += 1;
        assert!(rounds <= 8, "steal-half should drain 8 tasks in ≤ 4 probes");
    }

    let stats = mgr.stats();
    assert!(stats.park_probe_hits[0] > 0, "the probe path was exercised");
    assert_eq!(stats.hook_timer, 0, "no timer keypoint fired");
    assert_eq!(stats.stolen_by_core[0], 8, "everything came via steals");
    assert_eq!(stats.executed_by_core[12], 0, "the home core never ran");
}

/// Steal-span decay (PR 5): once a wide-span queue drains empty, its span
/// stops admitting distant cores, so new backlog that core 0 may *not*
/// steal no longer produces park-probe false positives. Before the decay
/// the span was a forever-monotone union — the `{0, 12}` bits from the
/// drained backlog would have made the probe hit on core-12-only work.
#[test]
fn park_probe_stops_hitting_after_wide_span_decays() {
    let mgr = TaskManager::new(presets::kwak().into());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::from_iter([0, 12]))
                .on_core(12)
                .spawn()
        })
        .collect();
    assert!(mgr.park_probe(0), "wide backlog present: probe must hit");
    while handles.iter().any(|h| !h.is_complete()) {
        assert!(mgr.schedule(0));
    }
    // New backlog on the same queue, but core 0 is excluded this time.
    for _ in 0..4 {
        mgr.task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(12))
            .spawn();
    }
    assert!(
        !mgr.park_probe(0),
        "decayed span must reject the core-12-only backlog (tightened filter)"
    );
    let queue = mgr.topology().core_node(12).index();
    let span = mgr.stats().queues[queue].steal_span;
    assert!(
        span.contains(12) && !span.contains(0),
        "span rebuilt narrow"
    );
    assert_eq!(mgr.schedule_batch(12, usize::MAX), 4, "no task was lost");
}

/// The lost-wake probe for the weakened orderings: hammer the exact race
/// the park/wake handshake must close — a submission landing at the very
/// moment the worker decides to park. Each round waits for the worker to
/// be *observably parked* (the worst case: every pre-park check already
/// ran), submits, and requires completion with the timer disabled and the
/// park timeout far past the test bound — only a delivered wake-up can
/// finish the round. The `vendor/interleave` `park_wake` model proves the
/// same protocol exhaustively over all interleavings; this test pins the
/// real implementation against the real parker.
#[test]
fn submission_racing_a_parking_worker_never_loses_the_wake() {
    let mgr = TaskManager::new(presets::kwak().into());
    let config = ProgressionConfig {
        park_timeout: Duration::from_secs(3600), // park "forever"
        timer_period: None,
        ..ProgressionConfig::for_cores(vec![3])
    };
    let _prog = Progression::start(mgr.clone(), config);
    for round in 0..200 {
        // Alternate between racing an already-parked worker and racing the
        // park decision itself (submitting the instant the worker's queue
        // runs dry, before it can publish the flag).
        if round % 2 == 0 {
            wait_for("worker 3 to park", || mgr.is_parked(3));
        }
        let h = mgr
            .task(|_| TaskStatus::Done)
            .cpuset(CpuSet::single(3))
            .spawn();
        wait_for("racing submission to complete", || h.is_complete());
    }
    assert_eq!(mgr.stats().hook_timer, 0, "no timer keypoint ever fired");
}

/// Live workers: a backlog submitted for a busy home core is finished by a
/// progression worker on another core with the timer disabled and the park
/// timeout far beyond the test bound — completion can only come from the
/// wake/steal path, never from a timer keypoint.
#[test]
fn live_worker_steals_distant_backlog_without_timer() {
    let mgr = TaskManager::new(presets::kwak().into());
    let config = ProgressionConfig {
        park_timeout: Duration::from_secs(3600), // park "forever"
        timer_period: None,
        ..ProgressionConfig::for_cores(vec![0])
    };
    let _prog = Progression::start(mgr.clone(), config);
    let handles: Vec<_> = (0..16)
        .map(|_| {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::from_iter([0, 12]))
                .on_core(12)
                .spawn()
        })
        .collect();
    for h in handles {
        assert_eq!(h.wait(), Ok(()));
    }
    let stats = mgr.stats();
    assert_eq!(stats.hook_timer, 0, "no timer keypoint fired");
    assert_eq!(stats.stolen_by_core[0], 16);
}

/// `wake_for_steal` in isolation: a parked worker whose own core is *not*
/// in any new submission's cpuset is still recruited when a queue it can
/// steal from crosses the backlog threshold. Stealing is disabled in the
/// manager config so the worker genuinely parks (its keypoints cannot
/// steal), isolating the wake mechanism from the drain mechanism.
#[test]
fn wake_for_steal_unparks_the_nearest_eligible_parked_core() {
    let mgr = TaskManager::with_config(
        presets::kwak().into(),
        ManagerConfig {
            steal: false,
            ..ManagerConfig::default()
        },
    );
    let config = ProgressionConfig {
        park_timeout: Duration::from_secs(3600),
        timer_period: None,
        ..ProgressionConfig::for_cores(vec![1])
    };
    let _prog = Progression::start(mgr.clone(), config);
    wait_for("worker 1 to park", || mgr.is_parked(1));

    // Backlog on core 0's queue, stealable by cores {0, 1}. With stealing
    // off, nothing triggers automatically; the steal span still records
    // core 1 as eligible.
    for _ in 0..16 {
        mgr.task(|_| TaskStatus::Done)
            .cpuset(CpuSet::from_iter([0, 1]))
            .on_core(0)
            .spawn();
    }
    wait_for("worker 1 to re-park after the submission wakes", || {
        mgr.is_parked(1)
    });

    let home = mgr.stats().queues[mgr.topology().core_node(0).index()].id;
    assert_eq!(
        mgr.wake_for_steal(home),
        Some(1),
        "core 1 is the nearest parked core the queue's span admits"
    );
    assert_eq!(mgr.stats().wakeups_for_steal[1], 1);
}

/// The automatic escalation: with stealing on, a submission burst that
/// crosses `steal_wake_backlog` recruits a parked distant worker whose
/// core is in the tasks' cpuset, and the backlog drains without a timer.
#[test]
fn backlog_threshold_recruits_a_parked_thief_end_to_end() {
    let mgr = TaskManager::with_config(
        presets::kwak().into(),
        ManagerConfig {
            steal_wake_backlog: 4,
            ..ManagerConfig::default()
        },
    );
    let config = ProgressionConfig {
        park_timeout: Duration::from_secs(3600),
        timer_period: None,
        ..ProgressionConfig::for_cores(vec![8])
    };
    let _prog = Progression::start(mgr.clone(), config);
    wait_for("worker 8 to park", || mgr.is_parked(8));

    let handles: Vec<_> = (0..16)
        .map(|_| {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::from_iter([0, 8]))
                .on_core(0)
                .spawn()
        })
        .collect();
    for h in handles {
        assert_eq!(h.wait(), Ok(()));
    }
    let stats = mgr.stats();
    assert_eq!(stats.hook_timer, 0, "no timer keypoint fired");
    assert_eq!(
        stats.stolen_by_core[8], 16,
        "the recruited thief drained it"
    );
}
