//! Deterministic coverage of the per-socket overflow tier (PR 10,
//! `docs/SCHEDULER.md` "Hierarchy"): spill escalation, the
//! core → socket → global claim rung, cross-socket gating, the starved
//! 1024-core fabric, and the O(sockets) pre-park probe.
//!
//! Everything here drives keypoints by hand — no progression workers, no
//! timing dependence. The counters asserted (`spilled`, `claimed`,
//! `park_probe_polls`) are the same ones the `steal_scaling` bench
//! family records.

use piom_cpuset::CpuSet;
use piom_topology::presets;
use pioman::{ManagerConfig, TaskClass, TaskManager, TaskStatus};
use std::sync::{Arc, Mutex};

/// The scaling-study acceptance scenario on the full 1024-core fabric:
/// socket 3 is completely starved while socket 0 holds a backlog its
/// cores may run. The starved core's pre-park probe must see the remote
/// imbalance, and its keypoints must drain it via hierarchical stealing
/// — the home core never runs a thing.
#[test]
fn quad_socket_1024_starved_socket_drains_via_hierarchical_steal() {
    let mgr = TaskManager::new(presets::quad_socket_1024().into());
    assert_eq!(mgr.stats().sockets.len(), 4, "one tier entry per NUMA node");

    // Socket 3 spans cores 768..1024; 768 is its starved thief.
    let thief = 768;
    let handles: Vec<_> = (0..16)
        .map(|_| {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::from_iter([0, thief]))
                .on_core(0)
                .spawn()
        })
        .collect();

    assert!(!mgr.has_work_for(thief), "socket 3's own path is empty");
    assert!(
        mgr.park_probe(thief),
        "the socket aggregates must surface the remote backlog"
    );
    let mut rounds = 0;
    while handles.iter().any(|h| !h.is_complete()) {
        assert!(mgr.schedule(thief), "post-hit keypoint found nothing");
        rounds += 1;
        assert!(rounds <= 16, "steal-half should drain 16 tasks quickly");
    }

    let stats = mgr.stats();
    assert_eq!(stats.stolen_by_core[thief], 16, "all 16 came via steals");
    assert_eq!(stats.executed_by_core[0], 0, "the home core never ran");
    assert!(
        stats.park_probe_polls[thief] <= stats.sockets.len() as u64,
        "a probe consults at most one aggregate per socket"
    );
}

/// The O(sockets) half of the acceptance criterion, asserted on the
/// probe-count counter directly: on the 1024-core quad-socket fabric a
/// probe that misses everywhere costs *exactly* `sockets.len()` aggregate
/// polls — not one visit per core or per queue.
#[test]
fn full_miss_park_probe_polls_exactly_one_aggregate_per_socket() {
    let mgr = TaskManager::new(presets::quad_socket_1024().into());
    let n_sockets = mgr.stats().sockets.len() as u64;
    assert_eq!(n_sockets, 4);

    assert!(!mgr.park_probe(0), "empty fabric: the probe must miss");
    let stats = mgr.stats();
    assert_eq!(
        stats.park_probe_polls[0], n_sockets,
        "a full miss is one poll per socket, even with 1024 cores"
    );
    assert_eq!(stats.park_probe_misses[0], 1);

    // A second full miss adds exactly another round — the counter scales
    // with probes × sockets, never with cores.
    assert!(!mgr.park_probe(0));
    assert_eq!(mgr.stats().park_probe_polls[0], 2 * n_sockets);
}

/// Spill escalation end-to-end with stealing disabled, isolating the
/// claim rung: a per-core queue that out-runs `spill_threshold` moves
/// half its backlog into the socket overflow, where a *sibling* core's
/// ordinary hierarchy walk claims it — no steal machinery involved.
#[test]
fn deep_queue_spills_and_a_sibling_claims_without_stealing() {
    let mgr = TaskManager::with_config(
        presets::dual_socket_256().into(),
        ManagerConfig {
            steal: false,
            spill_threshold: 8,
            ..ManagerConfig::default()
        },
    );
    let handles: Vec<_> = (0..24)
        .map(|_| {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::from_iter([0, 1]))
                .on_core(0)
                .spawn()
        })
        .collect();

    let spilled = mgr.stats().sockets[0].spilled;
    assert!(
        spilled >= 8,
        "the deep queue must have spilled, got {spilled}"
    );

    // Core 1 shares socket 0 but not core 0's per-core queue: with steal
    // off, everything it runs came through the overflow claim rung.
    let claimed_run = mgr.schedule_batch(1, usize::MAX);
    assert_eq!(claimed_run as u64, spilled, "core 1 claims the whole spill");
    let stats = mgr.stats();
    assert_eq!(stats.sockets[0].claimed, spilled);
    assert_eq!(stats.stolen_by_core[1], 0, "claims are not steals");

    // The unspilled remainder is still home-only; core 0 finishes it.
    while handles.iter().any(|h| !h.is_complete()) {
        assert!(mgr.schedule(0));
    }
    assert_eq!(mgr.stats().total_executed(), 24);
}

/// QoS preservation across the spill boundary: the spill takes the
/// *lowest* class first (urgent work stays on the fast home path), the
/// overflow lanes keep both class and deadline, and a claiming sibling
/// pops them back in strict class-priority + EDF order.
#[test]
fn spill_takes_lowest_class_first_and_claims_preserve_qos_order() {
    let mgr = TaskManager::with_config(
        presets::dual_socket_256().into(),
        ManagerConfig {
            steal: false,
            spill_threshold: 16,
            ..ManagerConfig::default()
        },
    );
    let order: Arc<Mutex<Vec<(usize, TaskClass, u64)>>> = Arc::default();
    let spawn = |class: TaskClass, tick: u64| {
        let order = order.clone();
        mgr.task(move |ctx| {
            order.lock().unwrap().push((ctx.core, class, tick));
            TaskStatus::Done
        })
        .cpuset(CpuSet::from_iter([0, 1]))
        .on_core(0)
        .class(class)
        .deadline(tick)
        .spawn()
    };
    // 8 urgent, then 8 bulk with shuffled deadlines. The 16th enqueue
    // crosses the threshold and spills half the queue — exactly the 8
    // bulk tasks, lowest class first.
    for tick in 0..8 {
        spawn(TaskClass::Urgent, tick);
    }
    for &tick in &[11u64, 15, 12, 16, 13, 17, 14, 18] {
        spawn(TaskClass::Bulk, tick);
    }
    assert_eq!(mgr.stats().sockets[0].spilled, 8);

    // The sibling claims the spilled half; the home core runs the rest.
    assert_eq!(mgr.schedule_batch(1, usize::MAX), 8);
    assert_eq!(mgr.schedule_batch(0, usize::MAX), 8);

    let order = order.lock().unwrap();
    let claimed: Vec<_> = order.iter().filter(|&&(c, _, _)| c == 1).collect();
    assert!(
        claimed
            .iter()
            .all(|&&(_, class, _)| class == TaskClass::Bulk),
        "only the lowest class spilled; urgent work stayed home"
    );
    let ticks: Vec<u64> = claimed.iter().map(|&&(_, _, t)| t).collect();
    assert_eq!(
        ticks,
        vec![11, 12, 13, 14, 15, 16, 17, 18],
        "claims are EDF"
    );
    let home: Vec<_> = order.iter().filter(|&&(c, _, _)| c == 0).collect();
    assert!(
        home.iter()
            .all(|&&(_, class, _)| class == TaskClass::Urgent),
        "the home queue kept every urgent task"
    );
}

/// The strict core → socket → global drain order of one keypoint: a core
/// with backlog at all three rungs runs its own queue first, then claims
/// the socket overflow, then falls through to the Global Queue.
#[test]
fn keypoint_drains_core_then_socket_overflow_then_global() {
    let mgr = TaskManager::with_config(
        presets::dual_socket_256().into(),
        ManagerConfig {
            steal: false,
            spill_threshold: 4,
            ..ManagerConfig::default()
        },
    );
    let order: Arc<Mutex<Vec<&'static str>>> = Arc::default();
    let tag = |label: &'static str| {
        let order = order.clone();
        move |_: &pioman::TaskContext<'_>| {
            order.lock().unwrap().push(label);
            TaskStatus::Done
        }
    };

    // Overflow rung: a sibling's deep queue spills into socket 0.
    for _ in 0..8 {
        mgr.task(tag("overflow"))
            .cpuset(CpuSet::from_iter([0, 1]))
            .on_core(1)
            .spawn();
    }
    let spilled = mgr.stats().sockets[0].spilled;
    assert!(spilled >= 4);
    // Core rung: core 0's own queue, shallow enough not to spill.
    for _ in 0..3 {
        mgr.task(tag("own")).cpuset(CpuSet::single(0)).spawn();
    }
    // Global rung: the default cpuset (every core) lands on the root.
    for _ in 0..3 {
        mgr.task(tag("global")).spawn();
    }

    let ran = mgr.schedule_batch(0, usize::MAX);
    assert_eq!(ran as u64, 3 + spilled + 3);
    let order = order.lock().unwrap();
    let boundary_own = 3;
    let boundary_ovf = boundary_own + spilled as usize;
    assert!(order[..boundary_own].iter().all(|&l| l == "own"));
    assert!(order[boundary_own..boundary_ovf]
        .iter()
        .all(|&l| l == "overflow"));
    assert!(order[boundary_ovf..].iter().all(|&l| l == "global"));
}

/// `cross_socket_backlog` gates both halves of a remote socket — member
/// queues *and* overflow: a trivial imbalance is invisible to remote
/// probes and thieves, a real one is seen and drained.
#[test]
fn cross_socket_gate_hides_small_imbalances() {
    let mgr = TaskManager::with_config(
        presets::dual_socket_256().into(),
        ManagerConfig {
            cross_socket_backlog: 8,
            ..ManagerConfig::default()
        },
    );
    let thief = 128; // first core of socket 1
    let spawn_n = |n: usize| -> Vec<_> {
        (0..n)
            .map(|_| {
                mgr.task(|_| TaskStatus::Done)
                    .cpuset(CpuSet::from_iter([0, thief]))
                    .on_core(0)
                    .spawn()
            })
            .collect()
    };

    let small = spawn_n(4);
    assert!(
        !mgr.park_probe(thief),
        "4 pending < cross_socket_backlog: not worth the interconnect"
    );
    assert!(!mgr.schedule(thief), "the thief's steal scan is gated too");

    let _more = spawn_n(8); // 12 pending now: over the gate
    assert!(mgr.park_probe(thief), "a real imbalance is visible");
    assert!(mgr.schedule(thief), "and stealable");
    assert!(mgr.stats().stolen_by_core[thief] > 0);

    while small.iter().any(|h| !h.is_complete()) {
        mgr.schedule(thief);
        mgr.schedule(0);
    }
}

/// The config gate: with `socket_overflow` off the tier is fully inert —
/// no spills, no claims — and the pre-PR-10 paths still drain everything.
#[test]
fn disabled_tier_never_spills_and_work_still_completes() {
    let mgr = TaskManager::with_config(
        presets::quad_socket_1024().into(),
        ManagerConfig {
            socket_overflow: false,
            spill_threshold: 1,
            ..ManagerConfig::default()
        },
    );
    let handles: Vec<_> = (0..32)
        .map(|_| {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::from_iter([0, 1]))
                .on_core(0)
                .spawn()
        })
        .collect();
    let stats = mgr.stats();
    assert_eq!(stats.total_spilled(), 0, "threshold 1 but the tier is off");
    while handles.iter().any(|h| !h.is_complete()) {
        mgr.schedule(0);
        mgr.schedule(1);
    }
    assert_eq!(mgr.stats().total_claimed(), 0);
}
