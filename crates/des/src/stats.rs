//! Online statistics used by benchmark harnesses.

use crate::SimTime;

/// Streaming mean / min / max / variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a [`SimTime`] sample in nanoseconds.
    pub fn push_time(&mut self, t: SimTime) {
        self.push(t.as_ns() as f64);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The distribution vocabulary every measurement surface speaks: one
/// struct carrying the tail quantiles production systems gate on.
///
/// Both producers return it — the exact [`Percentiles`] reservoir here
/// (small sample sets, test oracle) and the fixed-footprint sharded
/// histogram in `pioman::hist` (hot-path capture) — so DES scenario
/// reports, bench reports, and the stats snapshot all agree on what "a
/// latency distribution" is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentileSummary {
    /// Number of samples summarized.
    pub count: u64,
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Median (nearest-rank p50).
    pub p50: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// 99.9th percentile (nearest-rank).
    pub p999: f64,
    /// Largest sample.
    pub max: f64,
}

/// A sample reservoir with exact percentile queries.
///
/// Harness runs are modest (≤ a few million samples), so keeping every
/// sample and sorting on demand is both exact and fast enough; the sort is
/// cached until the next push.
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Empty reservoir.
    pub fn new() -> Self {
        Percentiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile (`q` in `[0,1]`) by nearest-rank; `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
        let rank = ((self.samples.len() as f64 * q).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }

    /// Median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The shared distribution vocabulary ([`PercentileSummary`]), with
    /// every field exact — this is the sequential oracle the bucketed
    /// `pioman::hist` summaries are property-tested against. All-zero if
    /// the reservoir is empty.
    pub fn summary(&mut self) -> PercentileSummary {
        let count = self.samples.len() as u64;
        if count == 0 {
            return PercentileSummary {
                count: 0,
                mean: 0.0,
                p50: 0.0,
                p99: 0.0,
                p999: 0.0,
                max: 0.0,
            };
        }
        PercentileSummary {
            count,
            mean: self.samples.iter().sum::<f64>() / count as f64,
            p50: self.quantile(0.5).expect("nonempty"),
            p99: self.quantile(0.99).expect("nonempty"),
            p999: self.quantile(0.999).expect("nonempty"),
            max: self.quantile(1.0).expect("nonempty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        // Known population stddev 2.0 -> sample variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 7 % 13) as f64).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        xs[..37].iter().for_each(|&x| left.push(x));
        xs[37..].iter().for_each(|&x| right.push(x));
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 3.0);
    }

    #[test]
    fn push_time_uses_ns() {
        let mut s = OnlineStats::new();
        s.push_time(SimTime::from_us(1));
        assert_eq!(s.mean(), 1_000.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        for x in [15.0, 20.0, 35.0, 40.0, 50.0] {
            p.push(x);
        }
        assert_eq!(p.quantile(0.05), Some(15.0));
        assert_eq!(p.quantile(0.30), Some(20.0));
        assert_eq!(p.quantile(0.40), Some(20.0));
        assert_eq!(p.median(), Some(35.0));
        assert_eq!(p.quantile(1.0), Some(50.0));
        assert_eq!(p.quantile(0.0), Some(15.0), "q=0 clamps to first");
    }

    #[test]
    fn percentiles_empty_and_unsorted_pushes() {
        let mut p = Percentiles::new();
        assert_eq!(p.median(), None);
        p.push(5.0);
        assert_eq!(p.median(), Some(5.0));
        p.push(1.0); // invalidates cached sort
        assert_eq!(p.quantile(0.0), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_out_of_range_panics() {
        Percentiles::new().quantile(1.5);
    }

    #[test]
    fn summary_reports_exact_fields() {
        let mut p = Percentiles::new();
        for x in 1..=1000 {
            p.push(x as f64);
        }
        let s = p.summary();
        assert_eq!(s.count, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9);
        assert_eq!(s.p50, 500.0);
        assert_eq!(s.p99, 990.0);
        assert_eq!(s.p999, 999.0);
        assert_eq!(s.max, 1000.0);
    }

    #[test]
    fn summary_of_empty_is_all_zero() {
        let s = Percentiles::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0.0);
    }
}
