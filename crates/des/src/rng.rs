//! Deterministic pseudo-random numbers for simulations.
//!
//! A self-contained SplitMix64: tiny state, excellent statistical quality for
//! simulation jitter, and — unlike thread-local or OS-seeded generators —
//! bit-for-bit reproducible across runs and platforms from a `u64` seed.

/// SplitMix64 PRNG (Steele, Lea & Flood, OOPSLA 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection-free variant is overkill here;
        // simulations tolerate the negligible modulo bias for small bounds,
        // but use 128-bit multiply-shift anyway since it is one instruction.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform choice of one element of a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.next_below(slice.len() as u64) as usize]
    }

    /// Multiplicative jitter: a factor uniform in `[1-spread, 1+spread]`.
    /// Used by cost models to avoid artificial lockstep.
    #[inline]
    pub fn jitter(&mut self, spread: f64) -> f64 {
        1.0 + (self.next_f64() * 2.0 - 1.0) * spread
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_first_output() {
        // Reference value for seed 0 from the SplitMix64 reference code.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            let v = r.next_below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn jitter_within_spread() {
        let mut r = SplitMix64::new(11);
        for _ in 0..1_000 {
            let j = r.jitter(0.1);
            assert!((0.9..=1.1).contains(&j));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SplitMix64::new(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
