//! Deterministic discrete-event simulation (DES) kernel.
//!
//! The paper's evaluation ran on 8- and 16-core NUMA Opterons and an
//! InfiniBand cluster. This reproduction substitutes those testbeds with a
//! simulated machine and network (see `DESIGN.md` §3); this crate is the
//! simulation engine underneath both:
//!
//! * [`SimTime`] — a nanosecond-resolution simulated clock value;
//! * [`Sim`] — the event loop: a priority queue of timestamped events with
//!   deterministic FIFO tie-breaking, plus scheduling and cancellation;
//! * [`rng::SplitMix64`] — a tiny deterministic PRNG so simulations are
//!   reproducible from a seed (no ambient entropy);
//! * [`stats`] — online mean/min/max/variance accumulators and a fixed-bin
//!   histogram with percentile queries, used by every harness.
//!
//! Events are boxed `FnOnce(&mut Sim)` closures. Model state lives in
//! `Rc<RefCell<...>>` captured by the closures — the kernel itself is
//! single-threaded and allocation-light.
//!
//! # Quick start
//!
//! ```
//! use piom_des::{Sim, SimTime};
//!
//! let mut sim = Sim::new();
//! // An event may schedule follow-up events relative to its own time.
//! sim.schedule(SimTime::from_us(3), |sim| {
//!     sim.schedule(SimTime::from_us(2), |_| {});
//! });
//! let end = sim.run();
//! assert_eq!(end, SimTime::from_us(5));
//! assert_eq!(sim.events_executed(), 2);
//! ```

#![warn(missing_docs)]

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

pub mod rng;
pub mod stats;

mod time;
pub use time::SimTime;

/// An event: a closure run at its scheduled time with access to the kernel
/// (so it can schedule follow-up events).
pub type Event = Box<dyn FnOnce(&mut Sim)>;

struct Entry {
    at: SimTime,
    seq: u64,
    cancelled: Option<Rc<Cell<bool>>>,
    run: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Cancellation handle returned by [`Sim::schedule_cancelable`].
///
/// Dropping the handle does *not* cancel the event; call
/// [`EventHandle::cancel`]. Cancelling after the event ran is a no-op.
#[derive(Clone)]
pub struct EventHandle {
    flag: Rc<Cell<bool>>,
}

impl EventHandle {
    /// Prevents the event from running if it has not run yet.
    pub fn cancel(&self) {
        self.flag.set(true);
    }

    /// `true` if [`cancel`](Self::cancel) was called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.get()
    }
}

/// The discrete-event simulation kernel.
///
/// # Determinism
///
/// Events at equal timestamps run in scheduling (FIFO) order; no ambient
/// randomness is used. Two runs of the same model with the same seed produce
/// identical event sequences.
///
/// # Examples
///
/// ```
/// use piom_des::{Sim, SimTime};
/// use std::{cell::RefCell, rc::Rc};
///
/// let log = Rc::new(RefCell::new(Vec::new()));
/// let mut sim = Sim::new();
/// let l = log.clone();
/// sim.schedule(SimTime::from_ns(10), move |sim| {
///     l.borrow_mut().push((sim.now().as_ns(), "b"));
/// });
/// let l = log.clone();
/// sim.schedule(SimTime::ZERO, move |sim| {
///     l.borrow_mut().push((sim.now().as_ns(), "a"));
/// });
/// sim.run();
/// assert_eq!(*log.borrow(), vec![(0, "a"), (10, "b")]);
/// ```
pub struct Sim {
    now: SimTime,
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
    stopped: bool,
    executed: u64,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            seq: 0,
            stopped: false,
            executed: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    #[inline]
    pub fn events_pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `event` to run `delay` after the current time.
    pub fn schedule<F: FnOnce(&mut Sim) + 'static>(&mut self, delay: SimTime, event: F) {
        let at = self.now + delay;
        self.schedule_abs(at, event);
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_abs<F: FnOnce(&mut Sim) + 'static>(&mut self, at: SimTime, event: F) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            at,
            seq,
            cancelled: None,
            run: Box::new(event),
        }));
    }

    /// Schedules a cancelable event `delay` from now; the returned handle's
    /// [`EventHandle::cancel`] suppresses it.
    pub fn schedule_cancelable<F: FnOnce(&mut Sim) + 'static>(
        &mut self,
        delay: SimTime,
        event: F,
    ) -> EventHandle {
        let flag = Rc::new(Cell::new(false));
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            at: self.now + delay,
            seq,
            cancelled: Some(flag.clone()),
            run: Box::new(event),
        }));
        EventHandle { flag }
    }

    /// Executes the next pending event, advancing the clock to its timestamp.
    /// Returns `false` when no event is pending (or the sim was stopped).
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        loop {
            let Some(Reverse(entry)) = self.heap.pop() else {
                return false;
            };
            debug_assert!(entry.at >= self.now, "event from the past");
            if let Some(flag) = &entry.cancelled {
                if flag.get() {
                    continue; // skip cancelled events without advancing time
                }
            }
            self.now = entry.at;
            (entry.run)(self);
            self.executed += 1;
            return true;
        }
    }

    /// Runs until no events remain or [`Sim::stop`] is called. Returns the
    /// final simulated time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Runs until the clock would pass `deadline` (events at exactly
    /// `deadline` still run), no events remain, or the sim is stopped.
    /// The clock is left at `min(deadline, final event time)`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while !self.stopped {
            match self.heap.peek() {
                Some(Reverse(e)) if e.at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline && !self.stopped {
            self.now = deadline;
        }
        self.now
    }

    /// Stops the run loop after the current event. Further `step`/`run`
    /// calls do nothing until [`Sim::resume`].
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Clears a previous [`Sim::stop`].
    pub fn resume(&mut self) {
        self.stopped = false;
    }

    /// `true` once [`Sim::stop`] has been called (and not resumed).
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    fn ns(n: u64) -> SimTime {
        SimTime::from_ns(n)
    }

    #[test]
    fn runs_in_time_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        for (delay, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let o = order.clone();
            sim.schedule(ns(delay), move |_| o.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!['a', 'b', 'c']);
        assert_eq!(sim.now(), ns(30));
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn fifo_tie_breaking_at_equal_times() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        for tag in 0..10 {
            let o = order.clone();
            sim.schedule(ns(5), move |_| o.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*order.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let hits = Rc::new(Cell::new(0u32));
        let mut sim = Sim::new();
        let h = hits.clone();
        sim.schedule(ns(1), move |sim| {
            h.set(h.get() + 1);
            let h2 = h.clone();
            sim.schedule(ns(1), move |_| h2.set(h2.get() + 1));
        });
        sim.run();
        assert_eq!(hits.get(), 2);
        assert_eq!(sim.now(), ns(2));
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Sim::new();
        let hit = Rc::new(Cell::new(false));
        let h = hit.clone();
        sim.schedule(ns(100), move |_| h.set(true));
        sim.run_until(ns(50));
        assert!(!hit.get());
        assert_eq!(sim.now(), ns(50), "clock advances to deadline");
        sim.run_until(ns(100));
        assert!(hit.get(), "event at exactly the deadline runs");
    }

    #[test]
    fn cancelled_events_do_not_run() {
        let mut sim = Sim::new();
        let hit = Rc::new(Cell::new(false));
        let h = hit.clone();
        let handle = sim.schedule_cancelable(ns(10), move |_| h.set(true));
        handle.cancel();
        assert!(handle.is_cancelled());
        sim.run();
        assert!(!hit.get());
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn cancel_after_run_is_noop() {
        let mut sim = Sim::new();
        let hit = Rc::new(Cell::new(false));
        let h = hit.clone();
        let handle = sim.schedule_cancelable(ns(10), move |_| h.set(true));
        sim.run();
        assert!(hit.get());
        handle.cancel(); // nothing to suppress; must not panic
    }

    #[test]
    fn stop_halts_run() {
        let mut sim = Sim::new();
        let count = Rc::new(Cell::new(0));
        for i in 0..10u64 {
            let c = count.clone();
            sim.schedule(ns(i), move |sim| {
                c.set(c.get() + 1);
                if c.get() == 3 {
                    sim.stop();
                }
            });
        }
        sim.run();
        assert_eq!(count.get(), 3);
        sim.resume();
        sim.run();
        assert_eq!(count.get(), 10);
    }

    #[test]
    fn run_until_landing_exactly_on_an_event_timestamp() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let o = order.clone();
        sim.schedule(ns(100), move |sim| {
            o.borrow_mut().push("at-deadline");
            // A zero-delay follow-up lands at exactly the deadline too and
            // must run within the same run_until (the loop re-peeks).
            let o2 = o.clone();
            sim.schedule(SimTime::ZERO, move |_| o2.borrow_mut().push("chained"));
        });
        let o = order.clone();
        sim.schedule(ns(101), move |_| o.borrow_mut().push("past-deadline"));
        let end = sim.run_until(ns(100));
        assert_eq!(*order.borrow(), vec!["at-deadline", "chained"]);
        assert_eq!(end, ns(100), "clock rests at the deadline, not past it");
        assert_eq!(sim.events_pending(), 1, "the 101 ns event is untouched");
        sim.run();
        assert_eq!(order.borrow().last(), Some(&"past-deadline"));
    }

    #[test]
    fn cancel_of_executed_event_leaves_pending_events_alone() {
        let mut sim = Sim::new();
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        let executed = sim.schedule_cancelable(ns(10), move |_| h.set(h.get() + 1));
        let h = hits.clone();
        let pending = sim.schedule_cancelable(ns(30), move |_| h.set(h.get() + 10));
        sim.run_until(ns(20));
        assert_eq!(hits.get(), 1, "first event ran");
        // Cancelling the already-executed event is a pure no-op: it cannot
        // un-run, and it must not leak into the still-pending handle.
        executed.cancel();
        executed.cancel(); // idempotent
        assert!(executed.is_cancelled(), "flag records the (futile) cancel");
        assert!(!pending.is_cancelled());
        sim.run();
        assert_eq!(hits.get(), 11, "the pending event still ran");
    }

    #[test]
    fn stop_mid_step_freezes_run_until_clock_and_resume_continues() {
        let mut sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        sim.schedule(ns(10), move |sim| {
            l.borrow_mut().push(sim.now().as_ns());
            sim.stop(); // mid-step: the loop must halt after this event
        });
        let l = log.clone();
        sim.schedule(ns(20), move |sim| l.borrow_mut().push(sim.now().as_ns()));
        let end = sim.run_until(ns(50));
        // Stopped mid-run: the clock stays at the stopping event's time
        // rather than jumping to the deadline (a stopped sim must be
        // resumable exactly where it halted).
        assert_eq!(end, ns(10));
        assert!(sim.is_stopped());
        assert_eq!(sim.events_pending(), 1);
        assert!(!sim.step(), "step is inert while stopped");
        assert_eq!(sim.run_until(ns(50)), ns(10), "run_until is inert too");
        sim.resume();
        assert_eq!(sim.run_until(ns(50)), ns(50));
        assert_eq!(*log.borrow(), vec![10, 20]);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Sim::new();
        sim.schedule(ns(10), |sim| {
            sim.schedule_abs(SimTime::from_ns(5), |_| {});
        });
        sim.run();
    }

    #[test]
    fn zero_delay_event_runs_at_current_time() {
        let mut sim = Sim::new();
        let t = Rc::new(Cell::new(SimTime::ZERO));
        let t2 = t.clone();
        sim.schedule(ns(7), move |sim| {
            let t3 = t2.clone();
            sim.schedule(SimTime::ZERO, move |sim| t3.set(sim.now()));
        });
        sim.run();
        assert_eq!(t.get(), ns(7));
    }
}
