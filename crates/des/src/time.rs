//! Simulated time: a nanosecond counter with convenient arithmetic.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, in nanoseconds.
///
/// The same type is used for instants and durations — the simulation starts
/// at zero, so the distinction carries no information, and mixing them in
/// arithmetic is exactly what models do all day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero / the empty duration.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// As nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// As (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// As (fractional) milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Scales by a float factor, rounding to the nearest nanosecond.
    /// Negative factors clamp to zero.
    #[inline]
    pub fn scale(self, factor: f64) -> SimTime {
        SimTime((self.0 as f64 * factor).round().max(0.0) as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

/// Displays with an auto-selected unit: `950 ns`, `1.100 µs`, `13.585 µs`,
/// `2.000 ms`, `1.500 s`.
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns} ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.3} µs", ns as f64 / 1_000.0)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3} ms", ns as f64 / 1_000_000.0)
        } else {
            write!(f, "{:.3} s", ns as f64 / 1_000_000_000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimTime::from_secs(1).as_ns(), 1_000_000_000);
        assert_eq!(SimTime::from_us(1500).as_us_f64(), 1500.0);
        assert!((SimTime::from_ns(2_500_000).as_ms_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(30);
        assert_eq!(a + b, SimTime::from_ns(130));
        assert_eq!(a - b, SimTime::from_ns(70));
        assert_eq!(b * 3, SimTime::from_ns(90));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_ns(1)), None);
    }

    #[test]
    fn scaling() {
        assert_eq!(SimTime::from_ns(100).scale(1.5), SimTime::from_ns(150));
        assert_eq!(SimTime::from_ns(100).scale(0.0), SimTime::ZERO);
        assert_eq!(SimTime::from_ns(100).scale(-2.0), SimTime::ZERO);
        assert_eq!(
            SimTime::from_ns(3).scale(0.5),
            SimTime::from_ns(2),
            "rounds"
        );
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_ns(950).to_string(), "950 ns");
        assert_eq!(SimTime::from_ns(1_100).to_string(), "1.100 µs");
        assert_eq!(SimTime::from_ns(13_585).to_string(), "13.585 µs");
        assert_eq!(SimTime::from_ms(2).to_string(), "2.000 ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000 s");
    }
}
