//! Integration coverage for `piom-harness bench --json`: the binary must
//! emit a well-formed `BENCH_pioman.json` whose schema (benchmark name →
//! mean_ns/iters/seed) is stable across runs.

use std::process::Command;

fn bench_json_at(path: &std::path::Path) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_piom-harness"))
        .args(["bench", "--json", "--quick", "--out"])
        .arg(path)
        .output()
        .expect("spawn piom-harness bench");
    assert!(
        out.status.success(),
        "bench exited {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("BENCH"), "missing text report:\n{stdout}");
    std::fs::read_to_string(path).expect("BENCH_pioman.json written")
}

#[test]
fn bench_binary_writes_trajectory_json() {
    let dir = std::env::temp_dir().join(format!("piom-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_pioman.json");

    let json = bench_json_at(&path);
    // Schema: one entry per benchmark, each carrying the three fields.
    let entries = json.matches("mean_ns").count();
    assert!(entries >= 4, "trajectory needs >= 4 benchmarks:\n{json}");
    assert_eq!(json.matches("\"iters\"").count(), entries);
    assert_eq!(json.matches("\"seed\"").count(), entries);
    for name in [
        "submit_schedule_percore",
        "schedule_batch_drain_64",
        "steal_starved_core",
        "contended_global_queue",
    ] {
        assert!(json.contains(&format!("\"{name}\"")), "missing {name}:\n{json}");
    }
    assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    assert!(!json.contains(",\n}"), "trailing comma before closing brace");

    // The schema is deterministic: a second run yields the same key lines
    // modulo the measured numbers.
    let keys = |s: &str| {
        s.lines()
            .filter_map(|l| l.split('"').nth(1).map(str::to_owned))
            .collect::<Vec<_>>()
    };
    let again = bench_json_at(&path);
    assert_eq!(keys(&json), keys(&again));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_rejects_unknown_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_piom-harness"))
        .args(["bench", "--frobnicate"])
        .output()
        .expect("spawn piom-harness bench");
    assert_eq!(out.status.code(), Some(2));
}
