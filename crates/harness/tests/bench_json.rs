//! Integration coverage for `piom-harness bench --json`: the binary must
//! emit a well-formed `BENCH_pioman.json` whose schema v2 (benchmark name
//! → mean_ns/p50_ns/p99_ns/p999_ns/iters/seed) is stable across runs —
//! and for `piom-harness stats`, the Prometheus-text-shaped counter
//! export.

use std::process::Command;

fn bench_json_at(path: &std::path::Path) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_piom-harness"))
        .args(["bench", "--json", "--quick", "--out"])
        .arg(path)
        .output()
        .expect("spawn piom-harness bench");
    assert!(
        out.status.success(),
        "bench exited {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("BENCH"), "missing text report:\n{stdout}");
    std::fs::read_to_string(path).expect("BENCH_pioman.json written")
}

#[test]
fn bench_binary_writes_trajectory_json() {
    let dir = std::env::temp_dir().join(format!("piom-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_pioman.json");

    let json = bench_json_at(&path);
    // Schema v2: one entry per benchmark, each carrying the mean, the
    // three percentiles, and the run parameters.
    let entries = json.matches("mean_ns").count();
    assert!(entries >= 4, "trajectory needs >= 4 benchmarks:\n{json}");
    for key in [
        "\"p50_ns\"",
        "\"p99_ns\"",
        "\"p999_ns\"",
        "\"iters\"",
        "\"seed\"",
    ] {
        assert_eq!(
            json.matches(key).count(),
            entries,
            "every row carries {key}:\n{json}"
        );
    }
    for name in [
        "submit_schedule_percore",
        "schedule_batch_drain_64",
        "steal_starved_core",
        "contended_global_queue",
    ] {
        assert!(
            json.contains(&format!("\"{name}\"")),
            "missing {name}:\n{json}"
        );
    }
    assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    assert!(
        !json.contains(",\n}"),
        "trailing comma before closing brace"
    );

    // The schema is deterministic: a second run yields the same key lines
    // modulo the measured numbers.
    let keys = |s: &str| {
        s.lines()
            .filter_map(|l| l.split('"').nth(1).map(str::to_owned))
            .collect::<Vec<_>>()
    };
    let again = bench_json_at(&path);
    assert_eq!(keys(&json), keys(&again));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_compare_gates_on_regression() {
    let dir = std::env::temp_dir().join(format!("piom-compare-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // A baseline claiming one scenario used to be absurdly fast: the fresh
    // run must regress past any threshold and exit 1.
    let regressing = dir.join("regressing.json");
    std::fs::write(
        &regressing,
        "{\n  \"submit_schedule_percore\": { \"mean_ns\": 0.001, \"iters\": 1, \"seed\": 42 }\n}\n",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_piom-harness"))
        .args(["bench", "--quick", "--compare"])
        .arg(&regressing)
        .output()
        .expect("spawn piom-harness bench --compare");
    assert_eq!(out.status.code(), Some(1), "regression must exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("gate: FAIL"), "missing verdict:\n{stdout}");
    assert!(stdout.contains("REGRESSION"), "missing marker:\n{stdout}");

    // A baseline claiming everything was absurdly slow: every known
    // scenario improves, unknown ones are new — gate passes, exit 0.
    // (`removed` covers the baseline-only scenario: reported, not fatal.)
    let permissive = dir.join("permissive.json");
    std::fs::write(
        &permissive,
        "{\n  \"submit_schedule_percore\": { \"mean_ns\": 9e12, \"iters\": 1, \"seed\": 42 },\n  \
           \"long_gone_scenario\": { \"mean_ns\": 1.0, \"iters\": 1, \"seed\": 42 }\n}\n",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_piom-harness"))
        .args(["bench", "--quick", "--compare"])
        .arg(&permissive)
        .output()
        .expect("spawn piom-harness bench --compare");
    assert!(
        out.status.success(),
        "improvements+new must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("gate: PASS"), "missing verdict:\n{stdout}");
    assert!(
        stdout.contains("long_gone_scenario"),
        "removed scenario must be reported:\n{stdout}"
    );
    // Both baselines above are schema v1 (no percentiles): the report must
    // say so and fall back to the mean-only gate rather than failing.
    assert!(
        stdout.contains("predate schema v2"),
        "v1 baseline must be flagged:\n{stdout}"
    );

    // A corrupt baseline fails fast (exit 2), before any measuring.
    let corrupt = dir.join("corrupt.json");
    std::fs::write(&corrupt, "not json at all").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_piom-harness"))
        .args(["bench", "--quick", "--compare"])
        .arg(&corrupt)
        .output()
        .expect("spawn piom-harness bench --compare");
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_subcommand_diffs_two_files_without_benching() {
    let dir = std::env::temp_dir().join(format!("piom-cmpfiles-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(
        &old,
        "{\n  \"a\": { \"mean_ns\": 100.0, \"iters\": 1, \"seed\": 42 },\n  \
           \"b\": { \"mean_ns\": 100.0, \"iters\": 1, \"seed\": 42 }\n}\n",
    )
    .unwrap();
    std::fs::write(
        &new,
        "{\n  \"a\": { \"mean_ns\": 90.0, \"iters\": 1, \"seed\": 42 },\n  \
           \"b\": { \"mean_ns\": 180.0, \"iters\": 1, \"seed\": 42 }\n}\n",
    )
    .unwrap();

    // b regressed +80%: default gate fails...
    let out = Command::new(env!("CARGO_BIN_EXE_piom-harness"))
        .arg("compare")
        .args([&old, &new])
        .output()
        .expect("spawn piom-harness compare");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("gate: FAIL"), "{stdout}");
    assert!(
        !stdout.contains("BENCH —"),
        "file mode must not run the suite:\n{stdout}"
    );

    // ...but a looser threshold passes.
    let out = Command::new(env!("CARGO_BIN_EXE_piom-harness"))
        .arg("compare")
        .args([&old, &new])
        .args(["--threshold", "100"])
        .output()
        .expect("spawn piom-harness compare");
    assert!(out.status.success());

    // Wrong arity is a usage error.
    let out = Command::new(env!("CARGO_BIN_EXE_piom-harness"))
        .arg("compare")
        .arg(&old)
        .output()
        .expect("spawn piom-harness compare");
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_subcommand_exports_prometheus_shaped_json() {
    let out = Command::new(env!("CARGO_BIN_EXE_piom-harness"))
        .args(["stats", "--json"])
        .output()
        .expect("spawn piom-harness stats --json");
    assert!(
        out.status.success(),
        "stats exited {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8(out.stdout).unwrap();
    piom_harness::schema::validate_json(&json).expect("stats --json must emit valid JSON");
    for marker in [
        "\"piom_task_latency_ns\": { \"type\": \"histogram\"",
        "\"le\": \"+Inf\"",
        "\"piom_core_executed_total\"",
        "\"hook\": \"timer\"",
    ] {
        assert!(json.contains(marker), "missing {marker}:\n{json}");
    }

    // Bare `stats` prints the human-readable summary with percentiles.
    let out = Command::new(env!("CARGO_BIN_EXE_piom-harness"))
        .arg("stats")
        .output()
        .expect("spawn piom-harness stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("p99="), "missing percentiles:\n{text}");

    // Unknown flags are a usage error.
    let out = Command::new(env!("CARGO_BIN_EXE_piom-harness"))
        .args(["stats", "--frobnicate"])
        .output()
        .expect("spawn piom-harness stats");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bench_rejects_unknown_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_piom-harness"))
        .args(["bench", "--frobnicate"])
        .output()
        .expect("spawn piom-harness bench");
    assert_eq!(out.status.code(), Some(2));
}
