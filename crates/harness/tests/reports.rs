//! Integration coverage for the `piom-harness` entry points: every
//! table/figure regenerator must return a non-empty, well-formed report,
//! and the binary must behave sanely on good and bad arguments.

use std::process::Command;

/// Every individual experiment name (everything `run` accepts except the
/// `all` aggregate, which is checked separately).
fn individual_experiments() -> Vec<&'static str> {
    piom_harness::EXPERIMENTS
        .iter()
        .copied()
        .filter(|&e| e != "all")
        .collect()
}

#[test]
fn every_experiment_returns_a_nonempty_report() {
    for name in individual_experiments() {
        let report = piom_harness::run(name)
            .unwrap_or_else(|| panic!("EXPERIMENTS lists {name:?} but run() rejects it"));
        assert!(
            report.trim().len() > 40,
            "report for {name:?} suspiciously short: {report:?}"
        );
        assert!(
            report.lines().count() >= 2,
            "report for {name:?} should have a title plus data lines"
        );
    }
}

#[test]
fn reports_carry_their_paper_labels() {
    for (name, expected) in [
        ("table1", "TABLE I"),
        ("table2", "TABLE II"),
        ("fig1", "FIG. 1"),
        ("fig2", "FIG. 2"),
        ("fig4", "FIG. 4"),
        ("fig5", "FIG. 5"),
        ("fig6", "FIG. 6"),
        ("fig7", "FIG. 7"),
        ("ablation-hierarchy", "ABLATION"),
    ] {
        let report = piom_harness::run(name).unwrap();
        assert!(
            report.contains(expected),
            "report for {name:?} is missing its {expected:?} heading"
        );
    }
}

#[test]
fn figure_reports_contain_numeric_data() {
    // Each figure is a table of numbers; a report of headings only would be
    // well-formed-looking but empty. Require at least one fractional value.
    for name in ["fig4", "fig5", "fig6", "fig7"] {
        let report = piom_harness::run(name).unwrap();
        let numeric_lines = report
            .lines()
            .filter(|l| l.split_whitespace().any(|w| w.parse::<f64>().is_ok()))
            .count();
        assert!(
            numeric_lines >= 3,
            "report for {name:?} has too few data lines:\n{report}"
        );
    }
}

#[test]
fn run_is_deterministic() {
    // Regenerators are seeded; two runs must render identical reports.
    for name in ["table1", "fig4"] {
        assert_eq!(
            piom_harness::run(name),
            piom_harness::run(name),
            "{name:?} report is not deterministic"
        );
    }
}

#[test]
fn all_aggregates_every_individual_report() {
    let all = piom_harness::run("all").unwrap();
    for name in individual_experiments() {
        let report = piom_harness::run(name).unwrap();
        let first_line = report.lines().next().unwrap();
        assert!(
            all.contains(first_line),
            "aggregate report is missing the {name:?} section"
        );
    }
}

#[test]
fn unknown_experiment_is_rejected() {
    assert!(piom_harness::run("figure-nope").is_none());
    assert!(piom_harness::run("").is_none());
}

#[test]
fn binary_prints_report_for_known_experiment() {
    let out = Command::new(env!("CARGO_BIN_EXE_piom-harness"))
        .arg("fig2")
        .output()
        .expect("spawn piom-harness");
    assert!(out.status.success(), "exit: {:?}", out.status);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("FIG. 2"));
}

#[test]
fn binary_usage_and_unknown_names_exit_2() {
    let no_args = Command::new(env!("CARGO_BIN_EXE_piom-harness"))
        .output()
        .expect("spawn piom-harness");
    assert_eq!(no_args.status.code(), Some(2));
    assert!(String::from_utf8(no_args.stderr).unwrap().contains("usage"));

    let bad = Command::new(env!("CARGO_BIN_EXE_piom-harness"))
        .arg("figure-nope")
        .output()
        .expect("spawn piom-harness");
    assert_eq!(bad.status.code(), Some(2));
    assert!(String::from_utf8(bad.stderr)
        .unwrap()
        .contains("unknown experiment"));
}
