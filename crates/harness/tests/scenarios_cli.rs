//! Integration coverage for `piom-harness scenarios`: the workload matrix
//! must emit valid schema-v2 JSON (checked through `schema::validate_json`
//! *and* the trajectory parser), reproduce byte-identically under one
//! seed, diverge under another, gate through `--compare`, and treat an
//! unmatched `--filter` as an error — a typo must never read as an
//! empty-but-green matrix.

use std::process::Command;

fn scenarios_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_piom-harness"))
}

/// Runs `scenarios --quick --json --out <path> [extra args]` and returns
/// the written JSON.
fn scenarios_json_at(path: &std::path::Path, extra: &[&str]) -> String {
    let out = scenarios_cmd()
        .args(["scenarios", "--quick", "--json", "--out"])
        .arg(path)
        .args(extra)
        .output()
        .expect("spawn piom-harness scenarios");
    assert!(
        out.status.success(),
        "scenarios exited {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("SCENARIO MATRIX"),
        "missing text report:\n{stdout}"
    );
    std::fs::read_to_string(path).expect("trajectory written")
}

#[test]
fn scenarios_json_is_valid_schema_v2_and_byte_deterministic() {
    let dir = std::env::temp_dir().join(format!("piom-scen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("SCENARIOS_pioman.json");

    let json = scenarios_json_at(&path, &[]);
    piom_harness::schema::validate_json(&json).expect("scenarios --json must emit valid JSON");
    let parsed = piom_harness::schema::parse_trajectory(&json).expect("and a valid trajectory");
    assert!(parsed.len() >= 8, "matrix needs >= 8 scenarios:\n{json}");
    for (name, entry) in &parsed {
        assert!(!entry.is_v1(), "{name} must carry v2 percentiles");
        assert!(entry.mean_ns > 0.0, "{name} mean must be positive");
    }
    for name in ["incast_fanin", "retry_storm", "rpc_mesh_steady"] {
        assert!(parsed.contains_key(name), "missing {name}:\n{json}");
    }

    // The determinism contract, at the file level: same seed ⇒ the same
    // bytes (this is what lets CI diff against a committed baseline
    // exactly); a different seed ⇒ different measurements.
    let again = scenarios_json_at(&path, &[]);
    assert_eq!(json, again, "same seed must reproduce byte-identically");
    let reseeded = scenarios_json_at(&path, &["--seed", "7"]);
    assert_ne!(json, reseeded, "a different seed must change the rows");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unmatched_filter_exits_nonzero() {
    let out = scenarios_cmd()
        .args(["scenarios", "--quick", "--filter", "no_such_scenario_zzz"])
        .output()
        .expect("spawn piom-harness scenarios --filter");
    assert_eq!(
        out.status.code(),
        Some(2),
        "an unmatched filter must fail, not pass an empty matrix"
    );
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        stderr.contains("matches no scenario") && stderr.contains("incast_fanin"),
        "error must list the known names:\n{stderr}"
    );

    // A matching filter runs exactly the selected subset.
    let out = scenarios_cmd()
        .args(["scenarios", "--quick", "--filter", "fanin"])
        .output()
        .expect("spawn piom-harness scenarios --filter fanin");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("incast_fanin") && stdout.contains("rdma_pull_fanin"));
    assert!(
        !stdout.contains("retry_storm"),
        "filter must exclude non-matching scenarios:\n{stdout}"
    );
}

#[test]
fn scenarios_compare_gates_against_a_baseline() {
    let dir = std::env::temp_dir().join(format!("piom-scen-cmp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Record a baseline, then compare a same-seed rerun against it: a
    // deterministic matrix diffed against itself passes at delta zero.
    let baseline = dir.join("base.json");
    scenarios_json_at(&baseline, &[]);
    let out = scenarios_cmd()
        .args(["scenarios", "--quick", "--compare"])
        .arg(&baseline)
        .output()
        .expect("spawn piom-harness scenarios --compare");
    assert!(
        out.status.success(),
        "self-compare must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("gate: PASS"), "missing verdict:\n{stdout}");

    // A baseline claiming a scenario used to be absurdly fast: the rerun
    // regresses past any threshold and exits 1.
    let regressing = dir.join("regressing.json");
    std::fs::write(
        &regressing,
        "{\n  \"rpc_mesh_steady\": { \"mean_ns\": 0.001, \"iters\": 1, \"seed\": 42 }\n}\n",
    )
    .unwrap();
    let out = scenarios_cmd()
        .args(["scenarios", "--quick", "--compare"])
        .arg(&regressing)
        .output()
        .expect("spawn piom-harness scenarios --compare");
    assert_eq!(out.status.code(), Some(1), "regression must exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("gate: FAIL"), "missing verdict:\n{stdout}");

    // A corrupt baseline fails fast (exit 2), before any simulating.
    let corrupt = dir.join("corrupt.json");
    std::fs::write(&corrupt, "not json").unwrap();
    let out = scenarios_cmd()
        .args(["scenarios", "--quick", "--compare"])
        .arg(&corrupt)
        .output()
        .expect("spawn piom-harness scenarios --compare corrupt");
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scenarios_rejects_unknown_flags_and_bad_values() {
    for bad in [
        &["scenarios", "--frobnicate"][..],
        &["scenarios", "--seed", "not-a-number"],
        &["scenarios", "--filter"],
        &["scenarios", "--threshold", "-3"],
    ] {
        let out = scenarios_cmd()
            .args(bad)
            .output()
            .expect("spawn piom-harness scenarios (bad args)");
        assert_eq!(out.status.code(), Some(2), "args {bad:?} must be rejected");
    }
}
