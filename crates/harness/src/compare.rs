//! The bench-regression gate: `piom-harness bench --compare <old.json>`.
//!
//! `BENCH_pioman.json` is a committed perf trajectory — every PR appends a
//! run, so the numbers tell a story instead of asserting one. This module
//! closes the loop: it diffs a fresh suite run against a baseline file,
//! prints per-scenario percentage deltas, and **fails** (nonzero exit in
//! the CLI) when any scenario's `mean_ns` grew past a threshold (default
//! [`DEFAULT_THRESHOLD_PCT`]).
//!
//! Policy choices, spelled out because a gate is only useful when its
//! verdicts are explainable (`EXPERIMENTS.md` walks a failure end-to-end):
//!
//! * **new scenarios pass** — a PR adding benchmarks must not be punished
//!   for having no baseline; the row is reported as `new`;
//! * **removed scenarios warn but do not fail** — dropping a scenario is
//!   a review concern, not a perf regression; the report lists them;
//! * **`mean_ns` is gated everywhere; `p99_ns` is gated on the scenarios
//!   tagged** [`bench::scenarios::TAIL_GATED`] — and only when *both*
//!   sides carry it, so a v1 baseline degrades to mean-only gating with a
//!   warning instead of a verdict (`iters`/`seed` describe methodology,
//!   not performance, and `p50`/`p999` are recorded context, not gates:
//!   the median moves with the mean, and a quick-mode p999 is a
//!   one-sample coin flip);
//! * **the p99 gate gets [`P99_THRESHOLD_FACTOR`]× the scenario's mean
//!   threshold** — tails are intrinsically noisier than means (one
//!   descheduled iteration *is* the p99 at modest sample counts), and a
//!   tail gate that cries wolf would be reverted within a week;
//! * **a non-finite or non-positive current value fails outright** — a
//!   NaN mean (e.g. a zero-iteration run) compares false against every
//!   threshold, which without this rule would read as a pass.
//!
//! Parsing lives in [`crate::schema`] (shared with the emit side);
//! anything malformed is a hard error — silently comparing against
//! garbage would make the gate lie.

use crate::schema::{BaselineEntry, BenchResult};
use std::collections::BTreeMap;
use std::fmt::Write as _;

pub use crate::schema::parse_trajectory;

/// Default regression threshold: a scenario may be up to this many percent
/// slower than the baseline before the gate fails. Generous on purpose —
/// quick-mode runs on shared CI runners are noisy; the committed
/// trajectory is regenerated with full iterations when it matters.
pub const DEFAULT_THRESHOLD_PCT: f64 = 20.0;

/// Per-scenario wide threshold applied to scenarios tagged
/// [`bench::scenarios::HIGH_VARIANCE`]: `newmad_pingpong` and the
/// contended/single-round-trip rows swing ±40% (and worse) with runner
/// load at quick iters, so gating them at the tight default would make
/// the now-required gate flake on weather. The scheduler microbenches —
/// the rows that actually move when someone breaks the hot path — stay on
/// the tight base threshold; a genuine regression moves the *family*
/// anyway (EXPERIMENTS.md, "Reading a regression-gate failure").
pub const WIDE_THRESHOLD_PCT: f64 = 75.0;

/// The p99 gate's headroom multiplier over the scenario's mean threshold
/// ([`scenario_threshold`]): a tail estimate rests on ~1% of the samples
/// the mean rests on, so it gets proportionally more room before the
/// verdict flips. 3× was chosen by replaying back-to-back quick runs on
/// a loaded host: with median-of-three recording, tagged rows' p99
/// jitter reached ~2× the mean's budget while their means stayed green,
/// so 2× flaked on weather — whereas the regressions this gate exists
/// for (a lost wake, a serialized drain, a once-per-batch stall) move
/// p99 by hundreds of percent and clear 3× with room to spare.
pub const P99_THRESHOLD_FACTOR: f64 = 3.0;

/// `true` when `name` gets the wide treatment: tagged
/// [`bench::scenarios::HIGH_VARIANCE`] *or* registered as a
/// [`piom_scenarios::Gate::Wide`] workload — one gate serves both
/// trajectories (`BENCH_pioman.json` and `SCENARIOS_pioman.json`), so it
/// consults both tag sources. Name collisions cannot alias: bench names
/// and scenario names live in disjoint, reviewed lists.
pub fn is_high_variance(name: &str) -> bool {
    bench::scenarios::is_high_variance(name) || piom_scenarios::is_high_variance(name)
}

/// `true` when `name` gets the p99 tail gate: tagged
/// [`bench::scenarios::TAIL_GATED`] or registered as a
/// [`piom_scenarios::Gate::Tail`] workload.
pub fn is_tail_gated(name: &str) -> bool {
    bench::scenarios::is_tail_gated(name) || piom_scenarios::is_tail_gated(name)
}

/// The effective gate threshold for `name` given the base `threshold_pct`:
/// high-variance scenarios get at least [`WIDE_THRESHOLD_PCT`] (an
/// explicitly wider `--threshold` still wins), everything else the base.
pub fn scenario_threshold(name: &str, threshold_pct: f64) -> f64 {
    if is_high_variance(name) {
        threshold_pct.max(WIDE_THRESHOLD_PCT)
    } else {
        threshold_pct
    }
}

/// One scenario row of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDelta {
    /// Benchmark name (the JSON key).
    pub name: String,
    /// Baseline `mean_ns`, if the scenario existed in the baseline.
    pub baseline_ns: Option<f64>,
    /// Freshly measured `mean_ns`.
    pub current_ns: f64,
    /// Percentage change vs baseline (positive = slower); `None` for new
    /// scenarios.
    pub delta_pct: Option<f64>,
    /// Baseline `p99_ns` (`None`: new scenario, or a v1 baseline row).
    pub baseline_p99_ns: Option<f64>,
    /// Current `p99_ns` (`None` only in file-vs-file mode over a v1
    /// current file).
    pub current_p99_ns: Option<f64>,
    /// Percentage change of p99; `None` unless both sides carry one.
    pub p99_delta_pct: Option<f64>,
}

impl ScenarioDelta {
    /// `true` when the current measurement is not a usable number (NaN,
    /// infinite, zero, negative — e.g. the mean of a zero-iteration run).
    /// Such a row fails the gate outright: every threshold comparison
    /// against a NaN is `false`, so without this rule a broken run would
    /// read as a pass.
    pub fn invalid(&self) -> bool {
        !self.current_ns.is_finite()
            || self.current_ns <= 0.0
            || self
                .current_p99_ns
                .is_some_and(|p| !p.is_finite() || p <= 0.0)
    }

    /// `true` when this row alone trips a gate at `threshold_pct`, after
    /// the per-scenario widening ([`scenario_threshold`]): the mean past
    /// the threshold, or — on [`is_tail_gated`] rows where both sides
    /// carry a p99 — the p99 past [`P99_THRESHOLD_FACTOR`]× the
    /// threshold, or an [`invalid`](Self::invalid) measurement.
    pub fn regressed(&self, threshold_pct: f64) -> bool {
        if self.invalid() {
            return true;
        }
        let gate = scenario_threshold(&self.name, threshold_pct);
        if self.delta_pct.is_some_and(|d| d > gate) {
            return true;
        }
        is_tail_gated(&self.name)
            && self
                .p99_delta_pct
                .is_some_and(|d| d > gate * P99_THRESHOLD_FACTOR)
    }
}

/// The full result of comparing a suite run against a baseline file.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-scenario rows, in suite order.
    pub rows: Vec<ScenarioDelta>,
    /// Scenarios present in the baseline but absent from the current run
    /// (reported, never failed on).
    pub removed: Vec<String>,
    /// The *base* gate threshold the report was built with; each row's
    /// effective gate is [`scenario_threshold`] of its name.
    pub threshold_pct: f64,
}

impl CompareReport {
    /// Rows that exceed the threshold.
    pub fn regressions(&self) -> Vec<&ScenarioDelta> {
        self.rows
            .iter()
            .filter(|r| r.regressed(self.threshold_pct))
            .collect()
    }

    /// `true` when no scenario regressed past the threshold.
    pub fn gate_passes(&self) -> bool {
        self.regressions().is_empty()
    }

    /// Human-readable table plus verdict, the CLI's whole output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "BENCH COMPARE — current vs baseline (gate: mean_ns regression > {:.1}%, \
             high-variance scenarios > {:.1}%, tail-gated p99 > {:.1}×)",
            self.threshold_pct,
            scenario_threshold("newmad_pingpong", self.threshold_pct),
            P99_THRESHOLD_FACTOR
        );
        let _ = writeln!(
            out,
            "{:<28}{:>14}{:>14}{:>10}{:>12}",
            "scenario", "baseline (ns)", "current (ns)", "mean Δ", "p99 Δ"
        );
        for row in &self.rows {
            let p99_col = match row.p99_delta_pct {
                Some(d) => format!("{d:>+11.1}%"),
                None if row.baseline_ns.is_some() && row.baseline_p99_ns.is_none() => {
                    // Present-but-ungateable: the baseline predates v2.
                    "   (v1 base)".to_owned()
                }
                None => format!("{:>12}", "—"),
            };
            match (row.baseline_ns, row.delta_pct) {
                (Some(base), Some(delta)) => {
                    let _ = writeln!(
                        out,
                        "{:<28}{:>14.1}{:>14.1}{:>+9.1}%{}{}",
                        row.name,
                        base,
                        row.current_ns,
                        delta,
                        p99_col,
                        if row.invalid() {
                            "  << INVALID"
                        } else if row.regressed(self.threshold_pct) {
                            "  << REGRESSION"
                        } else {
                            ""
                        }
                    );
                }
                _ => {
                    let _ = writeln!(
                        out,
                        "{:<28}{:>14}{:>14.1}{:>10}{:>12}{}",
                        row.name,
                        "—",
                        row.current_ns,
                        "new",
                        "—",
                        if row.invalid() { "  << INVALID" } else { "" }
                    );
                }
            }
        }
        for name in &self.removed {
            let _ = writeln!(
                out,
                "note: baseline scenario {name:?} missing from this run (not gated)"
            );
        }
        let v1_rows = self
            .rows
            .iter()
            .filter(|r| r.baseline_ns.is_some() && r.baseline_p99_ns.is_none())
            .count();
        if v1_rows > 0 {
            let _ = writeln!(
                out,
                "note: {v1_rows} baseline row(s) predate schema v2 (no percentiles) — \
                 gated on mean only; regenerate the baseline to arm the p99 gate"
            );
        }
        let regressions = self.regressions();
        if regressions.is_empty() {
            let _ = writeln!(out, "gate: PASS ({} scenarios compared)", self.rows.len());
        } else {
            let _ = writeln!(
                out,
                "gate: FAIL — {} scenario(s) regressed past +{:.1}%",
                regressions.len(),
                self.threshold_pct
            );
        }
        out
    }
}

/// Compares a fresh suite run against a parsed baseline.
pub fn compare(
    baseline: &BTreeMap<String, BaselineEntry>,
    current: &[BenchResult],
    threshold_pct: f64,
) -> CompareReport {
    report_from_pairs(
        baseline,
        current
            .iter()
            .map(|r| (r.name.to_owned(), r.mean_ns, Some(r.p99_ns)))
            .collect(),
        threshold_pct,
    )
}

/// Compares two *parsed trajectory files* (`current` vs `baseline`) —
/// the file-vs-file mode behind `piom-harness compare OLD NEW`, which
/// lets CI gate the exact numbers an earlier bench step already
/// recorded instead of paying for (and drifting from) a second suite
/// run. Rows follow the current file's (alphabetical) key order.
pub fn compare_parsed(
    baseline: &BTreeMap<String, BaselineEntry>,
    current: &BTreeMap<String, BaselineEntry>,
    threshold_pct: f64,
) -> CompareReport {
    report_from_pairs(
        baseline,
        current
            .iter()
            .map(|(k, e)| (k.clone(), e.mean_ns, e.p99_ns))
            .collect(),
        threshold_pct,
    )
}

fn report_from_pairs(
    baseline: &BTreeMap<String, BaselineEntry>,
    current: Vec<(String, f64, Option<f64>)>,
    threshold_pct: f64,
) -> CompareReport {
    let removed = baseline
        .keys()
        .filter(|name| current.iter().all(|(n, _, _)| n != *name))
        .cloned()
        .collect();
    let rows = current
        .into_iter()
        .map(|(name, current_ns, current_p99_ns)| {
            let base = baseline.get(&name);
            let baseline_ns = base.map(|e| e.mean_ns);
            let delta_pct = baseline_ns
                .filter(|&b| b > 0.0)
                .map(|b| (current_ns - b) / b * 100.0);
            let baseline_p99_ns = base.and_then(|e| e.p99_ns);
            // The p99 delta exists only when both generations carry one
            // (v2 vs v2); otherwise the row degrades to mean-only.
            let p99_delta_pct = match (baseline_p99_ns, current_p99_ns) {
                (Some(b), Some(c)) if b > 0.0 => Some((c - b) / b * 100.0),
                _ => None,
            };
            ScenarioDelta {
                name,
                baseline_ns,
                current_ns,
                delta_pct,
                baseline_p99_ns,
                current_p99_ns,
                p99_delta_pct,
            }
        })
        .collect();
    CompareReport {
        rows,
        removed,
        threshold_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &'static str, mean_ns: f64) -> BenchResult {
        // p99 tracks the mean at 2× unless a test overrides it.
        BenchResult {
            name,
            mean_ns,
            p50_ns: mean_ns,
            p99_ns: mean_ns * 2.0,
            p999_ns: mean_ns * 4.0,
            iters: 10,
            seed: 42,
        }
    }

    /// A v1 baseline: mean only, the shape of pre-PR-6 committed files.
    fn baseline(entries: &[(&str, f64)]) -> BTreeMap<String, BaselineEntry> {
        entries
            .iter()
            .map(|&(n, v)| (n.to_owned(), BaselineEntry::v1(v)))
            .collect()
    }

    /// A v2 baseline with the same mean→p99 shape as [`result`].
    fn baseline_v2(entries: &[(&str, f64)]) -> BTreeMap<String, BaselineEntry> {
        entries
            .iter()
            .map(|&(n, v)| (n.to_owned(), BaselineEntry::v2(v, v, v * 2.0, v * 4.0)))
            .collect()
    }

    #[test]
    fn improvement_and_noise_pass_the_gate() {
        let base = baseline(&[("fast", 1000.0), ("steady", 500.0)]);
        let current = [result("fast", 700.0), result("steady", 540.0)];
        let report = compare(&base, &current, DEFAULT_THRESHOLD_PCT);
        assert!(report.gate_passes());
        assert_eq!(report.rows[0].delta_pct, Some(-30.0));
        // +8% is within the default 20% budget.
        assert!((report.rows[1].delta_pct.unwrap() - 8.0).abs() < 1e-9);
        assert!(report.render().contains("gate: PASS"));
    }

    #[test]
    fn regression_past_threshold_fails_the_gate() {
        let base = baseline(&[("hot", 1000.0), ("fine", 100.0)]);
        let current = [result("hot", 1300.0), result("fine", 100.0)];
        let report = compare(&base, &current, DEFAULT_THRESHOLD_PCT);
        assert!(!report.gate_passes());
        let regs = report.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "hot");
        let rendered = report.render();
        assert!(rendered.contains("REGRESSION"));
        assert!(rendered.contains("gate: FAIL"));
        // A tighter threshold catches more; a looser one passes.
        assert!(!compare(&base, &current, 10.0).gate_passes());
        assert!(compare(&base, &current, 40.0).gate_passes());
    }

    #[test]
    fn new_scenario_is_reported_not_failed() {
        let base = baseline(&[("old", 100.0)]);
        let current = [result("old", 90.0), result("brand_new", 5000.0)];
        let report = compare(&base, &current, DEFAULT_THRESHOLD_PCT);
        assert!(report.gate_passes(), "no baseline, no verdict");
        let new_row = &report.rows[1];
        assert_eq!(new_row.baseline_ns, None);
        assert_eq!(new_row.delta_pct, None);
        assert!(report.render().contains("new"));
    }

    #[test]
    fn removed_scenario_warns_without_failing() {
        let base = baseline(&[("kept", 100.0), ("dropped", 100.0)]);
        let current = [result("kept", 100.0)];
        let report = compare(&base, &current, DEFAULT_THRESHOLD_PCT);
        assert!(report.gate_passes());
        assert_eq!(report.removed, vec!["dropped".to_owned()]);
        assert!(report.render().contains("missing from this run"));
    }

    #[test]
    fn compare_parsed_matches_the_suite_path() {
        let base = baseline(&[("hot", 1000.0), ("gone", 10.0)]);
        let current = baseline(&[("hot", 1300.0), ("fresh", 1.0)]);
        let report = compare_parsed(&base, &current, DEFAULT_THRESHOLD_PCT);
        assert!(!report.gate_passes());
        assert_eq!(report.regressions()[0].name, "hot");
        assert_eq!(report.removed, vec!["gone".to_owned()]);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].delta_pct, None, "fresh is new");
    }

    #[test]
    fn high_variance_scenarios_get_the_wide_threshold() {
        let base = baseline(&[
            ("newmad_pingpong", 1000.0),
            ("schedule_batch_drain_64", 1000.0),
        ]);
        // +50% is inside the wide budget but past the tight default…
        let current = [
            result("newmad_pingpong", 1500.0),
            result("schedule_batch_drain_64", 1000.0),
        ];
        let report = compare(&base, &current, DEFAULT_THRESHOLD_PCT);
        assert!(report.gate_passes(), "high-variance row tolerated at +50%");
        // …while the same +50% on a tight scheduler microbench fails.
        let current = [
            result("newmad_pingpong", 1000.0),
            result("schedule_batch_drain_64", 1500.0),
        ];
        assert!(!compare(&base, &current, DEFAULT_THRESHOLD_PCT).gate_passes());
        // Past the wide budget the tagged row fails too.
        let current = [
            result("newmad_pingpong", 2000.0),
            result("schedule_batch_drain_64", 1000.0),
        ];
        assert!(!compare(&base, &current, DEFAULT_THRESHOLD_PCT).gate_passes());
        // An explicitly wider --threshold still wins over the tag.
        assert_eq!(scenario_threshold("newmad_pingpong", 90.0), 90.0);
        assert_eq!(
            scenario_threshold("newmad_pingpong", DEFAULT_THRESHOLD_PCT),
            WIDE_THRESHOLD_PCT
        );
        assert_eq!(scenario_threshold("schedule_batch_drain_64", 20.0), 20.0);
    }

    #[test]
    fn empty_baseline_treats_everything_as_new() {
        let report = compare(&BTreeMap::new(), &[result("only", 10.0)], 20.0);
        assert!(report.gate_passes());
        assert_eq!(report.rows[0].delta_pct, None);
    }

    #[test]
    fn v1_baseline_vs_v2_current_gates_mean_only() {
        // A tail-gated scenario whose p99 exploded but whose mean held:
        // against a v1 baseline there is nothing to hold the p99 to, so
        // the row passes with the "v1 base" degradation note.
        let base = baseline(&[("schedule_batch_drain_64", 1000.0)]);
        let mut r = result("schedule_batch_drain_64", 1000.0);
        r.p99_ns = 50_000.0;
        let report = compare(&base, &[r], DEFAULT_THRESHOLD_PCT);
        assert!(report.gate_passes(), "no baseline p99, no p99 verdict");
        assert_eq!(report.rows[0].p99_delta_pct, None);
        let rendered = report.render();
        assert!(rendered.contains("(v1 base)"));
        assert!(rendered.contains("predate schema v2"));
        // The mean gate still works against the same v1 baseline.
        let slow = result("schedule_batch_drain_64", 1300.0);
        assert!(!compare(&base, &[slow], DEFAULT_THRESHOLD_PCT).gate_passes());
    }

    #[test]
    fn v2_vs_v2_p99_only_regression_fails_tail_gated_rows() {
        let base = baseline_v2(&[("schedule_batch_drain_64", 1000.0), ("other", 1000.0)]);
        // Mean steady, p99 past 3× the 20% threshold (baseline p99 is
        // 2000 under the fixture shape; +61% > 60% budget).
        let mut r = result("schedule_batch_drain_64", 1000.0);
        r.p99_ns = 3_220.0;
        let report = compare(&base, &[r.clone()], DEFAULT_THRESHOLD_PCT);
        assert!(!report.gate_passes(), "tail-only regression must fail");
        assert!(report.render().contains("REGRESSION"));
        // Inside the widened p99 budget (+59%) the same row passes even
        // though +59% would fail the *mean* gate: the factor is real.
        r.p99_ns = 3_180.0;
        assert!(compare(&base, &[r], DEFAULT_THRESHOLD_PCT).gate_passes());
        // An untagged scenario never fails on p99 alone.
        let mut other = result("other", 1000.0);
        other.p99_ns = 50_000.0;
        let report = compare(&base, &[other], DEFAULT_THRESHOLD_PCT);
        assert!(report.gate_passes(), "p99 is advisory off the tagged set");
        assert!(
            report.rows[0].p99_delta_pct.unwrap() > 1000.0,
            "…but the delta is still computed and reported"
        );
    }

    #[test]
    fn scenario_registry_tags_feed_the_gate() {
        // Workload rows inherit their gate class from the scenario
        // registry, unioned with the bench tag lists.
        assert!(is_high_variance("retry_storm"));
        assert!(!is_tail_gated("retry_storm"));
        assert!(is_tail_gated("rpc_mesh_steady"));
        assert!(is_high_variance("newmad_pingpong"), "bench tags still hold");
        assert_eq!(
            scenario_threshold("retry_storm", DEFAULT_THRESHOLD_PCT),
            WIDE_THRESHOLD_PCT
        );
        assert_eq!(
            scenario_threshold("rpc_mesh_steady", DEFAULT_THRESHOLD_PCT),
            DEFAULT_THRESHOLD_PCT
        );
        // A p99-only regression on a Tail-class workload fails the gate
        // exactly like a TAIL_GATED bench row (same fixture shape as
        // v2_vs_v2_p99_only_regression_fails_tail_gated_rows).
        let base = baseline_v2(&[("rpc_mesh_steady", 1000.0)]);
        let mut r = result("rpc_mesh_steady", 1000.0);
        r.p99_ns = 3_220.0;
        assert!(!compare(&base, &[r], DEFAULT_THRESHOLD_PCT).gate_passes());
        // While a Wide-class workload tolerates +50% on the mean.
        let base = baseline_v2(&[("retry_storm", 1000.0)]);
        let mut r = result("retry_storm", 1500.0);
        r.p99_ns = 2_000.0;
        assert!(compare(&base, &[r], DEFAULT_THRESHOLD_PCT).gate_passes());
    }

    #[test]
    fn non_finite_or_zero_measurements_fail_outright() {
        // A NaN mean (a zero-iteration run divides 0/0) compares false
        // against every threshold — the INVALID rule catches it.
        let base = baseline_v2(&[("x", 100.0)]);
        for bad in [f64::NAN, f64::INFINITY, 0.0, -5.0] {
            let r = result("x", bad);
            let report = compare(&base, &[r], DEFAULT_THRESHOLD_PCT);
            assert!(!report.gate_passes(), "current mean {bad} must fail");
            assert!(report.render().contains("INVALID"));
        }
        // A NaN p99 on a finite mean is equally unusable.
        let mut r = result("x", 100.0);
        r.p99_ns = f64::NAN;
        assert!(!compare(&base, &[r], DEFAULT_THRESHOLD_PCT).gate_passes());
        // And a zero/NaN *baseline* mean yields no delta (treated like
        // new) rather than an infinite percentage.
        let zero_base = baseline_v2(&[("x", 0.0)]);
        let report = compare(&zero_base, &[result("x", 100.0)], DEFAULT_THRESHOLD_PCT);
        assert!(report.gate_passes());
        assert_eq!(report.rows[0].delta_pct, None);
    }
}
