//! The bench-regression gate: `piom-harness bench --compare <old.json>`.
//!
//! `BENCH_pioman.json` is a committed perf trajectory — every PR appends a
//! run, so the numbers tell a story instead of asserting one. This module
//! closes the loop: it diffs a fresh suite run against a baseline file,
//! prints per-scenario percentage deltas, and **fails** (nonzero exit in
//! the CLI) when any scenario's `mean_ns` grew past a threshold (default
//! [`DEFAULT_THRESHOLD_PCT`]).
//!
//! Policy choices, spelled out because a gate is only useful when its
//! verdicts are explainable (`EXPERIMENTS.md` walks a failure end-to-end):
//!
//! * **new scenarios pass** — a PR adding benchmarks must not be punished
//!   for having no baseline; the row is reported as `new`;
//! * **removed scenarios warn but do not fail** — dropping a scenario is
//!   a review concern, not a perf regression; the report lists them;
//! * **only `mean_ns` is gated** — `iters`/`seed` describe methodology,
//!   not performance.
//!
//! The parser handles exactly the schema `render_json` emits (a JSON
//! object of `name → {field: number}`) plus arbitrary whitespace, so a
//! hand-edited baseline still parses; anything else is a hard error —
//! silently comparing against garbage would make the gate lie.

use crate::bench::BenchResult;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default regression threshold: a scenario may be up to this many percent
/// slower than the baseline before the gate fails. Generous on purpose —
/// quick-mode runs on shared CI runners are noisy; the committed
/// trajectory is regenerated with full iterations when it matters.
pub const DEFAULT_THRESHOLD_PCT: f64 = 20.0;

/// Per-scenario wide threshold applied to scenarios tagged
/// [`bench::scenarios::HIGH_VARIANCE`]: `newmad_pingpong` and the
/// contended/single-round-trip rows swing ±40% (and worse) with runner
/// load at quick iters, so gating them at the tight default would make
/// the now-required gate flake on weather. The scheduler microbenches —
/// the rows that actually move when someone breaks the hot path — stay on
/// the tight base threshold; a genuine regression moves the *family*
/// anyway (EXPERIMENTS.md, "Reading a regression-gate failure").
pub const WIDE_THRESHOLD_PCT: f64 = 75.0;

/// The effective gate threshold for `name` given the base `threshold_pct`:
/// high-variance scenarios get at least [`WIDE_THRESHOLD_PCT`] (an
/// explicitly wider `--threshold` still wins), everything else the base.
pub fn scenario_threshold(name: &str, threshold_pct: f64) -> f64 {
    if bench::scenarios::is_high_variance(name) {
        threshold_pct.max(WIDE_THRESHOLD_PCT)
    } else {
        threshold_pct
    }
}

/// One scenario row of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDelta {
    /// Benchmark name (the JSON key).
    pub name: String,
    /// Baseline `mean_ns`, if the scenario existed in the baseline.
    pub baseline_ns: Option<f64>,
    /// Freshly measured `mean_ns`.
    pub current_ns: f64,
    /// Percentage change vs baseline (positive = slower); `None` for new
    /// scenarios.
    pub delta_pct: Option<f64>,
}

impl ScenarioDelta {
    /// `true` when this row alone trips a gate at `threshold_pct`,
    /// after the per-scenario widening ([`scenario_threshold`]).
    pub fn regressed(&self, threshold_pct: f64) -> bool {
        self.delta_pct
            .is_some_and(|d| d > scenario_threshold(&self.name, threshold_pct))
    }
}

/// The full result of comparing a suite run against a baseline file.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-scenario rows, in suite order.
    pub rows: Vec<ScenarioDelta>,
    /// Scenarios present in the baseline but absent from the current run
    /// (reported, never failed on).
    pub removed: Vec<String>,
    /// The *base* gate threshold the report was built with; each row's
    /// effective gate is [`scenario_threshold`] of its name.
    pub threshold_pct: f64,
}

impl CompareReport {
    /// Rows that exceed the threshold.
    pub fn regressions(&self) -> Vec<&ScenarioDelta> {
        self.rows
            .iter()
            .filter(|r| r.regressed(self.threshold_pct))
            .collect()
    }

    /// `true` when no scenario regressed past the threshold.
    pub fn gate_passes(&self) -> bool {
        self.regressions().is_empty()
    }

    /// Human-readable table plus verdict, the CLI's whole output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "BENCH COMPARE — current vs baseline (gate: mean_ns regression > {:.1}%, \
             high-variance scenarios > {:.1}%)",
            self.threshold_pct,
            scenario_threshold("newmad_pingpong", self.threshold_pct)
        );
        let _ = writeln!(
            out,
            "{:<28}{:>14}{:>14}{:>10}",
            "scenario", "baseline (ns)", "current (ns)", "delta"
        );
        for row in &self.rows {
            match (row.baseline_ns, row.delta_pct) {
                (Some(base), Some(delta)) => {
                    let _ = writeln!(
                        out,
                        "{:<28}{:>14.1}{:>14.1}{:>+9.1}%{}",
                        row.name,
                        base,
                        row.current_ns,
                        delta,
                        if row.regressed(self.threshold_pct) {
                            "  << REGRESSION"
                        } else {
                            ""
                        }
                    );
                }
                _ => {
                    let _ = writeln!(
                        out,
                        "{:<28}{:>14}{:>14.1}{:>10}",
                        row.name, "—", row.current_ns, "new"
                    );
                }
            }
        }
        for name in &self.removed {
            let _ = writeln!(
                out,
                "note: baseline scenario {name:?} missing from this run (not gated)"
            );
        }
        let regressions = self.regressions();
        if regressions.is_empty() {
            let _ = writeln!(out, "gate: PASS ({} scenarios compared)", self.rows.len());
        } else {
            let _ = writeln!(
                out,
                "gate: FAIL — {} scenario(s) regressed past +{:.1}%",
                regressions.len(),
                self.threshold_pct
            );
        }
        out
    }
}

/// Compares a fresh suite run against a parsed baseline.
pub fn compare(
    baseline: &BTreeMap<String, f64>,
    current: &[BenchResult],
    threshold_pct: f64,
) -> CompareReport {
    report_from_pairs(
        baseline,
        current
            .iter()
            .map(|r| (r.name.to_owned(), r.mean_ns))
            .collect(),
        threshold_pct,
    )
}

/// Compares two *parsed trajectory files* (`current` vs `baseline`) —
/// the file-vs-file mode behind `piom-harness compare OLD NEW`, which
/// lets CI gate the exact numbers an earlier bench step already
/// recorded instead of paying for (and drifting from) a second suite
/// run. Rows follow the current file's (alphabetical) key order.
pub fn compare_parsed(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    threshold_pct: f64,
) -> CompareReport {
    report_from_pairs(
        baseline,
        current.iter().map(|(k, &v)| (k.clone(), v)).collect(),
        threshold_pct,
    )
}

fn report_from_pairs(
    baseline: &BTreeMap<String, f64>,
    current: Vec<(String, f64)>,
    threshold_pct: f64,
) -> CompareReport {
    let removed = baseline
        .keys()
        .filter(|name| current.iter().all(|(n, _)| n != *name))
        .cloned()
        .collect();
    let rows = current
        .into_iter()
        .map(|(name, current_ns)| {
            let baseline_ns = baseline.get(&name).copied();
            let delta_pct = baseline_ns
                .filter(|&b| b > 0.0)
                .map(|b| (current_ns - b) / b * 100.0);
            ScenarioDelta {
                name,
                baseline_ns,
                current_ns,
                delta_pct,
            }
        })
        .collect();
    CompareReport {
        rows,
        removed,
        threshold_pct,
    }
}

/// Parses a `BENCH_pioman.json` document into `name → mean_ns`.
///
/// Accepts the schema [`render_json`](crate::bench::render_json) emits —
/// one outer JSON object whose values are flat objects of numeric fields —
/// with arbitrary whitespace. Rejects anything else with a description of
/// where parsing stopped.
pub fn parse_trajectory(json: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut p = Parser {
        bytes: json.as_bytes(),
        pos: 0,
    };
    let mut map = BTreeMap::new();
    p.expect(b'{')?;
    if !p.peek_is(b'}') {
        loop {
            let name = p.string()?;
            p.expect(b':')?;
            let fields = p.flat_object()?;
            let mean = *fields
                .get("mean_ns")
                .ok_or_else(|| format!("scenario {name:?} has no mean_ns field"))?;
            if map.insert(name.clone(), mean).is_some() {
                return Err(format!("duplicate scenario {name:?}"));
            }
            if !p.eat(b',') {
                break;
            }
        }
    }
    p.expect(b'}')?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(map)
}

/// Minimal recursive-descent parser for the trajectory schema (the
/// workspace is offline — no serde).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek_is(&mut self, want: u8) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&want)
    }

    fn eat(&mut self, want: u8) -> bool {
        if self.peek_is(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        if self.eat(want) {
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", want as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s =
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
                if s.contains('\\') {
                    return Err("escape sequences are not part of the schema".into());
                }
                self.pos += 1;
                return Ok(s.to_owned());
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("expected a number at byte {start}"))
    }

    /// `{ "key": number, ... }` with no nesting.
    fn flat_object(&mut self) -> Result<BTreeMap<String, f64>, String> {
        let mut fields = BTreeMap::new();
        self.expect(b'{')?;
        if !self.peek_is(b'}') {
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                fields.insert(key, self.number()?);
                if !self.eat(b',') {
                    break;
                }
            }
        }
        self.expect(b'}')?;
        Ok(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &'static str, mean_ns: f64) -> BenchResult {
        BenchResult {
            name,
            mean_ns,
            iters: 10,
            seed: 42,
        }
    }

    fn baseline(entries: &[(&str, f64)]) -> BTreeMap<String, f64> {
        entries.iter().map(|&(n, v)| (n.to_owned(), v)).collect()
    }

    #[test]
    fn improvement_and_noise_pass_the_gate() {
        let base = baseline(&[("fast", 1000.0), ("steady", 500.0)]);
        let current = [result("fast", 700.0), result("steady", 540.0)];
        let report = compare(&base, &current, DEFAULT_THRESHOLD_PCT);
        assert!(report.gate_passes());
        assert_eq!(report.rows[0].delta_pct, Some(-30.0));
        // +8% is within the default 20% budget.
        assert!((report.rows[1].delta_pct.unwrap() - 8.0).abs() < 1e-9);
        assert!(report.render().contains("gate: PASS"));
    }

    #[test]
    fn regression_past_threshold_fails_the_gate() {
        let base = baseline(&[("hot", 1000.0), ("fine", 100.0)]);
        let current = [result("hot", 1300.0), result("fine", 100.0)];
        let report = compare(&base, &current, DEFAULT_THRESHOLD_PCT);
        assert!(!report.gate_passes());
        let regs = report.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "hot");
        let rendered = report.render();
        assert!(rendered.contains("REGRESSION"));
        assert!(rendered.contains("gate: FAIL"));
        // A tighter threshold catches more; a looser one passes.
        assert!(!compare(&base, &current, 10.0).gate_passes());
        assert!(compare(&base, &current, 40.0).gate_passes());
    }

    #[test]
    fn new_scenario_is_reported_not_failed() {
        let base = baseline(&[("old", 100.0)]);
        let current = [result("old", 90.0), result("brand_new", 5000.0)];
        let report = compare(&base, &current, DEFAULT_THRESHOLD_PCT);
        assert!(report.gate_passes(), "no baseline, no verdict");
        let new_row = &report.rows[1];
        assert_eq!(new_row.baseline_ns, None);
        assert_eq!(new_row.delta_pct, None);
        assert!(report.render().contains("new"));
    }

    #[test]
    fn removed_scenario_warns_without_failing() {
        let base = baseline(&[("kept", 100.0), ("dropped", 100.0)]);
        let current = [result("kept", 100.0)];
        let report = compare(&base, &current, DEFAULT_THRESHOLD_PCT);
        assert!(report.gate_passes());
        assert_eq!(report.removed, vec!["dropped".to_owned()]);
        assert!(report.render().contains("missing from this run"));
    }

    #[test]
    fn parse_roundtrips_render_json() {
        let results = [result("a_bench", 123.4), result("b_bench", 5.0)];
        let json = crate::bench::render_json(&results);
        let parsed = parse_trajectory(&json).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!((parsed["a_bench"] - 123.4).abs() < 1e-9);
        assert!((parsed["b_bench"] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn parse_accepts_the_committed_schema_shape() {
        let json = r#"{
  "submit_schedule_percore": { "mean_ns": 639.0, "iters": 2000, "seed": 42 },
  "newmad_pingpong": { "mean_ns": 1886199.8, "iters": 200, "seed": 42 }
}"#;
        let parsed = parse_trajectory(json).unwrap();
        assert!((parsed["submit_schedule_percore"] - 639.0).abs() < 1e-9);
        assert!((parsed["newmad_pingpong"] - 1_886_199.8).abs() < 1e-9);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse_trajectory("").is_err());
        assert!(parse_trajectory("[]").is_err());
        assert!(
            parse_trajectory(r#"{ "x": { "iters": 3 } }"#).is_err(),
            "no mean_ns"
        );
        assert!(parse_trajectory(r#"{ "x": { "mean_ns": 1 } } trailing"#).is_err());
        assert!(
            parse_trajectory(r#"{ "x": { "mean_ns": 1 }, "x": { "mean_ns": 2 } }"#).is_err(),
            "duplicate keys"
        );
    }

    #[test]
    fn compare_parsed_matches_the_suite_path() {
        let base = baseline(&[("hot", 1000.0), ("gone", 10.0)]);
        let current = baseline(&[("hot", 1300.0), ("fresh", 1.0)]);
        let report = compare_parsed(&base, &current, DEFAULT_THRESHOLD_PCT);
        assert!(!report.gate_passes());
        assert_eq!(report.regressions()[0].name, "hot");
        assert_eq!(report.removed, vec!["gone".to_owned()]);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].delta_pct, None, "fresh is new");
    }

    #[test]
    fn high_variance_scenarios_get_the_wide_threshold() {
        let base = baseline(&[
            ("newmad_pingpong", 1000.0),
            ("schedule_batch_drain_64", 1000.0),
        ]);
        // +50% is inside the wide budget but past the tight default…
        let current = [
            result("newmad_pingpong", 1500.0),
            result("schedule_batch_drain_64", 1000.0),
        ];
        let report = compare(&base, &current, DEFAULT_THRESHOLD_PCT);
        assert!(report.gate_passes(), "high-variance row tolerated at +50%");
        // …while the same +50% on a tight scheduler microbench fails.
        let current = [
            result("newmad_pingpong", 1000.0),
            result("schedule_batch_drain_64", 1500.0),
        ];
        assert!(!compare(&base, &current, DEFAULT_THRESHOLD_PCT).gate_passes());
        // Past the wide budget the tagged row fails too.
        let current = [
            result("newmad_pingpong", 2000.0),
            result("schedule_batch_drain_64", 1000.0),
        ];
        assert!(!compare(&base, &current, DEFAULT_THRESHOLD_PCT).gate_passes());
        // An explicitly wider --threshold still wins over the tag.
        assert_eq!(scenario_threshold("newmad_pingpong", 90.0), 90.0);
        assert_eq!(
            scenario_threshold("newmad_pingpong", DEFAULT_THRESHOLD_PCT),
            WIDE_THRESHOLD_PCT
        );
        assert_eq!(scenario_threshold("schedule_batch_drain_64", 20.0), 20.0);
    }

    #[test]
    fn empty_baseline_treats_everything_as_new() {
        let report = compare(&BTreeMap::new(), &[result("only", 10.0)], 20.0);
        assert!(report.gate_passes());
        assert_eq!(report.rows[0].delta_pct, None);
    }
}
