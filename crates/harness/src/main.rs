//! CLI entry: `piom-harness <experiment>` prints one (or `all`) of the
//! paper's tables/figures regenerated on the simulated testbeds, and
//! `piom-harness bench [--json] [--quick] [--out PATH]` measures the
//! real-thread scheduler hot paths (writing the `BENCH_pioman.json`
//! perf trajectory with `--json`).

use piom_harness::bench;

fn usage() -> ! {
    eprintln!("usage: piom-harness <experiment>");
    eprintln!("       piom-harness bench [--json] [--quick] [--out PATH]");
    eprintln!("experiments: {}", piom_harness::EXPERIMENTS.join(", "));
    std::process::exit(2);
}

fn run_bench(args: &[String]) {
    let mut json = false;
    let mut opts = bench::BenchOptions::full();
    let mut out_path = String::from("BENCH_pioman.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--quick" => opts = bench::BenchOptions::quick(),
            "--out" => match it.next() {
                Some(p) => {
                    out_path = p.clone();
                    // Naming an output file is asking for the file.
                    json = true;
                }
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown bench flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    let results = bench::run_suite(&opts);
    print!("{}", bench::render_text(&results));
    if json {
        if let Err(e) = std::fs::write(&out_path, bench::render_json(&results)) {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {out_path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "bench" {
        run_bench(&args[1..]);
        return;
    }
    for what in &args {
        match piom_harness::run(what) {
            Some(report) => println!("{report}"),
            None => {
                eprintln!(
                    "unknown experiment {what:?}; known: {}",
                    piom_harness::EXPERIMENTS.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
}
