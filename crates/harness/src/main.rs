//! CLI entry: `piom-harness <experiment>` prints one (or `all`) of the
//! paper's tables/figures regenerated on the simulated testbeds;
//! `piom-harness bench [--json] [--quick] [--out PATH] [--compare OLD.json
//! [--threshold PCT]]` measures the real-thread scheduler hot paths
//! (writing the `BENCH_pioman.json` perf trajectory with `--json`, and
//! gating against a baseline trajectory with `--compare` — exit 1 when any
//! scenario regressed past the threshold); `piom-harness compare OLD NEW`
//! applies the same gate to two already-recorded trajectory files without
//! re-running the suite; `piom-harness stats [--json]` runs the
//! demo workload with the submit→execute latency histogram armed and
//! prints the counter snapshot (Prometheus-text-shaped JSON with
//! `--json`); `piom-harness scenarios [--json] [--quick] [--filter NAME]
//! [--seed N] [--out PATH] [--compare OLD.json [--threshold PCT]]` runs
//! the deterministic workload-scenario matrix (writing the
//! `SCENARIOS_pioman.json` trajectory with `--json` and gating it with
//! `--compare`, same schema and gate as the benches).

use piom_harness::{bench, compare, scen, schema, snapshot};
use piom_scenarios::{Scenario, ScenarioParams};

fn usage() -> ! {
    eprintln!("usage: piom-harness <experiment>");
    eprintln!(
        "       piom-harness bench [--json] [--quick] [--out PATH] \
         [--compare OLD.json] [--threshold PCT]"
    );
    eprintln!("       piom-harness compare OLD.json NEW.json [--threshold PCT]");
    eprintln!("       piom-harness stats [--json]");
    eprintln!(
        "       piom-harness scenarios [--json] [--quick] [--filter NAME] [--seed N] \
         [--out PATH] [--compare OLD.json] [--threshold PCT]"
    );
    eprintln!("experiments: {}", piom_harness::EXPERIMENTS.join(", "));
    std::process::exit(2);
}

/// `piom-harness stats [--json]`: run the demo workload with the latency
/// histogram enabled and print the resulting [`pioman::ManagerStats`].
fn run_stats(args: &[String]) {
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other => {
                eprintln!("unknown stats flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    let stats = snapshot::demo_stats();
    if json {
        print!("{}", snapshot::render_stats_json(&stats));
    } else {
        print!("{}", snapshot::render_stats_text(&stats));
    }
}

/// Reads and parses a trajectory file, exiting 2 on any failure.
fn load_trajectory(path: &str) -> std::collections::BTreeMap<String, schema::BaselineEntry> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {path}: {e}");
        std::process::exit(2);
    });
    schema::parse_trajectory(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse baseline {path}: {e}");
        std::process::exit(2);
    })
}

/// `piom-harness compare OLD NEW [--threshold PCT]`: diff two recorded
/// trajectory files without re-running the suite (CI gates the numbers
/// its bench step just wrote). Exit 1 when the gate fails.
fn run_compare(args: &[String]) {
    let mut paths = Vec::new();
    let mut threshold_pct = compare::DEFAULT_THRESHOLD_PCT;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => match it.next().and_then(|p| p.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 => threshold_pct = pct,
                _ => {
                    eprintln!("--threshold requires a non-negative percentage");
                    std::process::exit(2);
                }
            },
            p if !p.starts_with("--") => paths.push(p.to_owned()),
            other => {
                eprintln!("unknown compare flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("compare needs exactly two trajectory files (old, new)");
        std::process::exit(2);
    };
    let baseline = load_trajectory(old_path);
    let current = load_trajectory(new_path);
    let report = compare::compare_parsed(&baseline, &current, threshold_pct);
    print!("{}", report.render());
    if !report.gate_passes() {
        std::process::exit(1);
    }
}

/// `piom-harness scenarios [...]`: run the workload-scenario matrix
/// deterministically and (optionally) write/gate the
/// `SCENARIOS_pioman.json` trajectory. An unmatched `--filter` exits 2:
/// a typo must not read as an empty-but-green matrix.
fn run_scenarios(args: &[String]) {
    let mut json = false;
    let mut quick = false;
    let mut seed: u64 = 42;
    let mut filter: Option<String> = None;
    let mut out_path = String::from("SCENARIOS_pioman.json");
    let mut baseline_path: Option<String> = None;
    let mut threshold_pct = compare::DEFAULT_THRESHOLD_PCT;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--quick" => quick = true,
            "--seed" => match it.next().and_then(|p| p.parse::<u64>().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed requires an unsigned integer");
                    std::process::exit(2);
                }
            },
            "--filter" => match it.next() {
                Some(f) => filter = Some(f.clone()),
                None => {
                    eprintln!("--filter requires a (sub)string to match scenario names");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => {
                    out_path = p.clone();
                    // Naming an output file is asking for the file.
                    json = true;
                }
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            "--compare" => match it.next() {
                Some(p) => baseline_path = Some(p.clone()),
                None => {
                    eprintln!("--compare requires a baseline JSON path");
                    std::process::exit(2);
                }
            },
            "--threshold" => match it.next().and_then(|p| p.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 => threshold_pct = pct,
                _ => {
                    eprintln!("--threshold requires a non-negative percentage");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown scenarios flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    let selected: Vec<&Scenario> = match &filter {
        Some(f) => {
            let hits = piom_scenarios::matching(f);
            if hits.is_empty() {
                eprintln!(
                    "--filter {f:?} matches no scenario; known: {}",
                    piom_scenarios::registry()
                        .iter()
                        .map(|s| s.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            }
            hits
        }
        None => piom_scenarios::registry().iter().collect(),
    };
    // Read the baseline before running, so a bad path fails immediately.
    let baseline = baseline_path.map(|path| load_trajectory(&path));
    let params = if quick {
        ScenarioParams::quick(seed)
    } else {
        ScenarioParams::full(seed)
    };
    let reports = scen::run_matrix(&selected, &params);
    print!("{}", scen::render_text(&selected, &reports));
    let results: Vec<_> = reports.iter().map(scen::to_bench_result).collect();
    if json {
        if let Err(e) = std::fs::write(&out_path, schema::render_json(&results)) {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {out_path}");
    }
    if let Some(baseline) = baseline {
        let report = compare::compare(&baseline, &results, threshold_pct);
        print!("{}", report.render());
        if !report.gate_passes() {
            std::process::exit(1);
        }
    }
}

fn run_bench(args: &[String]) {
    let mut json = false;
    let mut opts = bench::BenchOptions::full();
    let mut out_path = String::from("BENCH_pioman.json");
    let mut baseline_path: Option<String> = None;
    let mut threshold_pct = compare::DEFAULT_THRESHOLD_PCT;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--quick" => opts = bench::BenchOptions::quick(),
            "--out" => match it.next() {
                Some(p) => {
                    out_path = p.clone();
                    // Naming an output file is asking for the file.
                    json = true;
                }
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            "--compare" => match it.next() {
                Some(p) => baseline_path = Some(p.clone()),
                None => {
                    eprintln!("--compare requires a baseline JSON path");
                    std::process::exit(2);
                }
            },
            "--threshold" => match it.next().and_then(|p| p.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 => threshold_pct = pct,
                _ => {
                    eprintln!("--threshold requires a non-negative percentage");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown bench flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    // Read the baseline *before* the (slow) suite run, so a bad path or a
    // corrupt file fails in milliseconds.
    let baseline = baseline_path.map(|path| load_trajectory(&path));
    let results = bench::run_suite(&opts);
    print!("{}", bench::render_text(&results));
    if json {
        if let Err(e) = std::fs::write(&out_path, bench::render_json(&results)) {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {out_path}");
    }
    if let Some(baseline) = baseline {
        let report = compare::compare(&baseline, &results, threshold_pct);
        print!("{}", report.render());
        if !report.gate_passes() {
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "bench" {
        run_bench(&args[1..]);
        return;
    }
    if args[0] == "compare" {
        run_compare(&args[1..]);
        return;
    }
    if args[0] == "stats" {
        run_stats(&args[1..]);
        return;
    }
    if args[0] == "scenarios" {
        run_scenarios(&args[1..]);
        return;
    }
    for what in &args {
        match piom_harness::run(what) {
            Some(report) => println!("{report}"),
            None => {
                eprintln!(
                    "unknown experiment {what:?}; known: {}",
                    piom_harness::EXPERIMENTS.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
}
