//! CLI entry: `piom-harness <experiment>` prints one (or `all`) of the
//! paper's tables/figures regenerated on the simulated testbeds.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: piom-harness <experiment>");
        eprintln!("experiments: {}", piom_harness::EXPERIMENTS.join(", "));
        std::process::exit(2);
    }
    for what in &args {
        match piom_harness::run(what) {
            Some(report) => println!("{report}"),
            None => {
                eprintln!(
                    "unknown experiment {what:?}; known: {}",
                    piom_harness::EXPERIMENTS.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
}
