//! Experiment regenerators: one function per table/figure of the paper.
//!
//! Each function returns its report as a `String` (so integration tests can
//! assert on structure); the `piom-harness` binary prints them. See
//! `EXPERIMENTS.md` at the repository root for paper-vs-measured notes.

#![warn(missing_docs)]

pub mod bench;
pub mod compare;
pub mod scen;
pub mod schema;
pub mod snapshot;

use madmpi::overlap::{sweep, ComputeSide};
use madmpi::{mtlat, MpiImpl};
use piom_des::{Sim, SimTime};
use piom_machine::simsched::{bench_table, microbench};
use piom_machine::CostModel;
use piom_topology::{presets, Level, Topology};
use std::fmt::Write as _;

/// Iterations used for the microbenchmark tables.
pub const TABLE_ITERS: u64 = 400;
/// Pingpong rounds per point in Fig. 4.
pub const FIG4_ROUNDS: usize = 60;
/// Default deterministic seed.
pub const SEED: u64 = 42;

fn format_table(topo: &Topology, cost: &CostModel, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "(simulated; times in nanoseconds, mean over {TABLE_ITERS} rounds; task submitted by core #0)");
    let rows = bench_table(topo, cost, TABLE_ITERS, SEED);
    let _ = writeln!(
        out,
        "core            {}",
        (0..topo.n_cores())
            .map(|c| format!("#{c:<6}"))
            .collect::<String>()
    );
    for row in &rows {
        match row.level {
            Level::Core => {
                let vals: String = row
                    .entries
                    .iter()
                    .map(|(_, r)| format!("{:<7.0}", r.mean_ns()))
                    .collect();
                let _ = writeln!(out, "per-core queues {vals}");
            }
            Level::Machine => {
                let (_, r) = &row.entries[0];
                let _ = writeln!(
                    out,
                    "global queue ({} cores)  {:.0}",
                    topo.n_cores(),
                    r.mean_ns()
                );
                // The paper reports the skewed distribution here (§V-A).
                let per_node: Vec<String> = topo
                    .nodes_at_level(Level::NumaNode)
                    .iter()
                    .chain(topo.nodes_at_level(Level::Chip).iter())
                    .map(|id| {
                        let span = topo.node(*id).cpuset;
                        let total: u64 = span.iter().map(|c| r.executed_by_core[c]).sum();
                        format!(
                            "{} #{}: {:.0}%",
                            topo.node(*id).level,
                            topo.node(*id).ordinal,
                            100.0 * total as f64 / TABLE_ITERS as f64
                        )
                    })
                    .collect();
                if !per_node.is_empty() {
                    let _ = writeln!(out, "  task distribution: {}", per_node.join("  "));
                }
            }
            level => {
                let n = row.entries[0].1.executed_by_core.len();
                let _ = n;
                let vals: String = row
                    .entries
                    .iter()
                    .map(|(id, r)| format!("#{}: {:<9.0}", topo.node(*id).ordinal, r.mean_ns()))
                    .collect();
                let cores_per = topo.node(row.entries[0].0).cpuset.count();
                let _ = writeln!(out, "{level} queues, {cores_per} cores  {vals}");
            }
        }
    }
    out
}

/// **Table I**: task-scheduling microbenchmark on `borderline`
/// (4-way dual-core, 8 cores).
pub fn table1() -> String {
    format_table(
        &presets::borderline(),
        &CostModel::borderline(),
        "TABLE I — micro-benchmark of task scheduling on a 4-way dual-core (borderline)",
    )
}

/// **Table II**: task-scheduling microbenchmark on `kwak`
/// (4-way quad-core, 16 cores, 4 NUMA nodes).
pub fn table2() -> String {
    format_table(
        &presets::kwak(),
        &CostModel::kwak(),
        "TABLE II — micro-benchmark of task scheduling on a 4-way quad-core (kwak)",
    )
}

/// **Fig. 1**: cross-flow aggregation over 2 NICs — throughput and packet
/// counts with the optimization layer on vs off.
pub fn fig1() -> String {
    use newmadeleine::{CommEngine, EngineConfig};
    use piom_net::{NetParams, Network};

    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIG. 1 — multiplexing messages across 2 NICs (4 flows x 64 messages x 1 KB)"
    );
    let _ = writeln!(
        out,
        "{:<14}{:>14}{:>16}{:>18}",
        "strategy", "wire packets", "completion (µs)", "msgs aggregated"
    );
    for (label, aggregation) in [("direct", false), ("aggregating", true)] {
        let net = Network::new(2, 2, NetParams::infiniband());
        let cfg = EngineConfig {
            aggregation,
            ..EngineConfig::newmadeleine()
        };
        let tx = CommEngine::new(0, net.clone(), cfg.clone());
        let rx = CommEngine::new(1, net.clone(), cfg);
        let mut sim = Sim::new();
        let mut recvs = Vec::new();
        // 4 flows x 64 messages, interleaved round-robin like Fig. 1.
        for m in 0..64u64 {
            for flow in 0..4u64 {
                let tag = flow << 32 | m;
                recvs.push(rx.irecv(&mut sim, 0, tag));
                let tx2 = tx.clone();
                sim.schedule_abs(SimTime::from_ns(m * 50), move |sim| {
                    tx2.isend(sim, 1, tag, 1024);
                });
            }
        }
        // Poll both sides at keypoint-like cadence.
        for k in 0..20_000u64 {
            let t = SimTime::from_ns(k * 200);
            let tx2 = tx.clone();
            let rx2 = rx.clone();
            sim.schedule_abs(t, move |sim| {
                tx2.poll(sim);
                rx2.poll(sim);
            });
        }
        sim.run();
        let done_at = recvs
            .iter()
            .map(|r| r.completed_at().expect("all delivered"))
            .max()
            .unwrap();
        let packets = net.nic(0, 0).tx_count() + net.nic(0, 1).tx_count();
        let _ = writeln!(
            out,
            "{:<14}{:>14}{:>16.1}{:>18}",
            label,
            packets,
            done_at.as_us_f64(),
            tx.stats().aggregated_messages
        );
    }
    out
}

/// **Figs. 2–3**: the topology trees the queues map onto.
pub fn fig2_fig3() -> String {
    let mut out = String::new();
    out.push_str("FIG. 2 — hierarchical lists mapped onto a machine topology (borderline)\n");
    out.push_str(&presets::borderline().render_ascii());
    out.push_str("\nFIG. 3 — topology of kwak\n");
    out.push_str(&presets::kwak().render_ascii());
    out
}

/// **Fig. 4**: multi-threaded latency vs number of receiver threads.
pub fn fig4() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIG. 4 — multi-threaded latency test (4-byte pingpong, simulated IB cluster)"
    );
    let _ = writeln!(
        out,
        "{:<10}{:>14}{:>14}",
        "threads", "MVAPICH (µs)", "PIOMan (µs)"
    );
    // The paper could not run OpenMPI on this benchmark: "despite the
    // thread-safety parameter [...] segmentation faults occurred" (§V-B).
    // Fig. 4 therefore has two curves, and so do we.
    for threads in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let mv = mtlat::run_mtlat(MpiImpl::MvapichLike, threads, FIG4_ROUNDS, SEED);
        let pm = mtlat::run_mtlat(MpiImpl::MadMpi, threads, FIG4_ROUNDS, SEED);
        let _ = writeln!(
            out,
            "{:<10}{:>14.2}{:>14.2}",
            threads, mv.mean_latency_us, pm.mean_latency_us
        );
    }
    out
}

fn overlap_figure(title: &str, side: ComputeSide) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (size, label, computes) in [
        (
            32 * 1024,
            "32 KB",
            [0u64, 25, 50, 75, 100, 150, 200].as_slice(),
        ),
        (
            1 << 20,
            "1 MB",
            [0u64, 250, 500, 750, 1000, 1500, 2000].as_slice(),
        ),
    ] {
        let _ = writeln!(
            out,
            "  message size {label}: overlap ratio vs computation time (µs)"
        );
        let _ = writeln!(
            out,
            "  {:<12}{:>10}{:>10}{:>10}",
            "compute", "MVAPICH", "OpenMPI", "PIOMan"
        );
        let xs: Vec<SimTime> = computes.iter().map(|&u| SimTime::from_us(u)).collect();
        let curves: Vec<Vec<f64>> = MpiImpl::ALL
            .iter()
            .map(|&impl_| {
                sweep(impl_, size, &xs, side, SEED)
                    .into_iter()
                    .map(|p| p.ratio)
                    .collect()
            })
            .collect();
        for (i, &c) in computes.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:<12}{:>10.2}{:>10.2}{:>10.2}",
                c, curves[0][i], curves[1][i], curves[2][i]
            );
        }
    }
    out
}

/// **Fig. 5**: overlap with computation on the sender side.
pub fn fig5() -> String {
    overlap_figure(
        "FIG. 5 — overlap performance (computation on sender side)",
        ComputeSide::Sender,
    )
}

/// **Fig. 6**: overlap with computation on the receiver side.
pub fn fig6() -> String {
    overlap_figure(
        "FIG. 6 — overlap performance (computation on receiver side)",
        ComputeSide::Receiver,
    )
}

/// **Fig. 7**: overlap with computation on both sides.
pub fn fig7() -> String {
    overlap_figure(
        "FIG. 7 — overlap performance (computation on both sides)",
        ComputeSide::Both,
    )
}

/// **Ablation**: hierarchical queues vs the naive single global list
/// (§III's "big-lock technique is likely not to scale up").
pub fn ablation_hierarchy() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ABLATION — hierarchical queues vs single global list (kwak, simulated)"
    );
    let topo = presets::kwak();
    let cost = CostModel::kwak();
    let local = microbench(&topo, &cost, topo.core_node(0), TABLE_ITERS, SEED);
    let numa = microbench(
        &topo,
        &cost,
        topo.nodes_at_level(Level::NumaNode)[0],
        TABLE_ITERS,
        SEED,
    );
    let global = microbench(&topo, &cost, topo.root(), TABLE_ITERS, SEED);
    let _ = writeln!(
        out,
        "{:<28}{:>12}{:>16}",
        "queue placement", "mean (ns)", "lock contended"
    );
    for (label, r) in [
        ("per-core (hierarchy leaf)", &local),
        ("per-NUMA (hierarchy mid)", &numa),
        ("global list (no hierarchy)", &global),
    ] {
        let _ = writeln!(
            out,
            "{:<28}{:>12.0}{:>16}",
            label,
            r.mean_ns(),
            r.lock_contended
        );
    }
    let _ = writeln!(
        out,
        "hierarchy speedup over global list: {:.1}x",
        global.mean_ns() / local.mean_ns()
    );
    out
}

/// **Scaling study** (extension): global-queue overhead vs core count —
/// quantifying §V-A's "the overhead appears to grow quickly with the number
/// of cores" beyond the paper's two machines.
pub fn scaling() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "SCALING — global queue vs hierarchy as the core count grows (generic machine)"
    );
    let _ = writeln!(
        out,
        "{:<8}{:>16}{:>16}{:>12}",
        "cores", "per-core (ns)", "global (ns)", "ratio"
    );
    for numa in [1usize, 2, 4, 8, 16] {
        let topo = presets::symmetric(numa, 1, 4);
        let cost = CostModel::generic();
        let local = microbench(&topo, &cost, topo.core_node(0), 200, SEED).mean_ns();
        let global = microbench(&topo, &cost, topo.root(), 200, SEED).mean_ns();
        let _ = writeln!(
            out,
            "{:<8}{:>16.0}{:>16.0}{:>12.1}",
            topo.n_cores(),
            local,
            global,
            global / local
        );
    }
    out
}

/// Runs the experiment named `what` ("table1", "fig4", "all", ...).
/// Returns `None` for an unknown name.
pub fn run(what: &str) -> Option<String> {
    Some(match what {
        "table1" => table1(),
        "table2" => table2(),
        "fig1" => fig1(),
        "fig2" | "fig3" | "topology" => fig2_fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "fig7" => fig7(),
        "ablation-hierarchy" => ablation_hierarchy(),
        "scaling" => scaling(),
        "all" => [
            table1(),
            table2(),
            fig1(),
            fig2_fig3(),
            fig4(),
            fig5(),
            fig6(),
            fig7(),
            ablation_hierarchy(),
            scaling(),
        ]
        .join("\n"),
        _ => return None,
    })
}

/// Names accepted by [`run`].
pub const EXPERIMENTS: [&str; 11] = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "ablation-hierarchy",
    "scaling",
    "all",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_rows() {
        let t1 = table1();
        assert!(t1.contains("per-core queues"));
        assert!(t1.contains("chip queues, 2 cores"));
        assert!(t1.contains("global queue (8 cores)"));
        let t2 = table2();
        assert!(t2.contains("numa queues, 4 cores"));
        assert!(t2.contains("global queue (16 cores)"));
        assert!(t2.contains("task distribution"));
    }

    #[test]
    fn fig1_shows_aggregation_win() {
        let f = fig1();
        assert!(f.contains("direct"));
        assert!(f.contains("aggregating"));
        // Parse the two packet counts: aggregating must use fewer packets.
        let counts: Vec<u64> = f
            .lines()
            .filter(|l| l.starts_with("direct") || l.starts_with("aggregating"))
            .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(counts.len(), 2);
        assert!(
            counts[1] < counts[0] / 2,
            "aggregation should slash packet count: {counts:?}"
        );
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run("fig99").is_none());
        assert!(run("table1").is_some());
    }
}
