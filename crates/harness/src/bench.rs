//! The perf-trajectory recorder: `piom-harness bench [--json]`.
//!
//! Unlike the table/figure regenerators (simulated, bit-deterministic),
//! these measure the *real-thread* scheduler hot paths on the host and one
//! simulated pingpong, and write them to `BENCH_pioman.json` so successive
//! PRs accumulate a comparable perf trajectory. The benchmark *set* and the
//! JSON structure are deterministic; the `mean_ns` values are wall-clock
//! measurements and vary with the host (methodology in `EXPERIMENTS.md`).
//!
//! Each scenario also asserts its own correctness invariant (e.g. the
//! starved-core steal scenario panics if the backlog does not drain), so a
//! bench run doubles as a smoke test of the scheduling fast paths.

use bench::scenarios;
use madmpi::{mtlat, MpiImpl};
use piom_cpuset::CpuSet;
use piom_topology::presets;
use pioman::hist::Histogram;
use pioman::{
    ManagerConfig, Progression, ProgressionConfig, QueueBackend, SignalPolicy, TaskManager,
    TaskStatus,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

// The schema (result record + JSON emit) lives in `crate::schema` since
// PR 6 so emit and parse can't drift; re-exported here because "the bench
// produces results and renders them" is still the natural import path.
pub use crate::schema::{render_json, BenchResult};

/// Options for one suite run.
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    /// Timed iterations per benchmark.
    pub iters: u64,
    /// Seed recorded in the output (and fed to the simulated pingpong).
    pub seed: u64,
}

impl BenchOptions {
    /// The full preset recorded into the committed trajectory.
    pub fn full() -> Self {
        BenchOptions {
            iters: 2_000,
            seed: crate::SEED,
        }
    }

    /// A small preset for CI smoke runs (`--quick`): same benchmark set,
    /// fewer iterations.
    pub fn quick() -> Self {
        BenchOptions {
            iters: 50,
            seed: crate::SEED,
        }
    }
}

/// Minimum iterations for scenarios tagged [`scenarios::TAIL_GATED`]: a
/// p99 over 50 quick-mode iterations is the worst sample, pure noise, so
/// the tail-gated rows are bumped to at least this many iterations even
/// under `--quick`. At their sub-µs/iteration costs the bump adds ~1 ms
/// per scenario; the full preset (2000) is already above it.
pub const TAIL_MIN_ITERS: u64 = 1_000;

/// Times `iters` runs of `routine` (after `setup`) and returns the
/// distribution: exact mean from the summed total, p50/p99/p999 from a
/// [`pioman::hist::Histogram`] fed one sample per iteration (bucketed,
/// ~1.6% — quantization noise far below run-to-run noise).
///
/// Scenarios tagged [`scenarios::HIGH_VARIANCE`] run **three** full
/// measurement passes and record the pass with the *median mean*
/// (percentiles come from that same pass, so a row's fields are always
/// one coherent distribution): a single pass on a shared host folds
/// whatever the neighbours were doing into the number, and with the
/// regression gate now required (PR 5) one unlucky pass would fail CI.
/// The median of three keeps a lone disturbed pass out of the recorded
/// value at 3× cost for only the scenarios that need it. Scenarios
/// tagged [`scenarios::TAIL_GATED`] get at least [`TAIL_MIN_ITERS`]
/// iterations so the recorded p99 rests on ≥10 tail samples — and the
/// same median-of-three treatment, because their p99 is *gated*
/// (`compare::P99_THRESHOLD_FACTOR`) and a tail is strictly noisier
/// than the mean it rides on: one neighbour burst lands squarely in
/// the top percentile even when it barely moves the mean.
fn measure<S, R>(
    name: &'static str,
    opts: &BenchOptions,
    mut setup: S,
    mut routine: R,
) -> BenchResult
where
    S: FnMut(),
    R: FnMut(),
{
    // One untimed warmup pays lazy-init costs outside the measurement.
    setup();
    routine();
    let iters = if scenarios::is_tail_gated(name) {
        opts.iters.max(TAIL_MIN_ITERS)
    } else {
        opts.iters
    };
    let passes = if scenarios::is_high_variance(name) || scenarios::is_tail_gated(name) {
        3
    } else {
        1
    };
    let mut runs: Vec<(f64, pioman::HistSnapshot)> = Vec::with_capacity(passes);
    for _ in 0..passes {
        let hist = Histogram::new(1);
        let mut total_ns = 0u128;
        for _ in 0..iters {
            setup();
            let t0 = Instant::now();
            routine();
            let dt = t0.elapsed().as_nanos();
            total_ns += dt;
            hist.record_at(0, dt.min(u64::MAX as u128) as u64);
        }
        runs.push((total_ns as f64 / iters as f64, hist.snapshot()));
    }
    runs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (mean_ns, snap) = &runs[passes / 2];
    BenchResult {
        name,
        mean_ns: *mean_ns,
        p50_ns: snap.quantile(0.5).unwrap_or(0) as f64,
        p99_ns: snap.quantile(0.99).unwrap_or(0) as f64,
        p999_ns: snap.quantile(0.999).unwrap_or(0) as f64,
        iters,
        seed: opts.seed,
    }
}

/// Submit→schedule→complete round-trip on a Per-Core Queue.
fn submit_schedule_percore(opts: &BenchOptions) -> BenchResult {
    let mgr = TaskManager::new(presets::kwak().into());
    measure(
        "submit_schedule_percore",
        opts,
        || (),
        || {
            let h = mgr
                .task(|_| TaskStatus::Done)
                .cpuset(CpuSet::single(0))
                .spawn();
            mgr.schedule(0);
            assert!(h.is_complete());
        },
    )
}

/// The same round-trip through the Global Queue (all-cores cpuset).
fn submit_schedule_global(opts: &BenchOptions) -> BenchResult {
    let mgr = TaskManager::new(presets::kwak().into());
    measure(
        "submit_schedule_global",
        opts,
        || (),
        || {
            let h = mgr
                .task(|_| TaskStatus::Done)
                .cpuset(CpuSet::first_n(16))
                .spawn();
            mgr.schedule(9);
            assert!(h.is_complete());
        },
    )
}

/// Draining a 64-task backlog with batched dequeue (one lock acquisition
/// per pass instead of one per task).
fn schedule_batch_drain(opts: &BenchOptions) -> BenchResult {
    const LOAD: usize = 64;
    let mgr = TaskManager::new(presets::kwak().into());
    measure(
        "schedule_batch_drain_64",
        opts,
        || {
            for _ in 0..LOAD {
                mgr.task(|_| TaskStatus::Done)
                    .cpuset(CpuSet::single(0))
                    .spawn();
            }
        },
        || {
            assert_eq!(mgr.schedule_batch(0, LOAD), LOAD);
        },
    )
}

/// The starved-core scenario ([`scenarios::submit_skewed`]): 64 tasks
/// homed on core 0 (cpuset `{0..4}`), but core 0 never schedules — its
/// NUMA siblings must finish everything by stealing. Panics (failing the
/// bench) if the backlog does not drain, so the recorded number is also
/// evidence the scenario completes.
fn steal_starved_core(opts: &BenchOptions) -> BenchResult {
    let mgr = TaskManager::new(presets::kwak().into());
    let handles = std::cell::RefCell::new(Vec::new());
    let result = measure(
        "steal_starved_core",
        opts,
        || *handles.borrow_mut() = scenarios::submit_skewed(&mgr),
        || {
            // Core 0 is "busy computing": only its siblings schedule.
            scenarios::drain_until_complete(&mgr, 1..4, &handles.borrow());
        },
    );
    let stats = mgr.stats();
    assert!(
        stats.total_stolen() > 0 && stats.executed_by_core[0] == 0,
        "the starved core must complete via steals only"
    );
    result
}

/// The control arm: same skewed load, stealing disabled, every core
/// scheduled — the home core drains its backlog alone while the siblings'
/// keypoints find nothing.
fn spin_home_drains_alone(opts: &BenchOptions) -> BenchResult {
    let mgr = TaskManager::with_config(
        Arc::new(presets::kwak()),
        ManagerConfig {
            steal: false,
            ..ManagerConfig::default()
        },
    );
    let handles = std::cell::RefCell::new(Vec::new());
    measure(
        "spin_home_drains_alone",
        opts,
        || *handles.borrow_mut() = scenarios::submit_skewed(&mgr),
        || scenarios::drain_until_complete(&mgr, 0..4, &handles.borrow()),
    )
}

/// Contended submit/schedule: 4 real threads hammering the Global Queue.
fn contended_global(opts: &BenchOptions) -> BenchResult {
    contended(
        "contended_global_queue",
        opts,
        false,
        QueueBackend::Spinlock,
    )
}

/// The hierarchy counterpart: 4 real threads, each on its own Per-Core
/// Queue — the contention the hierarchy removes.
fn contended_percore(opts: &BenchOptions) -> BenchResult {
    contended(
        "contended_percore_queues",
        opts,
        true,
        QueueBackend::Spinlock,
    )
}

/// The queue-backend head-to-head: the *identical* contended global-queue
/// workload run once over the real lock-free Michael–Scott backend and
/// once over the old mutexed shim (kept as `QueueBackend::Mutex`). The
/// two adjacent trajectory entries are the ablation the paper's §VI
/// speculated about: `lockfree_vs_mutex` at parity or better than
/// `lockfree_vs_mutex_baseline` means replacing the shim paid off.
fn lockfree_vs_mutex(opts: &BenchOptions) -> [BenchResult; 2] {
    [
        contended("lockfree_vs_mutex", opts, false, QueueBackend::LockFree),
        contended(
            "lockfree_vs_mutex_baseline",
            opts,
            false,
            QueueBackend::Mutex,
        ),
    ]
}

fn contended(
    name: &'static str,
    opts: &BenchOptions,
    per_core: bool,
    queue_backend: QueueBackend,
) -> BenchResult {
    // Thread spawn/join dominates a single round-trip, so contended runs
    // use fewer, heavier iterations; the recorded mean is per inner op.
    let iters = (opts.iters / 10).max(5);
    let scaled = BenchOptions { iters, ..*opts };
    let mgr = TaskManager::with_config(
        Arc::new(presets::kwak()),
        ManagerConfig {
            queue_backend,
            ..ManagerConfig::default()
        },
    );
    let mut ops = 0;
    let mut r = measure(
        name,
        &scaled,
        || (),
        || {
            ops = scenarios::contended_round(&mgr, per_core);
        },
    );
    r.scale_per_op(ops as f64);
    r
}

/// Steal-half under a skewed load: the 64-task backlog homed on core 0,
/// drained by a *single* thief (core 1) whose every probe takes half the
/// remaining eligible backlog — 7 probes instead of 64. Compare with
/// `steal_starved_core` (three thieves racing) and
/// `spin_home_drains_alone` (the no-steal local drain floor).
fn steal_half_backlog(opts: &BenchOptions) -> BenchResult {
    let mgr = TaskManager::new(presets::kwak().into());
    let handles = std::cell::RefCell::new(Vec::new());
    let result = measure(
        "steal_half_backlog",
        opts,
        || *handles.borrow_mut() = scenarios::submit_skewed(&mgr),
        || scenarios::drain_until_complete(&mgr, 1..2, &handles.borrow()),
    );
    let stats = mgr.stats();
    assert!(
        stats.executed_by_core[0] == 0 && stats.total_stolen() > 0,
        "the lone thief must complete the backlog via steals only"
    );
    assert!(
        stats.total_stolen() > stats.total_steal_batches(),
        "steal-half must amortize probes (mean batch > 1 task)"
    );
    result
}

/// A deep backlog drained with per-keypoint budgets sized by
/// [`TaskManager::adaptive_budget`] instead of the fixed default: the
/// budget tracks observed queue depth, so the 256-task ramp drains in a
/// few keypoints rather than `256 / 32` fixed-budget passes.
fn adaptive_batch_ramp(opts: &BenchOptions) -> BenchResult {
    let mgr = TaskManager::new(presets::kwak().into());
    measure(
        "adaptive_batch_ramp",
        opts,
        || {
            scenarios::submit_ramp(&mgr, 0);
        },
        || {
            assert_eq!(
                scenarios::adaptive_drain(&mgr, 0),
                scenarios::ADAPTIVE_RAMP_LOAD,
                "adaptive budgets must drain the whole ramp"
            );
        },
    )
}

/// Parked-core wake latency: one progression worker (core 1) parks with a
/// [`scenarios::PARK_WAKE_TIMEOUT`] timeout standing in for the timer
/// keypoint of last resort; each iteration waits for the park, then times
/// submit→complete of a single task for that core. The recorded mean is
/// the full wake path (unpark, keypoint, drain, completion signal); the
/// scenario *asserts* it stays well below the timer bound, so the number
/// doubles as evidence wake-ups — not timeouts — drive progress.
fn park_wake_latency(opts: &BenchOptions) -> BenchResult {
    let mgr = TaskManager::new(presets::kwak().into());
    let config = ProgressionConfig {
        park_timeout: scenarios::PARK_WAKE_TIMEOUT,
        timer_period: None,
        ..ProgressionConfig::for_cores(vec![1])
    };
    let mut prog = Progression::start(mgr.clone(), config);
    let result = measure(
        "park_wake_latency",
        opts,
        || scenarios::wait_until_parked(&mgr, 1),
        || {
            let h = mgr
                .task(|_| TaskStatus::Done)
                .cpuset(CpuSet::single(1))
                .spawn();
            assert_eq!(h.wait(), Ok(()));
        },
    );
    prog.shutdown();
    let bound_ns = scenarios::PARK_WAKE_TIMEOUT.as_nanos() as f64;
    assert!(
        result.mean_ns < bound_ns / 2.0,
        "parked-core wake latency {:.0} ns is not below the timer-keypoint \
         bound {:.0} ns — wake path broken, progress relies on timeouts",
        result.mean_ns,
        bound_ns
    );
    result
}

/// The contention phase-shift scenario, one arm per [`SignalPolicy`]:
/// a long *uncontended* history (24 ramp drains), then a burst of real
/// 4-thread contention on the Global Queue, then the timed post-shift
/// ramp drains. The windowed arm asserts the signal's re-adaptation
/// (burst registered, then decayed by the quiet drains); the cumulative
/// arm asserts the opposite — the burst barely moves a ratio diluted by
/// history, and whatever it did move never decays. See `EXPERIMENTS.md`
/// ("Windowed vs cumulative contention ablation") for the recipe.
///
/// The two fixed arms pin `auto` off so [`scenarios::PHASE_HALF_LIFE`]
/// stays the half-life actually in force; the `phase_shift_ramp_auto` arm
/// turns the half-life auto-tuner loose on the same phase script and
/// additionally asserts the tuned half-life landed inside the
/// [`pioman::AUTO_HALF_LIFE_MIN`]`..=`[`pioman::AUTO_HALF_LIFE_MAX`]
/// clamp — the re-adaptation-lag row of the auto-tuning satellite.
fn phase_shift(
    name: &'static str,
    opts: &BenchOptions,
    signal: SignalPolicy,
    auto: bool,
) -> BenchResult {
    let mgr = TaskManager::with_config(
        Arc::new(presets::kwak()),
        ManagerConfig {
            signal,
            contention_half_life: scenarios::PHASE_HALF_LIFE,
            auto_half_life: auto,
            ..ManagerConfig::default()
        },
    );
    scenarios::phase_quiet_history(&mgr, 0);
    scenarios::phase_burst(&mgr);
    // One budget computation folds the burst into the windowed signal.
    let _ = mgr.adaptive_budget(0);
    let rate_after_burst = mgr.contention_rate(0);
    let (_, burst_contended) = scenarios::path_lock_stats(&mgr, 0);

    let result = measure(
        name,
        opts,
        || {
            scenarios::submit_ramp(&mgr, 0);
        },
        || {
            assert_eq!(
                scenarios::adaptive_drain(&mgr, 0),
                scenarios::ADAPTIVE_RAMP_LOAD,
                "post-shift drain must complete"
            );
        },
    );

    // The ablation claim. Guarded on the burst having produced observable
    // contention: a TTAS spinlock on an unloaded many-core host can win
    // every race, in which case there is no phase change to react to.
    if burst_contended > 0 {
        let rate_final = mgr.contention_rate(0);
        match signal {
            SignalPolicy::Windowed => {
                assert!(
                    rate_after_burst > 0.0,
                    "windowed signal failed to register the contention burst"
                );
                assert!(
                    rate_final < rate_after_burst,
                    "windowed signal failed to re-adapt: {rate_final} after \
                     the quiet drains vs {rate_after_burst} right after the burst"
                );
            }
            SignalPolicy::Cumulative => {
                assert!(
                    rate_final > 0.0,
                    "cumulative ratio can never decay back to zero"
                );
                assert!(
                    rate_final <= rate_after_burst,
                    "cumulative ratio only dilutes, it never climbs while quiet"
                );
            }
        }
    }
    if auto {
        // Whatever the host weather, the tuner may never escape its clamp.
        let hl = mgr.contention_half_life(0);
        assert!(
            (pioman::AUTO_HALF_LIFE_MIN..=pioman::AUTO_HALF_LIFE_MAX).contains(&hl),
            "auto-tuned half-life {hl} escaped the clamp"
        );
    }
    result
}

/// The memory-ordering ablation (PR 5): 4 real threads hammering
/// push+pop rounds on the vendored Michael–Scott queue, once with the
/// audited weakest-sound orderings ([`crossbeam::order::Tuned`], what the
/// scheduler's lock-free backend runs) and once with every site upgraded
/// to `SeqCst` ([`crossbeam::queue::SeqCstSegQueue`], the pre-PR-5
/// behaviour). Identical algorithm, identical layout — the delta is the
/// fences. Read the pair together like `lockfree_vs_mutex`.
fn relaxed_vs_seqcst(opts: &BenchOptions) -> [BenchResult; 2] {
    use crossbeam::order::{AlwaysSeqCst, Tuned};
    // Op count large enough that thread spawn/join overhead (~100 µs per
    // round) is noise against the measured queue ops, not the bulk of the
    // mean.
    [
        ordering_round::<Tuned>("relaxed_vs_seqcst_contended", opts, 4, 4_096),
        ordering_round::<AlwaysSeqCst>("relaxed_vs_seqcst_contended_baseline", opts, 4, 4_096),
    ]
}

/// The manycore re-record of the memory-ordering ablation: the identical
/// push+pop rounds at 16 threads — oversubscribed on the CI runner, which
/// is the point: with more threads than cores every ordering site sits on
/// a line other cores are actively invalidating, so the fence delta is
/// priced under the cache pressure the 256–1024-core study cares about
/// rather than the polite 4-thread regime. Fewer ops per thread keep the
/// round duration near the 4-thread rows'.
fn relaxed_vs_seqcst_manycore(opts: &BenchOptions) -> [BenchResult; 2] {
    use crossbeam::order::{AlwaysSeqCst, Tuned};
    [
        ordering_round::<Tuned>("relaxed_vs_seqcst_manycore", opts, 16, 2_048),
        ordering_round::<AlwaysSeqCst>("relaxed_vs_seqcst_manycore_baseline", opts, 16, 2_048),
    ]
}

/// One arm of the memory-ordering ablation: `threads` real threads each
/// pushing+popping `ops` items on the vendored Michael–Scott queue under
/// ordering policy `P`. Shared by the 4-thread and 16-thread pairs.
fn ordering_round<P: crossbeam::order::OrderPolicy>(
    name: &'static str,
    opts: &BenchOptions,
    threads: u64,
    ops: u64,
) -> BenchResult {
    use crossbeam::queue::SegQueue;
    let iters = (opts.iters / 10).max(5);
    let scaled = BenchOptions { iters, ..*opts };
    let q: SegQueue<u64, P> = SegQueue::new();
    let mut r = measure(
        name,
        &scaled,
        || (),
        || {
            std::thread::scope(|s| {
                for t in 0..threads {
                    let q = &q;
                    s.spawn(move || {
                        for i in 0..ops {
                            q.push(t * ops + i);
                            std::hint::black_box(q.pop());
                        }
                    });
                }
            });
        },
    );
    assert!(q.is_empty(), "each round pushes and pops equally");
    // Per-op values: each inner iteration is one push + one pop.
    r.scale_per_op((threads * ops * 2) as f64);
    r
}

/// The false-sharing ablation (PR 5): 4 real threads each bumping a
/// statistics counter, once over the [`pioman::counters::ShardedCounter`]
/// that now backs the queue `submitted`/`executed` stats (each thread on
/// its own cache-padded slot) and once over a single shared `AtomicU64` —
/// the pre-PR-5 layout, where every increment bounced one line between
/// all cores. Both arms assert the final count, so the numbers are also
/// correctness evidence. Read the pair together.
fn stats_sharding(opts: &BenchOptions) -> [BenchResult; 2] {
    // See relaxed_vs_seqcst: the increment is ~1 ns, so the op count must
    // dwarf the ~100 µs/round scope setup for the delta to be readable.
    sharding_pair(
        [
            "stats_sharding_contended",
            "stats_sharding_contended_baseline",
        ],
        opts,
        4,
        65_536,
    )
}

/// The manycore re-record of the false-sharing ablation: 16 threads (one
/// shard each) oversubscribed on the runner. The shared-`AtomicU64` arm
/// now bounces its one line between 4× as many contenders — the regime
/// where the paper-scale per-core stats shards earn their padding — while
/// the sharded arm's slots stay thread-private regardless of the count.
fn stats_sharding_manycore(opts: &BenchOptions) -> [BenchResult; 2] {
    sharding_pair(
        [
            "stats_sharding_manycore",
            "stats_sharding_manycore_baseline",
        ],
        opts,
        16,
        16_384,
    )
}

/// Both arms of the false-sharing ablation at one thread count: `threads`
/// real threads each bumping a counter `ops` times, once over a
/// [`pioman::counters::ShardedCounter`] (thread-private padded slots) and
/// once over a single shared `AtomicU64`. Shared by the 4-thread and
/// 16-thread pairs.
fn sharding_pair(
    names: [&'static str; 2],
    opts: &BenchOptions,
    threads: u64,
    ops: u64,
) -> [BenchResult; 2] {
    use core::sync::atomic::{AtomicU64, Ordering};
    use pioman::counters::ShardedCounter;

    let iters = (opts.iters / 10).max(5);
    let scaled = BenchOptions { iters, ..*opts };

    let sharded = ShardedCounter::new(threads as usize);
    let mut a = measure(
        names[0],
        &scaled,
        || (),
        || {
            std::thread::scope(|s| {
                for t in 0..threads {
                    let sharded = &sharded;
                    s.spawn(move || {
                        for _ in 0..ops {
                            sharded.add_at(t as usize, 1);
                        }
                    });
                }
            });
        },
    );
    a.scale_per_op((threads * ops) as f64);

    let shared = AtomicU64::new(0);
    let mut b = measure(
        names[1],
        &scaled,
        || (),
        || {
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let shared = &shared;
                    s.spawn(move || {
                        for _ in 0..ops {
                            shared.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
        },
    );
    b.scale_per_op((threads * ops) as f64);

    // Quiesced-snapshot correctness (the pass count depends on the
    // high-variance median-of-3, so assert shape rather than a literal):
    // every round adds exactly threads × ops, and none may be lost.
    let per_round = threads * ops;
    assert!(sharded.sum() > 0 && sharded.sum().is_multiple_of(per_round));
    assert!(shared.load(Ordering::Relaxed).is_multiple_of(per_round));
    [a, b]
}

/// One Fig. 4 point: the simulated 4-byte pingpong progressed by PIOMan
/// keypoints (regeneration cost on the host; the simulated latency itself
/// is deterministic).
fn newmad_pingpong(opts: &BenchOptions) -> BenchResult {
    let seed = opts.seed;
    let scaled = BenchOptions {
        iters: (opts.iters / 10).max(5),
        ..*opts
    };
    measure(
        "newmad_pingpong",
        &scaled,
        || (),
        || {
            let r = mtlat::run_mtlat(MpiImpl::MadMpi, 1, 20, seed);
            assert!(r.mean_latency_us > 0.0);
        },
    )
}

/// Drives a fresh 2-node × 2-rail engine pair through one `size`-byte
/// transfer under `cfg`, polling both sides every 500 ns, and returns the
/// simulated receive-completion time. Shared harness of the newmad_*
/// bench rows.
fn newmad_transfer_ns(size: usize, cfg: newmadeleine::EngineConfig) -> u64 {
    newmad_transfer_ns_rails(size, cfg, 2)
}

/// [`newmad_transfer_ns`] generalized over the fabric's rail count — the
/// `newmad_rail_ladder` row walks this from 2 up to 16 rails.
fn newmad_transfer_ns_rails(size: usize, cfg: newmadeleine::EngineConfig, rails: usize) -> u64 {
    use newmadeleine::CommEngine;
    use piom_des::{Sim, SimTime};
    use piom_net::{NetParams, Network};
    let net = Network::new(2, rails, NetParams::infiniband());
    let a = CommEngine::new(0, net.clone(), cfg.clone());
    let b = CommEngine::new(1, net, cfg);
    let mut sim = Sim::new();
    let r = b.irecv(&mut sim, 0, 1);
    a.isend(&mut sim, 1, 1, size);
    // Poll horizon: handshake slack plus twice the single-rail byte time.
    let horizon_ns = 100_000 + (size as u64 * 830 / 1_000) * 2;
    for k in 0..horizon_ns / 500 {
        let (a2, b2) = (a.clone(), b.clone());
        sim.schedule_abs(SimTime::from_ns(k * 500), move |sim| {
            a2.poll(sim);
            b2.poll(sim);
        });
    }
    sim.run();
    r.completed_at().expect("transfer must complete").as_ns()
}

/// The Fig. 5 shape through the zero-copy engine: one rendezvous
/// transfer per ladder rung (64 KiB / 256 KiB / 1 MiB) over 2 rails. The
/// host time prices the engine's packing, striping, and reassembly
/// bookkeeping; the routine also asserts the *simulated* effective
/// bandwidth grows monotonically up the ladder (handshake amortization),
/// so the perf row doubles as a protocol sanity check.
fn newmad_bandwidth_ladder(opts: &BenchOptions) -> BenchResult {
    let scaled = BenchOptions {
        iters: (opts.iters / 10).max(5),
        ..*opts
    };
    measure(
        "newmad_bandwidth_ladder",
        &scaled,
        || (),
        || {
            let mut bw = [0.0f64; 3];
            for (i, size) in [64 * 1024, 256 * 1024, 1 << 20].into_iter().enumerate() {
                let ns = newmad_transfer_ns(size, newmadeleine::EngineConfig::newmadeleine());
                bw[i] = size as f64 / ns as f64;
            }
            assert!(
                bw[0] < bw[1] && bw[1] < bw[2],
                "bandwidth must grow up the ladder: {bw:?} B/ns"
            );
        },
    )
}

/// The documented eager/stripe crossover, checked end to end on every
/// run: below `rails::stripe_crossover` a single eager packet must beat
/// a forced striped rendezvous (the handshake dominates); well above it,
/// striping over 2 rails must beat the same rendezvous pinned to one
/// rail. Host time prices the four simulated transfers.
fn newmad_multirail_crossover(opts: &BenchOptions) -> BenchResult {
    use newmadeleine::{rails, EngineConfig};
    use piom_net::NetParams;
    let scaled = BenchOptions {
        iters: (opts.iters / 10).max(5),
        ..*opts
    };
    measure(
        "newmad_multirail_crossover",
        &scaled,
        || (),
        || {
            let xover = rails::stripe_crossover(&NetParams::infiniband(), 2);
            let small = xover / 2;
            let eager = newmad_transfer_ns(small, EngineConfig::newmadeleine());
            let forced_stripe = newmad_transfer_ns(
                small,
                EngineConfig {
                    eager_threshold: 1,
                    stripe_threshold: 1,
                    rndv_chunk: small.div_ceil(2),
                    ..EngineConfig::newmadeleine()
                },
            );
            assert!(
                eager < forced_stripe,
                "below the crossover ({small} B) eager must win: {eager} vs {forced_stripe} ns"
            );
            let big = 16 * xover;
            let striped = newmad_transfer_ns(big, EngineConfig::newmadeleine());
            let single_rail = newmad_transfer_ns(
                big,
                EngineConfig {
                    multirail_data: false,
                    ..EngineConfig::newmadeleine()
                },
            );
            assert!(
                striped < single_rail,
                "above the crossover ({big} B) striping must win: {striped} vs {single_rail} ns"
            );
        },
    )
}

/// The multirail scaling satellite of the 256–1024-core study: one 1 MiB
/// rendezvous per rung of a 2/4/8/16-rail ladder. Host time prices the
/// striping bookkeeping as the plan width grows; the routine asserts the
/// *simulated* physics both ways — effective bandwidth must climb
/// strictly with the rail count (the water-filled plan keeps every rail
/// streaming), and the documented eager/stripe crossover must move
/// *down*: `s* = 2(latency+occupancy)/per_byte · r/(r−1)` shrinks toward
/// its 1× asymptote as more rails amortize the same handshake, so wider
/// fabrics stripe smaller messages profitably.
fn newmad_rail_ladder(opts: &BenchOptions) -> BenchResult {
    use newmadeleine::{rails, EngineConfig};
    use piom_net::NetParams;
    const SIZE: usize = 1 << 20;
    let scaled = BenchOptions {
        iters: (opts.iters / 10).max(5),
        ..*opts
    };
    measure(
        "newmad_rail_ladder",
        &scaled,
        || (),
        || {
            let mut prev_bw = 0.0f64;
            let mut prev_xover = usize::MAX;
            for n_rails in [2usize, 4, 8, 16] {
                let ns = newmad_transfer_ns_rails(SIZE, EngineConfig::newmadeleine(), n_rails);
                let bw = SIZE as f64 / ns as f64;
                assert!(
                    bw > prev_bw,
                    "striped bandwidth must climb with the rail count: \
                     {n_rails} rails moved {bw:.4} B/ns vs {prev_bw:.4} before"
                );
                prev_bw = bw;
                let xover = rails::stripe_crossover(&NetParams::infiniband(), n_rails);
                assert!(
                    xover < prev_xover,
                    "the eager/stripe crossover must shrink as rails amortize \
                     the handshake: {xover} B at {n_rails} rails vs {prev_xover}"
                );
                prev_xover = xover;
            }
        },
    )
}

/// The QoS class-lane head-to-head: an identical 64-task backlog mixed
/// across all four [`pioman::TaskClass`] tiers (half carrying EDF
/// deadline ticks) preloaded on core 0 and drained by keypoints — once
/// over the lock-free class lanes, once over the spinlocked sequential
/// lanes. Two adjacent trajectory rows, same shape as
/// `lockfree_vs_mutex`: parity or better for `qos_class_mix` means the
/// tournament pop does not tax the hot path.
fn qos_class_mix(opts: &BenchOptions) -> [BenchResult; 2] {
    [
        qos_mix_drain("qos_class_mix", opts, QueueBackend::LockFree),
        qos_mix_drain("qos_class_mix_spinlock", opts, QueueBackend::Spinlock),
    ]
}

fn qos_mix_drain(
    name: &'static str,
    opts: &BenchOptions,
    queue_backend: QueueBackend,
) -> BenchResult {
    let mgr = TaskManager::with_config(
        Arc::new(presets::kwak()),
        ManagerConfig {
            queue_backend,
            ..ManagerConfig::default()
        },
    );
    let handles = std::cell::RefCell::new(Vec::new());
    let result = measure(
        name,
        opts,
        || *handles.borrow_mut() = scenarios::submit_qos_mix(&mgr),
        || scenarios::drain_until_complete(&mgr, 0..1, &handles.borrow()),
    );
    let by_class = mgr.stats().executed_by_class;
    assert!(
        by_class.iter().all(|&n| n > 0),
        "every QoS class must have executed through its lane: {by_class:?}"
    );
    result
}

/// Waitlist-release overhead: a 32-deep dependency chain submitted and
/// drained on one core. Every task after the first parks on the waitlist
/// and is released by its predecessor's completion path, so the measured
/// drain prices submit → park → release → re-dispatch per link.
fn qos_waitlist_chain(opts: &BenchOptions) -> BenchResult {
    let mgr = TaskManager::new(presets::kwak().into());
    let handles = std::cell::RefCell::new(Vec::new());
    let result = measure(
        "qos_waitlist_chain",
        opts,
        || *handles.borrow_mut() = scenarios::submit_qos_chain(&mgr),
        || scenarios::drain_until_complete(&mgr, 0..1, &handles.borrow()),
    );
    assert!(
        mgr.stats().total_waitlist_released() > 0,
        "the chain must flow through the waitlist, not dispatch eagerly"
    );
    result
}

/// One rung of the `steal_scaling_{256,512,1024}` ladder — the scaling
/// study's recorded row family. A [`scenarios::SCALING_LOAD`]-task
/// machine-wide backlog is homed on core 0 of a manycore preset with
/// [`scenarios::SCALING_SPILL_THRESHOLD`] as the spill threshold, so
/// dispatch pushes most of it through the per-socket overflow tier. The
/// starved home core never schedules; the drain cast is core 1 (a
/// home-socket sibling, claiming from the socket overflow) plus the first
/// core of every remote socket (cross-socket thieves), so one timed drain
/// prices spill, claim, *and* cross-socket steal on the same backlog.
///
/// Post-run asserts make the row self-checking evidence for the tier's
/// contract at every rung: tasks spilled, were claimed back, and were
/// stolen across sockets; the starved core ran nothing; and — the study's
/// headline — a park probe on the drained fabric misses after consulting
/// **exactly `sockets.len()` aggregates**, the O(sockets) bound that
/// keeps the about-to-park check flat from 256 to 1024 cores. The miss
/// itself also pins span decay: a stale socket span after a full drain
/// would read as a false hit.
fn steal_scaling(
    name: &'static str,
    opts: &BenchOptions,
    topo: piom_topology::Topology,
) -> BenchResult {
    let mgr = TaskManager::with_config(
        Arc::new(topo),
        ManagerConfig {
            spill_threshold: scenarios::SCALING_SPILL_THRESHOLD,
            ..ManagerConfig::default()
        },
    );
    let n_cores = mgr.topology().n_cores();
    let sockets = mgr.stats().sockets;
    let n_sockets = sockets.len();
    assert!(n_sockets >= 2, "{name} needs a multi-socket preset");
    let mut drainers = vec![1usize];
    for s in &sockets {
        if !s.cpuset.contains(0) {
            drainers.push(s.cpuset.iter().next().expect("socket has cores"));
        }
    }
    let handles = std::cell::RefCell::new(Vec::new());
    let result = measure(
        name,
        opts,
        || *handles.borrow_mut() = scenarios::submit_manycore_backlog(&mgr),
        || scenarios::drain_cores_until_complete(&mgr, &drainers, &handles.borrow()),
    );
    let stats = mgr.stats();
    assert!(
        stats.total_spilled() > 0,
        "{name}: the deep backlog must spill into the socket tier"
    );
    assert!(
        stats.total_claimed() > 0,
        "{name}: spilled tasks must drain through overflow claims"
    );
    assert!(
        stats.total_stolen() > 0,
        "{name}: the starved core's residue must drain via steals"
    );
    assert_eq!(
        stats.executed_by_core[0], 0,
        "{name}: the starved home core must run nothing"
    );
    // The O(sockets) probe bound, measured directly: on the fully drained
    // fabric a pre-park probe from the last core must miss (no stale span
    // false positive) after exactly one aggregate poll per socket.
    let polls_before = stats.total_park_probe_polls();
    assert!(
        !mgr.park_probe(n_cores - 1),
        "{name}: drained fabric must probe as empty (stale span?)"
    );
    let polls = mgr.stats().total_park_probe_polls() - polls_before;
    assert_eq!(
        polls, n_sockets as u64,
        "{name}: a full-miss probe must cost exactly one poll per socket"
    );
    result
}

/// Runs the whole suite. The returned vector's order and names are stable:
/// they are the `BENCH_pioman.json` keys future PRs diff against.
pub fn run_suite(opts: &BenchOptions) -> Vec<BenchResult> {
    let [lockfree, mutex_baseline] = lockfree_vs_mutex(opts);
    let [relaxed, seqcst_baseline] = relaxed_vs_seqcst(opts);
    let [sharded, shared_baseline] = stats_sharding(opts);
    let [qos_lockfree, qos_spinlock] = qos_class_mix(opts);
    let [relaxed_many, seqcst_many_baseline] = relaxed_vs_seqcst_manycore(opts);
    let [sharded_many, shared_many_baseline] = stats_sharding_manycore(opts);
    vec![
        submit_schedule_percore(opts),
        submit_schedule_global(opts),
        schedule_batch_drain(opts),
        steal_starved_core(opts),
        spin_home_drains_alone(opts),
        contended_global(opts),
        contended_percore(opts),
        newmad_pingpong(opts),
        newmad_bandwidth_ladder(opts),
        newmad_multirail_crossover(opts),
        lockfree,
        mutex_baseline,
        steal_half_backlog(opts),
        adaptive_batch_ramp(opts),
        park_wake_latency(opts),
        phase_shift("phase_shift_ramp", opts, SignalPolicy::Windowed, false),
        phase_shift(
            "phase_shift_ramp_cumulative",
            opts,
            SignalPolicy::Cumulative,
            false,
        ),
        relaxed,
        seqcst_baseline,
        sharded,
        shared_baseline,
        qos_lockfree,
        qos_spinlock,
        qos_waitlist_chain(opts),
        phase_shift("phase_shift_ramp_auto", opts, SignalPolicy::Windowed, true),
        steal_scaling("steal_scaling_256", opts, presets::dual_socket_256()),
        steal_scaling("steal_scaling_512", opts, presets::quad_socket_512()),
        steal_scaling("steal_scaling_1024", opts, presets::quad_socket_1024()),
        relaxed_many,
        seqcst_many_baseline,
        sharded_many,
        shared_many_baseline,
        newmad_rail_ladder(opts),
    ]
}

/// Human-readable table of one suite run (the JSON document comes from
/// [`crate::schema::render_json`]).
pub fn render_text(results: &[BenchResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "BENCH — real-thread scheduler hot paths (host-dependent; trajectory in BENCH_pioman.json)"
    );
    let _ = writeln!(
        out,
        "{:<28}{:>14}{:>12}{:>12}{:>12}{:>8}",
        "benchmark", "mean (ns)", "p50 (ns)", "p99 (ns)", "p999 (ns)", "iters"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:<28}{:>14.1}{:>12.1}{:>12.1}{:>12.1}{:>8}",
            r.name, r.mean_ns, r.p50_ns, r.p99_ns, r.p999_ns, r.iters
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_the_required_scenarios_and_completes() {
        let results = run_suite(&BenchOptions { iters: 3, seed: 42 });
        assert!(results.len() >= 4, "trajectory needs at least 4 benchmarks");
        let names: Vec<_> = results.iter().map(|r| r.name).collect();
        for required in [
            "submit_schedule_percore",
            "schedule_batch_drain_64",
            "steal_starved_core",
            "contended_global_queue",
            "newmad_pingpong",
            "newmad_bandwidth_ladder",
            "newmad_multirail_crossover",
            "lockfree_vs_mutex",
            "lockfree_vs_mutex_baseline",
            "steal_half_backlog",
            "adaptive_batch_ramp",
            "park_wake_latency",
            "phase_shift_ramp",
            "phase_shift_ramp_cumulative",
            "relaxed_vs_seqcst_contended",
            "relaxed_vs_seqcst_contended_baseline",
            "stats_sharding_contended",
            "stats_sharding_contended_baseline",
            "qos_class_mix",
            "qos_class_mix_spinlock",
            "qos_waitlist_chain",
            "phase_shift_ramp_auto",
            "steal_scaling_256",
            "steal_scaling_512",
            "steal_scaling_1024",
            "relaxed_vs_seqcst_manycore",
            "relaxed_vs_seqcst_manycore_baseline",
            "stats_sharding_manycore",
            "stats_sharding_manycore_baseline",
            "newmad_rail_ladder",
        ] {
            assert!(names.contains(&required), "missing benchmark {required:?}");
        }
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate benchmark names");
        for r in &results {
            assert!(r.mean_ns > 0.0, "{} measured nothing", r.name);
            assert!(r.iters > 0);
            // The v2 distribution fields are populated and ordered for
            // every scenario, including the per-op-scaled contended ones.
            assert!(r.p50_ns > 0.0, "{} has no p50", r.name);
            assert!(
                r.p50_ns <= r.p99_ns && r.p99_ns <= r.p999_ns,
                "{} quantiles out of order: p50={} p99={} p999={}",
                r.name,
                r.p50_ns,
                r.p99_ns,
                r.p999_ns
            );
        }
    }

    #[test]
    fn tail_gated_scenarios_get_the_iteration_floor() {
        // `measure` bumps tagged scenarios to TAIL_MIN_ITERS even when
        // the caller asked for quick-mode counts.
        let opts = BenchOptions { iters: 3, seed: 42 };
        let r = schedule_batch_drain(&opts);
        assert!(scenarios::is_tail_gated(r.name));
        assert_eq!(r.iters, TAIL_MIN_ITERS);
        let r = submit_schedule_percore(&opts);
        assert!(!scenarios::is_tail_gated(r.name), "high-variance row");
        assert_eq!(r.iters, 3, "untagged rows keep the requested count");
    }

    #[test]
    fn json_structure_is_stable_and_well_formed() {
        let a = run_suite(&BenchOptions { iters: 2, seed: 42 });
        let b = run_suite(&BenchOptions { iters: 2, seed: 42 });
        // The key set (the schema) must not vary run to run, even though
        // the measured values do.
        let keys = |rs: &[BenchResult]| rs.iter().map(|r| r.name).collect::<Vec<_>>();
        assert_eq!(keys(&a), keys(&b));
        let json = render_json(&a);
        assert!(json.starts_with("{\n") && json.ends_with("}\n"));
        assert_eq!(json.matches("mean_ns").count(), a.len());
        assert_eq!(json.matches("\"iters\"").count(), a.len());
        assert_eq!(json.matches("\"seed\"").count(), a.len());
        // No trailing comma before the closing brace.
        assert!(!json.contains(",\n}"));
    }
}
