//! The workload-scenario matrix behind `piom-harness scenarios`.
//!
//! `piom_scenarios` owns the workloads and reports each run as a
//! [`ScenarioReport`] in the shared [`pioman::hist::PercentileSummary`]
//! vocabulary;
//! this module is the thin adapter that turns those reports into
//! [`BenchResult`] rows so the *existing* schema-v2 renderer and compare
//! gate apply unchanged — `SCENARIOS_pioman.json` is the same file format
//! as `BENCH_pioman.json`, gated by the same machinery, differing only in
//! what a row means (simulated workload latency, not measured ns/op).
//!
//! The dependency points this way (harness → scenarios) on purpose: the
//! scenario crate must stay buildable without the harness, so it speaks
//! `PercentileSummary` and the conversion to the trajectory schema lives
//! here, next to the schema's owner.

use crate::schema::BenchResult;
use piom_scenarios::{Scenario, ScenarioParams, ScenarioReport};
use pioman::TaskClass;
use std::fmt::Write as _;

/// Converts one scenario report into a schema-v2 trajectory row: the
/// summary's exact mean and bucket-resolved percentiles, the sample count
/// as `iters`, and the run seed.
pub fn to_bench_result(r: &ScenarioReport) -> BenchResult {
    BenchResult {
        name: r.name,
        mean_ns: r.summary.mean,
        p50_ns: r.summary.p50,
        p99_ns: r.summary.p99,
        p999_ns: r.summary.p999,
        iters: r.summary.count,
        seed: r.seed,
    }
}

/// Runs `scenarios` under `params`, in the given (registry) order,
/// returning one full report each. Deterministic: same scenario list,
/// params, and seed produce identical reports. The caller converts to
/// trajectory rows with [`to_bench_result`]; the throughput-per-class
/// rows stay report-only (the JSON schema is ns/op percentiles).
pub fn run_matrix(scenarios: &[&Scenario], params: &ScenarioParams) -> Vec<ScenarioReport> {
    scenarios.iter().map(|s| s.run(params)).collect()
}

/// Human-readable matrix table (the non-`--json` CLI output). Latencies
/// are *simulated* nanoseconds; `gate` shows which compare treatment the
/// row gets (`wide` = mean-only at the wide threshold, `tail` = mean +
/// p99). Each scenario's throughput-per-class rows follow indented —
/// completions per simulated millisecond, classes with zero completions
/// omitted.
pub fn render_text(scenarios: &[&Scenario], reports: &[ScenarioReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "SCENARIO MATRIX — simulated workload latency (ns), seed {}",
        reports.first().map_or(0, |r| r.seed)
    );
    let _ = writeln!(
        out,
        "{:<22}{:>12}{:>12}{:>12}{:>12}{:>9}  {:<6}",
        "scenario", "mean", "p50", "p99", "p999", "samples", "gate"
    );
    for (s, r) in scenarios.iter().zip(reports) {
        let gate = match s.gate {
            piom_scenarios::Gate::Wide => "wide",
            piom_scenarios::Gate::Tail => "tail",
        };
        let _ = writeln!(
            out,
            "{:<22}{:>12.1}{:>12.1}{:>12.1}{:>12.1}{:>9}  {:<6}",
            r.name,
            r.summary.mean,
            r.summary.p50,
            r.summary.p99,
            r.summary.p999,
            r.summary.count,
            gate
        );
        let _ = writeln!(out, "  {}", s.about);
        let mut tput = String::new();
        for (class, row) in TaskClass::ALL.iter().zip(&r.throughput) {
            if row.completed > 0 {
                if !tput.is_empty() {
                    tput.push_str("  ·  ");
                }
                let _ = write!(tput, "{:?} {} ({:.2}/ms)", class, row.completed, row.per_ms);
            }
        }
        let _ = writeln!(out, "  throughput: {tput}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;

    #[test]
    fn matrix_rows_render_as_valid_schema_v2() {
        let params = ScenarioParams::quick(42);
        let scenarios: Vec<&Scenario> = piom_scenarios::registry().iter().collect();
        let rows: Vec<BenchResult> = run_matrix(&scenarios, &params)
            .iter()
            .map(to_bench_result)
            .collect();
        assert!(rows.len() >= 8, "matrix too small");
        let json = schema::render_json(&rows);
        let parsed = schema::parse_trajectory(&json).expect("rows must round-trip");
        assert_eq!(parsed.len(), rows.len());
        for r in &rows {
            let e = parsed[r.name];
            assert!(!e.is_v1(), "{} must carry v2 percentiles", r.name);
            assert!(e.mean_ns > 0.0);
        }
    }

    #[test]
    fn report_conversion_is_field_for_field() {
        let s = piom_scenarios::find("rpc_mesh_steady").unwrap();
        let report = s.run(&ScenarioParams::quick(7));
        let row = to_bench_result(&report);
        assert_eq!(row.name, "rpc_mesh_steady");
        assert_eq!(row.seed, 7);
        assert_eq!(row.iters, report.summary.count);
        assert_eq!(row.mean_ns, report.summary.mean);
        assert_eq!(row.p99_ns, report.summary.p99);
    }

    #[test]
    fn render_text_lists_every_scenario_and_its_gate() {
        let params = ScenarioParams::quick(42);
        let scenarios: Vec<&Scenario> = piom_scenarios::registry().iter().collect();
        let reports = run_matrix(&scenarios, &params);
        let text = render_text(&scenarios, &reports);
        for s in piom_scenarios::registry() {
            assert!(text.contains(s.name), "{} missing from table", s.name);
        }
        assert!(text.contains("wide") && text.contains("tail"));
        // Every scenario carries a throughput-per-class line, and the QoS
        // mesh rows decompose theirs into all four classes.
        assert_eq!(
            text.matches("throughput:").count(),
            reports.len(),
            "one throughput line per scenario"
        );
        assert!(
            text.contains("Urgent") && text.contains("Background"),
            "QoS rows must break out per-class rates"
        );
    }
}
