//! `piom-harness stats`: a live [`ManagerStats`] snapshot rendered as
//! Prometheus-text-shaped JSON.
//!
//! The layout mirrors what a Prometheus text exposition would carry — one
//! entry per metric *family* with a `type`, a `help` string, and labelled
//! `samples`; the latency histogram uses cumulative `le` buckets ending in
//! `"+Inf"` plus `_count`/`_sum`, exactly like a native `histogram` family
//! — but stays JSON so `piom-harness` needs no exposition-format parser on
//! the read side and the existing [`crate::schema`] validator can gate it
//! in tests. Keys are emitted in a fixed order so snapshots diff cleanly.
//!
//! The demo workload behind the CLI subcommand runs the manager with
//! [`ManagerConfig::latency_histogram`](pioman::ManagerConfig) enabled —
//! the flag is off by default precisely so that *only* observability
//! consumers like this one pay for the clock reads.

use pioman::hist::HistSnapshot;
use pioman::{
    presets, CpuSet, HookPoint, ManagerConfig, ManagerStats, TaskClass, TaskManager, TaskStatus,
};
use std::fmt::Write as _;

/// Renders `stats` as Prometheus-text-shaped JSON (see module docs).
pub fn render_stats_json(stats: &ManagerStats) -> String {
    let mut out = String::new();
    out.push_str("{\n");

    // Per-queue counter families.
    queue_family(
        &mut out,
        stats,
        "piom_queue_submitted_total",
        "Tasks submitted directly to this queue.",
        |q| q.submitted,
    );
    queue_family(
        &mut out,
        stats,
        "piom_queue_executed_total",
        "Task executions drawn from this queue (repeat runs count each time).",
        |q| q.executed,
    );
    queue_family(
        &mut out,
        stats,
        "piom_queue_lock_contended_total",
        "Spinlock acquisitions that found the lock held.",
        |q| q.lock_contended,
    );

    // Per-core counter families.
    core_family(
        &mut out,
        "piom_core_executed_total",
        "Task executions per core.",
        &stats.executed_by_core,
    );
    core_family(
        &mut out,
        "piom_core_stolen_total",
        "Tasks stolen from outside the core's hierarchy path.",
        &stats.stolen_by_core,
    );
    core_family(
        &mut out,
        "piom_core_steal_attempts_total",
        "Steal probes per core, successful or not.",
        &stats.steal_attempts_by_core,
    );
    core_family(
        &mut out,
        "piom_core_steal_wakeups_total",
        "Steal-targeted wake-ups received per core.",
        &stats.wakeups_for_steal,
    );

    // Per-QoS-class counter families (label set: `class`).
    class_family(
        &mut out,
        "piom_class_executed_total",
        "Task executions per QoS class.",
        &stats.executed_by_class,
    );
    class_family(
        &mut out,
        "piom_class_stolen_total",
        "Stolen-task executions per QoS class.",
        &stats.stolen_by_class,
    );
    class_family(
        &mut out,
        "piom_class_waitlist_released_total",
        "Dependency-waitlist releases per QoS class.",
        &stats.waitlist_released_by_class,
    );

    // Hook invocations, labelled by keypoint.
    out.push_str(
        "  \"piom_hook_invocations_total\": { \"type\": \"counter\", \
         \"help\": \"Scheduler keypoint invocations by hook.\", \"samples\": [\n",
    );
    for (i, (hook, v)) in [
        ("idle", stats.hook_idle),
        ("context_switch", stats.hook_context_switch),
        ("timer", stats.hook_timer),
    ]
    .iter()
    .enumerate()
    {
        let sep = if i == 2 { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{ \"labels\": {{ \"hook\": \"{hook}\" }}, \"value\": {v} }}{sep}"
        );
    }
    out.push_str("  ] },\n");

    // The submit→execute latency histogram (always emitted: `null` when
    // the manager was built without the flag, so consumers can tell
    // "disabled" from "no samples yet").
    match &stats.latency {
        Some(snap) => {
            out.push_str("  \"piom_task_latency_ns\": ");
            render_histogram_json(&mut out, snap);
            out.push_str(",\n");
        }
        None => out.push_str("  \"piom_task_latency_ns\": null,\n"),
    }

    // The same histogram split by QoS class: one labelled sample per
    // class, histogram fields flattened into the sample (armed by the
    // same `latency_histogram` flag, `null` when disabled).
    match &stats.latency_by_class {
        Some(snaps) => {
            out.push_str(
                "  \"piom_task_class_latency_ns\": { \"type\": \"histogram\", \
                 \"help\": \"Submit-to-execute queueing delay per task run, by QoS class.\", \
                 \"samples\": [\n",
            );
            let last = snaps.len().saturating_sub(1);
            for (i, snap) in snaps.iter().enumerate() {
                let label = TaskClass::ALL[i].label();
                let _ = write!(
                    out,
                    "    {{ \"labels\": {{ \"class\": \"{label}\" }},\n    "
                );
                render_histogram_fields(&mut out, snap);
                out.push_str(if i == last { "\n" } else { ",\n" });
            }
            out.push_str("  ] }\n");
        }
        None => out.push_str("  \"piom_task_class_latency_ns\": null\n"),
    }

    out.push_str("}\n");
    out
}

/// One `histogram`-typed family: cumulative `le` buckets (inclusive upper
/// bounds, ending `"+Inf"`), `count`, `sum`, and the resolved quantiles.
fn render_histogram_json(out: &mut String, snap: &HistSnapshot) {
    out.push_str("{ \"type\": \"histogram\", ");
    out.push_str("\"help\": \"Submit-to-execute queueing delay per task run.\",\n    ");
    render_histogram_fields(out, snap);
}

/// The label-independent histogram fields (`buckets` through the resolved
/// quantiles), closing the enclosing object — shared between the
/// aggregate family and each per-class labelled sample.
fn render_histogram_fields(out: &mut String, snap: &HistSnapshot) {
    out.push_str("\"buckets\": [\n");
    let mut cumulative = 0u64;
    for (upper, n) in snap.nonzero_buckets() {
        cumulative += n;
        let _ = writeln!(
            out,
            "      {{ \"le\": \"{upper}\", \"cumulative_count\": {cumulative} }},"
        );
    }
    let _ = writeln!(
        out,
        "      {{ \"le\": \"+Inf\", \"cumulative_count\": {} }}",
        snap.count()
    );
    out.push_str("    ],\n");
    let q = |p: f64| snap.quantile(p).unwrap_or(0);
    let _ = writeln!(
        out,
        "    \"count\": {}, \"sum\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {} }}",
        snap.count(),
        snap.sum(),
        q(0.5),
        q(0.99),
        q(0.999),
    );
}

fn queue_family(
    out: &mut String,
    stats: &ManagerStats,
    name: &str,
    help: &str,
    value: impl Fn(&pioman::QueueStats) -> u64,
) {
    let _ = writeln!(
        out,
        "  \"{name}\": {{ \"type\": \"counter\", \"help\": \"{help}\", \"samples\": ["
    );
    let last = stats.queues.len().saturating_sub(1);
    for (i, q) in stats.queues.iter().enumerate() {
        let sep = if i == last { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{ \"labels\": {{ \"queue\": \"{}\", \"level\": \"{:?}\" }}, \"value\": {} }}{sep}",
            q.id.index(),
            q.level,
            value(q)
        );
    }
    out.push_str("  ] },\n");
}

fn class_family(out: &mut String, name: &str, help: &str, values: &[u64; pioman::CLASS_COUNT]) {
    let _ = writeln!(
        out,
        "  \"{name}\": {{ \"type\": \"counter\", \"help\": \"{help}\", \"samples\": ["
    );
    for (i, (class, v)) in TaskClass::ALL.iter().zip(values).enumerate() {
        let sep = if i == pioman::CLASS_COUNT - 1 {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            out,
            "    {{ \"labels\": {{ \"class\": \"{}\" }}, \"value\": {v} }}{sep}",
            class.label()
        );
    }
    out.push_str("  ] },\n");
}

fn core_family(out: &mut String, name: &str, help: &str, values: &[u64]) {
    let _ = writeln!(
        out,
        "  \"{name}\": {{ \"type\": \"counter\", \"help\": \"{help}\", \"samples\": ["
    );
    let last = values.len().saturating_sub(1);
    for (core, v) in values.iter().enumerate() {
        let sep = if core == last { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{ \"labels\": {{ \"core\": \"{core}\" }}, \"value\": {v} }}{sep}"
        );
    }
    out.push_str("  ] },\n");
}

/// Human-readable rendering of the same snapshot for the bare `stats`
/// subcommand: totals plus the latency percentiles when armed.
pub fn render_stats_text(stats: &ManagerStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "tasks submitted       {}", stats.total_submitted());
    let _ = writeln!(out, "tasks executed        {}", stats.total_executed());
    let _ = writeln!(out, "tasks stolen          {}", stats.total_stolen());
    let by_class = stats.executed_by_class;
    let _ = writeln!(
        out,
        "executed by class     urgent={} interactive={} bulk={} background={}",
        by_class[0], by_class[1], by_class[2], by_class[3]
    );
    let _ = writeln!(
        out,
        "waitlist releases     {}",
        stats.total_waitlist_released()
    );
    let _ = writeln!(
        out,
        "hook invocations      idle={} ctx={} timer={}",
        stats.hook_idle, stats.hook_context_switch, stats.hook_timer
    );
    match &stats.latency {
        Some(snap) => {
            let s = snap.summary();
            let _ = writeln!(
                out,
                "submit→execute ns     count={} mean={:.0} p50={:.0} p99={:.0} p999={:.0} max={:.0}",
                s.count, s.mean, s.p50, s.p99, s.p999, s.max
            );
        }
        None => {
            let _ = writeln!(out, "submit→execute ns     (histogram disabled)");
        }
    }
    out
}

/// Runs a small deterministic workload with the latency histogram armed
/// and returns the resulting stats — the data source for `piom-harness
/// stats`. Mixes direct submissions, a repeat (polling) task, and keypoint
/// scheduling across the 8-core kwak preset so every counter family in the
/// export carries non-trivial values.
pub fn demo_stats() -> ManagerStats {
    let topo = std::sync::Arc::new(presets::kwak());
    let mgr = TaskManager::with_config(
        topo.clone(),
        ManagerConfig {
            latency_histogram: true,
            ..ManagerConfig::default()
        },
    );
    let n = topo.n_cores();
    // A polling task that needs three passes, as in the paper's §IV-B
    // network-poll shape.
    let mut polls_left = 3u32;
    let poll = mgr
        .task(move |_| {
            polls_left -= 1;
            if polls_left == 0 {
                TaskStatus::Done
            } else {
                TaskStatus::Again
            }
        })
        .cpuset(CpuSet::single(0))
        .repeat()
        .spawn();
    // The QoS tiers + a dependency, so every per-class family carries
    // values: an Urgent deadline task, a Bulk follow-up parked on the
    // waitlist until the poll completes, and a Background sweep.
    let urgent = mgr
        .task(|_| TaskStatus::Done)
        .cpuset(CpuSet::single(1))
        .class(TaskClass::Urgent)
        .deadline(7)
        .spawn();
    let bulk_after = mgr
        .task(|_| TaskStatus::Done)
        .cpuset(CpuSet::single(0))
        .class(TaskClass::Bulk)
        .after(&poll)
        .spawn();
    let background = mgr
        .task(|_| TaskStatus::Done)
        .cpuset(CpuSet::single(2))
        .class(TaskClass::Background)
        .spawn();
    // One oneshot per core, then drain via the three keypoint kinds.
    let handles: Vec<_> = (0..n)
        .map(|c| {
            mgr.task(|_| TaskStatus::Done)
                .cpuset(CpuSet::single(c))
                .spawn()
        })
        .collect();
    for c in 0..n {
        mgr.hook(HookPoint::Idle, c);
    }
    while !poll.is_complete() {
        mgr.hook(HookPoint::TimerInterrupt, 0);
    }
    // The poll's completion released the Bulk dependent onto core 0.
    mgr.hook(HookPoint::Idle, 0);
    mgr.hook(HookPoint::ContextSwitch, 1);
    assert!(handles.iter().all(|h| h.is_complete()));
    for h in [urgent, bulk_after, background] {
        assert!(h.is_complete());
    }
    mgr.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::validate_json;

    #[test]
    fn demo_stats_json_is_valid_and_prometheus_shaped() {
        let stats = demo_stats();
        let json = render_stats_json(&stats);
        validate_json(&json).expect("stats export must be well-formed JSON");
        // Histogram family present with the exposition-format markers.
        assert!(json.contains("\"piom_task_latency_ns\": { \"type\": \"histogram\""));
        assert!(json.contains("\"le\": \"+Inf\""));
        // The demo ran one oneshot per core + 3 polling passes + the
        // three QoS-tier tasks.
        let expected = presets::kwak().n_cores() as u64 + 3 + 3;
        assert!(json.contains(&format!("\"count\": {expected},")));
        // Every advertised family made it out.
        for family in [
            "piom_queue_submitted_total",
            "piom_queue_executed_total",
            "piom_core_executed_total",
            "piom_class_executed_total",
            "piom_class_stolen_total",
            "piom_class_waitlist_released_total",
            "piom_task_class_latency_ns",
            "piom_hook_invocations_total",
        ] {
            assert!(json.contains(family), "missing family {family}");
        }
        // The per-class samples carry the tier labels and the demo's
        // known per-class values: one Urgent, one Bulk, one Background,
        // everything else Interactive; exactly one waitlist release
        // (the Bulk dependent).
        for label in ["urgent", "interactive", "bulk", "background"] {
            assert!(
                json.contains(&format!("\"class\": \"{label}\"")),
                "missing class label {label}"
            );
        }
        let stats2 = demo_stats();
        assert_eq!(stats2.executed_by_class[0], 1, "one urgent execution");
        assert_eq!(stats2.executed_by_class[2], 1, "one bulk execution");
        assert_eq!(stats2.executed_by_class[3], 1, "one background execution");
        assert_eq!(
            stats2.waitlist_released_by_class,
            [0, 0, 1, 0],
            "exactly the Bulk dependent flowed through the waitlist"
        );
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let stats = demo_stats();
        let snap = stats.latency.expect("demo arms the histogram");
        let mut cumulative = 0;
        for (upper, n) in snap.nonzero_buckets() {
            assert!(n > 0);
            cumulative += n;
            assert!(upper >= snap.min().unwrap());
        }
        assert_eq!(cumulative, snap.count());
    }

    #[test]
    fn disabled_histogram_renders_null_but_valid() {
        let mgr = TaskManager::new(std::sync::Arc::new(presets::kwak()));
        let json = render_stats_json(&mgr.stats());
        validate_json(&json).expect("disabled-histogram export still valid");
        assert!(json.contains("\"piom_task_latency_ns\": null"));
        assert!(json.contains("\"piom_task_class_latency_ns\": null"));
    }

    #[test]
    fn text_rendering_mentions_percentiles() {
        let text = render_stats_text(&demo_stats());
        assert!(text.contains("p99="));
        assert!(text.contains("tasks executed"));
    }
}
